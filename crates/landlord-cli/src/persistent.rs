//! A durable LANDLORD cache directory.
//!
//! `landlord submit` is the paper's deployment story: "on job
//! submission, LANDLORD first scans its configured cache directory for
//! existing images that are 'close' to the job's specification,
//! creates/updates images in the cache as necessary, and finally
//! launches the job inside the prepared container."
//!
//! Layout of a cache directory:
//!
//! ```text
//! <dir>/state.json      checkpoint: image index at the last compaction
//! <dir>/wal.log         append-only log of operations since
//! <dir>/objects/…       content-addressed store (shrinkwrap source)
//! <dir>/images/N.llimg  materialized container images
//! <dir>/quarantine/…    crash artifacts set aside by recovery
//! ```
//!
//! Decisions follow Algorithm 1 exactly (hit / merge / insert, then
//! LRU eviction down to the logical byte limit). Logical bytes — the
//! repository package sizes — drive all policy decisions; physical
//! bytes on disk are scaled down by the file-tree config so a laptop
//! can host a "terabyte" cache.
//!
//! ## Crash safety: WAL + checkpoints
//!
//! Earlier revisions rewrote the whole index (`state.json`) after
//! every submit — O(cache size) bytes per operation. The index is now
//! **log-structured**:
//!
//! * Every submit appends one checksummed record to `wal.log`
//!   (`landlord-wal` framing: length-prefix, sequence number, CRC-32)
//!   and fsyncs it. The fsynced append *is* the acknowledgement.
//! * Every `checkpoint_every` records, the folded state is written to
//!   `state.json` (checksummed `LLSTATE1` header, fsynced temp file,
//!   atomic rename, fsynced directory — the same idiom as before) with
//!   an `applied_seq` watermark, and the log is truncated.
//! * [`PersistentCache::open`] recovers by loading the newest valid
//!   checkpoint and replaying the log suffix past `applied_seq`. A
//!   torn log tail (crash mid-append) is quarantined and stripped; a
//!   sequence gap inside valid records is unrecoverable corruption and
//!   errors out rather than guessing.
//!
//! Image and object writes land — durably — *before* the record that
//! references them, so recovery restores exactly a prefix of the
//! acknowledged operations: the checkpoint, plus the replayable log
//! suffix, plus at most one fully-written-but-unacknowledged record.
//! Whatever a crash left beyond that (a stale `state.json.tmp`,
//! truncated or unindexed `.llimg` files, leftover object temp files,
//! a torn log tail) is quarantined or swept, restoring the invariants
//! [`PersistentCache::check_invariants`] demands.
//!
//! Every durability step consults a [`KillSwitch`], so the crash
//! matrix in `tests/failure_injection.rs` can deterministically kill
//! the process model at each point a real crash could land.
//!
//! ## Membership filter
//!
//! The hit scan is gated by an [`XorFilter`] over every package id
//! live in the cache (≈10 bits per key, fixed ≈0.39% false-positive
//! rate at millions of packages), rebuilt at each checkpoint with an
//! exact overlay for ids added since. A filter miss proves no cached
//! image can satisfy the spec, skipping the O(images) subset scan.

use landlord_core::cache::{make_evictor, plan_over_with_peek, CacheConfig, Evictor, PlannedOp};
use landlord_core::conflict::NoConflicts;
use landlord_core::filter::XorFilter;
use landlord_core::image::{Image, ImageId};
use landlord_core::policy::{DistanceMetric, EvictionPolicy, MergeOrder};
use landlord_core::spec::Spec;
use landlord_obs::{Counter, MetricsRegistry};
use landlord_repo::Repository;
use landlord_shrinkwrap::filetree::FileTreeConfig;
use landlord_shrinkwrap::{ImageReader, Shrinkwrap};
use landlord_store::fault::{FaultMode, FaultyStore};
use landlord_store::{ContentHash, DiskStore, KillPoint, KillSwitch};
use landlord_wal::Wal;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use std::io;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// One image in the persistent index.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StoredImage {
    /// Stable id (also the image file name).
    pub id: u64,
    /// Capability specification.
    pub spec: Spec,
    /// Logical bytes (policy accounting).
    pub logical_bytes: u64,
    /// Physical bytes of the LLIMG file.
    pub physical_bytes: u64,
    /// LRU clock of last use.
    pub last_used: u64,
    /// Submits this image has served (1 at build; merges carry the
    /// absorbed image's count forward). Feeds the frequency-aware
    /// eviction policies. Absent in states written before the
    /// eviction-policy upgrade — those deserialize to 0 and are
    /// treated as once-used.
    #[serde(default)]
    pub use_count: u64,
}

/// The checkpointed cache state.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
struct State {
    next_id: u64,
    clock: u64,
    /// WAL records below this sequence number are folded into this
    /// checkpoint; replay starts here. Absent (0) in states written
    /// before the log-structured format.
    #[serde(default)]
    applied_seq: u64,
    images: Vec<StoredImage>,
}

/// One logged operation: everything replay needs to reproduce the
/// submit's effect without re-planning.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct WalEntry {
    /// The LRU clock after this operation.
    clock: u64,
    /// The id counter after this operation.
    next_id: u64,
    op: WalOp,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
enum WalOp {
    /// A hit: bump `last_used` of an existing image to `clock`.
    Touch {
        /// The satisfying image.
        id: u64,
    },
    /// A merge: the union image was built under a fresh id; the
    /// absorbed image and any LRU victims go.
    Merge {
        /// The new union image (file already durable).
        image: StoredImage,
        /// The image the spec was merged into (its file is deleted).
        absorbed: u64,
        /// LRU victims evicted to restore the byte limit.
        evict: Vec<u64>,
    },
    /// A fresh image insert plus any LRU victims.
    Insert {
        /// The new image (file already durable).
        image: StoredImage,
        /// LRU victims evicted to restore the byte limit.
        evict: Vec<u64>,
    },
}

/// What `submit` did for a job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Decision {
    /// An existing image satisfied the spec.
    Hit {
        /// Path to the image to launch with.
        image: PathBuf,
    },
    /// A close image was merged and rebuilt (under a fresh id — the
    /// pre-merge image survives on disk until the merge is durable).
    Merged {
        /// Path to the merged image.
        image: PathBuf,
    },
    /// A fresh image was built.
    Inserted {
        /// Path to the new image.
        image: PathBuf,
    },
}

impl Decision {
    /// The image path for the job, whatever the decision was.
    pub fn image_path(&self) -> &Path {
        match self {
            Decision::Hit { image } | Decision::Merged { image } | Decision::Inserted { image } => {
                image
            }
        }
    }
}

/// What the recovery pass in [`PersistentCache::open`] had to clean up.
/// Replaying intact log records is *not* recovery — it is the normal
/// open path — so replay counts are deliberately absent.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// A leftover `state.json.tmp` (crash mid-save) was quarantined.
    pub quarantined_tmp_state: bool,
    /// A torn `wal.log` tail (crash mid-append or mid-truncate) was
    /// quarantined and stripped.
    pub quarantined_wal_tail: bool,
    /// Index entries dropped because their image file was missing.
    pub dropped_missing_images: usize,
    /// Image files quarantined: truncated (size mismatch vs the index)
    /// or present on disk but absent from the index (crash between an
    /// image write and the record that would have indexed it).
    pub quarantined_images: usize,
    /// Leftover object-store temp files removed.
    pub removed_object_tmps: usize,
    /// `next_id` / `clock` had to be bumped past recovered entries.
    pub counters_bumped: bool,
}

impl RecoveryReport {
    /// True when open found nothing to repair.
    pub fn clean(&self) -> bool {
        *self == RecoveryReport::default()
    }
}

/// What [`PersistentCache::repair`] did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RepairReport {
    /// Images that failed a deep LLIMG parse and were quarantined.
    pub quarantined_images: usize,
    /// Orphaned objects pruned (only when a repository was supplied).
    pub pruned_objects: usize,
    /// Bytes freed by the prune.
    pub pruned_bytes: u64,
}

/// Header tag of a checksummed state file. The line is
/// `LLSTATE1 <32-hex-content-hash-of-payload>\n` followed by the JSON
/// payload the hash covers.
const STATE_MAGIC: &[u8] = b"LLSTATE1 ";

/// Default checkpoint cadence: WAL records accumulated before the
/// state is folded and the log truncated.
pub const DEFAULT_CHECKPOINT_EVERY: u64 = 64;

fn invalid_state(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Parse a state file, verifying the checksum header when present.
/// Plain `{…` JSON (states written before checksumming) still parses.
fn parse_state(bytes: &[u8]) -> io::Result<State> {
    if let Some(rest) = bytes.strip_prefix(STATE_MAGIC) {
        let nl = rest
            .iter()
            .position(|&b| b == b'\n')
            .ok_or_else(|| invalid_state("state header is missing its newline"))?;
        let hex = std::str::from_utf8(&rest[..nl])
            .map_err(|_| invalid_state("state checksum is not UTF-8"))?;
        let expected = ContentHash::from_hex(hex.trim())
            .ok_or_else(|| invalid_state("state checksum is not a valid hash"))?;
        let payload = &rest[nl + 1..];
        if ContentHash::of(payload) != expected {
            return Err(invalid_state(
                "state checksum mismatch: torn or corrupted write",
            ));
        }
        serde_json::from_slice(payload).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    } else {
        serde_json::from_slice(bytes).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }
}

/// Fsync a directory so a just-renamed entry survives power loss.
#[cfg(unix)]
fn fsync_dir(dir: &Path) -> io::Result<()> {
    std::fs::File::open(dir)?.sync_all()
}

#[cfg(not(unix))]
fn fsync_dir(_dir: &Path) -> io::Result<()> {
    Ok(())
}

/// A unique destination under `<dir>/quarantine/` for `name`: repeated
/// crashes must never overwrite an earlier quarantined artifact.
fn quarantine_dest(dir: &Path, name: &str) -> io::Result<(PathBuf, PathBuf)> {
    let qdir = dir.join("quarantine");
    std::fs::create_dir_all(&qdir)?;
    let mut dest = qdir.join(name);
    let mut n = 1u32;
    while dest.exists() {
        dest = qdir.join(format!("{name}.{n}"));
        n += 1;
    }
    Ok((qdir, dest))
}

/// Move a crash artifact into `<dir>/quarantine/` under a unique name,
/// fsyncing the quarantine directory so the move itself survives a
/// crash during recovery.
fn quarantine(dir: &Path, path: &Path) -> io::Result<()> {
    let name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "unnamed".to_string());
    let (qdir, dest) = quarantine_dest(dir, &name)?;
    std::fs::rename(path, dest)?;
    fsync_dir(&qdir)
}

/// Preserve in-memory crash-artifact bytes (a stripped WAL tail) under
/// `<dir>/quarantine/<name>`, durably and without overwriting earlier
/// artifacts.
fn quarantine_bytes(dir: &Path, name: &str, bytes: &[u8]) -> io::Result<()> {
    let (qdir, dest) = quarantine_dest(dir, name)?;
    let mut f = std::fs::File::create(&dest)?;
    f.write_all(bytes)?;
    f.sync_all()?;
    fsync_dir(&qdir)
}

/// Durably replace `<dir>/state.json` with `state`: checksummed
/// payload, fsynced temp file, atomic rename, fsynced parent
/// directory. A crash at any point leaves either the previous state or
/// this one intact — the kill-points model exactly those crashes.
fn write_state_file(dir: &Path, state: &State, kill: &KillSwitch) -> io::Result<()> {
    let json = serde_json::to_vec_pretty(state)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    let mut bytes = Vec::with_capacity(STATE_MAGIC.len() + 33 + json.len());
    bytes.extend_from_slice(STATE_MAGIC);
    bytes.extend_from_slice(ContentHash::of(&json).to_hex().as_bytes());
    bytes.push(b'\n');
    bytes.extend_from_slice(&json);
    let tmp = dir.join("state.json.tmp");
    {
        let mut f = std::fs::File::create(&tmp)?;
        let split = bytes.len() / 2;
        f.write_all(&bytes[..split])?;
        kill.check(KillPoint::MidCheckpoint)?;
        f.write_all(&bytes[split..])?;
        f.sync_all()?;
    }
    std::fs::rename(tmp, dir.join("state.json"))?;
    kill.check(KillPoint::PostRenamePreDirFsync)?;
    fsync_dir(dir)
}

/// Apply one replayed log entry to `state`, returning the image ids
/// whose files the original submit deleted (the absorbed merge source
/// and LRU victims) — replay must delete them too if the crash landed
/// before the deletions. A reference to a nonexistent image is not a
/// crash shape (records are acked only after their images are durable
/// and indexed) and is reported as corruption.
fn replay_entry(state: &mut State, entry: &WalEntry) -> io::Result<Vec<u64>> {
    let mut deleted = Vec::new();
    match &entry.op {
        WalOp::Touch { id } => {
            let img = state
                .images
                .iter_mut()
                .find(|img| img.id == *id)
                .ok_or_else(|| invalid_state(format!("WAL touch references unknown image {id}")))?;
            img.last_used = entry.clock;
            img.use_count = img.use_count.saturating_add(1);
        }
        WalOp::Merge {
            image,
            absorbed,
            evict,
        } => {
            if !state.images.iter().any(|img| img.id == *absorbed) {
                return Err(invalid_state(format!(
                    "WAL merge absorbs unknown image {absorbed}"
                )));
            }
            state
                .images
                .retain(|img| img.id != *absorbed && !evict.contains(&img.id));
            state.images.push(image.clone());
            deleted.push(*absorbed);
            deleted.extend_from_slice(evict);
        }
        WalOp::Insert { image, evict } => {
            state.images.retain(|img| !evict.contains(&img.id));
            state.images.push(image.clone());
            deleted.extend_from_slice(evict);
        }
    }
    state.clock = entry.clock;
    state.next_id = entry.next_id;
    Ok(deleted)
}

/// Cached metric handles for the durable cache directory (see
/// `landlord-obs`). Counts decisions and the I/O they cause; the
/// backing [`DiskStore`] contributes its own `store.obj_*` counters.
struct PcObs {
    submits: std::sync::Arc<Counter>,
    hits: std::sync::Arc<Counter>,
    merges: std::sync::Arc<Counter>,
    inserts: std::sync::Arc<Counter>,
    images_built: std::sync::Arc<Counter>,
    image_bytes_written: std::sync::Arc<Counter>,
    wal_appends: std::sync::Arc<Counter>,
    checkpoints: std::sync::Arc<Counter>,
    filter_skips: std::sync::Arc<Counter>,
    evicted_images: std::sync::Arc<Counter>,
}

impl PcObs {
    fn new(registry: &MetricsRegistry) -> Self {
        PcObs {
            submits: registry.counter("persist.submits"),
            hits: registry.counter("persist.hits"),
            merges: registry.counter("persist.merges"),
            inserts: registry.counter("persist.inserts"),
            images_built: registry.counter("persist.images_built"),
            image_bytes_written: registry.counter("persist.image_bytes_written"),
            wal_appends: registry.counter("persist.wal_appends"),
            checkpoints: registry.counter("persist.state_saves"),
            filter_skips: registry.counter("persist.filter_skips"),
            evicted_images: registry.counter("persist.evicted_images"),
        }
    }
}

/// Everything [`PersistentCache::open_with`] can be configured with
/// beyond the policy basics: checkpoint cadence, store fault
/// injection, and the kill-point switch for crash tests.
pub struct PersistOptions {
    /// Merge threshold (Jaccard distance), in `[0, 1]`.
    pub alpha: f64,
    /// Logical byte budget driving eviction.
    pub limit_logical_bytes: u64,
    /// Which image to evict when over the byte budget. Any
    /// [`EvictionPolicy`] works: decisions are committed to the WAL,
    /// so replay reproduces them without re-deriving — stateful
    /// policies (S3-FIFO, sampled LHD) keep the recovery contract.
    pub eviction: EvictionPolicy,
    /// Seed for randomized victim selection (sampled LHD); decisions
    /// are a deterministic function of the submit stream and this
    /// seed.
    pub eviction_seed: u64,
    /// Package → file-tree scaling for image materialization.
    pub tree_config: FileTreeConfig,
    /// WAL records accumulated before a checkpoint folds them.
    pub checkpoint_every: u64,
    /// Fault injection for the backing object store.
    pub fault_mode: FaultMode,
    /// Kill-point switch consulted at every durability step.
    pub kill: Arc<KillSwitch>,
}

impl PersistOptions {
    /// Defaults: checkpoint every [`DEFAULT_CHECKPOINT_EVERY`] records,
    /// no store faults, no kill-points.
    pub fn new(alpha: f64, limit_logical_bytes: u64, tree_config: FileTreeConfig) -> Self {
        PersistOptions {
            alpha,
            limit_logical_bytes,
            eviction: EvictionPolicy::Lru,
            eviction_seed: 0,
            tree_config,
            checkpoint_every: DEFAULT_CHECKPOINT_EVERY,
            fault_mode: FaultMode::None,
            kill: Arc::new(KillSwitch::never()),
        }
    }
}

/// A cache directory handle.
pub struct PersistentCache {
    dir: PathBuf,
    alpha: f64,
    limit_logical_bytes: u64,
    eviction: EvictionPolicy,
    eviction_seed: u64,
    tree_config: FileTreeConfig,
    checkpoint_every: u64,
    kill: Arc<KillSwitch>,
    store: FaultyStore<DiskStore>,
    state: State,
    wal: Wal,
    /// Live eviction state over the indexed images, rebuilt
    /// deterministically at open (images fed in id order) and advanced
    /// only by acknowledged operations. Victim decisions made from it
    /// are logged in the WAL's evict lists, so replay never consults
    /// it — byte-identical recovery holds for stateful policies too.
    evictor: Box<dyn Evictor>,
    /// Static membership filter over every package id live at the last
    /// checkpoint, plus the exact overlay of ids added since.
    filter: XorFilter,
    fresh_packages: HashSet<u64>,
    recovery: RecoveryReport,
    obs: Option<PcObs>,
}

impl PersistentCache {
    /// Open (or initialize) a cache directory with default options —
    /// see [`PersistentCache::open_with`] for the recovery contract.
    pub fn open(
        dir: &Path,
        alpha: f64,
        limit_logical_bytes: u64,
        tree_config: FileTreeConfig,
    ) -> io::Result<Self> {
        Self::open_with(
            dir,
            PersistOptions::new(alpha, limit_logical_bytes, tree_config),
        )
    }

    /// Open (or initialize) a cache directory, recovering to exactly a
    /// prefix of the acknowledged operations:
    ///
    /// 1. quarantine a leftover `state.json.tmp`;
    /// 2. load the checkpoint (checksummed; corruption is an error,
    ///    never a panic — the operator decides whether to discard it);
    /// 3. open the WAL, quarantining and stripping a torn tail;
    /// 4. replay records past the checkpoint's `applied_seq` (a
    ///    sequence gap is unrecoverable corruption);
    /// 5. drop index entries whose image file is missing or truncated,
    ///    quarantine unindexed image files, sweep leftover object temp
    ///    files, and re-bump the id/clock counters;
    /// 6. if anything needed repair, checkpoint the repaired state.
    pub fn open_with(dir: &Path, options: PersistOptions) -> io::Result<Self> {
        let PersistOptions {
            alpha,
            limit_logical_bytes,
            eviction,
            eviction_seed,
            tree_config,
            checkpoint_every,
            fault_mode,
            kill,
        } = options;
        assert!((0.0..=1.0).contains(&alpha), "alpha must be in [0,1]");
        assert!(checkpoint_every >= 1, "checkpoint cadence must be >= 1");
        std::fs::create_dir_all(dir.join("images"))?;
        let store = FaultyStore::new(DiskStore::open(&dir.join("objects"))?, fault_mode);
        let mut recovery = RecoveryReport::default();

        // A leftover temp state means a crash mid-checkpoint; the
        // durable state.json still holds the previous consistent save.
        let tmp_state = dir.join("state.json.tmp");
        if tmp_state.exists() {
            quarantine(dir, &tmp_state)?;
            recovery.quarantined_tmp_state = true;
        }

        let state_path = dir.join("state.json");
        let had_state = state_path.exists();
        let mut state = if had_state {
            parse_state(&std::fs::read(&state_path)?)?
        } else {
            State::default()
        };

        // Open the log, stripping (and preserving) whatever a crash
        // tore off the end.
        let opened = Wal::open(&dir.join("wal.log"), Arc::clone(&kill))?;
        let mut wal = opened.wal;
        if !opened.torn_tail.is_empty() {
            quarantine_bytes(dir, "wal.tail", &opened.torn_tail)?;
            recovery.quarantined_wal_tail = true;
        }

        // Replay the suffix past the checkpoint. Records the checkpoint
        // already folded are skipped; a log that *starts* past the
        // watermark is missing acknowledged operations — unrecoverable.
        if let Some(first) = opened.records.first() {
            if first.seq > state.applied_seq {
                return Err(invalid_state(format!(
                    "WAL starts at sequence {} but the checkpoint covers only up to {}: \
                     acknowledged records are missing",
                    first.seq, state.applied_seq
                )));
            }
        }
        for record in &opened.records {
            if record.seq < state.applied_seq {
                continue;
            }
            let entry: WalEntry = serde_json::from_slice(&record.payload)
                .map_err(|e| invalid_state(format!("WAL record {} is corrupt: {e}", record.seq)))?;
            // Files the original submit deleted after the ack: finish
            // the deletion if the crash landed in between. Silent —
            // this is replay, not damage.
            for id in replay_entry(&mut state, &entry)? {
                let path = dir.join("images").join(format!("{id}.llimg"));
                if path.exists() {
                    std::fs::remove_file(&path)?;
                }
            }
        }
        // A fully stale log (checkpoint newer than every record —
        // a crash between checkpoint rename and log truncation) is
        // compacted now, so new appends continue past the watermark.
        if state.applied_seq > wal.next_seq() {
            wal.truncate_for_compaction()?;
            wal.set_next_seq(state.applied_seq)?;
        }

        // Drop entries whose image file a crash lost or truncated.
        // Truncation is detectable because the index records the exact
        // physical size of every complete image.
        let mut kept = Vec::with_capacity(state.images.len());
        for img in std::mem::take(&mut state.images) {
            let path = dir.join("images").join(format!("{}.llimg", img.id));
            match std::fs::metadata(&path) {
                Ok(m) if m.len() == img.physical_bytes => kept.push(img),
                Ok(_) => {
                    quarantine(dir, &path)?;
                    recovery.quarantined_images += 1;
                    recovery.dropped_missing_images += 1;
                }
                Err(_) => recovery.dropped_missing_images += 1,
            }
        }
        state.images = kept;

        // Image files the index does not know about: a crash between an
        // image write and the WAL record that would have indexed it.
        let indexed: HashSet<u64> = state.images.iter().map(|img| img.id).collect();
        for entry in std::fs::read_dir(dir.join("images"))? {
            let path = entry?.path();
            let known = path
                .file_name()
                .and_then(|n| n.to_str())
                .and_then(|n| n.strip_suffix(".llimg"))
                .and_then(|stem| stem.parse::<u64>().ok())
                .is_some_and(|id| indexed.contains(&id));
            if !known {
                quarantine(dir, &path)?;
                recovery.quarantined_images += 1;
            }
        }

        // Leftover object temp files from a crashed put. The store
        // index never reads them, so deleting is safe.
        for fanout in std::fs::read_dir(dir.join("objects"))? {
            let fanout = fanout?.path();
            if !fanout.is_dir() {
                continue;
            }
            for obj in std::fs::read_dir(&fanout)? {
                let path = obj?.path();
                let is_tmp = path
                    .extension()
                    .and_then(|e| e.to_str())
                    .is_some_and(|e| e.starts_with("tmp"));
                if is_tmp {
                    std::fs::remove_file(&path)?;
                    recovery.removed_object_tmps += 1;
                }
            }
        }

        // Counters must stay ahead of every surviving entry.
        let max_id = state.images.iter().map(|img| img.id).max();
        if let Some(max_id) = max_id {
            if state.next_id <= max_id {
                state.next_id = max_id + 1;
                recovery.counters_bumped = true;
            }
        }
        let max_used = state.images.iter().map(|img| img.last_used).max();
        if let Some(max_used) = max_used {
            if state.clock < max_used {
                state.clock = max_used;
                recovery.counters_bumped = true;
            }
        }

        let filter = build_filter(&state);
        let evictor = rebuild_evictor(eviction, eviction_seed, limit_logical_bytes, &state);
        let mut cache = PersistentCache {
            dir: dir.to_path_buf(),
            alpha,
            limit_logical_bytes,
            eviction,
            eviction_seed,
            tree_config,
            checkpoint_every,
            kill,
            store,
            state,
            wal,
            evictor,
            filter,
            fresh_packages: HashSet::new(),
            recovery,
            obs: None,
        };
        // A brand-new directory gets its initial (empty) checkpoint so
        // `state.json` always exists; a repaired directory gets its
        // repairs folded and the stale log compacted away.
        if !had_state || !cache.recovery.clean() {
            cache.checkpoint()?;
        }
        Ok(cache)
    }

    /// What recovery had to clean up when this handle was opened.
    pub fn last_recovery(&self) -> RecoveryReport {
        self.recovery
    }

    /// Register `persist.*` counters (decisions, image builds, WAL
    /// appends, checkpoints, evictions) and the backing store's
    /// `store.obj_*` I/O counters in `registry`. Subsequent operations
    /// record into it.
    pub fn attach_metrics(&mut self, registry: &MetricsRegistry) {
        self.obs = Some(PcObs::new(registry));
        self.store.inner_mut().attach_metrics(registry);
    }

    /// Check the durable-state invariants; an `Err` means the directory
    /// is corrupted in a way recovery should have fixed.
    pub fn check_invariants(&self) -> io::Result<()> {
        let mut ids = HashSet::new();
        for img in &self.state.images {
            if !ids.insert(img.id) {
                return Err(invalid_state(format!("duplicate image id {}", img.id)));
            }
            if img.id >= self.state.next_id {
                return Err(invalid_state(format!(
                    "image id {} >= next_id {}",
                    img.id, self.state.next_id
                )));
            }
            if img.last_used > self.state.clock {
                return Err(invalid_state(format!(
                    "image {} last_used {} is ahead of clock {}",
                    img.id, img.last_used, self.state.clock
                )));
            }
            let path = self.image_path(img.id);
            let len = std::fs::metadata(&path)
                .map_err(|_| invalid_state(format!("image file missing: {}", path.display())))?
                .len();
            if len != img.physical_bytes {
                return Err(invalid_state(format!(
                    "image {} is {} bytes on disk, index says {}",
                    img.id, len, img.physical_bytes
                )));
            }
            // The membership filter must never produce a false miss.
            for p in img.spec.iter() {
                let key = u64::from(p.0);
                if !self.filter.contains(key) && !self.fresh_packages.contains(&key) {
                    return Err(invalid_state(format!(
                        "membership filter misses live package {key} of image {}",
                        img.id
                    )));
                }
            }
        }
        // The live eviction state must track exactly the indexed
        // images — a drifted evictor would eventually select victims
        // the index does not know.
        if self.evictor.len() != self.state.images.len() {
            return Err(invalid_state(format!(
                "evictor tracks {} images, index holds {}",
                self.evictor.len(),
                self.state.images.len()
            )));
        }
        Ok(())
    }

    /// Deep repair: re-parse every image file and quarantine the ones
    /// whose LLIMG payload is corrupt (recovery only checks sizes);
    /// with a repository, also prune objects no surviving image
    /// references.
    pub fn repair(&mut self, repo: Option<&Repository>) -> io::Result<RepairReport> {
        let mut report = RepairReport::default();
        let mut kept = Vec::with_capacity(self.state.images.len());
        for img in std::mem::take(&mut self.state.images) {
            let path = self.image_path(img.id);
            let parses = match std::fs::File::open(&path) {
                Ok(f) => ImageReader::parse(f).is_ok(),
                Err(_) => false,
            };
            if parses {
                kept.push(img);
            } else {
                quarantine(&self.dir, &path)?;
                report.quarantined_images += 1;
            }
        }
        self.state.images = kept;
        if report.quarantined_images > 0 {
            // The eviction state tracked the quarantined images; rebuild
            // it from the surviving index, exactly as a fresh open would.
            self.evictor = rebuild_evictor(
                self.eviction,
                self.eviction_seed,
                self.limit_logical_bytes,
                &self.state,
            );
        }
        if let Some(repo) = repo {
            let (count, bytes) = self.prune(repo)?;
            report.pruned_objects = count;
            report.pruned_bytes = bytes;
        }
        if report.quarantined_images > 0 {
            self.checkpoint()?;
        }
        Ok(report)
    }

    /// Images currently cached.
    pub fn images(&self) -> &[StoredImage] {
        &self.state.images
    }

    /// Total logical bytes cached.
    pub fn total_logical_bytes(&self) -> u64 {
        self.state.images.iter().map(|i| i.logical_bytes).sum()
    }

    /// The content-addressed object store backing the images.
    pub fn store(&self) -> &DiskStore {
        self.store.inner()
    }

    /// A deterministic JSON report of the logical cache state (images
    /// sorted by id). Two caches that applied the same operations —
    /// one crash-free, one recovered — render byte-identical reports.
    pub fn state_report_json(&self) -> String {
        // Owned, non-generic: the vendored serde derive shim does not
        // handle lifetime parameters.
        #[derive(Serialize)]
        struct Report {
            next_id: u64,
            clock: u64,
            images: Vec<StoredImage>,
        }
        let mut images: Vec<StoredImage> = self.state.images.to_vec();
        images.sort_by_key(|img| img.id);
        let report = Report {
            next_id: self.state.next_id,
            clock: self.state.clock,
            images,
        };
        serde_json::to_string_pretty(&report).unwrap_or_else(|e| format!("{{\"error\":\"{e}\"}}"))
    }

    fn image_path(&self, id: u64) -> PathBuf {
        self.dir.join("images").join(format!("{id}.llimg"))
    }

    /// Could any cached image possibly satisfy `spec`? `false` is a
    /// proof of a miss (the filter has no false negatives over live
    /// packages); `true` means the subset scan must run.
    fn superset_possible(&self, spec: &Spec) -> bool {
        spec.iter().all(|p| {
            let key = u64::from(p.0);
            self.filter.contains(key) || self.fresh_packages.contains(&key)
        })
    }

    /// Append one entry to the WAL and fsync it — the durability
    /// acknowledgement for the operation it describes.
    fn append_entry(&mut self, entry: &WalEntry) -> io::Result<u64> {
        let payload =
            serde_json::to_vec(entry).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        let seq = self.wal.append(&payload)?;
        if let Some(obs) = &self.obs {
            obs.wal_appends.inc();
        }
        Ok(seq)
    }

    /// Fold the current state into `state.json` and truncate the log.
    /// Also rebuilds the membership filter (the overlay set resets).
    fn checkpoint(&mut self) -> io::Result<()> {
        self.state.applied_seq = self.wal.next_seq();
        write_state_file(&self.dir, &self.state, &self.kill)?;
        self.wal.truncate_for_compaction()?;
        self.filter = build_filter(&self.state);
        self.fresh_packages.clear();
        if let Some(obs) = &self.obs {
            obs.checkpoints.inc();
        }
        Ok(())
    }

    fn maybe_checkpoint(&mut self) -> io::Result<()> {
        if self.wal.next_seq() - self.state.applied_seq >= self.checkpoint_every {
            self.checkpoint()?;
        }
        Ok(())
    }

    /// The victims that restoring the byte limit would evict once
    /// `incoming` lands (and `absorbed`, if any, is gone), decided by
    /// the configured [`EvictionPolicy`]. Selection runs on a *clone*
    /// of the live eviction state ([`Evictor::clone_box`]) that the
    /// caller installs only after the WAL acknowledges the operation —
    /// a failed or killed submit never disturbs the live state. The
    /// victim list is logged, so replay reproduces the decision without
    /// re-deriving it.
    fn plan_evictions(
        &self,
        incoming: &StoredImage,
        absorbed: Option<u64>,
    ) -> (Vec<u64>, Box<dyn Evictor>) {
        let mut evictor = self.evictor.clone_box();
        let mut live: std::collections::HashMap<u64, &StoredImage> =
            self.state.images.iter().map(|img| (img.id, img)).collect();
        let mut total: u64 = self.state.images.iter().map(|img| img.logical_bytes).sum();
        if let Some(absorbed) = absorbed {
            if let Some(img) = live.remove(&absorbed) {
                evictor.on_remove(&transient_image(img));
                total -= img.logical_bytes;
            }
        }
        evictor.on_insert(&transient_image(incoming));
        total += incoming.logical_bytes;

        let mut evict = Vec::new();
        let protect = ImageId(incoming.id);
        while total > self.limit_logical_bytes {
            let Some(victim) = evictor.select_victim(Some(protect)) else {
                break;
            };
            let Some(img) = live.remove(&victim.0) else {
                break;
            };
            let gone = transient_image(img);
            evictor.note_eviction(&gone);
            evictor.on_remove(&gone);
            total -= img.logical_bytes;
            evict.push(victim.0);
        }
        (evict, evictor)
    }

    /// Remove evicted image files (after the record evicting them is
    /// durable).
    fn delete_image_files(&self, ids: &[u64]) -> io::Result<()> {
        for &id in ids {
            let path = self.image_path(id);
            if path.exists() {
                std::fs::remove_file(path)?;
            }
            if let Some(obs) = &self.obs {
                obs.evicted_images.inc();
            }
        }
        Ok(())
    }

    fn build_image(&self, repo: &Repository, id: u64, spec: &Spec) -> io::Result<StoredImage> {
        let sw = Shrinkwrap::new(repo, &self.store, self.tree_config);
        let path = self.image_path(id);
        let report = sw.build_to_path(spec, &path)?;
        // The image must be durable before any record that references
        // it is; recovery treats a size mismatch as a torn write.
        let f = std::fs::File::open(&path)?;
        f.sync_all()?;
        let physical_bytes = f.metadata()?.len();
        if let Some(obs) = &self.obs {
            obs.images_built.inc();
            obs.image_bytes_written.add(physical_bytes);
        }
        Ok(StoredImage {
            id,
            spec: spec.clone(),
            logical_bytes: report.logical_bytes,
            physical_bytes,
            last_used: 0,
            use_count: 1,
        })
    }

    /// Note a spec's packages as live for the membership filter.
    fn note_packages(&mut self, spec: &Spec) {
        for p in spec.iter() {
            let key = u64::from(p.0);
            if !self.filter.contains(key) {
                self.fresh_packages.insert(key);
            }
        }
    }

    /// Process one job specification (Algorithm 1), materializing
    /// images on disk as needed. The spec must already include its
    /// dependency closure.
    ///
    /// The hit / merge / insert decision comes from the same planner
    /// the in-memory engine uses ([`plan_over_with_peek`], the paper's
    /// configuration: nearest-first candidates, package-count Jaccard,
    /// CVMFS semantics so nothing conflicts); this store only executes
    /// it against disk. The membership filter gates the hit scan.
    ///
    /// Durability order, per decision: image file first (fsynced), WAL
    /// record second (the fsynced append is the acknowledgement),
    /// evicted files deleted last. A crash anywhere leaves a state
    /// [`PersistentCache::open`] restores to a prefix of acknowledged
    /// submits.
    pub fn submit(&mut self, repo: &Repository, spec: &Spec) -> io::Result<Decision> {
        if let Some(obs) = &self.obs {
            obs.submits.inc();
        }
        let now = self.state.clock + 1;

        let superset_possible = self.superset_possible(spec);
        if let Some(obs) = &self.obs {
            if !superset_possible {
                obs.filter_skips.inc();
            }
        }
        let entries: Vec<(u64, &Spec, u64)> = self
            .state
            .images
            .iter()
            .map(|img| (img.id, &img.spec, img.logical_bytes))
            .collect();
        let sizes = repo.size_table();
        let op = plan_over_with_peek(
            &entries,
            spec,
            self.alpha,
            MergeOrder::NearestFirst,
            DistanceMetric::PackageCount,
            &sizes,
            &NoConflicts,
            superset_possible,
        );
        drop(entries);

        match op {
            PlannedOp::Hit { image } => {
                let entry = WalEntry {
                    clock: now,
                    next_id: self.state.next_id,
                    op: WalOp::Touch { id: image.0 },
                };
                self.append_entry(&entry)?; // ← acknowledgement
                self.state.clock = now;
                let img = self
                    .state
                    .images
                    .iter_mut()
                    .find(|img| img.id == image.0)
                    .expect("planned hit image is indexed");
                img.last_used = now;
                img.use_count = img.use_count.saturating_add(1);
                let touched = transient_image(img);
                self.evictor.on_touch(&touched);
                self.note_packages(spec);
                self.maybe_checkpoint()?;
                if let Some(obs) = &self.obs {
                    obs.hits.inc();
                }
                Ok(Decision::Hit {
                    image: self.image_path(image.0),
                })
            }
            PlannedOp::Merge { image, .. } => {
                let old = self
                    .state
                    .images
                    .iter()
                    .find(|img| img.id == image.0)
                    .expect("planned merge image is indexed")
                    .clone();
                let merged_spec = old.spec.union(spec);
                // The union is built under a *fresh* id: the pre-merge
                // image stays intact on disk until the merge record is
                // acknowledged, so an unacknowledged merge loses
                // nothing (the orphaned build is quarantined on open).
                let new_id = self.state.next_id;
                let mut built = self.build_image(repo, new_id, &merged_spec)?;
                built.last_used = now;
                // Engine merge semantics: the union inherits the
                // absorbed image's use count, plus this request.
                built.use_count = old.use_count.saturating_add(1);
                let (victims, evictor) = self.plan_evictions(&built, Some(old.id));
                let mut evict = vec![old.id];
                evict.extend(victims.iter().copied());
                let entry = WalEntry {
                    clock: now,
                    next_id: new_id + 1,
                    op: WalOp::Merge {
                        image: built.clone(),
                        absorbed: old.id,
                        evict: victims,
                    },
                };
                self.append_entry(&entry)?; // ← acknowledgement
                self.evictor = evictor;
                self.state.clock = now;
                self.state.next_id = new_id + 1;
                self.state.images.retain(|img| !evict.contains(&img.id));
                self.state.images.push(built);
                self.delete_image_files(&evict)?;
                self.note_packages(spec);
                self.maybe_checkpoint()?;
                if let Some(obs) = &self.obs {
                    obs.merges.inc();
                }
                Ok(Decision::Merged {
                    image: self.image_path(new_id),
                })
            }
            PlannedOp::Insert => {
                let id = self.state.next_id;
                let mut built = self.build_image(repo, id, spec)?;
                built.last_used = now;
                let (evict, evictor) = self.plan_evictions(&built, None);
                let entry = WalEntry {
                    clock: now,
                    next_id: id + 1,
                    op: WalOp::Insert {
                        image: built.clone(),
                        evict: evict.clone(),
                    },
                };
                self.append_entry(&entry)?; // ← acknowledgement
                self.evictor = evictor;
                self.state.clock = now;
                self.state.next_id = id + 1;
                self.state.images.retain(|img| !evict.contains(&img.id));
                self.state.images.push(built);
                self.delete_image_files(&evict)?;
                self.note_packages(spec);
                self.maybe_checkpoint()?;
                if let Some(obs) = &self.obs {
                    obs.inserts.inc();
                }
                Ok(Decision::Inserted {
                    image: self.image_path(id),
                })
            }
        }
    }
}

/// The engine-side view of a stored image, for feeding evictor
/// lifecycle events. Logical bytes play the role of the engine's image
/// bytes; a legacy index without use counts reads as once-used.
fn transient_image(img: &StoredImage) -> Image {
    let mut t = Image::new(
        ImageId(img.id),
        img.spec.clone(),
        img.logical_bytes,
        img.last_used,
    );
    t.use_count = img.use_count.max(1);
    t
}

/// Rebuild the in-memory eviction state from a recovered index: every
/// surviving image is replayed into a fresh evictor in id order.
/// Deterministic, so two opens of the same directory agree on future
/// victims; past decisions never depend on it (replay reads the evict
/// lists the WAL recorded).
fn rebuild_evictor(
    eviction: EvictionPolicy,
    eviction_seed: u64,
    limit_logical_bytes: u64,
    state: &State,
) -> Box<dyn Evictor> {
    let config = CacheConfig {
        eviction,
        eviction_seed,
        limit_bytes: limit_logical_bytes,
        ..CacheConfig::default()
    };
    let mut evictor = make_evictor(&config);
    let mut images: Vec<&StoredImage> = state.images.iter().collect();
    images.sort_by_key(|img| img.id);
    for img in images {
        evictor.on_insert(&transient_image(img));
    }
    evictor
}

/// Build the membership filter over every package id live in `state`.
fn build_filter(state: &State) -> XorFilter {
    let mut keys: Vec<u64> = Vec::new();
    for img in &state.images {
        keys.extend(img.spec.iter().map(|p| u64::from(p.0)));
    }
    XorFilter::build(&keys)
}

/// Garbage collection over a cache directory's object store.
///
/// Image evictions delete the `.llimg` files but leave their source
/// objects behind (another live image may share them). These methods
/// find — and optionally delete — objects no live image references.
impl PersistentCache {
    /// Hashes of every object referenced by the live images, recomputed
    /// deterministically from their specs and the tree config.
    fn live_hashes(
        &self,
        repo: &Repository,
    ) -> std::collections::HashSet<landlord_store::ContentHash> {
        use landlord_shrinkwrap::filetree;
        let mut live = std::collections::HashSet::new();
        for img in &self.state.images {
            for pkg in img.spec.iter() {
                for file in filetree::package_tree(repo.meta(pkg), &self.tree_config) {
                    live.insert(landlord_store::ContentHash::of(&filetree::file_contents(
                        &file,
                    )));
                }
            }
        }
        live
    }

    /// Objects in the store that no live image references.
    pub fn orphaned_objects(&self, repo: &Repository) -> Vec<landlord_store::ContentHash> {
        use landlord_store::ObjectStore;
        let live = self.live_hashes(repo);
        self.store()
            .hashes()
            .into_iter()
            .filter(|h| !live.contains(h))
            .collect()
    }

    /// Delete every orphaned object; returns `(objects, bytes)` freed.
    pub fn prune(&self, repo: &Repository) -> io::Result<(usize, u64)> {
        let orphans = self.orphaned_objects(repo);
        let mut freed = 0u64;
        for &hash in &orphans {
            freed += self.store().remove(hash)?;
        }
        Ok((orphans.len(), freed))
    }
}

/// Synthetic-state measurement support for `landlord bench-persist`.
/// Not part of the public API.
#[doc(hidden)]
pub mod bench {
    use super::*;
    use landlord_core::spec::PackageId;
    use std::time::Instant;

    /// One measured comparison at a given cache population.
    #[derive(Debug, Clone, Copy)]
    pub struct PersistSample {
        /// Images in the synthetic index.
        pub images: u64,
        /// Full-rewrite (pre-WAL) persistence cost per operation.
        pub rewrite_ns_per_op: u64,
        /// WAL append persistence cost per operation.
        pub wal_append_ns_per_op: u64,
        /// rewrite ÷ append.
        pub speedup: f64,
        /// Checkpoint-load plus log-suffix-replay time on open.
        pub open_replay_ns: u64,
        /// Records replayed during the measured open.
        pub replayed_records: u64,
    }

    fn synthetic_state(images: u64) -> State {
        let mut state = State {
            next_id: images,
            clock: images,
            ..State::default()
        };
        for id in 0..images {
            let base = (id as u32).wrapping_mul(4);
            state.images.push(StoredImage {
                id,
                spec: Spec::from_ids([base, base + 1, base + 2, base + 3].map(PackageId)),
                logical_bytes: 4096,
                physical_bytes: 4096,
                last_used: id,
                use_count: 1,
            });
        }
        state
    }

    /// Measure, in `dir` (created, left populated for inspection):
    /// the old rewrite-the-world save, the WAL append, and the
    /// checkpoint-plus-replay open path, on a synthetic index of
    /// `images` images with `replay_records` log records pending.
    pub fn measure(
        dir: &Path,
        images: u64,
        rewrite_ops: u64,
        append_ops: u64,
        replay_records: u64,
    ) -> io::Result<PersistSample> {
        std::fs::create_dir_all(dir)?;
        let kill = KillSwitch::never();
        let mut state = synthetic_state(images);

        // Old persistence model: every operation rewrites the index.
        let start = Instant::now();
        for i in 0..rewrite_ops {
            // Touch something so the serializer cannot be elided.
            state.clock = images + i;
            write_state_file(dir, &state, &kill)?;
        }
        let rewrite_ns_per_op =
            (start.elapsed().as_nanos() / u128::from(rewrite_ops.max(1))) as u64;

        // New persistence model: every operation appends one record.
        let wal_path = dir.join("bench-wal.log");
        let mut wal = Wal::open(&wal_path, Arc::new(KillSwitch::never()))?.wal;
        let start = Instant::now();
        for i in 0..append_ops {
            let entry = WalEntry {
                clock: images + i,
                next_id: images,
                op: WalOp::Touch {
                    id: i % images.max(1),
                },
            };
            let payload = serde_json::to_vec(&entry)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
            wal.append(&payload)?;
        }
        let wal_append_ns_per_op =
            (start.elapsed().as_nanos() / u128::from(append_ops.max(1))) as u64;

        // Open path: parse the checkpoint, scan the log, replay the
        // suffix. Measured on a log trimmed to `replay_records`.
        wal.truncate_for_compaction()?;
        for i in 0..replay_records {
            let entry = WalEntry {
                clock: images + i,
                next_id: images,
                op: WalOp::Touch {
                    id: i % images.max(1),
                },
            };
            let payload = serde_json::to_vec(&entry)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
            wal.append(&payload)?;
        }
        drop(wal);
        let start = Instant::now();
        let mut loaded = parse_state(&std::fs::read(dir.join("state.json"))?)?;
        let opened = Wal::open(&wal_path, Arc::new(KillSwitch::never()))?;
        let mut replayed = 0u64;
        for record in &opened.records {
            let entry: WalEntry = serde_json::from_slice(&record.payload)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
            replay_entry(&mut loaded, &entry)?;
            replayed += 1;
        }
        let open_replay_ns = start.elapsed().as_nanos() as u64;
        assert_eq!(loaded.images.len() as u64, images);

        Ok(PersistSample {
            images,
            rewrite_ns_per_op,
            wal_append_ns_per_op,
            speedup: rewrite_ns_per_op as f64 / wal_append_ns_per_op.max(1) as f64,
            open_replay_ns,
            replayed_records: replayed,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use landlord_core::spec::PackageId;
    use landlord_repo::RepoConfig;
    use landlord_shrinkwrap::ImageReader;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "landlord-pc-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    fn repo() -> Repository {
        Repository::generate(&RepoConfig::small_for_tests(61))
    }

    #[test]
    fn insert_hit_merge_cycle() {
        let dir = temp_dir("cycle");
        let r = repo();
        let mut cache =
            PersistentCache::open(&dir, 0.9, u64::MAX, FileTreeConfig::miniature()).unwrap();

        let a = r.closure_spec(&[PackageId(r.package_count() as u32 - 1)]);
        let d1 = cache.submit(&r, &a).unwrap();
        assert!(matches!(d1, Decision::Inserted { .. }));
        assert!(d1.image_path().exists());

        let d2 = cache.submit(&r, &a).unwrap();
        assert!(matches!(d2, Decision::Hit { .. }));

        // A near spec merges: the same closure plus one more seed.
        let b = r.closure_spec(&[
            PackageId(r.package_count() as u32 - 1),
            PackageId(r.package_count() as u32 - 2),
        ]);
        let d3 = cache.submit(&r, &b).unwrap();
        assert!(matches!(d3, Decision::Merged { .. }), "got {d3:?}");
        assert_eq!(cache.images().len(), 1);
        assert!(
            !d1.image_path().exists(),
            "absorbed image file is deleted after the merge is durable"
        );

        // The merged image file is a valid LLIMG covering the union.
        let img = ImageReader::parse(std::fs::File::open(d3.image_path()).unwrap()).unwrap();
        assert!(!img.is_empty());

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn attached_metrics_count_decisions_and_io() {
        use landlord_obs::LogicalClock;
        use std::sync::Arc;

        let dir = temp_dir("metrics");
        let r = repo();
        let registry = MetricsRegistry::new(Arc::new(LogicalClock::new()));
        let mut cache =
            PersistentCache::open(&dir, 0.9, u64::MAX, FileTreeConfig::miniature()).unwrap();
        cache.attach_metrics(&registry);

        let a = r.closure_spec(&[PackageId(r.package_count() as u32 - 1)]);
        assert!(matches!(
            cache.submit(&r, &a).unwrap(),
            Decision::Inserted { .. }
        ));
        assert!(matches!(
            cache.submit(&r, &a).unwrap(),
            Decision::Hit { .. }
        ));
        let b = r.closure_spec(&[
            PackageId(r.package_count() as u32 - 1),
            PackageId(r.package_count() as u32 - 2),
        ]);
        assert!(matches!(
            cache.submit(&r, &b).unwrap(),
            Decision::Merged { .. }
        ));

        let snap = registry.snapshot();
        assert_eq!(snap.counters.get("persist.submits"), Some(&3));
        assert_eq!(snap.counters.get("persist.hits"), Some(&1));
        assert_eq!(snap.counters.get("persist.merges"), Some(&1));
        assert_eq!(snap.counters.get("persist.inserts"), Some(&1));
        assert_eq!(snap.counters.get("persist.images_built"), Some(&2));
        // Every submit appends exactly one record; below the cadence,
        // nothing checkpoints.
        assert_eq!(snap.counters.get("persist.wal_appends"), Some(&3));
        assert_eq!(snap.counters.get("persist.state_saves"), Some(&0));
        // The very first submit finds an empty cache: the filter
        // proves the miss and the hit scan is skipped.
        assert!(snap.counters.get("persist.filter_skips").copied() >= Some(1));
        assert!(snap.counters.get("persist.image_bytes_written").copied() > Some(0));
        // The backing store's I/O counters ride along.
        assert!(snap.counters.get("store.obj_puts").copied() > Some(0));

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn state_survives_reopen() {
        let dir = temp_dir("reopen");
        let r = repo();
        let spec = r.closure_spec(&[PackageId(0)]);
        {
            let mut cache =
                PersistentCache::open(&dir, 0.8, u64::MAX, FileTreeConfig::miniature()).unwrap();
            cache.submit(&r, &spec).unwrap();
        }
        let mut cache =
            PersistentCache::open(&dir, 0.8, u64::MAX, FileTreeConfig::miniature()).unwrap();
        assert!(cache.last_recovery().clean(), "normal replay is not damage");
        assert_eq!(cache.images().len(), 1);
        let d = cache.submit(&r, &spec).unwrap();
        assert!(
            matches!(d, Decision::Hit { .. }),
            "persisted image must hit"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn hits_append_to_wal_without_rewriting_state() {
        let dir = temp_dir("walhit");
        let r = repo();
        let spec = r.closure_spec(&[PackageId(0)]);
        let mut cache =
            PersistentCache::open(&dir, 0.8, u64::MAX, FileTreeConfig::miniature()).unwrap();
        cache.submit(&r, &spec).unwrap();
        let state_before = std::fs::read(dir.join("state.json")).unwrap();
        let wal_before = std::fs::metadata(dir.join("wal.log")).unwrap().len();
        for _ in 0..5 {
            assert!(matches!(
                cache.submit(&r, &spec).unwrap(),
                Decision::Hit { .. }
            ));
        }
        assert_eq!(
            std::fs::read(dir.join("state.json")).unwrap(),
            state_before,
            "hits must not rewrite the checkpoint"
        );
        assert!(
            std::fs::metadata(dir.join("wal.log")).unwrap().len() > wal_before,
            "hits append to the log"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpoint_cadence_compacts_the_log() {
        let dir = temp_dir("walckpt");
        let r = repo();
        let mut options = PersistOptions::new(0.0, u64::MAX, FileTreeConfig::miniature());
        options.checkpoint_every = 3;
        let mut cache = PersistentCache::open_with(&dir, options).unwrap();
        let n = r.package_count() as u32;
        for i in 0..3 {
            cache
                .submit(&r, &r.closure_spec(&[PackageId(n - 1 - i)]))
                .unwrap();
        }
        // The third submit crossed the cadence: log truncated to magic.
        assert_eq!(
            std::fs::metadata(dir.join("wal.log")).unwrap().len(),
            landlord_wal::MAGIC.len() as u64,
            "checkpoint must truncate the log"
        );
        // And the checkpoint alone reproduces the cache.
        drop(cache);
        let cache =
            PersistentCache::open(&dir, 0.0, u64::MAX, FileTreeConfig::miniature()).unwrap();
        assert_eq!(cache.images().len(), 3);
        cache.check_invariants().unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn eviction_removes_files() {
        let dir = temp_dir("evict");
        let r = repo();
        // Tiny logical limit forces eviction after the second insert.
        let first = r.closure_spec(&[PackageId(r.package_count() as u32 - 1)]);
        let first_bytes: u64 = first.iter().map(|p| r.meta(p).bytes).sum();
        let mut cache =
            PersistentCache::open(&dir, 0.0, first_bytes + 1, FileTreeConfig::miniature()).unwrap();
        let d1 = cache.submit(&r, &first).unwrap();
        // A disjoint-ish second spec (alpha 0 forbids merging anyway).
        let second = r.closure_spec(&[PackageId(r.package_count() as u32 - 7)]);
        let d2 = cache.submit(&r, &second).unwrap();
        assert!(matches!(d2, Decision::Inserted { .. }));
        assert_eq!(cache.images().len(), 1, "first image evicted");
        assert!(!d1.image_path().exists(), "evicted file must be deleted");
        assert!(d2.image_path().exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    fn open_default(dir: &Path) -> io::Result<PersistentCache> {
        PersistentCache::open(dir, 0.8, u64::MAX, FileTreeConfig::miniature())
    }

    /// Populate a directory with two images and return it.
    fn populated(tag: &str) -> (PathBuf, Repository) {
        let dir = temp_dir(tag);
        let r = repo();
        let n = r.package_count() as u32;
        let mut cache = PersistentCache::open(&dir, 0.0, u64::MAX, FileTreeConfig::miniature())
            .expect("open fresh");
        cache
            .submit(&r, &r.closure_spec(&[PackageId(n - 1)]))
            .unwrap();
        cache
            .submit(&r, &r.closure_spec(&[PackageId(n - 7)]))
            .unwrap();
        (dir, r)
    }

    #[test]
    fn state_file_is_checksummed_and_round_trips() {
        let (dir, _r) = populated("ckfmt");
        let raw = std::fs::read(dir.join("state.json")).unwrap();
        assert!(raw.starts_with(b"LLSTATE1 "), "state carries its header");
        let cache = open_default(&dir).unwrap();
        assert!(cache.last_recovery().clean(), "clean dir needs no recovery");
        assert_eq!(cache.images().len(), 2);
        cache.check_invariants().unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_truncated_and_empty_state_error_without_panic() {
        let (dir, _r) = populated("ckbad");
        let state = dir.join("state.json");
        let good = std::fs::read(&state).unwrap();

        // Truncated mid-payload: the checksum catches it.
        std::fs::write(&state, &good[..good.len() / 2]).unwrap();
        assert!(open_default(&dir).is_err(), "truncated state must error");

        // Flipped payload byte: also caught.
        let mut flipped = good.clone();
        let last = flipped.len() - 2;
        flipped[last] ^= 0x40;
        std::fs::write(&state, &flipped).unwrap();
        assert!(open_default(&dir).is_err(), "corrupted state must error");

        // Empty file: parses as neither header nor JSON.
        std::fs::write(&state, b"").unwrap();
        assert!(open_default(&dir).is_err(), "empty state must error");

        // Garbage JSON.
        std::fs::write(&state, b"{\"next_id\": \"not a number\"").unwrap();
        assert!(open_default(&dir).is_err(), "garbage state must error");

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn legacy_plain_json_state_still_opens() {
        let (dir, _r) = populated("cklegacy");
        let raw = std::fs::read(dir.join("state.json")).unwrap();
        let nl = raw.iter().position(|&b| b == b'\n').unwrap();
        // Strip the header: exactly what a pre-checksum cache wrote.
        std::fs::write(dir.join("state.json"), &raw[nl + 1..]).unwrap();
        let cache = open_default(&dir).unwrap();
        assert_eq!(cache.images().len(), 2);
        cache.check_invariants().unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn leftover_tmp_state_is_quarantined() {
        let (dir, _r) = populated("cktmp");
        std::fs::write(dir.join("state.json.tmp"), b"torn half-written state").unwrap();
        let cache = open_default(&dir).unwrap();
        assert!(cache.last_recovery().quarantined_tmp_state);
        assert!(!dir.join("state.json.tmp").exists());
        assert!(dir.join("quarantine").join("state.json.tmp").exists());
        assert_eq!(cache.images().len(), 2, "durable state unaffected");
        cache.check_invariants().unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_wal_tail_is_quarantined_and_stripped() {
        let (dir, _r) = populated("cktail");
        // Tear the log mid-frame, as a crash mid-append would.
        let wal_path = dir.join("wal.log");
        let mut bytes = std::fs::read(&wal_path).unwrap();
        bytes.extend_from_slice(&[0x7f; 9]); // half a frame header
        std::fs::write(&wal_path, &bytes).unwrap();

        let cache = open_default(&dir).unwrap();
        assert!(cache.last_recovery().quarantined_wal_tail);
        assert!(dir.join("quarantine").join("wal.tail").exists());
        assert_eq!(cache.images().len(), 2, "intact records still replay");
        cache.check_invariants().unwrap();
        drop(cache);
        // Recovery checkpointed: a second open is clean.
        let cache = open_default(&dir).unwrap();
        assert!(cache.last_recovery().clean());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn repeated_crashes_never_overwrite_quarantined_artifacts() {
        let (dir, _r) = populated("ckquniq");
        for round in 0..3 {
            std::fs::write(
                dir.join("state.json.tmp"),
                format!("torn state from crash {round}"),
            )
            .unwrap();
            let cache = open_default(&dir).unwrap();
            assert!(cache.last_recovery().quarantined_tmp_state);
        }
        let qdir = dir.join("quarantine");
        let mut names: Vec<String> = std::fs::read_dir(&qdir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .filter(|n| n.starts_with("state.json.tmp"))
            .collect();
        names.sort();
        assert_eq!(
            names,
            vec![
                "state.json.tmp".to_string(),
                "state.json.tmp.1".to_string(),
                "state.json.tmp.2".to_string()
            ],
            "each crash artifact keeps its own quarantine entry"
        );
        // And the contents are the three distinct artifacts.
        for (i, name) in names.iter().enumerate() {
            let content = std::fs::read_to_string(qdir.join(name)).unwrap();
            assert_eq!(content, format!("torn state from crash {i}"));
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncated_image_is_quarantined_and_dropped() {
        let (dir, r) = populated("cktorn");
        let victim = {
            let cache = open_default(&dir).unwrap();
            cache.images()[0].clone()
        };
        let path = dir.join("images").join(format!("{}.llimg", victim.id));
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() / 2]).unwrap();

        let mut cache = open_default(&dir).unwrap();
        let rec = cache.last_recovery();
        assert_eq!(rec.quarantined_images, 1);
        assert_eq!(rec.dropped_missing_images, 1);
        assert_eq!(cache.images().len(), 1, "torn image forgotten");
        assert!(!path.exists());
        cache.check_invariants().unwrap();
        // The spec is servable again: it just rebuilds.
        cache.submit(&r, &victim.spec).unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unindexed_image_and_object_tmps_are_swept() {
        let (dir, _r) = populated("ckstray");
        // An image written right before a crash that never got indexed.
        std::fs::write(dir.join("images").join("999.llimg"), b"almost an image").unwrap();
        // A torn object put.
        let fan = dir.join("objects").join("ab");
        std::fs::create_dir_all(&fan).unwrap();
        std::fs::write(fan.join("deadbeef.tmp1234"), b"half an object").unwrap();

        let cache = open_default(&dir).unwrap();
        let rec = cache.last_recovery();
        assert_eq!(rec.quarantined_images, 1);
        assert_eq!(rec.removed_object_tmps, 1);
        assert!(!dir.join("images").join("999.llimg").exists());
        assert!(!fan.join("deadbeef.tmp1234").exists());
        cache.check_invariants().unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn wal_sequence_gap_is_unrecoverable() {
        let (dir, _r) = populated("ckgap");
        // Rewrite the log with records that start past the checkpoint's
        // watermark: acknowledged history is missing.
        let entry = WalEntry {
            clock: 99,
            next_id: 99,
            op: WalOp::Touch { id: 0 },
        };
        let payload = serde_json::to_vec(&entry).unwrap();
        let mut bytes = landlord_wal::MAGIC.to_vec();
        bytes.extend_from_slice(&landlord_wal::encode_frame(40, &payload).unwrap());
        std::fs::write(dir.join("wal.log"), &bytes).unwrap();
        let err = open_default(&dir).map(|_| ()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("acknowledged records are missing"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn repair_quarantines_deep_corruption_and_prunes() {
        let (dir, r) = populated("ckrepair");
        let victim_id = {
            let cache = open_default(&dir).unwrap();
            cache.images()[0].id
        };
        // Same length, garbage content: size recovery can't see it,
        // only a deep parse can.
        let path = dir.join("images").join(format!("{victim_id}.llimg"));
        let len = std::fs::metadata(&path).unwrap().len() as usize;
        std::fs::write(&path, vec![0x5a; len]).unwrap();

        let mut cache = open_default(&dir).unwrap();
        assert!(cache.last_recovery().clean(), "sizes all match");
        let report = cache.repair(Some(&r)).unwrap();
        assert_eq!(report.quarantined_images, 1);
        assert!(
            report.pruned_objects > 0,
            "quarantined image must orphan objects"
        );
        assert_eq!(cache.images().len(), 1);
        cache.check_invariants().unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recovered_report_matches_uncrashed_replay() {
        // The golden determinism property in miniature: a cache that
        // reopened (checkpoint + replay) renders the same report as the
        // handle that never closed.
        let dir = temp_dir("ckgolden");
        let r = repo();
        let n = r.package_count() as u32;
        let live_report = {
            let mut cache = open_default(&dir).unwrap();
            cache
                .submit(&r, &r.closure_spec(&[PackageId(n - 1)]))
                .unwrap();
            cache
                .submit(&r, &r.closure_spec(&[PackageId(n - 7)]))
                .unwrap();
            cache
                .submit(&r, &r.closure_spec(&[PackageId(n - 1)]))
                .unwrap();
            cache.state_report_json()
        };
        let reopened = open_default(&dir).unwrap();
        assert!(reopened.last_recovery().clean());
        assert_eq!(
            reopened.state_report_json(),
            live_report,
            "replay must reproduce the live state byte-for-byte"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[cfg(test)]
mod gc_tests {
    use super::*;
    use landlord_core::spec::PackageId;
    use landlord_repo::RepoConfig;
    use landlord_store::ObjectStore;

    #[test]
    fn eviction_orphans_objects_and_prune_reclaims_them() {
        let dir = std::env::temp_dir().join(format!(
            "landlord-pc-gc-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        let repo = Repository::generate(&RepoConfig::small_for_tests(61));
        let n = repo.package_count() as u32;

        // Limit sized to hold exactly one image at a time; alpha 0
        // forbids merging, so the second submit evicts the first.
        let first = repo.closure_spec(&[PackageId(n - 1)]);
        let first_bytes: u64 = first.iter().map(|p| repo.meta(p).bytes).sum();
        let mut cache = PersistentCache::open(
            &dir,
            0.0,
            first_bytes + 1,
            landlord_shrinkwrap::filetree::FileTreeConfig::miniature(),
        )
        .unwrap();

        cache.submit(&repo, &first).unwrap();
        assert!(
            cache.orphaned_objects(&repo).is_empty(),
            "everything live initially"
        );

        let second = repo.closure_spec(&[PackageId(n - 7)]);
        cache.submit(&repo, &second).unwrap();
        assert_eq!(cache.images().len(), 1, "first image evicted");

        let orphans = cache.orphaned_objects(&repo);
        assert!(!orphans.is_empty(), "evicted image must orphan objects");

        let before = cache.store().stored_bytes();
        let (count, freed) = cache.prune(&repo).unwrap();
        assert_eq!(count, orphans.len());
        assert!(freed > 0);
        assert_eq!(cache.store().stored_bytes(), before - freed);
        assert!(
            cache.orphaned_objects(&repo).is_empty(),
            "prune is complete"
        );

        // The live image still verifies: pruning touched only garbage.
        let live_img = cache.images()[0].clone();
        let d = cache.submit(&repo, &live_img.spec).unwrap();
        assert!(matches!(d, Decision::Hit { .. }));

        std::fs::remove_dir_all(&dir).ok();
    }
}
