//! A durable LANDLORD cache directory.
//!
//! `landlord submit` is the paper's deployment story: "on job
//! submission, LANDLORD first scans its configured cache directory for
//! existing images that are 'close' to the job's specification,
//! creates/updates images in the cache as necessary, and finally
//! launches the job inside the prepared container."
//!
//! Layout of a cache directory:
//!
//! ```text
//! <dir>/state.json      image index (specs, sizes, usage clocks)
//! <dir>/objects/…       content-addressed store (shrinkwrap source)
//! <dir>/images/N.llimg  materialized container images
//! ```
//!
//! Decisions follow Algorithm 1 exactly (hit / merge / insert, then
//! LRU eviction down to the logical byte limit). Logical bytes — the
//! repository package sizes — drive all policy decisions; physical
//! bytes on disk are scaled down by the file-tree config so a laptop
//! can host a "terabyte" cache.

use landlord_core::jaccard::jaccard_distance;
use landlord_core::spec::Spec;
use landlord_repo::Repository;
use landlord_shrinkwrap::filetree::FileTreeConfig;
use landlord_shrinkwrap::Shrinkwrap;
use landlord_store::DiskStore;
use serde::{Deserialize, Serialize};
use std::io;
use std::path::{Path, PathBuf};

/// One image in the persistent index.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StoredImage {
    /// Stable id (also the image file name).
    pub id: u64,
    /// Capability specification.
    pub spec: Spec,
    /// Logical bytes (policy accounting).
    pub logical_bytes: u64,
    /// Physical bytes of the LLIMG file.
    pub physical_bytes: u64,
    /// LRU clock of last use.
    pub last_used: u64,
}

/// The serialized cache state.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
struct State {
    next_id: u64,
    clock: u64,
    images: Vec<StoredImage>,
}

/// What `submit` did for a job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Decision {
    /// An existing image satisfied the spec.
    Hit {
        /// Path to the image to launch with.
        image: PathBuf,
    },
    /// A close image was merged and rebuilt.
    Merged {
        /// Path to the merged image.
        image: PathBuf,
    },
    /// A fresh image was built.
    Inserted {
        /// Path to the new image.
        image: PathBuf,
    },
}

impl Decision {
    /// The image path for the job, whatever the decision was.
    pub fn image_path(&self) -> &Path {
        match self {
            Decision::Hit { image } | Decision::Merged { image } | Decision::Inserted { image } => {
                image
            }
        }
    }
}

/// A cache directory handle.
pub struct PersistentCache {
    dir: PathBuf,
    alpha: f64,
    limit_logical_bytes: u64,
    tree_config: FileTreeConfig,
    store: DiskStore,
    state: State,
}

impl PersistentCache {
    /// Open (or initialize) a cache directory.
    pub fn open(
        dir: &Path,
        alpha: f64,
        limit_logical_bytes: u64,
        tree_config: FileTreeConfig,
    ) -> io::Result<Self> {
        assert!((0.0..=1.0).contains(&alpha), "alpha must be in [0,1]");
        std::fs::create_dir_all(dir.join("images"))?;
        let store = DiskStore::open(&dir.join("objects"))?;
        let state_path = dir.join("state.json");
        let state = if state_path.exists() {
            serde_json::from_slice(&std::fs::read(&state_path)?)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?
        } else {
            State::default()
        };
        Ok(PersistentCache {
            dir: dir.to_path_buf(),
            alpha,
            limit_logical_bytes,
            tree_config,
            store,
            state,
        })
    }

    /// Images currently cached.
    pub fn images(&self) -> &[StoredImage] {
        &self.state.images
    }

    /// Total logical bytes cached.
    pub fn total_logical_bytes(&self) -> u64 {
        self.state.images.iter().map(|i| i.logical_bytes).sum()
    }

    /// The content-addressed object store backing the images.
    pub fn store(&self) -> &DiskStore {
        &self.store
    }

    fn image_path(&self, id: u64) -> PathBuf {
        self.dir.join("images").join(format!("{id}.llimg"))
    }

    fn save_state(&self) -> io::Result<()> {
        let bytes = serde_json::to_vec_pretty(&self.state)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        let tmp = self.dir.join("state.json.tmp");
        std::fs::write(&tmp, bytes)?;
        std::fs::rename(tmp, self.dir.join("state.json"))
    }

    fn build_image(&self, repo: &Repository, id: u64, spec: &Spec) -> io::Result<StoredImage> {
        let sw = Shrinkwrap::new(repo, &self.store, self.tree_config);
        let path = self.image_path(id);
        let report = sw.build_to_path(spec, &path)?;
        Ok(StoredImage {
            id,
            spec: spec.clone(),
            logical_bytes: report.logical_bytes,
            physical_bytes: std::fs::metadata(&path)?.len(),
            last_used: 0,
        })
    }

    /// Process one job specification (Algorithm 1), materializing
    /// images on disk as needed. The spec must already include its
    /// dependency closure.
    pub fn submit(&mut self, repo: &Repository, spec: &Spec) -> io::Result<Decision> {
        self.state.clock += 1;
        let now = self.state.clock;

        // 1. Existing image satisfies the spec (smallest wins).
        if let Some(idx) = self
            .state
            .images
            .iter()
            .enumerate()
            .filter(|(_, img)| spec.is_subset(&img.spec))
            .min_by_key(|(_, img)| (img.logical_bytes, img.id))
            .map(|(i, _)| i)
        {
            let id = {
                let img = &mut self.state.images[idx];
                img.last_used = now;
                img.id
            };
            let path = self.image_path(id);
            self.save_state()?;
            return Ok(Decision::Hit { image: path });
        }

        // 2. Merge into the nearest non-conflicting candidate.
        //    (CVMFS semantics: nothing conflicts.)
        let candidate = self
            .state
            .images
            .iter()
            .enumerate()
            .map(|(i, img)| (i, jaccard_distance(spec, &img.spec)))
            .filter(|(_, d)| *d < self.alpha)
            .min_by(|a, b| a.1.total_cmp(&b.1));
        if let Some((idx, _)) = candidate {
            let old = self.state.images[idx].clone();
            let merged_spec = old.spec.union(spec);
            let mut rebuilt = self.build_image(repo, old.id, &merged_spec)?;
            rebuilt.last_used = now;
            self.state.images[idx] = rebuilt;
            self.evict_to_limit(old.id)?;
            self.save_state()?;
            return Ok(Decision::Merged {
                image: self.image_path(old.id),
            });
        }

        // 3. Fresh insert.
        let id = self.state.next_id;
        self.state.next_id += 1;
        let mut img = self.build_image(repo, id, spec)?;
        img.last_used = now;
        self.state.images.push(img);
        self.evict_to_limit(id)?;
        self.save_state()?;
        Ok(Decision::Inserted {
            image: self.image_path(id),
        })
    }

    fn evict_to_limit(&mut self, protect: u64) -> io::Result<()> {
        while self.total_logical_bytes() > self.limit_logical_bytes {
            let victim = self
                .state
                .images
                .iter()
                .filter(|img| img.id != protect)
                .min_by_key(|img| (img.last_used, img.id))
                .map(|img| img.id);
            let Some(victim) = victim else { break };
            self.state.images.retain(|img| img.id != victim);
            let path = self.image_path(victim);
            if path.exists() {
                std::fs::remove_file(path)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use landlord_core::spec::PackageId;
    use landlord_repo::RepoConfig;
    use landlord_shrinkwrap::ImageReader;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "landlord-pc-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    fn repo() -> Repository {
        Repository::generate(&RepoConfig::small_for_tests(61))
    }

    #[test]
    fn insert_hit_merge_cycle() {
        let dir = temp_dir("cycle");
        let r = repo();
        let mut cache =
            PersistentCache::open(&dir, 0.9, u64::MAX, FileTreeConfig::miniature()).unwrap();

        let a = r.closure_spec(&[PackageId(r.package_count() as u32 - 1)]);
        let d1 = cache.submit(&r, &a).unwrap();
        assert!(matches!(d1, Decision::Inserted { .. }));
        assert!(d1.image_path().exists());

        let d2 = cache.submit(&r, &a).unwrap();
        assert!(matches!(d2, Decision::Hit { .. }));

        // A near spec merges: the same closure plus one more seed.
        let b = r.closure_spec(&[
            PackageId(r.package_count() as u32 - 1),
            PackageId(r.package_count() as u32 - 2),
        ]);
        let d3 = cache.submit(&r, &b).unwrap();
        assert!(matches!(d3, Decision::Merged { .. }), "got {d3:?}");
        assert_eq!(cache.images().len(), 1);

        // The merged image file is a valid LLIMG covering the union.
        let img = ImageReader::parse(std::fs::File::open(d3.image_path()).unwrap()).unwrap();
        assert!(!img.is_empty());

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn state_survives_reopen() {
        let dir = temp_dir("reopen");
        let r = repo();
        let spec = r.closure_spec(&[PackageId(0)]);
        {
            let mut cache =
                PersistentCache::open(&dir, 0.8, u64::MAX, FileTreeConfig::miniature()).unwrap();
            cache.submit(&r, &spec).unwrap();
        }
        let mut cache =
            PersistentCache::open(&dir, 0.8, u64::MAX, FileTreeConfig::miniature()).unwrap();
        assert_eq!(cache.images().len(), 1);
        let d = cache.submit(&r, &spec).unwrap();
        assert!(
            matches!(d, Decision::Hit { .. }),
            "persisted image must hit"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn eviction_removes_files() {
        let dir = temp_dir("evict");
        let r = repo();
        // Tiny logical limit forces eviction after the second insert.
        let first = r.closure_spec(&[PackageId(r.package_count() as u32 - 1)]);
        let first_bytes: u64 = first.iter().map(|p| r.meta(p).bytes).sum();
        let mut cache =
            PersistentCache::open(&dir, 0.0, first_bytes + 1, FileTreeConfig::miniature()).unwrap();
        let d1 = cache.submit(&r, &first).unwrap();
        // A disjoint-ish second spec (alpha 0 forbids merging anyway).
        let second = r.closure_spec(&[PackageId(r.package_count() as u32 - 7)]);
        let d2 = cache.submit(&r, &second).unwrap();
        assert!(matches!(d2, Decision::Inserted { .. }));
        assert_eq!(cache.images().len(), 1, "first image evicted");
        assert!(!d1.image_path().exists(), "evicted file must be deleted");
        assert!(d2.image_path().exists());
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// Garbage collection over a cache directory's object store.
///
/// Image evictions delete the `.llimg` files but leave their source
/// objects behind (another live image may share them). These methods
/// find — and optionally delete — objects no live image references.
impl PersistentCache {
    /// Hashes of every object referenced by the live images, recomputed
    /// deterministically from their specs and the tree config.
    fn live_hashes(
        &self,
        repo: &Repository,
    ) -> std::collections::HashSet<landlord_store::ContentHash> {
        use landlord_shrinkwrap::filetree;
        let mut live = std::collections::HashSet::new();
        for img in &self.state.images {
            for pkg in img.spec.iter() {
                for file in filetree::package_tree(repo.meta(pkg), &self.tree_config) {
                    live.insert(landlord_store::ContentHash::of(&filetree::file_contents(
                        &file,
                    )));
                }
            }
        }
        live
    }

    /// Objects in the store that no live image references.
    pub fn orphaned_objects(&self, repo: &Repository) -> Vec<landlord_store::ContentHash> {
        use landlord_store::ObjectStore;
        let live = self.live_hashes(repo);
        self.store
            .hashes()
            .into_iter()
            .filter(|h| !live.contains(h))
            .collect()
    }

    /// Delete every orphaned object; returns `(objects, bytes)` freed.
    pub fn prune(&self, repo: &Repository) -> io::Result<(usize, u64)> {
        let orphans = self.orphaned_objects(repo);
        let mut freed = 0u64;
        for &hash in &orphans {
            freed += self.store.remove(hash)?;
        }
        Ok((orphans.len(), freed))
    }
}

#[cfg(test)]
mod gc_tests {
    use super::*;
    use landlord_core::spec::PackageId;
    use landlord_repo::RepoConfig;
    use landlord_store::ObjectStore;

    #[test]
    fn eviction_orphans_objects_and_prune_reclaims_them() {
        let dir = std::env::temp_dir().join(format!(
            "landlord-pc-gc-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        let repo = Repository::generate(&RepoConfig::small_for_tests(61));
        let n = repo.package_count() as u32;

        // Limit sized to hold exactly one image at a time; alpha 0
        // forbids merging, so the second submit evicts the first.
        let first = repo.closure_spec(&[PackageId(n - 1)]);
        let first_bytes: u64 = first.iter().map(|p| repo.meta(p).bytes).sum();
        let mut cache = PersistentCache::open(
            &dir,
            0.0,
            first_bytes + 1,
            landlord_shrinkwrap::filetree::FileTreeConfig::miniature(),
        )
        .unwrap();

        cache.submit(&repo, &first).unwrap();
        assert!(
            cache.orphaned_objects(&repo).is_empty(),
            "everything live initially"
        );

        let second = repo.closure_spec(&[PackageId(n - 7)]);
        cache.submit(&repo, &second).unwrap();
        assert_eq!(cache.images().len(), 1, "first image evicted");

        let orphans = cache.orphaned_objects(&repo);
        assert!(!orphans.is_empty(), "evicted image must orphan objects");

        let before = cache.store().stored_bytes();
        let (count, freed) = cache.prune(&repo).unwrap();
        assert_eq!(count, orphans.len());
        assert!(freed > 0);
        assert_eq!(cache.store().stored_bytes(), before - freed);
        assert!(
            cache.orphaned_objects(&repo).is_empty(),
            "prune is complete"
        );

        // The live image still verifies: pruning touched only garbage.
        let live_img = cache.images()[0].clone();
        let d = cache.submit(&repo, &live_img.spec).unwrap();
        assert!(matches!(d, Decision::Hit { .. }));

        std::fs::remove_dir_all(&dir).ok();
    }
}
