//! A durable LANDLORD cache directory.
//!
//! `landlord submit` is the paper's deployment story: "on job
//! submission, LANDLORD first scans its configured cache directory for
//! existing images that are 'close' to the job's specification,
//! creates/updates images in the cache as necessary, and finally
//! launches the job inside the prepared container."
//!
//! Layout of a cache directory:
//!
//! ```text
//! <dir>/state.json      image index (specs, sizes, usage clocks)
//! <dir>/objects/…       content-addressed store (shrinkwrap source)
//! <dir>/images/N.llimg  materialized container images
//! <dir>/quarantine/…    crash artifacts set aside by recovery
//! ```
//!
//! Decisions follow Algorithm 1 exactly (hit / merge / insert, then
//! LRU eviction down to the logical byte limit). Logical bytes — the
//! repository package sizes — drive all policy decisions; physical
//! bytes on disk are scaled down by the file-tree config so a laptop
//! can host a "terabyte" cache.
//!
//! ## Crash safety
//!
//! `state.json` carries a `LLSTATE1 <checksum>` header over its JSON
//! payload and is replaced via fsynced-temp-file-then-rename (with the
//! parent directory fsynced after the rename), so a crash at any write
//! point leaves either the old state or the new — never a torn one.
//! Image and object writes land *before* the state that references
//! them; [`PersistentCache::open`] therefore runs a recovery pass that
//! quarantines whatever a crash left behind (a stale `state.json.tmp`,
//! truncated or unindexed `.llimg` files, leftover object temp files)
//! and restores the invariants [`PersistentCache::check_invariants`]
//! demands.

use landlord_core::cache::{plan_over, PlannedOp};
use landlord_core::conflict::NoConflicts;
use landlord_core::policy::{DistanceMetric, MergeOrder};
use landlord_core::spec::Spec;
use landlord_obs::{Counter, MetricsRegistry};
use landlord_repo::Repository;
use landlord_shrinkwrap::filetree::FileTreeConfig;
use landlord_shrinkwrap::{ImageReader, Shrinkwrap};
use landlord_store::{ContentHash, DiskStore};
use serde::{Deserialize, Serialize};
use std::io;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// One image in the persistent index.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StoredImage {
    /// Stable id (also the image file name).
    pub id: u64,
    /// Capability specification.
    pub spec: Spec,
    /// Logical bytes (policy accounting).
    pub logical_bytes: u64,
    /// Physical bytes of the LLIMG file.
    pub physical_bytes: u64,
    /// LRU clock of last use.
    pub last_used: u64,
}

/// The serialized cache state.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
struct State {
    next_id: u64,
    clock: u64,
    images: Vec<StoredImage>,
}

/// What `submit` did for a job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Decision {
    /// An existing image satisfied the spec.
    Hit {
        /// Path to the image to launch with.
        image: PathBuf,
    },
    /// A close image was merged and rebuilt.
    Merged {
        /// Path to the merged image.
        image: PathBuf,
    },
    /// A fresh image was built.
    Inserted {
        /// Path to the new image.
        image: PathBuf,
    },
}

impl Decision {
    /// The image path for the job, whatever the decision was.
    pub fn image_path(&self) -> &Path {
        match self {
            Decision::Hit { image } | Decision::Merged { image } | Decision::Inserted { image } => {
                image
            }
        }
    }
}

/// What the recovery pass in [`PersistentCache::open`] had to clean up.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// A leftover `state.json.tmp` (crash mid-save) was quarantined.
    pub quarantined_tmp_state: bool,
    /// Index entries dropped because their image file was missing.
    pub dropped_missing_images: usize,
    /// Image files quarantined: truncated (size mismatch vs the index)
    /// or present on disk but absent from the index (crash between an
    /// image write and the state save).
    pub quarantined_images: usize,
    /// Leftover object-store temp files removed.
    pub removed_object_tmps: usize,
    /// `next_id` / `clock` had to be bumped past recovered entries.
    pub counters_bumped: bool,
}

impl RecoveryReport {
    /// True when open found nothing to repair.
    pub fn clean(&self) -> bool {
        *self == RecoveryReport::default()
    }
}

/// What [`PersistentCache::repair`] did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RepairReport {
    /// Images that failed a deep LLIMG parse and were quarantined.
    pub quarantined_images: usize,
    /// Orphaned objects pruned (only when a repository was supplied).
    pub pruned_objects: usize,
    /// Bytes freed by the prune.
    pub pruned_bytes: u64,
}

/// Header tag of a checksummed state file. The line is
/// `LLSTATE1 <32-hex-content-hash-of-payload>\n` followed by the JSON
/// payload the hash covers.
const STATE_MAGIC: &[u8] = b"LLSTATE1 ";

fn invalid_state(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Parse a state file, verifying the checksum header when present.
/// Plain `{…` JSON (states written before checksumming) still parses.
fn parse_state(bytes: &[u8]) -> io::Result<State> {
    if let Some(rest) = bytes.strip_prefix(STATE_MAGIC) {
        let nl = rest
            .iter()
            .position(|&b| b == b'\n')
            .ok_or_else(|| invalid_state("state header is missing its newline"))?;
        let hex = std::str::from_utf8(&rest[..nl])
            .map_err(|_| invalid_state("state checksum is not UTF-8"))?;
        let expected = ContentHash::from_hex(hex.trim())
            .ok_or_else(|| invalid_state("state checksum is not a valid hash"))?;
        let payload = &rest[nl + 1..];
        if ContentHash::of(payload) != expected {
            return Err(invalid_state(
                "state checksum mismatch: torn or corrupted write",
            ));
        }
        serde_json::from_slice(payload).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    } else {
        serde_json::from_slice(bytes).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }
}

/// Fsync a directory so a just-renamed entry survives power loss.
#[cfg(unix)]
fn fsync_dir(dir: &Path) -> io::Result<()> {
    std::fs::File::open(dir)?.sync_all()
}

#[cfg(not(unix))]
fn fsync_dir(_dir: &Path) -> io::Result<()> {
    Ok(())
}

/// Move a crash artifact into `<dir>/quarantine/` under a unique name.
fn quarantine(dir: &Path, path: &Path) -> io::Result<()> {
    let qdir = dir.join("quarantine");
    std::fs::create_dir_all(&qdir)?;
    let name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "unnamed".to_string());
    let mut dest = qdir.join(&name);
    let mut n = 1u32;
    while dest.exists() {
        dest = qdir.join(format!("{name}.{n}"));
        n += 1;
    }
    std::fs::rename(path, dest)
}

/// Cached metric handles for the durable cache directory (see
/// `landlord-obs`). Counts decisions and the I/O they cause; the
/// backing [`DiskStore`] contributes its own `store.obj_*` counters.
struct PcObs {
    submits: std::sync::Arc<Counter>,
    hits: std::sync::Arc<Counter>,
    merges: std::sync::Arc<Counter>,
    inserts: std::sync::Arc<Counter>,
    images_built: std::sync::Arc<Counter>,
    image_bytes_written: std::sync::Arc<Counter>,
    state_saves: std::sync::Arc<Counter>,
    evicted_images: std::sync::Arc<Counter>,
}

impl PcObs {
    fn new(registry: &MetricsRegistry) -> Self {
        PcObs {
            submits: registry.counter("persist.submits"),
            hits: registry.counter("persist.hits"),
            merges: registry.counter("persist.merges"),
            inserts: registry.counter("persist.inserts"),
            images_built: registry.counter("persist.images_built"),
            image_bytes_written: registry.counter("persist.image_bytes_written"),
            state_saves: registry.counter("persist.state_saves"),
            evicted_images: registry.counter("persist.evicted_images"),
        }
    }
}

/// A cache directory handle.
pub struct PersistentCache {
    dir: PathBuf,
    alpha: f64,
    limit_logical_bytes: u64,
    tree_config: FileTreeConfig,
    store: DiskStore,
    state: State,
    recovery: RecoveryReport,
    obs: Option<PcObs>,
}

impl PersistentCache {
    /// Open (or initialize) a cache directory, running crash recovery:
    /// quarantine a leftover `state.json.tmp`, verify the state
    /// checksum, drop index entries whose image file is missing or
    /// truncated, quarantine unindexed image files, and sweep leftover
    /// object temp files. A genuinely corrupt `state.json` is an error
    /// (never a panic) — the operator decides whether to discard it.
    pub fn open(
        dir: &Path,
        alpha: f64,
        limit_logical_bytes: u64,
        tree_config: FileTreeConfig,
    ) -> io::Result<Self> {
        assert!((0.0..=1.0).contains(&alpha), "alpha must be in [0,1]");
        std::fs::create_dir_all(dir.join("images"))?;
        let store = DiskStore::open(&dir.join("objects"))?;
        let mut recovery = RecoveryReport::default();

        // A leftover temp state means a crash mid-save; the durable
        // state.json still holds the previous consistent save.
        let tmp_state = dir.join("state.json.tmp");
        if tmp_state.exists() {
            quarantine(dir, &tmp_state)?;
            recovery.quarantined_tmp_state = true;
        }

        let state_path = dir.join("state.json");
        let mut state = if state_path.exists() {
            parse_state(&std::fs::read(&state_path)?)?
        } else {
            State::default()
        };

        // Drop entries whose image file a crash lost or truncated.
        // Truncation is detectable because the index records the exact
        // physical size of every complete image.
        let mut kept = Vec::with_capacity(state.images.len());
        for img in std::mem::take(&mut state.images) {
            let path = dir.join("images").join(format!("{}.llimg", img.id));
            match std::fs::metadata(&path) {
                Ok(m) if m.len() == img.physical_bytes => kept.push(img),
                Ok(_) => {
                    quarantine(dir, &path)?;
                    recovery.quarantined_images += 1;
                    recovery.dropped_missing_images += 1;
                }
                Err(_) => recovery.dropped_missing_images += 1,
            }
        }
        state.images = kept;

        // Image files the index does not know about: a crash between an
        // image write and the state save that would have indexed it.
        let indexed: std::collections::HashSet<u64> =
            state.images.iter().map(|img| img.id).collect();
        for entry in std::fs::read_dir(dir.join("images"))? {
            let path = entry?.path();
            let known = path
                .file_name()
                .and_then(|n| n.to_str())
                .and_then(|n| n.strip_suffix(".llimg"))
                .and_then(|stem| stem.parse::<u64>().ok())
                .is_some_and(|id| indexed.contains(&id));
            if !known {
                quarantine(dir, &path)?;
                recovery.quarantined_images += 1;
            }
        }

        // Leftover object temp files from a crashed put. The store
        // index never reads them, so deleting is safe.
        for fanout in std::fs::read_dir(dir.join("objects"))? {
            let fanout = fanout?.path();
            if !fanout.is_dir() {
                continue;
            }
            for obj in std::fs::read_dir(&fanout)? {
                let path = obj?.path();
                let is_tmp = path
                    .extension()
                    .and_then(|e| e.to_str())
                    .is_some_and(|e| e.starts_with("tmp"));
                if is_tmp {
                    std::fs::remove_file(&path)?;
                    recovery.removed_object_tmps += 1;
                }
            }
        }

        // Counters must stay ahead of every surviving entry.
        let max_id = state.images.iter().map(|img| img.id).max();
        if let Some(max_id) = max_id {
            if state.next_id <= max_id {
                state.next_id = max_id + 1;
                recovery.counters_bumped = true;
            }
        }
        let max_used = state.images.iter().map(|img| img.last_used).max();
        if let Some(max_used) = max_used {
            if state.clock < max_used {
                state.clock = max_used;
                recovery.counters_bumped = true;
            }
        }

        let cache = PersistentCache {
            dir: dir.to_path_buf(),
            alpha,
            limit_logical_bytes,
            tree_config,
            store,
            state,
            recovery,
            obs: None,
        };
        if !cache.recovery.clean() {
            cache.save_state()?;
        }
        Ok(cache)
    }

    /// What recovery had to clean up when this handle was opened.
    pub fn last_recovery(&self) -> RecoveryReport {
        self.recovery
    }

    /// Register `persist.*` counters (decisions, image builds, state
    /// saves, evictions) and the backing store's `store.obj_*` I/O
    /// counters in `registry`. Subsequent operations record into it.
    pub fn attach_metrics(&mut self, registry: &MetricsRegistry) {
        self.obs = Some(PcObs::new(registry));
        self.store.attach_metrics(registry);
    }

    /// Check the durable-state invariants; an `Err` means the directory
    /// is corrupted in a way recovery should have fixed.
    pub fn check_invariants(&self) -> io::Result<()> {
        let mut ids = std::collections::HashSet::new();
        for img in &self.state.images {
            if !ids.insert(img.id) {
                return Err(invalid_state(format!("duplicate image id {}", img.id)));
            }
            if img.id >= self.state.next_id {
                return Err(invalid_state(format!(
                    "image id {} >= next_id {}",
                    img.id, self.state.next_id
                )));
            }
            if img.last_used > self.state.clock {
                return Err(invalid_state(format!(
                    "image {} last_used {} is ahead of clock {}",
                    img.id, img.last_used, self.state.clock
                )));
            }
            let path = self.image_path(img.id);
            let len = std::fs::metadata(&path)
                .map_err(|_| invalid_state(format!("image file missing: {}", path.display())))?
                .len();
            if len != img.physical_bytes {
                return Err(invalid_state(format!(
                    "image {} is {} bytes on disk, index says {}",
                    img.id, len, img.physical_bytes
                )));
            }
        }
        Ok(())
    }

    /// Deep repair: re-parse every image file and quarantine the ones
    /// whose LLIMG payload is corrupt (recovery only checks sizes);
    /// with a repository, also prune objects no surviving image
    /// references.
    pub fn repair(&mut self, repo: Option<&Repository>) -> io::Result<RepairReport> {
        let mut report = RepairReport::default();
        let mut kept = Vec::with_capacity(self.state.images.len());
        for img in std::mem::take(&mut self.state.images) {
            let path = self.image_path(img.id);
            let parses = match std::fs::File::open(&path) {
                Ok(f) => ImageReader::parse(f).is_ok(),
                Err(_) => false,
            };
            if parses {
                kept.push(img);
            } else {
                quarantine(&self.dir, &path)?;
                report.quarantined_images += 1;
            }
        }
        self.state.images = kept;
        if let Some(repo) = repo {
            let (count, bytes) = self.prune(repo)?;
            report.pruned_objects = count;
            report.pruned_bytes = bytes;
        }
        if report.quarantined_images > 0 {
            self.save_state()?;
        }
        Ok(report)
    }

    /// Images currently cached.
    pub fn images(&self) -> &[StoredImage] {
        &self.state.images
    }

    /// Total logical bytes cached.
    pub fn total_logical_bytes(&self) -> u64 {
        self.state.images.iter().map(|i| i.logical_bytes).sum()
    }

    /// The content-addressed object store backing the images.
    pub fn store(&self) -> &DiskStore {
        &self.store
    }

    fn image_path(&self, id: u64) -> PathBuf {
        self.dir.join("images").join(format!("{id}.llimg"))
    }

    /// Durably replace `state.json`: checksummed payload, fsynced temp
    /// file, atomic rename, fsynced parent directory. A crash at any
    /// point leaves either the previous state or this one intact.
    fn save_state(&self) -> io::Result<()> {
        let json = serde_json::to_vec_pretty(&self.state)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        let mut bytes = Vec::with_capacity(STATE_MAGIC.len() + 33 + json.len());
        bytes.extend_from_slice(STATE_MAGIC);
        bytes.extend_from_slice(ContentHash::of(&json).to_hex().as_bytes());
        bytes.push(b'\n');
        bytes.extend_from_slice(&json);
        let tmp = self.dir.join("state.json.tmp");
        {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(&bytes)?;
            f.sync_all()?;
        }
        std::fs::rename(tmp, self.dir.join("state.json"))?;
        fsync_dir(&self.dir)?;
        if let Some(obs) = &self.obs {
            obs.state_saves.inc();
        }
        Ok(())
    }

    fn build_image(&self, repo: &Repository, id: u64, spec: &Spec) -> io::Result<StoredImage> {
        let sw = Shrinkwrap::new(repo, &self.store, self.tree_config);
        let path = self.image_path(id);
        let report = sw.build_to_path(spec, &path)?;
        // The image must be durable before any state that references it
        // is; recovery treats a size mismatch as a torn write.
        let f = std::fs::File::open(&path)?;
        f.sync_all()?;
        let physical_bytes = f.metadata()?.len();
        if let Some(obs) = &self.obs {
            obs.images_built.inc();
            obs.image_bytes_written.add(physical_bytes);
        }
        Ok(StoredImage {
            id,
            spec: spec.clone(),
            logical_bytes: report.logical_bytes,
            physical_bytes,
            last_used: 0,
        })
    }

    /// Process one job specification (Algorithm 1), materializing
    /// images on disk as needed. The spec must already include its
    /// dependency closure.
    ///
    /// The hit / merge / insert decision comes from the same planner
    /// the in-memory engine uses ([`plan_over`], the paper's
    /// configuration: nearest-first candidates, package-count Jaccard,
    /// CVMFS semantics so nothing conflicts); this store only executes
    /// it against disk.
    pub fn submit(&mut self, repo: &Repository, spec: &Spec) -> io::Result<Decision> {
        if let Some(obs) = &self.obs {
            obs.submits.inc();
        }
        self.state.clock += 1;
        let now = self.state.clock;

        let entries: Vec<(u64, &Spec, u64)> = self
            .state
            .images
            .iter()
            .map(|img| (img.id, &img.spec, img.logical_bytes))
            .collect();
        let sizes = repo.size_table();
        let op = plan_over(
            &entries,
            spec,
            self.alpha,
            MergeOrder::NearestFirst,
            DistanceMetric::PackageCount,
            &sizes,
            &NoConflicts,
        );
        drop(entries);

        match op {
            PlannedOp::Hit { image } => {
                let img = self
                    .state
                    .images
                    .iter_mut()
                    .find(|img| img.id == image.0)
                    .expect("planned hit image is indexed");
                img.last_used = now;
                let path = self.image_path(image.0);
                self.save_state()?;
                if let Some(obs) = &self.obs {
                    obs.hits.inc();
                }
                Ok(Decision::Hit { image: path })
            }
            PlannedOp::Merge { image, .. } => {
                let idx = self
                    .state
                    .images
                    .iter()
                    .position(|img| img.id == image.0)
                    .expect("planned merge image is indexed");
                let old = self.state.images[idx].clone();
                let merged_spec = old.spec.union(spec);
                let mut rebuilt = self.build_image(repo, old.id, &merged_spec)?;
                rebuilt.last_used = now;
                self.state.images[idx] = rebuilt;
                self.evict_to_limit(old.id)?;
                self.save_state()?;
                if let Some(obs) = &self.obs {
                    obs.merges.inc();
                }
                Ok(Decision::Merged {
                    image: self.image_path(old.id),
                })
            }
            PlannedOp::Insert => {
                let id = self.state.next_id;
                self.state.next_id += 1;
                let mut img = self.build_image(repo, id, spec)?;
                img.last_used = now;
                self.state.images.push(img);
                self.evict_to_limit(id)?;
                self.save_state()?;
                if let Some(obs) = &self.obs {
                    obs.inserts.inc();
                }
                Ok(Decision::Inserted {
                    image: self.image_path(id),
                })
            }
        }
    }

    fn evict_to_limit(&mut self, protect: u64) -> io::Result<()> {
        while self.total_logical_bytes() > self.limit_logical_bytes {
            let victim = self
                .state
                .images
                .iter()
                .filter(|img| img.id != protect)
                .min_by_key(|img| (img.last_used, img.id))
                .map(|img| img.id);
            let Some(victim) = victim else { break };
            self.state.images.retain(|img| img.id != victim);
            if let Some(obs) = &self.obs {
                obs.evicted_images.inc();
            }
            let path = self.image_path(victim);
            if path.exists() {
                std::fs::remove_file(path)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use landlord_core::spec::PackageId;
    use landlord_repo::RepoConfig;
    use landlord_shrinkwrap::ImageReader;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "landlord-pc-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    fn repo() -> Repository {
        Repository::generate(&RepoConfig::small_for_tests(61))
    }

    #[test]
    fn insert_hit_merge_cycle() {
        let dir = temp_dir("cycle");
        let r = repo();
        let mut cache =
            PersistentCache::open(&dir, 0.9, u64::MAX, FileTreeConfig::miniature()).unwrap();

        let a = r.closure_spec(&[PackageId(r.package_count() as u32 - 1)]);
        let d1 = cache.submit(&r, &a).unwrap();
        assert!(matches!(d1, Decision::Inserted { .. }));
        assert!(d1.image_path().exists());

        let d2 = cache.submit(&r, &a).unwrap();
        assert!(matches!(d2, Decision::Hit { .. }));

        // A near spec merges: the same closure plus one more seed.
        let b = r.closure_spec(&[
            PackageId(r.package_count() as u32 - 1),
            PackageId(r.package_count() as u32 - 2),
        ]);
        let d3 = cache.submit(&r, &b).unwrap();
        assert!(matches!(d3, Decision::Merged { .. }), "got {d3:?}");
        assert_eq!(cache.images().len(), 1);

        // The merged image file is a valid LLIMG covering the union.
        let img = ImageReader::parse(std::fs::File::open(d3.image_path()).unwrap()).unwrap();
        assert!(!img.is_empty());

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn attached_metrics_count_decisions_and_io() {
        use landlord_obs::LogicalClock;
        use std::sync::Arc;

        let dir = temp_dir("metrics");
        let r = repo();
        let registry = MetricsRegistry::new(Arc::new(LogicalClock::new()));
        let mut cache =
            PersistentCache::open(&dir, 0.9, u64::MAX, FileTreeConfig::miniature()).unwrap();
        cache.attach_metrics(&registry);

        let a = r.closure_spec(&[PackageId(r.package_count() as u32 - 1)]);
        assert!(matches!(
            cache.submit(&r, &a).unwrap(),
            Decision::Inserted { .. }
        ));
        assert!(matches!(
            cache.submit(&r, &a).unwrap(),
            Decision::Hit { .. }
        ));
        let b = r.closure_spec(&[
            PackageId(r.package_count() as u32 - 1),
            PackageId(r.package_count() as u32 - 2),
        ]);
        assert!(matches!(
            cache.submit(&r, &b).unwrap(),
            Decision::Merged { .. }
        ));

        let snap = registry.snapshot();
        assert_eq!(snap.counters.get("persist.submits"), Some(&3));
        assert_eq!(snap.counters.get("persist.hits"), Some(&1));
        assert_eq!(snap.counters.get("persist.merges"), Some(&1));
        assert_eq!(snap.counters.get("persist.inserts"), Some(&1));
        assert_eq!(snap.counters.get("persist.images_built"), Some(&2));
        assert_eq!(snap.counters.get("persist.state_saves"), Some(&3));
        assert!(snap.counters.get("persist.image_bytes_written").copied() > Some(0));
        // The backing store's I/O counters ride along.
        assert!(snap.counters.get("store.obj_puts").copied() > Some(0));

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn state_survives_reopen() {
        let dir = temp_dir("reopen");
        let r = repo();
        let spec = r.closure_spec(&[PackageId(0)]);
        {
            let mut cache =
                PersistentCache::open(&dir, 0.8, u64::MAX, FileTreeConfig::miniature()).unwrap();
            cache.submit(&r, &spec).unwrap();
        }
        let mut cache =
            PersistentCache::open(&dir, 0.8, u64::MAX, FileTreeConfig::miniature()).unwrap();
        assert_eq!(cache.images().len(), 1);
        let d = cache.submit(&r, &spec).unwrap();
        assert!(
            matches!(d, Decision::Hit { .. }),
            "persisted image must hit"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn eviction_removes_files() {
        let dir = temp_dir("evict");
        let r = repo();
        // Tiny logical limit forces eviction after the second insert.
        let first = r.closure_spec(&[PackageId(r.package_count() as u32 - 1)]);
        let first_bytes: u64 = first.iter().map(|p| r.meta(p).bytes).sum();
        let mut cache =
            PersistentCache::open(&dir, 0.0, first_bytes + 1, FileTreeConfig::miniature()).unwrap();
        let d1 = cache.submit(&r, &first).unwrap();
        // A disjoint-ish second spec (alpha 0 forbids merging anyway).
        let second = r.closure_spec(&[PackageId(r.package_count() as u32 - 7)]);
        let d2 = cache.submit(&r, &second).unwrap();
        assert!(matches!(d2, Decision::Inserted { .. }));
        assert_eq!(cache.images().len(), 1, "first image evicted");
        assert!(!d1.image_path().exists(), "evicted file must be deleted");
        assert!(d2.image_path().exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    fn open_default(dir: &Path) -> io::Result<PersistentCache> {
        PersistentCache::open(dir, 0.8, u64::MAX, FileTreeConfig::miniature())
    }

    /// Populate a directory with two images and return it.
    fn populated(tag: &str) -> (PathBuf, Repository) {
        let dir = temp_dir(tag);
        let r = repo();
        let n = r.package_count() as u32;
        let mut cache = PersistentCache::open(&dir, 0.0, u64::MAX, FileTreeConfig::miniature())
            .expect("open fresh");
        cache
            .submit(&r, &r.closure_spec(&[PackageId(n - 1)]))
            .unwrap();
        cache
            .submit(&r, &r.closure_spec(&[PackageId(n - 7)]))
            .unwrap();
        (dir, r)
    }

    #[test]
    fn state_file_is_checksummed_and_round_trips() {
        let (dir, _r) = populated("ckfmt");
        let raw = std::fs::read(dir.join("state.json")).unwrap();
        assert!(raw.starts_with(b"LLSTATE1 "), "state carries its header");
        let cache = open_default(&dir).unwrap();
        assert!(cache.last_recovery().clean(), "clean dir needs no recovery");
        assert_eq!(cache.images().len(), 2);
        cache.check_invariants().unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_truncated_and_empty_state_error_without_panic() {
        let (dir, _r) = populated("ckbad");
        let state = dir.join("state.json");
        let good = std::fs::read(&state).unwrap();

        // Truncated mid-payload: the checksum catches it.
        std::fs::write(&state, &good[..good.len() / 2]).unwrap();
        assert!(open_default(&dir).is_err(), "truncated state must error");

        // Flipped payload byte: also caught.
        let mut flipped = good.clone();
        let last = flipped.len() - 2;
        flipped[last] ^= 0x40;
        std::fs::write(&state, &flipped).unwrap();
        assert!(open_default(&dir).is_err(), "corrupted state must error");

        // Empty file: parses as neither header nor JSON.
        std::fs::write(&state, b"").unwrap();
        assert!(open_default(&dir).is_err(), "empty state must error");

        // Garbage JSON.
        std::fs::write(&state, b"{\"next_id\": \"not a number\"").unwrap();
        assert!(open_default(&dir).is_err(), "garbage state must error");

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn legacy_plain_json_state_still_opens() {
        let (dir, _r) = populated("cklegacy");
        let raw = std::fs::read(dir.join("state.json")).unwrap();
        let nl = raw.iter().position(|&b| b == b'\n').unwrap();
        // Strip the header: exactly what a pre-checksum cache wrote.
        std::fs::write(dir.join("state.json"), &raw[nl + 1..]).unwrap();
        let cache = open_default(&dir).unwrap();
        assert_eq!(cache.images().len(), 2);
        cache.check_invariants().unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn leftover_tmp_state_is_quarantined() {
        let (dir, _r) = populated("cktmp");
        std::fs::write(dir.join("state.json.tmp"), b"torn half-written state").unwrap();
        let cache = open_default(&dir).unwrap();
        assert!(cache.last_recovery().quarantined_tmp_state);
        assert!(!dir.join("state.json.tmp").exists());
        assert!(dir.join("quarantine").join("state.json.tmp").exists());
        assert_eq!(cache.images().len(), 2, "durable state unaffected");
        cache.check_invariants().unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncated_image_is_quarantined_and_dropped() {
        let (dir, r) = populated("cktorn");
        let victim = {
            let cache = open_default(&dir).unwrap();
            cache.images()[0].clone()
        };
        let path = dir.join("images").join(format!("{}.llimg", victim.id));
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() / 2]).unwrap();

        let mut cache = open_default(&dir).unwrap();
        let rec = cache.last_recovery();
        assert_eq!(rec.quarantined_images, 1);
        assert_eq!(rec.dropped_missing_images, 1);
        assert_eq!(cache.images().len(), 1, "torn image forgotten");
        assert!(!path.exists());
        cache.check_invariants().unwrap();
        // The spec is servable again: it just rebuilds.
        cache.submit(&r, &victim.spec).unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unindexed_image_and_object_tmps_are_swept() {
        let (dir, _r) = populated("ckstray");
        // An image written right before a crash that never got indexed.
        std::fs::write(dir.join("images").join("999.llimg"), b"almost an image").unwrap();
        // A torn object put.
        let fan = dir.join("objects").join("ab");
        std::fs::create_dir_all(&fan).unwrap();
        std::fs::write(fan.join("deadbeef.tmp1234"), b"half an object").unwrap();

        let cache = open_default(&dir).unwrap();
        let rec = cache.last_recovery();
        assert_eq!(rec.quarantined_images, 1);
        assert_eq!(rec.removed_object_tmps, 1);
        assert!(!dir.join("images").join("999.llimg").exists());
        assert!(!fan.join("deadbeef.tmp1234").exists());
        cache.check_invariants().unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn repair_quarantines_deep_corruption_and_prunes() {
        let (dir, r) = populated("ckrepair");
        let victim_id = {
            let cache = open_default(&dir).unwrap();
            cache.images()[0].id
        };
        // Same length, garbage content: size recovery can't see it,
        // only a deep parse can.
        let path = dir.join("images").join(format!("{victim_id}.llimg"));
        let len = std::fs::metadata(&path).unwrap().len() as usize;
        std::fs::write(&path, vec![0x5a; len]).unwrap();

        let mut cache = open_default(&dir).unwrap();
        assert!(cache.last_recovery().clean(), "sizes all match");
        let report = cache.repair(Some(&r)).unwrap();
        assert_eq!(report.quarantined_images, 1);
        assert!(
            report.pruned_objects > 0,
            "quarantined image must orphan objects"
        );
        assert_eq!(cache.images().len(), 1);
        cache.check_invariants().unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// Garbage collection over a cache directory's object store.
///
/// Image evictions delete the `.llimg` files but leave their source
/// objects behind (another live image may share them). These methods
/// find — and optionally delete — objects no live image references.
impl PersistentCache {
    /// Hashes of every object referenced by the live images, recomputed
    /// deterministically from their specs and the tree config.
    fn live_hashes(
        &self,
        repo: &Repository,
    ) -> std::collections::HashSet<landlord_store::ContentHash> {
        use landlord_shrinkwrap::filetree;
        let mut live = std::collections::HashSet::new();
        for img in &self.state.images {
            for pkg in img.spec.iter() {
                for file in filetree::package_tree(repo.meta(pkg), &self.tree_config) {
                    live.insert(landlord_store::ContentHash::of(&filetree::file_contents(
                        &file,
                    )));
                }
            }
        }
        live
    }

    /// Objects in the store that no live image references.
    pub fn orphaned_objects(&self, repo: &Repository) -> Vec<landlord_store::ContentHash> {
        use landlord_store::ObjectStore;
        let live = self.live_hashes(repo);
        self.store
            .hashes()
            .into_iter()
            .filter(|h| !live.contains(h))
            .collect()
    }

    /// Delete every orphaned object; returns `(objects, bytes)` freed.
    pub fn prune(&self, repo: &Repository) -> io::Result<(usize, u64)> {
        let orphans = self.orphaned_objects(repo);
        let mut freed = 0u64;
        for &hash in &orphans {
            freed += self.store.remove(hash)?;
        }
        Ok((orphans.len(), freed))
    }
}

#[cfg(test)]
mod gc_tests {
    use super::*;
    use landlord_core::spec::PackageId;
    use landlord_repo::RepoConfig;
    use landlord_store::ObjectStore;

    #[test]
    fn eviction_orphans_objects_and_prune_reclaims_them() {
        let dir = std::env::temp_dir().join(format!(
            "landlord-pc-gc-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        let repo = Repository::generate(&RepoConfig::small_for_tests(61));
        let n = repo.package_count() as u32;

        // Limit sized to hold exactly one image at a time; alpha 0
        // forbids merging, so the second submit evicts the first.
        let first = repo.closure_spec(&[PackageId(n - 1)]);
        let first_bytes: u64 = first.iter().map(|p| repo.meta(p).bytes).sum();
        let mut cache = PersistentCache::open(
            &dir,
            0.0,
            first_bytes + 1,
            landlord_shrinkwrap::filetree::FileTreeConfig::miniature(),
        )
        .unwrap();

        cache.submit(&repo, &first).unwrap();
        assert!(
            cache.orphaned_objects(&repo).is_empty(),
            "everything live initially"
        );

        let second = repo.closure_spec(&[PackageId(n - 7)]);
        cache.submit(&repo, &second).unwrap();
        assert_eq!(cache.images().len(), 1, "first image evicted");

        let orphans = cache.orphaned_objects(&repo);
        assert!(!orphans.is_empty(), "evicted image must orphan objects");

        let before = cache.store().stored_bytes();
        let (count, freed) = cache.prune(&repo).unwrap();
        assert_eq!(count, orphans.len());
        assert!(freed > 0);
        assert_eq!(cache.store().stored_bytes(), before - freed);
        assert!(
            cache.orphaned_objects(&repo).is_empty(),
            "prune is complete"
        );

        // The live image still verifies: pruning touched only garbage.
        let live_img = cache.images()[0].clone();
        let d = cache.submit(&repo, &live_img.spec).unwrap();
        assert!(matches!(d, Decision::Hit { .. }));

        std::fs::remove_dir_all(&dir).ok();
    }
}
