//! `landlord` — specification-level container image management.
//!
//! See `landlord help` (or [`landlord_cli::commands::USAGE`]) for the
//! subcommands. Implementation lives in the library so it is testable;
//! this binary only dispatches.

use landlord_cli::args::Args;
use landlord_cli::commands;

fn main() {
    let mut argv = std::env::args().skip(1);
    let cmd = argv.next().unwrap_or_else(|| "help".to_string());
    let args = match Args::parse(argv) {
        Ok(args) => args,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let result = commands::dispatch(&cmd, &args);
    if let Err(e) = &result {
        // A "recovered" status (verify exit 1) is an outcome report,
        // not a failure; everything else gets the error prefix.
        match e.downcast_ref::<commands::ExitStatus>() {
            Some(status) if status.code == 1 => eprintln!("{status}"),
            _ => eprintln!("error: {e}"),
        }
    }
    // Commands with a richer exit-code contract (`verify`: 0 clean,
    // 1 repaired, 2 unrecoverable) raise an ExitStatus; everything
    // else maps to the generic failure code 1.
    let code = commands::exit_code(&result);
    if code != 0 {
        std::process::exit(code);
    }
}
