//! `landlord` — specification-level container image management.
//!
//! See `landlord help` (or [`landlord_cli::commands::USAGE`]) for the
//! subcommands. Implementation lives in the library so it is testable;
//! this binary only dispatches.

use landlord_cli::args::Args;
use landlord_cli::commands;

fn main() {
    let mut argv = std::env::args().skip(1);
    let cmd = argv.next().unwrap_or_else(|| "help".to_string());
    let args = match Args::parse(argv) {
        Ok(args) => args,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    if let Err(e) = commands::dispatch(&cmd, &args) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
