//! # landlord-cli
//!
//! The `landlord` command-line tool: the paper's "lightweight job
//! wrapper" deployment (§V, "LANDLORD Deployment") plus the experiment
//! runner.
//!
//! * [`persistent`] — a durable image cache directory: LLIMG files
//!   built by shrinkwrap plus a JSON state file, managed with
//!   Algorithm 1 (hit / merge / insert + LRU eviction) across process
//!   lifetimes. This is what `landlord submit` drives.
//! * [`args`] — dependency-free flag parsing for the subcommands.
//! * [`commands`] — one function per subcommand; `main` just
//!   dispatches.

pub mod args;
pub mod commands;
pub mod persistent;
