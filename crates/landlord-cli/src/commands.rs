//! Subcommand implementations for the `landlord` binary.

use crate::args::Args;
use crate::persistent::PersistentCache;
use landlord_core::events::{SequencedEvent, SequencingSink};
use landlord_repo::sampler::{Sampler, SelectionScheme};
use landlord_repo::{persist, RepoConfig, Repository};
use landlord_shrinkwrap::filetree::FileTreeConfig;
use landlord_sim::experiments::{self, ExperimentContext, Scale};
use landlord_sim::report::{fmt_gb, fmt_pct, fmt_tb, Table};
use landlord_sim::{simulator, workload};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::error::Error;
use std::path::Path;

/// Any command error (message already formatted for the user).
pub type CmdResult = Result<(), Box<dyn Error>>;

/// A command failure that carries a specific process exit code.
/// `landlord verify` uses the full contract: 0 = clean, 1 = damage was
/// found and repaired (the directory is consistent again), 2 =
/// unrecoverable. Plain errors keep the generic exit code 1.
#[derive(Debug)]
pub struct ExitStatus {
    /// The process exit code `main` should report.
    pub code: i32,
    message: String,
}

impl ExitStatus {
    /// Exit code 1: damage was found, repaired, and verified.
    pub fn recovered(message: impl Into<String>) -> Self {
        ExitStatus {
            code: 1,
            message: message.into(),
        }
    }

    /// Exit code 2: the directory cannot be restored to a trustworthy
    /// state automatically.
    pub fn unrecoverable(message: impl Into<String>) -> Self {
        ExitStatus {
            code: 2,
            message: message.into(),
        }
    }
}

impl std::fmt::Display for ExitStatus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl Error for ExitStatus {}

/// The process exit code a command result maps to: 0 for success, the
/// embedded [`ExitStatus`] code when one was raised, 1 otherwise.
pub fn exit_code(result: &CmdResult) -> i32 {
    match result {
        Ok(()) => 0,
        Err(e) => e.downcast_ref::<ExitStatus>().map_or(1, |s| s.code),
    }
}

/// Usage text.
pub const USAGE: &str = "\
landlord — specification-level container image management (LANDLORD, IPDPS 2020)

USAGE:
  landlord gen-repo   --out FILE [--packages N] [--total-gb G] [--seed S]
  landlord stats      --repo FILE
  landlord submit     --cache-dir DIR (--repo FILE | --seed S) [--select N]
                      [--alpha A] [--limit-gb G] [--job-seed S]
                      [--eviction E] [--eviction-seed S]
                      [--checkpoint-every N]
  landlord simulate   [--scale full|smoke] [--alpha A] [--cache-x M]
                      [--jobs N] [--repeats R] [--seed S] [--trace FILE]
                      [--policy P] [--eviction E] [--eviction-seed S]
                      [--merge-order O]
                      [--metric D] [--candidates C] [--report-json FILE]
                      [--metrics-json FILE] [--events-jsonl FILE]
                      [--fault-rate F] [--fault-seed S] [--retries N]
                      [--backoff-base T] [--backoff-cap T]
                      [--shards N] [--threads M]
  landlord bench-report [--out FILE] [--seed S] [--jobs N] [--repeats R]
                      [--shards N] [--threads M]
                      [--touch-images N] [--touch-ops N]
  landlord bench-persist [--out FILE] [--images N,N,...] [--rewrite-ops N]
                      [--append-ops N] [--replay-records N]
  landlord serve      [--scale full|smoke] [--seed S] [--jobs N] [--repeats R]
                      [--zipf E] [--arrival A] [--mean-ticks T]
                      [--alpha A] [--cache-x M] [--shards N] [--threads M]
                      [--coalesce on|off] [--backpressure B] [--queue-cap N]
                      [--bytes-per-tick B] [--report-json FILE]
                      [--metrics-json FILE]
  landlord bench-serve [--out FILE] [--seed S] [--jobs N] [--repeats R]
                      [--zipf E] [--shards N] [--wall-threads N,N,...]
  landlord trace      --out FILE [--scale full|smoke] [--seed S]
  landlord experiment <id|all> [--scale full|smoke] [--seed S]
                      [--threads T] [--csv-dir DIR] [--plot-dir DIR]
  landlord spec-from  --repo FILE (--python F | --modules F | --joblog F)...
                      [--out SPEC.json]
  landlord verify     --cache-dir DIR [--repair yes] [--repo FILE | --seed S]
  landlord gc         --cache-dir DIR [--repo FILE | --seed S] [--prune yes]
  landlord help

Experiment ids: fig1 fig2 fig3 fig4 fig4a fig4b fig4c fig5 fig6a fig6b
fig6c fig6d fig7 fig8 ablation-evict ablation-merge-order
ablation-candidates ablation-split ablation-metric ext-cluster
ext-evict-sweep ext-usermix ext-update ext-faults

Simulate policies (--policy): landlord per-job full-repo layered
block-dedup. LANDLORD knobs: --eviction lru|lfu|largest-first|
cost-density|gdsf|s3-fifo|lhd-sample (--eviction-seed seeds
lhd-sample's victim sampling), --merge-order nearest-first|
arrival-order|largest-first|smallest-first, --metric
package-count|bytes, --candidates exact-scan|minhash-lsh:<bands>x<rows>.
--report-json FILE (or -) writes the machine-readable PolicyReport.
--metrics-json FILE (or -) exports a deterministic metrics snapshot
(landlord-obs-metrics/v1): counters, gauges, and logical-tick span
histograms that are byte-identical across runs at a fixed seed.
--events-jsonl FILE writes the sequenced cache-event journal as JSONL
(- streams it to stderr; stdout stays machine-parseable); landlord
policy only, without --shards/--threads.
--shards N partitions the cache into N independent shards and --threads M
replays the trace with M deterministic shard-affine workers (landlord
policy only, incompatible with --fault-rate).
bench-report runs a pinned smoke workload under a wall-clock registry
and writes BENCH_core.json (landlord-bench/v1): ops/sec, plan/apply
p50/p99 nanoseconds, a fold-exactness check that a concurrent
sharded replay folds to byte-identical deterministic metrics, and a
per-policy touch-path comparison (--touch-images, --touch-ops) of
the evictors' hit cost — O(log n) ordered indexes vs O(1) queues
and sampling.
bench-persist writes BENCH_persist.json (landlord-persist-bench/v1):
per-operation persistence cost of the pre-WAL full-state rewrite vs
the WAL append, and checkpoint-load + log-replay open time, at each
synthetic cache population in --images.
serve runs the long-running server mode in deterministic virtual time:
an open-loop seeded load generator (--arrival poisson|uniform,
--mean-ticks gap) fires Zipf-skewed specs (--zipf exponent) at the
sharded cache; in-flight identical or subset-satisfiable specs
coalesce onto one build (--coalesce on|off), and a bounded admission
queue (--queue-cap) applies backpressure (--backpressure
block|reject). At a fixed seed the folded counters and the coalesce
ledger are byte-identical across runs and thread counts.
bench-serve writes BENCH_serve.json (landlord-serve-bench/v1): the
virtual-time determinism self-check (two same-seed runs byte-compared,
thread invariance), the coalesce rate under Zipf load, and wall-clock
single-flight throughput at each --wall-threads count: requests/sec
and latency p50/p99 nanoseconds through the real SingleFlight path.
verify exits 0 when the cache directory was already clean, 1 when
crash damage was found and repaired, and 2 when the directory is
unrecoverable (or problems remain without --repair).
";

/// Parse an optional `--key token` flag via an enum's `parse`,
/// erroring with the full list of valid tokens.
fn token_flag<T>(
    args: &Args,
    key: &str,
    parse: impl Fn(&str) -> Option<T>,
    default: T,
    tokens: &str,
) -> Result<T, Box<dyn Error>> {
    match args.get(key) {
        None => Ok(default),
        Some(v) => {
            parse(v).ok_or_else(|| format!("unknown --{key} {v:?} (valid: {tokens})").into())
        }
    }
}

fn parse_scale(args: &Args) -> Result<Scale, Box<dyn Error>> {
    match args.get_or("scale", "smoke") {
        "full" => Ok(Scale::Full),
        "smoke" => Ok(Scale::Smoke),
        other => Err(format!("unknown --scale {other:?} (full|smoke)").into()),
    }
}

/// `landlord gen-repo`
pub fn gen_repo(args: &Args) -> CmdResult {
    let out = args.require("out")?;
    let seed = args.get_parsed("seed", 1u64, "an integer seed")?;
    let packages = args.get_parsed("packages", 9660usize, "a package count")?;
    let total_gb = args.get_parsed("total-gb", 700.0f64, "a size in GB")?;
    let cfg = RepoConfig {
        package_count: packages,
        total_bytes: (total_gb * 1e9) as u64,
        ..RepoConfig::sft_like(seed)
    };
    let repo = Repository::generate(&cfg);
    persist::save_json(&repo, Path::new(out))?;
    println!(
        "wrote {out}: {} packages, {} edges, {} GB",
        repo.package_count(),
        repo.graph().edge_count(),
        fmt_gb(repo.total_bytes() as f64)
    );
    Ok(())
}

/// `landlord stats`
pub fn stats(args: &Args) -> CmdResult {
    let repo = persist::load_json(Path::new(args.require("repo")?))?;
    let s = landlord_repo::stats::repo_stats(&repo);
    let mut t = Table::new("Repository statistics", &["metric", "value"]);
    t.push_row(vec!["packages".into(), s.package_count.to_string()]);
    t.push_row(vec![
        "products".into(),
        repo.catalog().product_count().to_string(),
    ]);
    t.push_row(vec!["edges".into(), s.edge_count.to_string()]);
    t.push_row(vec!["total GB".into(), fmt_gb(s.total_bytes as f64)]);
    t.push_row(vec!["max depth".into(), s.max_depth.to_string()]);
    t.push_row(vec![
        "mean fan-out".into(),
        format!("{:.2}", s.mean_fan_out),
    ]);
    t.push_row(vec!["max fan-in".into(), s.max_fan_in.to_string()]);
    t.push_row(vec![
        "median pkg MB".into(),
        format!("{:.1}", s.median_package_bytes as f64 / 1e6),
    ]);
    print!("{}", t.render());

    let mut h = Table::new(
        "Fan-in distribution (log buckets)",
        &["fan_in >=", "packages"],
    );
    for (lb, count) in landlord_repo::stats::fan_in_histogram(&repo).buckets() {
        h.push_row(vec![lb.to_string(), count.to_string()]);
    }
    print!("{}", h.render());

    let mut top = Table::new(
        "Most depended-upon packages",
        &["package", "layer", "fan_in"],
    );
    for (p, fan_in) in landlord_repo::stats::top_fan_in(&repo, 8) {
        let meta = repo.meta(p);
        top.push_row(vec![
            meta.spec_string(),
            meta.layer.to_string(),
            fan_in.to_string(),
        ]);
    }
    print!("{}", top.render());
    Ok(())
}

/// `landlord submit`
pub fn submit(args: &Args) -> CmdResult {
    let cache_dir = args.require("cache-dir")?;
    let repo = match args.get("repo") {
        Some(path) => persist::load_json(Path::new(path))?,
        None => {
            let seed = args.get_parsed("seed", 1u64, "an integer seed")?;
            Repository::generate(&RepoConfig::small_for_tests(seed))
        }
    };
    let alpha = args.get_parsed("alpha", 0.8f64, "a float in [0,1]")?;
    let limit_gb = args.get_parsed("limit-gb", 1000.0f64, "a size in GB")?;
    let select = args.get_parsed("select", 3usize, "a selection size")?;
    let job_seed = args.get_parsed("job-seed", 7u64, "an integer seed")?;
    let checkpoint_every = args.get_parsed(
        "checkpoint-every",
        crate::persistent::DEFAULT_CHECKPOINT_EVERY,
        "a record count",
    )?;
    if checkpoint_every == 0 {
        return Err("--checkpoint-every must be at least 1".into());
    }

    // Draw a job: random selection expanded by its dependency closure —
    // exactly what a spec file generated from `pip imports` or `module
    // load` logs would contain.
    let sampler = Sampler::new(&repo);
    let mut rng = StdRng::seed_from_u64(job_seed);
    let seeds = sampler.sample_distinct(&mut rng, SelectionScheme::UniformRandom, select);
    let spec = repo.closure_spec(&seeds);

    let mut options = crate::persistent::PersistOptions::new(
        alpha,
        (limit_gb * 1e9) as u64,
        FileTreeConfig::miniature(),
    );
    options.checkpoint_every = checkpoint_every;
    {
        use landlord_core::policy::EvictionPolicy;
        options.eviction = token_flag(
            args,
            "eviction",
            EvictionPolicy::parse,
            EvictionPolicy::default(),
            EvictionPolicy::TOKENS,
        )?;
        options.eviction_seed = args.get_parsed("eviction-seed", 0u64, "an integer seed")?;
    }
    let mut cache = PersistentCache::open_with(Path::new(cache_dir), options)?;
    let decision = cache.submit(&repo, &spec)?;
    let verb = match &decision {
        crate::persistent::Decision::Hit { .. } => "HIT   ",
        crate::persistent::Decision::Merged { .. } => "MERGE ",
        crate::persistent::Decision::Inserted { .. } => "INSERT",
    };
    println!(
        "{verb} job({} pkgs, {} GB logical) -> {}",
        spec.len(),
        fmt_gb(spec.iter().map(|p| repo.meta(p).bytes).sum::<u64>() as f64),
        decision.image_path().display()
    );
    println!(
        "cache: {} images, {} GB logical",
        cache.images().len(),
        fmt_gb(cache.total_logical_bytes() as f64)
    );
    Ok(())
}

/// `landlord simulate`
pub fn simulate(args: &Args) -> CmdResult {
    let scale = parse_scale(args)?;
    let seed = args.get_parsed("seed", 1u64, "an integer seed")?;
    let ctx = ExperimentContext {
        scale,
        seed,
        threads: 1,
    };
    let repo = ctx.repo();
    let alpha = args.get_parsed("alpha", 0.75f64, "a float in [0,1]")?;
    let cache_x = args.get_parsed("cache-x", 2.0f64, "a repo-size multiple")?;
    let mut w = ctx.standard_workload();
    w.unique_jobs = args.get_parsed("jobs", w.unique_jobs, "a job count")?;
    w.repeats = args.get_parsed("repeats", w.repeats, "a repeat count")?;

    use landlord_core::policy::{CandidateStrategy, DistanceMetric, EvictionPolicy, MergeOrder};
    let cache = landlord_core::cache::CacheConfig {
        alpha,
        limit_bytes: (repo.total_bytes() as f64 * cache_x) as u64,
        eviction: token_flag(
            args,
            "eviction",
            EvictionPolicy::parse,
            EvictionPolicy::default(),
            EvictionPolicy::TOKENS,
        )?,
        merge_order: token_flag(
            args,
            "merge-order",
            MergeOrder::parse,
            MergeOrder::default(),
            MergeOrder::TOKENS,
        )?,
        metric: token_flag(
            args,
            "metric",
            DistanceMetric::parse,
            DistanceMetric::default(),
            DistanceMetric::TOKENS,
        )?,
        candidates: token_flag(
            args,
            "candidates",
            CandidateStrategy::parse,
            CandidateStrategy::default(),
            CandidateStrategy::TOKENS,
        )?,
        eviction_seed: args.get_parsed("eviction-seed", 0u64, "an integer seed")?,
        ..Default::default()
    };

    // The failure model: --fault-rate > 0 switches to the faulty
    // simulator, where merge/insert builds can fail and retry.
    let fault_rate = args.get_parsed("fault-rate", 0.0f64, "a probability in [0,1]")?;
    if !(0.0..=1.0).contains(&fault_rate) {
        return Err(format!("--fault-rate {fault_rate} must be in [0,1]").into());
    }
    let fault_seed = args.get_parsed("fault-seed", seed ^ 0xfa, "an integer seed")?;
    let retries = args.get_parsed("retries", 0u32, "a retry count")?;
    let backoff_base = args.get_parsed("backoff-base", 4u64, "a tick count")?;
    let backoff_cap = args.get_parsed("backoff-cap", 32u64, "a tick count")?;

    // --trace FILE replays a recorded stream instead of generating one.
    let stream = match args.get("trace") {
        Some(path) => landlord_sim::trace::Trace::load(Path::new(path))?.requests,
        None => workload::generate_stream(&repo, &w),
    };
    let sizes: std::sync::Arc<dyn landlord_core::sizes::SizeModel> =
        std::sync::Arc::new(repo.size_table());
    let policy_token = args.get_or("policy", "landlord");
    let shards = args.get_parsed("shards", 1usize, "a shard count")?;
    let sim_threads = args.get_parsed("threads", 1usize, "a worker thread count")?;
    if shards == 0 || sim_threads == 0 {
        return Err("--shards and --threads must be at least 1".into());
    }
    let mut policy = simulator::make_policy(
        policy_token,
        cache,
        std::sync::Arc::clone(&sizes),
        repo.total_bytes(),
    )
    .ok_or_else(|| {
        format!(
            "unknown --policy {policy_token:?} (valid: {})",
            simulator::POLICY_TOKENS.join(", ")
        )
    })?;

    // --events-jsonl taps the landlord cache's event stream through a
    // sequencing sink; the sequenced journal is written after the run
    // (to a file, or to stderr with `-`) so stdout stays reserved for
    // the report table / JSON.
    let events_out = args.get("events-jsonl");
    let event_buf: Option<std::sync::Arc<std::sync::Mutex<Vec<SequencedEvent>>>> =
        if events_out.is_some() {
            if policy_token != "landlord" {
                return Err(format!(
                    "--events-jsonl supports only --policy landlord, got {policy_token:?}"
                )
                .into());
            }
            if shards > 1 || sim_threads > 1 {
                return Err(
                    "--events-jsonl cannot be combined with --shards/--threads (shards have \
                     no global event order)"
                        .into(),
                );
            }
            let buf = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
            let sink_buf = std::sync::Arc::clone(&buf);
            let mut tapped =
                landlord_core::cache::ImageCache::new(cache, std::sync::Arc::clone(&sizes));
            tapped.set_sink(Box::new(SequencingSink::new(move |se: SequencedEvent| {
                // Single-threaded sink; tolerate a poisoned lock rather
                // than cascading a panic out of the cache's event path.
                let mut events = match sink_buf.lock() {
                    Ok(events) => events,
                    Err(poisoned) => poisoned.into_inner(),
                };
                events.push(se);
            })));
            policy = Box::new(tapped);
            Some(buf)
        } else {
            None
        };

    // --metrics-json records the run into a logical-clock registry:
    // every exported value is a pure function of the request stream,
    // so the snapshot is byte-identical across runs at a fixed seed.
    let metrics_out = args.get("metrics-json");
    let obs = metrics_out.map(|_| simulator::SimObs::deterministic());

    let (result, fault_stats) = if shards > 1 || sim_threads > 1 {
        if policy_token != "landlord" {
            return Err(format!(
                "--shards/--threads support only --policy landlord, got {policy_token:?}"
            )
            .into());
        }
        if fault_rate > 0.0 {
            return Err(
                "--fault-rate cannot be combined with --shards/--threads (the failure model \
                 replays single-threaded)"
                    .into(),
            );
        }
        let run = landlord_sim::sharded::simulate_stream_sharded_observed(
            &stream,
            cache,
            std::sync::Arc::clone(&sizes),
            shards,
            sim_threads,
            obs.as_ref().map(|o| &*o.registry),
        );
        (run, None)
    } else if fault_rate > 0.0 {
        let cfg = landlord_sim::faults::FaultConfig {
            fail_per_mille: (fault_rate * 1000.0).round() as u32,
            seed: fault_seed,
            retry: landlord_core::policy::RetryPolicy::new(retries, backoff_base, backoff_cap),
        };
        if let Some(o) = &obs {
            policy.attach_metrics(&o.registry);
        }
        let fr = landlord_sim::faults::simulate_policy_with_faults(policy.as_mut(), &stream, &cfg);
        if let Some(o) = &obs {
            fr.faults.record_metrics(&o.registry);
        }
        (fr.run, Some(fr.faults))
    } else {
        (
            simulator::simulate_policy_observed(policy.as_mut(), &stream, 0, obs.as_ref()),
            None,
        )
    };
    if let Some(out) = args.get("report-json") {
        let report = simulator::PolicyReport::from_run(policy_token, &result, fault_stats);
        let json = format!("{}\n", serde_json::to_string_pretty(&report)?);
        if out == "-" {
            print!("{json}");
        } else {
            std::fs::write(out, json)?;
            eprintln!("[report] {out}");
        }
    }
    if let (Some(out), Some(o)) = (metrics_out, &obs) {
        let json = o.registry.snapshot().to_json_pretty();
        if out == "-" {
            print!("{json}");
        } else {
            std::fs::write(out, json)?;
            eprintln!("[metrics] {out}");
        }
    }
    if let (Some(out), Some(buf)) = (events_out, &event_buf) {
        let events = match buf.lock() {
            Ok(events) => events,
            Err(poisoned) => poisoned.into_inner(),
        };
        let count = events.len();
        let mut body = String::with_capacity(count * 64);
        for se in events.iter() {
            body.push_str(&serde_json::to_string(se)?);
            body.push('\n');
        }
        // Release the event buffer before touching the filesystem.
        drop(events);
        if out == "-" {
            eprint!("{body}");
        } else {
            std::fs::write(out, body)?;
            eprintln!("[events] {out} ({count} events)");
        }
    }
    let s = result.final_stats;
    let mut t = Table::new(
        format!(
            "Simulation ({policy_token}, alpha={alpha}, cache={cache_x}x repo, {} requests)",
            s.requests
        ),
        &["metric", "value"],
    );
    t.push_row(vec!["hits".into(), s.hits.to_string()]);
    t.push_row(vec!["merges".into(), s.merges.to_string()]);
    t.push_row(vec!["inserts".into(), s.inserts.to_string()]);
    t.push_row(vec!["deletes".into(), s.deletes.to_string()]);
    t.push_row(vec!["cached GB".into(), fmt_gb(s.total_bytes as f64)]);
    t.push_row(vec!["unique GB".into(), fmt_gb(s.unique_bytes as f64)]);
    t.push_row(vec!["written TB".into(), fmt_tb(s.bytes_written as f64)]);
    t.push_row(vec![
        "requested TB".into(),
        fmt_tb(s.bytes_requested as f64),
    ]);
    t.push_row(vec!["cache eff %".into(), fmt_pct(result.cache_eff_pct)]);
    t.push_row(vec![
        "container eff %".into(),
        fmt_pct(result.container_eff_pct),
    ]);
    if shards > 1 || sim_threads > 1 {
        t.push_row(vec!["shards".into(), shards.to_string()]);
        t.push_row(vec!["worker threads".into(), sim_threads.to_string()]);
    }
    if let Some(f) = fault_stats {
        t.push_row(vec!["goodput %".into(), fmt_pct(f.goodput_pct())]);
        t.push_row(vec![
            "failed requests".into(),
            f.failed_requests.to_string(),
        ]);
        t.push_row(vec!["injected faults".into(), f.faults.to_string()]);
        t.push_row(vec!["retries".into(), f.retries.to_string()]);
        t.push_row(vec!["backoff ticks".into(), f.backoff_ticks.to_string()]);
        t.push_row(vec![
            "degraded inserts".into(),
            f.degraded_inserts.to_string(),
        ]);
        t.push_row(vec!["wasted TB".into(), fmt_tb(f.wasted_bytes as f64)]);
    }
    print!("{}", t.render());
    Ok(())
}

/// Schema tag of [`BenchReport`]; bump when fields change meaning.
pub const BENCH_SCHEMA: &str = "landlord-bench/v1";

/// Phase timing summary inside `BENCH_core.json`. Ticks come from the
/// wall-clock registry (nanoseconds); p50/p99 are the log2-bucket
/// upper bounds the deterministic quantile estimator reports.
#[derive(Debug, serde::Serialize)]
struct BenchPhase {
    count: u64,
    sum_ns: u64,
    p50_ns_upper: u64,
    p99_ns_upper: u64,
}

impl BenchPhase {
    fn from_snapshot(h: &landlord_obs::HistogramSnapshot) -> Self {
        BenchPhase {
            count: h.count,
            sum_ns: h.sum,
            p50_ns_upper: h.p50,
            p99_ns_upper: h.p99,
        }
    }
}

/// Touch-path microbenchmark row inside `BENCH_core.json`: the cost
/// of a cache hit's `Evictor::on_touch` on a pre-built index, per
/// eviction policy. The ordered-index policies pay an O(log n)
/// BTreeSet re-insert per touch; the queue-rotating (S3-FIFO) and
/// sampled (LHD) policies pay O(1).
#[derive(Debug, serde::Serialize)]
struct BenchTouch {
    policy: String,
    images: u64,
    touches: u64,
    ns_per_touch: u64,
}

/// The perf-trajectory record `landlord bench-report` writes. Wall
/// time lives only here — the `--metrics-json` snapshot stays a pure
/// function of the request stream.
#[derive(Debug, serde::Serialize)]
struct BenchReport {
    schema: String,
    seed: u64,
    requests: u64,
    elapsed_ns: u64,
    ops_per_sec: f64,
    plan: BenchPhase,
    apply: BenchPhase,
    hits: u64,
    merges: u64,
    inserts: u64,
    evictions: u64,
    container_eff_milli_pct: u64,
    fold_exact: bool,
    touch: Vec<BenchTouch>,
}

/// Time `touches` evictor touch events against a population of
/// `images` images, for every eviction policy.
fn bench_touch_paths(images: u64, touches: u64) -> Vec<BenchTouch> {
    use landlord_core::cache::{make_evictor, CacheConfig};
    use landlord_core::image::{Image, ImageId};
    use landlord_core::policy::EvictionPolicy;
    use landlord_core::spec::{PackageId, Spec};

    EvictionPolicy::ALL
        .iter()
        .map(|&policy| {
            let config = CacheConfig {
                eviction: policy,
                limit_bytes: images.saturating_mul(8192),
                eviction_seed: 1,
                ..Default::default()
            };
            let mut evictor = make_evictor(&config);
            let mut pop: Vec<Image> = (0..images)
                .map(|id| {
                    Image::new(
                        ImageId(id),
                        Spec::from_ids([PackageId((id % 9660) as u32)]),
                        1024 + id % 4096,
                        id,
                    )
                })
                .collect();
            for img in &pop {
                evictor.on_insert(img);
            }
            let mut clock = images;
            let start = std::time::Instant::now();
            for i in 0..touches {
                // A fixed-stride walk touches the whole population
                // without an RNG in the timed loop.
                let pick = (i.wrapping_mul(0x9e37_79b9_7f4a_7c15) % images.max(1)) as usize;
                let img = &mut pop[pick];
                clock += 1;
                img.last_used = clock;
                img.use_count += 1;
                evictor.on_touch(img);
            }
            let ns = start.elapsed().as_nanos();
            BenchTouch {
                policy: policy.token().to_string(),
                images,
                touches,
                ns_per_touch: (ns / u128::from(touches.max(1))) as u64,
            }
        })
        .collect()
}

/// `landlord bench-report`: time a pinned smoke workload through the
/// landlord policy under a wall-clock registry, check metric
/// fold-exactness under a concurrent sharded replay, and write
/// `BENCH_core.json`.
pub fn bench_report(args: &Args) -> CmdResult {
    use landlord_core::cache::CacheConfig;
    use std::sync::Arc;

    let out = args.get_or("out", "BENCH_core.json");
    let seed = args.get_parsed("seed", 1u64, "an integer seed")?;
    let ctx = ExperimentContext {
        scale: Scale::Smoke,
        seed,
        threads: 1,
    };
    let repo = ctx.repo();
    let mut w = ctx.standard_workload();
    w.unique_jobs = args.get_parsed("jobs", w.unique_jobs, "a job count")?;
    w.repeats = args.get_parsed("repeats", w.repeats, "a repeat count")?;
    let stream = workload::generate_stream(&repo, &w);
    let sizes: Arc<dyn landlord_core::sizes::SizeModel> = Arc::new(repo.size_table());
    let cache = CacheConfig {
        alpha: 0.75,
        limit_bytes: (repo.total_bytes() as f64 * 2.0) as u64,
        ..Default::default()
    };

    // Timed pass: wall-clock registry, span histograms in nanoseconds.
    let obs = simulator::SimObs::wall_clock();
    let mut policy = landlord_core::cache::ImageCache::new(cache, Arc::clone(&sizes));
    let start = std::time::Instant::now();
    let result = simulator::simulate_policy_observed(&mut policy, &stream, 0, Some(&obs));
    let elapsed_ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
    let snap = obs.registry.snapshot();

    // Fold-exactness pass: the same stream through a sharded cache,
    // concurrently and single-threaded, each into a fresh
    // deterministic registry. Exact folding means the two snapshots
    // are byte-identical regardless of thread interleaving.
    let shards = args.get_parsed("shards", 4usize, "a shard count")?;
    let threads = args.get_parsed("threads", 4usize, "a worker thread count")?;
    let fold_snapshot = |threads: usize| {
        let o = simulator::SimObs::deterministic();
        landlord_sim::sharded::simulate_stream_sharded_observed(
            &stream,
            cache,
            Arc::clone(&sizes),
            shards,
            threads,
            Some(&o.registry),
        );
        o.registry.snapshot().to_json_pretty()
    };
    let fold_exact = fold_snapshot(threads) == fold_snapshot(1);

    // Touch-path comparison across every eviction policy, at a
    // population where O(log n) and O(1) visibly separate.
    let touch_images = args.get_parsed("touch-images", 10_000u64, "an image count")?;
    let touch_ops = args.get_parsed("touch-ops", 200_000u64, "a touch count")?;
    let touch = bench_touch_paths(touch_images, touch_ops);

    let empty = landlord_obs::HistogramSnapshot::empty();
    let s = result.final_stats;
    let report = BenchReport {
        schema: BENCH_SCHEMA.to_string(),
        seed,
        requests: s.requests,
        elapsed_ns,
        ops_per_sec: s.requests as f64 / (elapsed_ns.max(1) as f64 / 1e9),
        plan: BenchPhase::from_snapshot(snap.histograms.get("core.plan_ticks").unwrap_or(&empty)),
        apply: BenchPhase::from_snapshot(snap.histograms.get("core.apply_ticks").unwrap_or(&empty)),
        hits: s.hits,
        merges: s.merges,
        inserts: s.inserts,
        evictions: s.deletes,
        container_eff_milli_pct: simulator::milli_pct(result.container_eff_pct),
        fold_exact,
        touch,
    };
    let json = format!("{}\n", serde_json::to_string_pretty(&report)?);
    if out == "-" {
        print!("{json}");
    } else {
        std::fs::write(out, &json)?;
        eprintln!("[bench] {out}");
    }
    if !fold_exact {
        return Err(
            "metric fold-exactness check failed: concurrent sharded replay \
                    diverged from single-threaded"
                .into(),
        );
    }
    Ok(())
}

/// Schema tag of `BENCH_persist.json`; bump when fields change meaning.
pub const PERSIST_BENCH_SCHEMA: &str = "landlord-persist-bench/v1";

/// One population point inside `BENCH_persist.json`.
#[derive(Debug, serde::Serialize)]
struct PersistBenchSample {
    images: u64,
    rewrite_ns_per_op: u64,
    wal_append_ns_per_op: u64,
    speedup: f64,
    open_replay_ns: u64,
    replayed_records: u64,
}

/// The record `landlord bench-persist` writes.
#[derive(Debug, serde::Serialize)]
struct PersistBenchReport {
    schema: String,
    rewrite_ops: u64,
    append_ops: u64,
    replay_records: u64,
    samples: Vec<PersistBenchSample>,
}

/// `landlord bench-persist`: measure the persistence cost of the old
/// rewrite-the-world `state.json` model against the WAL append model
/// on synthetic indexes (default 10k and 100k images), plus the
/// checkpoint-load-and-replay open path, and write `BENCH_persist.json`
/// ([`PERSIST_BENCH_SCHEMA`]).
pub fn bench_persist(args: &Args) -> CmdResult {
    let out = args.get_or("out", "BENCH_persist.json");
    let images_list = args.get_or("images", "10000,100000");
    let rewrite_ops = args.get_parsed("rewrite-ops", 4u64, "an op count")?;
    let append_ops = args.get_parsed("append-ops", 256u64, "an op count")?;
    let replay_records = args.get_parsed("replay-records", 256u64, "a record count")?;
    if rewrite_ops == 0 || append_ops == 0 {
        return Err("--rewrite-ops and --append-ops must be at least 1".into());
    }

    let mut samples = Vec::new();
    for tok in images_list.split(',') {
        let images: u64 = tok
            .trim()
            .parse()
            .map_err(|_| format!("--images entry {tok:?}: expected an image count"))?;
        if images == 0 {
            return Err("--images entries must be at least 1".into());
        }
        let dir = std::env::temp_dir().join(format!(
            "landlord-bench-persist-{}-{images}",
            std::process::id()
        ));
        let _fresh = std::fs::remove_dir_all(&dir);
        let s = crate::persistent::bench::measure(
            &dir,
            images,
            rewrite_ops,
            append_ops,
            replay_records,
        )?;
        let _cleaned = std::fs::remove_dir_all(&dir);
        eprintln!(
            "[bench-persist] {images} images: rewrite {} ns/op, wal append {} ns/op ({:.1}x), open+replay {} ns",
            s.rewrite_ns_per_op, s.wal_append_ns_per_op, s.speedup, s.open_replay_ns
        );
        samples.push(PersistBenchSample {
            images: s.images,
            rewrite_ns_per_op: s.rewrite_ns_per_op,
            wal_append_ns_per_op: s.wal_append_ns_per_op,
            speedup: s.speedup,
            open_replay_ns: s.open_replay_ns,
            replayed_records: s.replayed_records,
        });
    }

    let report = PersistBenchReport {
        schema: PERSIST_BENCH_SCHEMA.to_string(),
        rewrite_ops,
        append_ops,
        replay_records,
        samples,
    };
    let json = format!("{}\n", serde_json::to_string_pretty(&report)?);
    if out == "-" {
        print!("{json}");
    } else {
        std::fs::write(out, &json)?;
        eprintln!("[bench-persist] {out}");
    }
    Ok(())
}

/// Everything `serve` and `bench-serve` need to drive a run: the
/// generated request schedule, the cache configuration, and the size
/// model the shards consult.
type ServeSetup = (
    Vec<landlord_sim::ServeRequest>,
    landlord_core::cache::CacheConfig,
    std::sync::Arc<dyn landlord_core::sizes::SizeModel>,
);

/// Build the serve-mode workload shared by `serve` and `bench-serve`.
fn serve_setup(args: &Args, ctx: &ExperimentContext) -> Result<ServeSetup, Box<dyn Error>> {
    use landlord_sim::serve::{generate_requests, ArrivalModel, ServeConfig};

    let repo = ctx.repo();
    let mut w = ctx.standard_workload();
    w.unique_jobs = args.get_parsed("jobs", w.unique_jobs, "a job count")?;
    w.repeats = args.get_parsed("repeats", w.repeats, "a repeat count")?;
    let zipf = args.get_parsed("zipf", 1.2f64, "a non-negative exponent")?;
    if zipf < 0.0 {
        return Err(format!("--zipf {zipf} must be non-negative").into());
    }
    let serve_config = ServeConfig {
        workload: w,
        zipf_exponent: zipf,
        arrival: token_flag(
            args,
            "arrival",
            ArrivalModel::parse,
            ArrivalModel::default(),
            ArrivalModel::TOKENS,
        )?,
        mean_interarrival_ticks: args.get_parsed("mean-ticks", 4u64, "a tick count")?,
    };
    let alpha = args.get_parsed("alpha", 0.75f64, "a float in [0,1]")?;
    let cache_x = args.get_parsed("cache-x", 2.0f64, "a repo-size multiple")?;
    let cache = landlord_core::cache::CacheConfig {
        alpha,
        limit_bytes: (repo.total_bytes() as f64 * cache_x) as u64,
        ..Default::default()
    };
    let sizes: std::sync::Arc<dyn landlord_core::sizes::SizeModel> =
        std::sync::Arc::new(repo.size_table());
    Ok((generate_requests(&repo, &serve_config), cache, sizes))
}

/// Parse the serve-loop options shared by `serve` and `bench-serve`.
fn serve_options(args: &Args) -> Result<landlord_sim::ServeOptions, Box<dyn Error>> {
    use landlord_sim::serve::Backpressure;

    let defaults = landlord_sim::ServeOptions::default();
    Ok(landlord_sim::ServeOptions {
        coalesce: token_flag(
            args,
            "coalesce",
            |s| match s {
                "on" => Some(true),
                "off" => Some(false),
                _ => None,
            },
            true,
            "on|off",
        )?,
        backpressure: token_flag(
            args,
            "backpressure",
            Backpressure::parse,
            Backpressure::default(),
            Backpressure::TOKENS,
        )?,
        queue_cap: args.get_parsed("queue-cap", defaults.queue_cap, "a queue capacity")?,
        bytes_per_tick: args.get_parsed(
            "bytes-per-tick",
            defaults.bytes_per_tick,
            "a byte count",
        )?,
    })
}

/// `landlord serve`: run the open-loop server mode in virtual time and
/// report throughput, coalescing, backpressure, and latency quantiles.
pub fn serve(args: &Args) -> CmdResult {
    let scale = parse_scale(args)?;
    let seed = args.get_parsed("seed", 1u64, "an integer seed")?;
    let ctx = ExperimentContext {
        scale,
        seed,
        threads: 1,
    };
    let (requests, cache, sizes) = serve_setup(args, &ctx)?;
    let options = serve_options(args)?;
    let shards = args.get_parsed("shards", 4usize, "a shard count")?;
    let threads = args.get_parsed("threads", 2usize, "a worker thread count")?;
    if shards == 0 || threads == 0 {
        return Err("--shards and --threads must be at least 1".into());
    }

    let metrics_out = args.get("metrics-json");
    let obs = metrics_out.map(|_| simulator::SimObs::deterministic());
    let result = landlord_sim::serve_stream(
        &requests,
        cache,
        sizes,
        shards,
        threads,
        options,
        obs.as_ref().map(|o| &*o.registry),
    );
    let rep = &result.report;

    if let Some(out) = args.get("report-json") {
        let json = format!("{}\n", serde_json::to_string_pretty(rep)?);
        if out == "-" {
            print!("{json}");
        } else {
            std::fs::write(out, json)?;
            eprintln!("[report] {out}");
        }
    }
    if let (Some(out), Some(o)) = (metrics_out, &obs) {
        let json = o.registry.snapshot().to_json_pretty();
        if out == "-" {
            print!("{json}");
        } else {
            std::fs::write(out, json)?;
            eprintln!("[metrics] {out}");
        }
    }

    let s = rep.final_stats;
    let mut t = Table::new(
        format!(
            "Serve ({} arrivals, {} shards, {} threads, coalesce {})",
            rep.arrivals,
            shards,
            threads,
            if options.coalesce { "on" } else { "off" }
        ),
        &["metric", "value"],
    );
    t.push_row(vec!["served".into(), rep.served.to_string()]);
    t.push_row(vec!["coalesced".into(), rep.coalesce_hits.to_string()]);
    t.push_row(vec![
        "coalesce rate %".into(),
        fmt_pct(100.0 * rep.coalesce_hits as f64 / (rep.arrivals.max(1)) as f64),
    ]);
    t.push_row(vec!["rejected".into(), rep.rejected.to_string()]);
    t.push_row(vec!["block events".into(), rep.block_events.to_string()]);
    t.push_row(vec!["queue peak".into(), rep.queue_peak.to_string()]);
    t.push_row(vec![
        "latency p50 ticks".into(),
        rep.latency_ticks.p50.to_string(),
    ]);
    t.push_row(vec![
        "latency p99 ticks".into(),
        rep.latency_ticks.p99.to_string(),
    ]);
    t.push_row(vec!["hits".into(), s.hits.to_string()]);
    t.push_row(vec!["merges".into(), s.merges.to_string()]);
    t.push_row(vec!["inserts".into(), s.inserts.to_string()]);
    t.push_row(vec!["deletes".into(), s.deletes.to_string()]);
    t.push_row(vec![
        "cache eff %".into(),
        fmt_pct(rep.cache_eff_milli_pct as f64 / 1000.0),
    ]);
    t.push_row(vec![
        "container eff %".into(),
        fmt_pct(rep.container_eff_milli_pct as f64 / 1000.0),
    ]);
    print!("{}", t.render());
    Ok(())
}

/// Schema tag of `BENCH_serve.json`; bump when fields change meaning.
pub const SERVE_BENCH_SCHEMA: &str = "landlord-serve-bench/v1";

/// One wall-clock throughput row inside `BENCH_serve.json`: `threads`
/// OS threads hammering [`landlord_core::cache::ShardedImageCache::
/// request_single_flight`] with the full request stream.
#[derive(Debug, serde::Serialize)]
struct ServeBenchWall {
    threads: usize,
    requests: u64,
    elapsed_ns: u64,
    requests_per_sec: f64,
    p50_ns_upper: u64,
    p99_ns_upper: u64,
    coalesce_hits: u64,
}

/// The record `landlord bench-serve` writes. The deterministic section
/// is a pure function of the seed; only the `wall` rows carry time.
#[derive(Debug, serde::Serialize)]
struct ServeBenchReport {
    schema: String,
    seed: u64,
    arrivals: u64,
    /// Two same-seed virtual-time runs produced byte-identical reports.
    deterministic: bool,
    /// 1/2/4/8 virtual worker threads produced byte-identical reports.
    thread_invariant: bool,
    coalesce_rate_milli_pct: u64,
    coalesce_ledger_digest: u64,
    latency_p50_ticks: u64,
    latency_p99_ticks: u64,
    rejected: u64,
    wall: Vec<ServeBenchWall>,
}

/// Time one wall-clock single-flight pass: `threads` workers pull
/// stream indices from a shared counter and call
/// `request_single_flight` on one shared cache.
fn bench_serve_wall_pass(
    requests: &[landlord_sim::ServeRequest],
    cache_config: landlord_core::cache::CacheConfig,
    sizes: std::sync::Arc<dyn landlord_core::sizes::SizeModel>,
    shards: usize,
    threads: usize,
) -> ServeBenchWall {
    use std::sync::atomic::{AtomicUsize, Ordering};

    let cache = landlord_core::cache::ShardedImageCache::new(shards, cache_config, sizes);
    let hist = landlord_obs::Histogram::new();
    let next = AtomicUsize::new(0);
    let start = std::time::Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..threads.max(1) {
            let cache = cache.clone();
            let next = &next;
            let hist = &hist;
            scope.spawn(move || loop {
                // sync: work-stealing index; any interleaving is fine,
                // each index is claimed exactly once.
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= requests.len() {
                    break;
                }
                let t0 = std::time::Instant::now();
                let _ = cache.request_single_flight(&requests[i].spec);
                hist.record(u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX));
            });
        }
    });
    let elapsed_ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
    let snap = hist.snapshot();
    ServeBenchWall {
        threads: threads.max(1),
        requests: requests.len() as u64,
        elapsed_ns,
        requests_per_sec: requests.len() as f64 / (elapsed_ns.max(1) as f64 / 1e9),
        p50_ns_upper: snap.p50,
        p99_ns_upper: snap.p99,
        coalesce_hits: cache.coalesce_hits(),
    }
}

/// `landlord bench-serve`: self-check the serve determinism contract
/// (byte-identical same-seed runs, thread invariance), measure the
/// coalesce rate under Zipf load, time wall-clock single-flight
/// throughput at each `--wall-threads` count, and write
/// `BENCH_serve.json` ([`SERVE_BENCH_SCHEMA`]).
pub fn bench_serve(args: &Args) -> CmdResult {
    use std::sync::Arc;

    let out = args.get_or("out", "BENCH_serve.json");
    let seed = args.get_parsed("seed", 1u64, "an integer seed")?;
    let ctx = ExperimentContext {
        scale: Scale::Smoke,
        seed,
        threads: 1,
    };
    let (requests, cache, sizes) = serve_setup(args, &ctx)?;
    let options = serve_options(args)?;
    let shards = args.get_parsed("shards", 8usize, "a shard count")?;
    if shards == 0 {
        return Err("--shards must be at least 1".into());
    }

    // Determinism self-check: two same-seed runs must serialize to the
    // same bytes, and the virtual thread count must not matter.
    let run = |threads: usize| {
        landlord_sim::serve_stream(
            &requests,
            cache,
            Arc::clone(&sizes),
            shards,
            threads,
            options,
            None,
        )
    };
    let baseline = run(4);
    let baseline_json = serde_json::to_string(&baseline.report)?;
    let deterministic = serde_json::to_string(&run(4).report)? == baseline_json;
    let thread_invariant = [1usize, 2, 8]
        .iter()
        .all(|&threads| run(threads).report == baseline.report);

    let rep = &baseline.report;
    let coalesce_rate_milli_pct =
        simulator::milli_pct(100.0 * rep.coalesce_hits as f64 / rep.arrivals.max(1) as f64);

    // Wall-clock throughput through the real SingleFlight path.
    let wall_threads = args.get_or("wall-threads", "1,4,8,16");
    let mut wall = Vec::new();
    for tok in wall_threads.split(',') {
        let threads: usize = tok
            .trim()
            .parse()
            .map_err(|_| format!("--wall-threads entry {tok:?}: expected a thread count"))?;
        if threads == 0 {
            return Err("--wall-threads entries must be at least 1".into());
        }
        let row = bench_serve_wall_pass(&requests, cache, Arc::clone(&sizes), shards, threads);
        eprintln!(
            "[bench-serve] {threads} threads: {:.0} req/s, p99 {} ns, {} coalesced",
            row.requests_per_sec, row.p99_ns_upper, row.coalesce_hits
        );
        wall.push(row);
    }

    let report = ServeBenchReport {
        schema: SERVE_BENCH_SCHEMA.to_string(),
        seed,
        arrivals: rep.arrivals,
        deterministic,
        thread_invariant,
        coalesce_rate_milli_pct,
        coalesce_ledger_digest: rep.coalesce_ledger_digest,
        latency_p50_ticks: rep.latency_ticks.p50,
        latency_p99_ticks: rep.latency_ticks.p99,
        rejected: rep.rejected,
        wall,
    };
    let json = format!("{}\n", serde_json::to_string_pretty(&report)?);
    if out == "-" {
        print!("{json}");
    } else {
        std::fs::write(out, &json)?;
        eprintln!("[bench-serve] {out}");
    }
    if !deterministic || !thread_invariant {
        return Err(format!(
            "serve determinism self-check failed: deterministic={deterministic} \
             thread_invariant={thread_invariant}"
        )
        .into());
    }
    if options.coalesce && coalesce_rate_milli_pct == 0 {
        return Err("serve bench measured a zero coalesce rate under Zipf load".into());
    }
    Ok(())
}

/// `landlord experiment`
pub fn experiment(args: &Args) -> CmdResult {
    let id = args
        .positional()
        .first()
        .ok_or("experiment needs an id (or 'all'); see `landlord help`")?
        .clone();
    let scale = parse_scale(args)?;
    let seed = args.get_parsed("seed", 1u64, "an integer seed")?;
    let threads = args.get_parsed("threads", 4usize, "a thread count")?;
    let ctx = ExperimentContext {
        scale,
        seed,
        threads,
    };

    let ids: Vec<&str> = if id == "all" {
        experiments::all_ids().to_vec()
    } else {
        vec![id.as_str()]
    };
    for id in ids {
        let tables = experiments::run(id, &ctx)
            .ok_or_else(|| format!("unknown experiment {id:?}; see `landlord help`"))?;
        for (k, table) in tables.iter().enumerate() {
            print!("{}", table.render());
            println!();
            let suffix = if tables.len() > 1 {
                format!("-{k}")
            } else {
                String::new()
            };
            if let Some(dir) = args.get("csv-dir") {
                std::fs::create_dir_all(dir)?;
                let path = Path::new(dir).join(format!("{id}{suffix}.csv"));
                std::fs::write(&path, table.to_csv())?;
                eprintln!("[csv] {}", path.display());
            }
            if let Some(dir) = args.get("plot-dir") {
                table.write_gnuplot(Path::new(dir), &format!("{id}{suffix}"))?;
                eprintln!("[gnuplot] {}/{id}{suffix}.gp", dir);
            }
        }
    }
    Ok(())
}

/// Generate a workload and save it as a trace file.
pub fn trace(args: &Args) -> CmdResult {
    let out = args.require("out")?;
    let scale = parse_scale(args)?;
    let seed = args.get_parsed("seed", 1u64, "an integer seed")?;
    let ctx = ExperimentContext {
        scale,
        seed,
        threads: 1,
    };
    let repo = ctx.repo();
    let w = ctx.standard_workload();
    let stream = workload::generate_stream(&repo, &w);
    let trace = landlord_sim::trace::Trace::new(
        format!("standard workload, scale={scale:?}, seed={seed}"),
        w.seed,
        stream,
    );
    trace.save(Path::new(out))?;
    println!("wrote {out}: {} requests", trace.len());
    Ok(())
}

/// `landlord spec-from` — infer a container specification from job
/// artifacts (the paper's §V analysis tools: Python imports, module
/// load directives, or access logs from previous runs).
pub fn spec_from(args: &Args) -> CmdResult {
    use landlord_specgen::{dedup_requirements, joblog, modules, python, resolve::Resolver};

    let repo = persist::load_json(Path::new(args.require("repo")?))?;
    let mut reqs = Vec::new();
    let mut any_source = false;
    if let Some(path) = args.get("python") {
        reqs.extend(python::scan(&std::fs::read_to_string(path)?));
        any_source = true;
    }
    if let Some(path) = args.get("modules") {
        reqs.extend(modules::scan(&std::fs::read_to_string(path)?));
        any_source = true;
    }
    if let Some(path) = args.get("joblog") {
        reqs.extend(joblog::scan(
            &std::fs::read_to_string(path)?,
            &joblog::LogFormat::default(),
        ));
        any_source = true;
    }
    if !any_source {
        return Err("spec-from needs at least one of --python/--modules/--joblog".into());
    }
    let reqs = dedup_requirements(reqs);
    println!(
        "extracted {} requirement(s): {}",
        reqs.len(),
        reqs.iter()
            .map(|r| r.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    );

    let resolver = Resolver::new(&repo);
    let (spec, unresolved) = resolver.resolve_to_closure(&reqs);
    for r in &unresolved {
        eprintln!("warning: unresolved requirement {r}");
    }
    println!(
        "specification: {} packages after dependency closure, {} GB",
        spec.len(),
        fmt_gb(spec.iter().map(|p| repo.meta(p).bytes).sum::<u64>() as f64)
    );
    if let Some(out) = args.get("out") {
        std::fs::write(out, serde_json::to_vec_pretty(&spec)?)?;
        println!("wrote {out}");
    }
    Ok(())
}

/// `landlord verify` — fsck a cache directory: every indexed image
/// must exist, parse as a valid LLIMG, and match its recorded sizes;
/// every object in the content store must match its hash. Opening runs
/// crash recovery (checkpoint load, WAL replay, artifact quarantine);
/// `--repair yes` additionally quarantines images whose LLIMG payload
/// is corrupt and (given `--repo`/`--seed`) prunes orphaned objects.
///
/// Exit codes: 0 — the directory was already clean; 1 — crash damage
/// was found, repaired, and the repaired directory verifies; 2 — the
/// directory cannot be restored automatically (unreadable checkpoint,
/// WAL sequence gap, or problems `--repair` did not fix).
pub fn verify(args: &Args) -> CmdResult {
    use landlord_shrinkwrap::ImageReader;
    use landlord_store::{ContentHash, ObjectStore};

    let cache_dir = std::path::PathBuf::from(args.require("cache-dir")?);
    let mut cache = PersistentCache::open(
        &cache_dir,
        0.8, // policy knobs are irrelevant to verification
        u64::MAX,
        FileTreeConfig::miniature(),
    )
    .map_err(|e| ExitStatus::unrecoverable(format!("cannot recover cache directory: {e}")))?;
    let recovery = cache.last_recovery();
    if !recovery.clean() {
        println!(
            "recovery: tmp-state {}, wal-tail {}, dropped {} missing image(s), quarantined {} image(s), removed {} object tmp(s)",
            if recovery.quarantined_tmp_state { "quarantined" } else { "clean" },
            if recovery.quarantined_wal_tail { "quarantined" } else { "clean" },
            recovery.dropped_missing_images,
            recovery.quarantined_images,
            recovery.removed_object_tmps,
        );
    }
    cache
        .check_invariants()
        .map_err(|e| ExitStatus::unrecoverable(format!("recovered state is inconsistent: {e}")))?;

    let mut repair_quarantined = 0usize;
    if args.get_or("repair", "no") == "yes" {
        let repo = if let Some(path) = args.get("repo") {
            Some(persist::load_json(Path::new(path))?)
        } else if args.get("seed").is_some() {
            let seed = args.get_parsed("seed", 1u64, "an integer seed")?;
            Some(Repository::generate(&RepoConfig::small_for_tests(seed)))
        } else {
            None
        };
        let report = cache.repair(repo.as_ref())?;
        println!(
            "repair: quarantined {} corrupt image(s), pruned {} orphaned object(s) ({} bytes)",
            report.quarantined_images, report.pruned_objects, report.pruned_bytes
        );
        repair_quarantined = report.quarantined_images;
    }

    let mut problems = 0usize;
    for img in cache.images() {
        let path = cache_dir.join("images").join(format!("{}.llimg", img.id));
        if !path.exists() {
            eprintln!("MISSING image file {}", path.display());
            problems += 1;
            continue;
        }
        let on_disk = std::fs::metadata(&path)?.len();
        if on_disk != img.physical_bytes {
            eprintln!(
                "SIZE mismatch {}: {} on disk vs {} recorded",
                path.display(),
                on_disk,
                img.physical_bytes
            );
            problems += 1;
        }
        match ImageReader::parse(std::fs::File::open(&path)?) {
            Ok(parsed) => {
                if parsed.is_empty() && !img.spec.is_empty() {
                    eprintln!("EMPTY image {} for non-empty spec", path.display());
                    problems += 1;
                }
            }
            Err(e) => {
                eprintln!("CORRUPT image {}: {e}", path.display());
                problems += 1;
            }
        }
    }

    let mut bad_objects = 0usize;
    for hash in cache.store().hashes() {
        match cache.store().get(hash)? {
            Some(data) if ContentHash::of(&data) == hash => {}
            Some(_) => {
                eprintln!("OBJECT hash mismatch {hash}");
                bad_objects += 1;
            }
            None => {
                eprintln!("OBJECT indexed but unreadable {hash}");
                bad_objects += 1;
            }
        }
    }

    println!(
        "verified {} images and {} objects: {} image problem(s), {} object problem(s)",
        cache.images().len(),
        cache.store().object_count(),
        problems,
        bad_objects
    );
    if problems + bad_objects > 0 {
        return Err(ExitStatus::unrecoverable(format!(
            "{} problem(s) found (rerun with --repair yes to quarantine)",
            problems + bad_objects
        ))
        .into());
    }
    if !recovery.clean() || repair_quarantined > 0 {
        return Err(ExitStatus::recovered(
            "crash damage was repaired; the cache directory is consistent again",
        )
        .into());
    }
    Ok(())
}

/// `landlord gc` — report (and with `--prune yes`, delete) objects in a
/// cache directory that no live image references. Evictions remove
/// image files but leave shared objects behind; this reclaims them.
pub fn gc(args: &Args) -> CmdResult {
    use landlord_store::ObjectStore;

    let cache_dir = std::path::PathBuf::from(args.require("cache-dir")?);
    let repo = match args.get("repo") {
        Some(path) => persist::load_json(Path::new(path))?,
        None => {
            let seed = args.get_parsed("seed", 1u64, "an integer seed")?;
            Repository::generate(&RepoConfig::small_for_tests(seed))
        }
    };
    let cache = PersistentCache::open(&cache_dir, 0.8, u64::MAX, FileTreeConfig::miniature())?;
    let orphans = cache.orphaned_objects(&repo);
    println!(
        "store: {} objects, {} KB; {} orphaned object(s)",
        cache.store().object_count(),
        cache.store().stored_bytes() / 1000,
        orphans.len()
    );
    if args.get_or("prune", "no") == "yes" {
        let (count, freed) = cache.prune(&repo)?;
        println!("pruned {count} object(s), freed {freed} bytes");
    } else if !orphans.is_empty() {
        println!("run with --prune yes to reclaim");
    }
    Ok(())
}

/// Dispatch a subcommand by name.
pub fn dispatch(cmd: &str, args: &Args) -> CmdResult {
    match cmd {
        "gen-repo" => gen_repo(args),
        "stats" => stats(args),
        "submit" => submit(args),
        "simulate" => simulate(args),
        "bench-report" => bench_report(args),
        "bench-persist" => bench_persist(args),
        "serve" => serve(args),
        "bench-serve" => bench_serve(args),
        "experiment" => experiment(args),
        "trace" => trace(args),
        "spec-from" => spec_from(args),
        "verify" => verify(args),
        "gc" => gc(args),
        "help" | "--help" | "-h" => {
            print!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command {other:?}\n\n{USAGE}").into()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(toks: &[&str]) -> Args {
        Args::parse(toks.iter().map(|s| s.to_string())).unwrap()
    }

    #[test]
    fn unknown_command_errors_with_usage() {
        let err = dispatch("frobnicate", &args(&[])).unwrap_err();
        assert!(err.to_string().contains("unknown command"));
        assert!(err.to_string().contains("USAGE"));
    }

    #[test]
    fn help_succeeds() {
        dispatch("help", &args(&[])).unwrap();
    }

    #[test]
    fn experiment_requires_id() {
        let err = experiment(&args(&["--scale", "smoke"])).unwrap_err();
        assert!(err.to_string().contains("needs an id"));
    }

    #[test]
    fn experiment_rejects_unknown_id() {
        let err = experiment(&args(&["fig99", "--scale", "smoke"])).unwrap_err();
        assert!(err.to_string().contains("unknown experiment"));
    }

    #[test]
    fn simulate_smoke_runs() {
        simulate(&args(&[
            "--scale",
            "smoke",
            "--jobs",
            "10",
            "--repeats",
            "2",
        ]))
        .unwrap();
    }

    #[test]
    fn simulate_metrics_json_is_byte_deterministic() {
        let dir = std::env::temp_dir().join(format!(
            "landlord-cli-metrics-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let run = |tag: &str| {
            let out = dir.join(format!("metrics-{tag}.json"));
            simulate(&args(&[
                "--scale",
                "smoke",
                "--jobs",
                "20",
                "--repeats",
                "2",
                "--metrics-json",
                out.to_str().unwrap(),
            ]))
            .unwrap();
            std::fs::read(&out).unwrap()
        };
        let first = run("a");
        let second = run("b");
        assert!(!first.is_empty());
        assert_eq!(first, second, "metrics snapshot must be byte-identical");
        let text = String::from_utf8(first).unwrap();
        assert!(text.contains(landlord_obs::METRICS_SCHEMA));
        assert!(text.contains("core.plan_ticks"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn simulate_metrics_json_works_sharded_and_faulted() {
        let dir = std::env::temp_dir().join(format!(
            "landlord-cli-metrics-sf-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let sharded = dir.join("sharded.json");
        simulate(&args(&[
            "--scale",
            "smoke",
            "--jobs",
            "20",
            "--repeats",
            "2",
            "--shards",
            "4",
            "--threads",
            "2",
            "--metrics-json",
            sharded.to_str().unwrap(),
        ]))
        .unwrap();
        let text = std::fs::read_to_string(&sharded).unwrap();
        assert!(text.contains("sharded.peek_possible"));

        let faulted = dir.join("faulted.json");
        simulate(&args(&[
            "--scale",
            "smoke",
            "--jobs",
            "20",
            "--repeats",
            "2",
            "--fault-rate",
            "0.2",
            "--retries",
            "2",
            "--metrics-json",
            faulted.to_str().unwrap(),
        ]))
        .unwrap();
        let text = std::fs::read_to_string(&faulted).unwrap();
        assert!(text.contains("faults.requests"), "FaultStats must export");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn simulate_events_jsonl_writes_sequenced_events() {
        let dir = std::env::temp_dir().join(format!(
            "landlord-cli-events-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let out = dir.join("events.jsonl");
        simulate(&args(&[
            "--scale",
            "smoke",
            "--jobs",
            "15",
            "--repeats",
            "2",
            "--events-jsonl",
            out.to_str().unwrap(),
        ]))
        .unwrap();
        let body = std::fs::read_to_string(&out).unwrap();
        let events: Vec<SequencedEvent> = body
            .lines()
            .map(|line| serde_json::from_str(line).unwrap())
            .collect();
        assert!(!events.is_empty(), "a smoke run must emit events");
        for (i, se) in events.iter().enumerate() {
            assert_eq!(se.seq, i as u64, "seq numbers must be dense from 0");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn simulate_events_jsonl_rejects_sharded_and_foreign_policies() {
        let err = simulate(&args(&[
            "--scale",
            "smoke",
            "--jobs",
            "5",
            "--shards",
            "2",
            "--threads",
            "2",
            "--events-jsonl",
            "x.jsonl",
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("--events-jsonl"));
        let err = simulate(&args(&[
            "--scale",
            "smoke",
            "--jobs",
            "5",
            "--policy",
            "per-job",
            "--events-jsonl",
            "x.jsonl",
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("--policy landlord"));
    }

    #[test]
    fn bench_report_writes_schema_tagged_json() {
        let dir = std::env::temp_dir().join(format!(
            "landlord-cli-bench-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let out = dir.join("BENCH_core.json");
        bench_report(&args(&[
            "--out",
            out.to_str().unwrap(),
            "--jobs",
            "20",
            "--repeats",
            "2",
            "--touch-images",
            "200",
            "--touch-ops",
            "2000",
        ]))
        .unwrap();
        let text = std::fs::read_to_string(&out).unwrap();
        assert!(text.contains(BENCH_SCHEMA));
        assert!(text.contains("\"fold_exact\": true"));
        assert!(text.contains("ops_per_sec"));
        let parsed: serde::Value = serde_json::from_str(&text).unwrap();
        assert!(parsed.get("plan").is_some() && parsed.get("apply").is_some());
        // One touch-path row per eviction policy, including the
        // stateful ones.
        let serde::Value::Seq(touch) = parsed.get("touch").unwrap() else {
            panic!("touch section must be an array");
        };
        assert_eq!(
            touch.len(),
            landlord_core::policy::EvictionPolicy::ALL.len()
        );
        assert!(text.contains("s3-fifo") && text.contains("lhd-sample"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bench_persist_writes_schema_tagged_json() {
        let dir = std::env::temp_dir().join(format!(
            "landlord-cli-benchp-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let out = dir.join("BENCH_persist.json");
        // Small populations keep the smoke test fast; the committed
        // report uses the default 10k/100k.
        bench_persist(&args(&[
            "--out",
            out.to_str().unwrap(),
            "--images",
            "100,1000",
            "--rewrite-ops",
            "2",
            "--append-ops",
            "32",
            "--replay-records",
            "32",
        ]))
        .unwrap();
        let text = std::fs::read_to_string(&out).unwrap();
        assert!(text.contains(PERSIST_BENCH_SCHEMA));
        let parsed: serde::Value = serde_json::from_str(&text).unwrap();
        let serde::Value::Seq(samples) = parsed.get("samples").unwrap() else {
            panic!("samples must be an array");
        };
        assert_eq!(samples.len(), 2);
        for s in samples {
            let field = |key: &str| match s.get(key) {
                Some(serde::Value::U64(n)) => *n,
                other => panic!("{key} must be a u64, got {other:?}"),
            };
            assert!(field("rewrite_ns_per_op") > 0);
            assert!(field("wal_append_ns_per_op") > 0);
            assert_eq!(field("replayed_records"), 32);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn gen_repo_and_stats_round_trip() {
        let path =
            std::env::temp_dir().join(format!("landlord-cli-repo-{}.json", std::process::id()));
        gen_repo(&args(&[
            "--out",
            path.to_str().unwrap(),
            "--packages",
            "300",
            "--total-gb",
            "1",
            "--seed",
            "3",
        ]))
        .unwrap();
        stats(&args(&["--repo", path.to_str().unwrap()])).unwrap();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn spec_from_end_to_end() {
        let dir = std::env::temp_dir().join(format!("landlord-specfrom-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let repo_path = dir.join("repo.json");
        gen_repo(&args(&[
            "--out",
            repo_path.to_str().unwrap(),
            "--packages",
            "300",
            "--total-gb",
            "1",
            "--seed",
            "3",
        ]))
        .unwrap();

        // Load a real package by name from the generated universe.
        let repo = persist::load_json(&repo_path).unwrap();
        let pkg = repo.meta(landlord_core::spec::PackageId(
            repo.package_count() as u32 - 1,
        ));
        let modules_path = dir.join("job.sh");
        std::fs::write(
            &modules_path,
            format!("#!/bin/bash\nmodule load {}/{}\n", pkg.name, pkg.version),
        )
        .unwrap();

        let out = dir.join("spec.json");
        spec_from(&args(&[
            "--repo",
            repo_path.to_str().unwrap(),
            "--modules",
            modules_path.to_str().unwrap(),
            "--out",
            out.to_str().unwrap(),
        ]))
        .unwrap();
        let spec: landlord_core::spec::Spec =
            serde_json::from_slice(&std::fs::read(&out).unwrap()).unwrap();
        assert!(spec.contains(pkg.id));
        assert!(spec.len() > 1, "closure expansion must have happened");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn spec_from_requires_a_source() {
        let dir = std::env::temp_dir().join(format!("landlord-specfrom2-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let repo_path = dir.join("repo.json");
        gen_repo(&args(&[
            "--out",
            repo_path.to_str().unwrap(),
            "--packages",
            "300",
            "--total-gb",
            "1",
            "--seed",
            "3",
        ]))
        .unwrap();
        let err = spec_from(&args(&["--repo", repo_path.to_str().unwrap()])).unwrap_err();
        assert!(err.to_string().contains("at least one"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn submit_smoke() {
        let dir = std::env::temp_dir().join(format!("landlord-cli-cache-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        submit(&args(&[
            "--cache-dir",
            dir.to_str().unwrap(),
            "--seed",
            "5",
        ]))
        .unwrap();
        submit(&args(&[
            "--cache-dir",
            dir.to_str().unwrap(),
            "--seed",
            "5",
        ]))
        .unwrap();
        // A freshly submitted cache passes verification (exit 0)…
        let clean = verify(&args(&["--cache-dir", dir.to_str().unwrap()]));
        assert_eq!(exit_code(&clean), 0, "{clean:?}");
        // …and deep-corrupting an image file fails it as unrecoverable
        // (exit 2) until repaired. (Same length: anything shorter is a
        // torn write that open-time recovery quarantines on its own.)
        let images: Vec<_> = std::fs::read_dir(dir.join("images"))
            .unwrap()
            .map(|e| e.unwrap().path())
            .collect();
        assert!(!images.is_empty());
        let len = std::fs::metadata(&images[0]).unwrap().len() as usize;
        std::fs::write(&images[0], vec![0x5a; len]).unwrap();
        let found = verify(&args(&["--cache-dir", dir.to_str().unwrap()]));
        assert_eq!(exit_code(&found), 2);
        assert!(found.unwrap_err().to_string().contains("problem"));
        // --repair quarantines the corrupt image and prunes the objects
        // it orphaned: exit 1 (repaired), then exit 0 (clean again).
        let repaired = verify(&args(&[
            "--cache-dir",
            dir.to_str().unwrap(),
            "--repair",
            "yes",
            "--seed",
            "5",
        ]));
        assert_eq!(exit_code(&repaired), 1, "{repaired:?}");
        let clean = verify(&args(&["--cache-dir", dir.to_str().unwrap()]));
        assert_eq!(exit_code(&clean), 0, "{clean:?}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn simulate_with_faults_runs_and_degrades() {
        simulate(&args(&[
            "--scale",
            "smoke",
            "--jobs",
            "10",
            "--repeats",
            "2",
            "--fault-rate",
            "0.2",
            "--fault-seed",
            "9",
            "--retries",
            "2",
        ]))
        .unwrap();
    }

    #[test]
    fn simulate_runs_every_policy_token() {
        for token in landlord_sim::simulator::POLICY_TOKENS {
            simulate(&args(&[
                "--scale",
                "smoke",
                "--jobs",
                "4",
                "--repeats",
                "1",
                "--policy",
                token,
            ]))
            .unwrap_or_else(|e| panic!("--policy {token} failed: {e}"));
        }
    }

    #[test]
    fn simulate_rejects_unknown_policy_listing_tokens() {
        let err = simulate(&args(&["--scale", "smoke", "--policy", "zfs"])).unwrap_err();
        let msg = err.to_string();
        for token in landlord_sim::simulator::POLICY_TOKENS {
            assert!(msg.contains(token), "error {msg:?} must list {token}");
        }
    }

    #[test]
    fn simulate_rejects_unknown_knob_tokens_listing_valid_ones() {
        use landlord_core::policy::{
            CandidateStrategy, DistanceMetric, EvictionPolicy, MergeOrder,
        };
        for (flag, tokens) in [
            ("eviction", EvictionPolicy::TOKENS),
            ("merge-order", MergeOrder::TOKENS),
            ("metric", DistanceMetric::TOKENS),
            ("candidates", CandidateStrategy::TOKENS),
        ] {
            let flag_arg = format!("--{flag}");
            let err =
                simulate(&args(&["--scale", "smoke", flag_arg.as_str(), "bogus"])).unwrap_err();
            let msg = err.to_string();
            assert!(msg.contains(flag), "{msg:?} must name --{flag}");
            assert!(msg.contains(tokens), "{msg:?} must list {tokens:?}");
        }
    }

    #[test]
    fn simulate_rejects_degenerate_lsh_shapes_listing_tokens() {
        // Regression: `minhash-lsh:0x4` / `4x0` describe an index with
        // no band hashing at all and must fail parsing like any other
        // bad token, not construct a degenerate index.
        use landlord_core::policy::CandidateStrategy;
        for bad in ["minhash-lsh:0x4", "minhash-lsh:4x0", "minhash-lsh:junk"] {
            let err = simulate(&args(&["--scale", "smoke", "--candidates", bad])).unwrap_err();
            let msg = err.to_string();
            assert!(msg.contains("candidates"), "{msg:?} must name --candidates");
            assert!(
                msg.contains(CandidateStrategy::TOKENS),
                "{msg:?} must list the valid tokens"
            );
        }
    }

    #[test]
    fn simulate_sharded_smoke_runs_and_reports() {
        let path = std::env::temp_dir().join(format!(
            "landlord-cli-sharded-{}-{:?}.json",
            std::process::id(),
            std::thread::current().id()
        ));
        simulate(&args(&[
            "--scale",
            "smoke",
            "--jobs",
            "12",
            "--repeats",
            "2",
            "--shards",
            "4",
            "--threads",
            "2",
            "--report-json",
            path.to_str().unwrap(),
        ]))
        .unwrap();
        let report: landlord_sim::simulator::PolicyReport =
            serde_json::from_slice(&std::fs::read(&path).unwrap()).unwrap();
        assert_eq!(report.policy, "landlord");
        assert_eq!(report.final_stats.requests, 24);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn simulate_sharded_rejects_unsupported_combinations() {
        let err = simulate(&args(&[
            "--scale", "smoke", "--shards", "2", "--policy", "per-job",
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("landlord"), "{err}");

        let err = simulate(&args(&[
            "--scale",
            "smoke",
            "--shards",
            "2",
            "--fault-rate",
            "0.5",
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("fault-rate"), "{err}");

        let err = simulate(&args(&["--scale", "smoke", "--shards", "0"])).unwrap_err();
        assert!(err.to_string().contains("at least 1"), "{err}");
    }

    #[test]
    fn simulate_gdsf_and_lsh_knobs_run() {
        simulate(&args(&[
            "--scale",
            "smoke",
            "--jobs",
            "6",
            "--repeats",
            "1",
            "--eviction",
            "gdsf",
            "--merge-order",
            "smallest-first",
            "--metric",
            "bytes",
            "--candidates",
            "minhash-lsh:16x4",
        ]))
        .unwrap();
    }

    /// Snapshot of the `--eviction` rejection message: an unknown
    /// token must list every valid policy, including the stateful
    /// ones, by exact token.
    #[test]
    fn simulate_unknown_eviction_error_names_every_policy_token() {
        let err = simulate(&args(&["--scale", "smoke", "--eviction", "clock"])).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("--eviction"), "{msg:?} must name the flag");
        for token in [
            "lru",
            "lfu",
            "largest-first",
            "cost-density",
            "gdsf",
            "s3-fifo",
            "lhd-sample",
        ] {
            assert!(msg.contains(token), "{msg:?} must list {token}");
        }
    }

    #[test]
    fn simulate_stateful_eviction_policies_run_plain_and_sharded() {
        for token in ["s3-fifo", "lhd-sample"] {
            simulate(&args(&[
                "--scale",
                "smoke",
                "--jobs",
                "8",
                "--repeats",
                "2",
                "--cache-x",
                "0.5",
                "--eviction",
                token,
                "--eviction-seed",
                "11",
            ]))
            .unwrap_or_else(|e| panic!("--eviction {token} failed: {e}"));
            simulate(&args(&[
                "--scale",
                "smoke",
                "--jobs",
                "8",
                "--repeats",
                "2",
                "--cache-x",
                "0.5",
                "--eviction",
                token,
                "--shards",
                "2",
                "--threads",
                "2",
            ]))
            .unwrap_or_else(|e| panic!("--eviction {token} sharded failed: {e}"));
        }
    }

    /// `submit --eviction s3-fifo` drives the persistent cache under
    /// the stateful policy end to end, and the directory still
    /// verifies clean afterwards.
    #[test]
    fn submit_with_stateful_eviction_verifies_clean() {
        for token in ["s3-fifo", "lhd-sample"] {
            let dir = std::env::temp_dir()
                .join(format!("landlord-cli-cache-{token}-{}", std::process::id()));
            std::fs::remove_dir_all(&dir).ok();
            for job_seed in ["7", "8", "7"] {
                submit(&args(&[
                    "--cache-dir",
                    dir.to_str().unwrap(),
                    "--seed",
                    "5",
                    "--job-seed",
                    job_seed,
                    "--limit-gb",
                    "0.02",
                    "--eviction",
                    token,
                ]))
                .unwrap_or_else(|e| panic!("submit --eviction {token} failed: {e}"));
            }
            let clean = verify(&args(&["--cache-dir", dir.to_str().unwrap()]));
            assert_eq!(exit_code(&clean), 0, "{token}: {clean:?}");
            std::fs::remove_dir_all(&dir).ok();
        }
    }

    #[test]
    fn simulate_report_json_round_trips() {
        let path = std::env::temp_dir().join(format!(
            "landlord-cli-report-{}-{:?}.json",
            std::process::id(),
            std::thread::current().id()
        ));
        simulate(&args(&[
            "--scale",
            "smoke",
            "--jobs",
            "5",
            "--repeats",
            "1",
            "--policy",
            "per-job",
            "--fault-rate",
            "0.2",
            "--retries",
            "1",
            "--report-json",
            path.to_str().unwrap(),
        ]))
        .unwrap();
        let report: landlord_sim::simulator::PolicyReport =
            serde_json::from_slice(&std::fs::read(&path).unwrap()).unwrap();
        assert_eq!(report.policy, "per-job");
        let faults = report.faults.expect("faulted run records fault stats");
        assert_eq!(
            report.final_stats.requests + faults.failed_requests,
            5,
            "every request is either served or recorded as failed"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn serve_smoke_runs_and_report_json_is_byte_deterministic() {
        let dir = std::env::temp_dir().join(format!(
            "landlord-cli-serve-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let run = |tag: &str, threads: &str| {
            let out = dir.join(format!("serve-{tag}.json"));
            serve(&args(&[
                "--scale",
                "smoke",
                "--jobs",
                "20",
                "--repeats",
                "2",
                "--threads",
                threads,
                "--report-json",
                out.to_str().unwrap(),
            ]))
            .unwrap();
            std::fs::read(&out).unwrap()
        };
        let first = run("a", "2");
        let second = run("b", "2");
        assert!(!first.is_empty());
        assert_eq!(first, second, "serve report must be byte-identical");
        // The report survives a different virtual thread count too.
        let other_threads = run("c", "4");
        assert_eq!(first, other_threads, "thread count leaked into the report");
        let report: landlord_sim::ServeReport = serde_json::from_slice(&first).unwrap();
        assert!(report.arrivals > 0);
        assert_eq!(
            report.served + report.coalesce_hits + report.rejected,
            report.arrivals
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Snapshot of the serve-flag rejection messages: unknown tokens
    /// must name the flag and list every valid token.
    #[test]
    fn serve_rejects_unknown_tokens_listing_valid_ones() {
        use landlord_sim::serve::{ArrivalModel, Backpressure};
        for (flag, bad, tokens) in [
            ("arrival", "exponential", ArrivalModel::TOKENS),
            ("backpressure", "drop", Backpressure::TOKENS),
            ("coalesce", "maybe", "on|off"),
        ] {
            let flag_arg = format!("--{flag}");
            let err = serve(&args(&["--scale", "smoke", flag_arg.as_str(), bad])).unwrap_err();
            let msg = err.to_string();
            assert!(msg.contains(flag), "{msg:?} must name --{flag}");
            assert!(msg.contains(tokens), "{msg:?} must list {tokens:?}");
            assert!(msg.contains(bad), "{msg:?} must echo the bad token");
        }
    }

    #[test]
    fn serve_rejects_degenerate_counts() {
        let err = serve(&args(&["--scale", "smoke", "--shards", "0"])).unwrap_err();
        assert!(err.to_string().contains("at least 1"), "{err}");
        let err = serve(&args(&["--scale", "smoke", "--zipf", "-2"])).unwrap_err();
        assert!(err.to_string().contains("non-negative"), "{err}");
    }

    #[test]
    fn serve_backpressure_reject_reports_rejections() {
        let out = std::env::temp_dir().join(format!(
            "landlord-cli-serve-rej-{}-{:?}.json",
            std::process::id(),
            std::thread::current().id()
        ));
        serve(&args(&[
            "--scale",
            "smoke",
            "--jobs",
            "20",
            "--repeats",
            "2",
            "--backpressure",
            "reject",
            "--queue-cap",
            "0",
            "--bytes-per-tick",
            "8",
            "--report-json",
            out.to_str().unwrap(),
        ]))
        .unwrap();
        let report: landlord_sim::ServeReport =
            serde_json::from_slice(&std::fs::read(&out).unwrap()).unwrap();
        assert!(report.rejected > 0, "queue-cap 0 under load must reject");
        assert_eq!(report.retry_after_ticks.count, report.rejected);
        std::fs::remove_file(&out).ok();
    }

    #[test]
    fn bench_serve_writes_schema_tagged_json_with_coalescing() {
        let dir = std::env::temp_dir().join(format!(
            "landlord-cli-benchs-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let out = dir.join("BENCH_serve.json");
        bench_serve(&args(&[
            "--out",
            out.to_str().unwrap(),
            "--jobs",
            "20",
            "--repeats",
            "2",
            "--wall-threads",
            "1,2",
        ]))
        .unwrap();
        let text = std::fs::read_to_string(&out).unwrap();
        assert!(text.contains(SERVE_BENCH_SCHEMA));
        assert!(text.contains("\"deterministic\": true"));
        assert!(text.contains("\"thread_invariant\": true"));
        let parsed: serde::Value = serde_json::from_str(&text).unwrap();
        let rate = match parsed.get("coalesce_rate_milli_pct") {
            Some(serde::Value::U64(n)) => *n,
            other => panic!("coalesce_rate_milli_pct must be a u64, got {other:?}"),
        };
        assert!(rate > 0, "Zipf load must coalesce");
        let serde::Value::Seq(wall) = parsed.get("wall").unwrap() else {
            panic!("wall section must be an array");
        };
        assert_eq!(wall.len(), 2);
        for row in wall {
            assert!(row.get("requests_per_sec").is_some());
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn simulate_rejects_bad_fault_rate() {
        let err = simulate(&args(&[
            "--scale",
            "smoke",
            "--jobs",
            "4",
            "--repeats",
            "1",
            "--fault-rate",
            "1.5",
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("must be in [0,1]"));
    }
}

#[cfg(test)]
mod trace_replay_tests {
    use super::*;

    fn args(toks: &[&str]) -> Args {
        Args::parse(toks.iter().map(|s| s.to_string())).unwrap()
    }

    #[test]
    fn trace_record_then_replay() {
        let dir = std::env::temp_dir().join(format!("landlord-trace-cli-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("stream.json");
        trace(&args(&[
            "--out",
            path.to_str().unwrap(),
            "--scale",
            "smoke",
            "--seed",
            "3",
        ]))
        .unwrap();
        simulate(&args(&[
            "--scale",
            "smoke",
            "--seed",
            "3",
            "--trace",
            path.to_str().unwrap(),
        ]))
        .unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }
}
