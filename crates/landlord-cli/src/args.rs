//! Minimal flag parsing: `--key value` pairs plus positionals.
//!
//! Hand-rolled (the workspace's dependency budget has no CLI crate);
//! supports exactly what the `landlord` subcommands need.

use std::collections::BTreeMap;

/// Parsed arguments: positionals in order, flags as key → value.
#[derive(Debug, Clone, Default)]
pub struct Args {
    positional: Vec<String>,
    flags: BTreeMap<String, String>,
}

/// Errors from argument parsing and lookup.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArgError {
    /// A `--flag` appeared with no following value.
    MissingValue(String),
    /// A required flag was absent.
    Required(String),
    /// A value failed to parse.
    Invalid {
        flag: String,
        value: String,
        expected: &'static str,
    },
}

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArgError::MissingValue(k) => write!(f, "flag --{k} needs a value"),
            ArgError::Required(k) => write!(f, "missing required flag --{k}"),
            ArgError::Invalid {
                flag,
                value,
                expected,
            } => {
                write!(f, "--{flag} {value:?}: expected {expected}")
            }
        }
    }
}

impl std::error::Error for ArgError {}

impl Args {
    /// Parse a raw argument list (not including argv\[0\]/subcommand).
    pub fn parse<I: IntoIterator<Item = String>>(raw: I) -> Result<Args, ArgError> {
        let mut out = Args::default();
        let mut iter = raw.into_iter().peekable();
        while let Some(tok) = iter.next() {
            if let Some(key) = tok.strip_prefix("--") {
                let value = iter
                    .next()
                    .ok_or_else(|| ArgError::MissingValue(key.to_string()))?;
                out.flags.insert(key.to_string(), value);
            } else {
                out.positional.push(tok);
            }
        }
        Ok(out)
    }

    /// Positional arguments in order.
    pub fn positional(&self) -> &[String] {
        &self.positional
    }

    /// Raw string flag.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.flags.get(key).map(|s| s.as_str())
    }

    /// String flag with default.
    pub fn get_or<'a>(&'a self, key: &str, default: &'a str) -> &'a str {
        self.get(key).unwrap_or(default)
    }

    /// Required string flag.
    pub fn require(&self, key: &str) -> Result<&str, ArgError> {
        self.get(key)
            .ok_or_else(|| ArgError::Required(key.to_string()))
    }

    /// Typed flag with default.
    pub fn get_parsed<T: std::str::FromStr>(
        &self,
        key: &str,
        default: T,
        expected: &'static str,
    ) -> Result<T, ArgError> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| ArgError::Invalid {
                flag: key.to_string(),
                value: v.to_string(),
                expected,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(toks: &[&str]) -> Args {
        Args::parse(toks.iter().map(|s| s.to_string())).unwrap()
    }

    #[test]
    fn positionals_and_flags() {
        let a = parse(&["fig4a", "--seed", "7", "--scale", "smoke"]);
        assert_eq!(a.positional(), &["fig4a".to_string()]);
        assert_eq!(a.get("seed"), Some("7"));
        assert_eq!(a.get_or("scale", "full"), "smoke");
        assert_eq!(a.get_or("threads", "4"), "4");
    }

    #[test]
    fn typed_parsing() {
        let a = parse(&["--alpha", "0.8"]);
        assert_eq!(a.get_parsed("alpha", 0.5f64, "a float").unwrap(), 0.8);
        assert_eq!(a.get_parsed("missing", 3u64, "an int").unwrap(), 3);
        let err = a.get_parsed::<u64>("alpha", 0, "an integer").unwrap_err();
        assert!(matches!(err, ArgError::Invalid { .. }));
        assert!(err.to_string().contains("expected an integer"));
    }

    #[test]
    fn missing_value_and_required() {
        let err = Args::parse(["--dangling".to_string()]).unwrap_err();
        assert_eq!(err, ArgError::MissingValue("dangling".into()));
        let a = parse(&[]);
        assert!(matches!(a.require("out"), Err(ArgError::Required(_))));
    }
}
