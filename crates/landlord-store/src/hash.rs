//! 128-bit content hashing.
//!
//! Objects are keyed by a 128-bit FNV-1a variant: two independent
//! 64-bit FNV-1a streams (the second offset-basis perturbed), finalized
//! with a SplitMix-style avalanche. This is **not** cryptographic — the
//! store trusts its writers, exactly as a private CVMFS cache does —
//! but 128 bits of well-mixed state make accidental collisions
//! vanishingly unlikely at our object counts, and implementing it
//! in-repo keeps the dependency budget at zero for this crate.

use serde::{Deserialize, Serialize};
use std::fmt;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

#[inline]
fn avalanche(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A 128-bit content hash.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ContentHash {
    hi: u64,
    lo: u64,
}

impl ContentHash {
    /// Hash a byte slice.
    pub fn of(data: &[u8]) -> Self {
        let mut a = FNV_OFFSET;
        let mut b = FNV_OFFSET ^ 0x9e37_79b9_7f4a_7c15;
        for &byte in data {
            a = (a ^ byte as u64).wrapping_mul(FNV_PRIME);
            b = (b ^ byte.rotate_left(3) as u64).wrapping_mul(FNV_PRIME);
        }
        // Mix in the length so prefixes of zero bytes differ.
        a ^= data.len() as u64;
        ContentHash {
            hi: avalanche(a),
            lo: avalanche(b ^ a.rotate_left(17)),
        }
    }

    /// Hash the concatenation of several slices without copying.
    pub fn of_parts<'a>(parts: impl IntoIterator<Item = &'a [u8]>) -> Self {
        let mut a = FNV_OFFSET;
        let mut b = FNV_OFFSET ^ 0x9e37_79b9_7f4a_7c15;
        let mut len = 0u64;
        for part in parts {
            len += part.len() as u64;
            for &byte in part {
                a = (a ^ byte as u64).wrapping_mul(FNV_PRIME);
                b = (b ^ byte.rotate_left(3) as u64).wrapping_mul(FNV_PRIME);
            }
        }
        a ^= len;
        ContentHash {
            hi: avalanche(a),
            lo: avalanche(b ^ a.rotate_left(17)),
        }
    }

    /// Lowercase hex, 32 characters.
    pub fn to_hex(self) -> String {
        format!("{:016x}{:016x}", self.hi, self.lo)
    }

    /// Parse 32 hex characters.
    pub fn from_hex(s: &str) -> Option<Self> {
        if s.len() != 32 {
            return None;
        }
        let hi = u64::from_str_radix(&s[..16], 16).ok()?;
        let lo = u64::from_str_radix(&s[16..], 16).ok()?;
        Some(ContentHash { hi, lo })
    }

    /// First byte of the hash, used for on-disk fan-out directories.
    pub fn fanout_byte(self) -> u8 {
        (self.hi >> 56) as u8
    }
}

impl fmt::Debug for ContentHash {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ContentHash({})", self.to_hex())
    }
}

impl fmt::Display for ContentHash {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(ContentHash::of(b"hello"), ContentHash::of(b"hello"));
    }

    #[test]
    fn distinguishes_content() {
        assert_ne!(ContentHash::of(b"hello"), ContentHash::of(b"world"));
        assert_ne!(ContentHash::of(b""), ContentHash::of(b"\0"));
        assert_ne!(ContentHash::of(b"\0"), ContentHash::of(b"\0\0"));
    }

    #[test]
    fn of_parts_equals_concatenation() {
        let whole = ContentHash::of(b"abcdef");
        let parts = ContentHash::of_parts([b"ab".as_slice(), b"", b"cdef"]);
        assert_eq!(whole, parts);
    }

    #[test]
    fn hex_round_trip() {
        let h = ContentHash::of(b"round trip");
        let hex = h.to_hex();
        assert_eq!(hex.len(), 32);
        assert_eq!(ContentHash::from_hex(&hex), Some(h));
        assert_eq!(ContentHash::from_hex("xyz"), None);
        assert_eq!(ContentHash::from_hex(&"0".repeat(31)), None);
    }

    #[test]
    fn no_collisions_over_small_corpus() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..20_000u32 {
            let data = i.to_le_bytes();
            assert!(seen.insert(ContentHash::of(&data)), "collision at {i}");
        }
    }

    #[test]
    fn fanout_byte_spreads() {
        let mut buckets = std::collections::HashSet::new();
        for i in 0..512u32 {
            buckets.insert(ContentHash::of(&i.to_le_bytes()).fanout_byte());
        }
        assert!(
            buckets.len() > 200,
            "fan-out too clustered: {}",
            buckets.len()
        );
    }
}
