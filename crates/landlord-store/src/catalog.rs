//! Directory catalogs: path → object mappings, stored as objects.
//!
//! A catalog is the CVMFS notion of a directory listing: each entry
//! names a file path and the content hash + size of its data. Catalogs
//! serialize to a canonical byte form and are stored in the object
//! store themselves, so a whole filesystem revision is reachable from
//! one root hash.

use crate::hash::ContentHash;
use crate::object::ObjectStore;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::io;

/// One file in a catalog.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CatalogEntry {
    /// Hash of the file contents.
    pub hash: ContentHash,
    /// File size in bytes.
    pub size: u64,
    /// Executable bit (the only mode bit container payloads care about).
    pub executable: bool,
}

/// An ordered path → entry mapping.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Catalog {
    entries: BTreeMap<String, CatalogEntry>,
}

impl Catalog {
    /// Empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of files.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the catalog lists no files.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Insert or replace a file entry. Paths are normalized to have no
    /// leading slash.
    pub fn insert(&mut self, path: &str, entry: CatalogEntry) {
        self.entries.insert(normalize(path), entry);
    }

    /// Look up a file by path.
    pub fn get(&self, path: &str) -> Option<&CatalogEntry> {
        self.entries.get(&normalize(path))
    }

    /// Iterate entries in path order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &CatalogEntry)> {
        self.entries.iter().map(|(p, e)| (p.as_str(), e))
    }

    /// Sum of file sizes (logical bytes, before dedup).
    pub fn total_bytes(&self) -> u64 {
        self.entries.values().map(|e| e.size).sum()
    }

    /// Merge another catalog into this one. On path collisions the
    /// *other* catalog wins (later publish overrides), mirroring how
    /// overlapping packages lay down files in install order.
    pub fn merge_from(&mut self, other: &Catalog) {
        for (p, e) in &other.entries {
            self.entries.insert(p.clone(), *e);
        }
    }

    /// All entries under a path prefix (directory listing).
    pub fn under_prefix<'a>(
        &'a self,
        prefix: &'a str,
    ) -> impl Iterator<Item = (&'a str, &'a CatalogEntry)> + 'a {
        let norm = normalize(prefix);
        self.entries
            .range(norm.clone()..)
            .take_while(move |(p, _)| p.starts_with(&norm))
            .map(|(p, e)| (p.as_str(), e))
    }

    /// Serialize canonically and store as an object; returns the
    /// catalog's own hash.
    pub fn store(&self, store: &dyn ObjectStore) -> io::Result<ContentHash> {
        let bytes = serde_json::to_vec(self).expect("catalogs always serialize");
        store.put(&bytes)
    }

    /// Load a catalog previously written by [`Catalog::store`].
    pub fn load(store: &dyn ObjectStore, hash: ContentHash) -> io::Result<Option<Catalog>> {
        let Some(bytes) = store.get(hash)? else {
            return Ok(None);
        };
        serde_json::from_slice(&bytes)
            .map(Some)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }
}

fn normalize(path: &str) -> String {
    path.trim_start_matches('/').to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::MemStore;

    fn entry(data: &[u8]) -> CatalogEntry {
        CatalogEntry {
            hash: ContentHash::of(data),
            size: data.len() as u64,
            executable: false,
        }
    }

    #[test]
    fn insert_get_normalizes_paths() {
        let mut c = Catalog::new();
        c.insert("/usr/bin/root", entry(b"ROOT"));
        assert!(c.get("usr/bin/root").is_some());
        assert!(c.get("/usr/bin/root").is_some());
        assert!(c.get("usr/bin/other").is_none());
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn total_bytes_sums_sizes() {
        let mut c = Catalog::new();
        c.insert("a", entry(b"xx"));
        c.insert("b", entry(b"yyy"));
        assert_eq!(c.total_bytes(), 5);
    }

    #[test]
    fn merge_later_wins() {
        let mut a = Catalog::new();
        a.insert("shared", entry(b"old"));
        a.insert("only-a", entry(b"a"));
        let mut b = Catalog::new();
        b.insert("shared", entry(b"new"));
        b.insert("only-b", entry(b"b"));
        a.merge_from(&b);
        assert_eq!(a.len(), 3);
        assert_eq!(a.get("shared").unwrap().hash, ContentHash::of(b"new"));
    }

    #[test]
    fn prefix_listing() {
        let mut c = Catalog::new();
        c.insert("pkg/root/lib.so", entry(b"1"));
        c.insert("pkg/root/bin", entry(b"2"));
        c.insert("pkg/zebra/data", entry(b"3"));
        let under: Vec<&str> = c.under_prefix("pkg/root/").map(|(p, _)| p).collect();
        assert_eq!(under, vec!["pkg/root/bin", "pkg/root/lib.so"]);
        assert_eq!(c.under_prefix("nope/").count(), 0);
    }

    #[test]
    fn store_load_round_trip() {
        let store = MemStore::new();
        let mut c = Catalog::new();
        c.insert("x/y", entry(b"data"));
        let h = c.store(&store).unwrap();
        let back = Catalog::load(&store, h).unwrap().unwrap();
        assert_eq!(back, c);
        // Missing hash loads as None.
        assert!(Catalog::load(&store, ContentHash::of(b"nothing"))
            .unwrap()
            .is_none());
    }

    #[test]
    fn identical_catalogs_share_storage() {
        let store = MemStore::new();
        let mut c = Catalog::new();
        c.insert("same", entry(b"same"));
        let h1 = c.store(&store).unwrap();
        let h2 = c.clone().store(&store).unwrap();
        assert_eq!(h1, h2);
        assert_eq!(store.object_count(), 1);
    }
}
