//! Content-addressed object storage backends.
//!
//! [`ObjectStore`] is the narrow interface the rest of the system needs:
//! put bytes → get a [`ContentHash`]; get bytes by hash. Putting the
//! same content twice is free — that is the file-level deduplication
//! CVMFS provides and LANDLORD's image builder relies on.
//!
//! Two backends:
//!
//! * [`MemStore`] — `RwLock`-guarded map, used by simulations and tests.
//! * [`DiskStore`] — one file per object under a 256-way fan-out
//!   directory (`objects/ab/abcdef….blob`), used by the CLI cache.

use crate::hash::ContentHash;
use landlord_obs::{Counter, MetricsRegistry};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// A content-addressed blob store.
pub trait ObjectStore: Send + Sync {
    /// Store `data`, returning its hash. Storing existing content is a
    /// cheap no-op.
    fn put(&self, data: &[u8]) -> io::Result<ContentHash>;

    /// Fetch a blob. `Ok(None)` when absent.
    fn get(&self, hash: ContentHash) -> io::Result<Option<Vec<u8>>>;

    /// Does the store hold this object?
    fn contains(&self, hash: ContentHash) -> bool;

    /// Number of distinct objects.
    fn object_count(&self) -> usize;

    /// Total bytes of distinct objects (after dedup).
    fn stored_bytes(&self) -> u64;

    /// All object hashes, in unspecified order (for fsck-style scans).
    fn hashes(&self) -> Vec<ContentHash>;
}

/// In-memory object store.
#[derive(Debug, Default)]
pub struct MemStore {
    inner: RwLock<MemInner>,
}

#[derive(Debug, Default)]
struct MemInner {
    objects: HashMap<ContentHash, Arc<[u8]>>,
    bytes: u64,
}

impl MemStore {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Remove one object (garbage collection); returns freed bytes.
    ///
    /// Inherent rather than on [`ObjectStore`]: deletion is a
    /// store-owner decision, not something image builders may do.
    pub fn remove(&self, hash: ContentHash) -> u64 {
        let mut inner = self.inner.write();
        match inner.objects.remove(&hash) {
            Some(data) => {
                inner.bytes -= data.len() as u64;
                data.len() as u64
            }
            None => 0,
        }
    }

    /// Zero-copy fetch (shared slice) — in-memory only.
    pub fn get_shared(&self, hash: ContentHash) -> Option<Arc<[u8]>> {
        self.inner.read().objects.get(&hash).cloned()
    }
}

impl ObjectStore for MemStore {
    fn put(&self, data: &[u8]) -> io::Result<ContentHash> {
        let hash = ContentHash::of(data);
        let mut inner = self.inner.write();
        if !inner.objects.contains_key(&hash) {
            inner.bytes += data.len() as u64;
            inner.objects.insert(hash, Arc::from(data));
        }
        Ok(hash)
    }

    fn get(&self, hash: ContentHash) -> io::Result<Option<Vec<u8>>> {
        Ok(self.inner.read().objects.get(&hash).map(|a| a.to_vec()))
    }

    fn contains(&self, hash: ContentHash) -> bool {
        self.inner.read().objects.contains_key(&hash)
    }

    fn object_count(&self) -> usize {
        self.inner.read().objects.len()
    }

    fn stored_bytes(&self) -> u64 {
        self.inner.read().bytes
    }

    fn hashes(&self) -> Vec<ContentHash> {
        self.inner.read().objects.keys().copied().collect()
    }
}

/// On-disk object store with 256-way fan-out.
#[derive(Debug)]
pub struct DiskStore {
    root: PathBuf,
    // Index kept in memory; rebuilt by `open` from the directory tree.
    index: RwLock<HashMap<ContentHash, u64>>,
    obs: Option<StoreObs>,
}

/// Pre-resolved counters for the disk store's I/O traffic.
#[derive(Debug)]
struct StoreObs {
    puts: Arc<Counter>,
    put_bytes: Arc<Counter>,
    dedup_hits: Arc<Counter>,
    gets: Arc<Counter>,
    get_bytes: Arc<Counter>,
}

impl DiskStore {
    /// Attach a metrics registry: from here on the store counts object
    /// puts/gets, bytes moved, and dedup short-circuits under the
    /// `store.*` prefix.
    pub fn attach_metrics(&mut self, registry: &MetricsRegistry) {
        self.obs = Some(StoreObs {
            puts: registry.counter("store.obj_puts"),
            put_bytes: registry.counter("store.obj_put_bytes"),
            dedup_hits: registry.counter("store.obj_dedup_hits"),
            gets: registry.counter("store.obj_gets"),
            get_bytes: registry.counter("store.obj_get_bytes"),
        });
    }

    /// Create (or open) a store rooted at `root`.
    pub fn open(root: &Path) -> io::Result<Self> {
        std::fs::create_dir_all(root)?;
        let mut index = HashMap::new();
        for entry in std::fs::read_dir(root)? {
            let dir = entry?.path();
            if !dir.is_dir() {
                continue;
            }
            for obj in std::fs::read_dir(&dir)? {
                let obj = obj?;
                let name = obj.file_name();
                let Some(stem) = name.to_str().and_then(|s| s.strip_suffix(".blob")) else {
                    continue;
                };
                if let Some(hash) = ContentHash::from_hex(stem) {
                    index.insert(hash, obj.metadata()?.len());
                }
            }
        }
        Ok(DiskStore {
            root: root.to_path_buf(),
            index: RwLock::new(index),
            obs: None,
        })
    }

    /// Remove one object file (garbage collection); returns freed bytes.
    ///
    /// Inherent rather than on [`ObjectStore`]: deletion is a
    /// store-owner decision, not something image builders may do.
    pub fn remove(&self, hash: ContentHash) -> io::Result<u64> {
        let Some(size) = self.index.write().remove(&hash) else {
            return Ok(0);
        };
        match std::fs::remove_file(self.path_of(hash)) {
            Ok(()) => Ok(size),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(size),
            Err(e) => Err(e),
        }
    }

    fn path_of(&self, hash: ContentHash) -> PathBuf {
        self.root
            .join(format!("{:02x}", hash.fanout_byte()))
            .join(format!("{}.blob", hash.to_hex()))
    }
}

impl ObjectStore for DiskStore {
    fn put(&self, data: &[u8]) -> io::Result<ContentHash> {
        let hash = ContentHash::of(data);
        if self.contains(hash) {
            if let Some(obs) = &self.obs {
                obs.dedup_hits.inc();
            }
            return Ok(hash);
        }
        let path = self.path_of(hash);
        std::fs::create_dir_all(path.parent().expect("object path has parent"))?;
        // Write-then-rename so concurrent readers never see partial blobs.
        let tmp = path.with_extension(format!("tmp{}", std::process::id()));
        std::fs::write(&tmp, data)?;
        std::fs::rename(&tmp, &path)?;
        self.index.write().insert(hash, data.len() as u64);
        if let Some(obs) = &self.obs {
            obs.puts.inc();
            obs.put_bytes.add(data.len() as u64);
        }
        Ok(hash)
    }

    fn get(&self, hash: ContentHash) -> io::Result<Option<Vec<u8>>> {
        if !self.contains(hash) {
            return Ok(None);
        }
        match std::fs::read(self.path_of(hash)) {
            Ok(data) => {
                if let Some(obs) = &self.obs {
                    obs.gets.inc();
                    obs.get_bytes.add(data.len() as u64);
                }
                Ok(Some(data))
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e),
        }
    }

    fn contains(&self, hash: ContentHash) -> bool {
        self.index.read().contains_key(&hash)
    }

    fn object_count(&self) -> usize {
        self.index.read().len()
    }

    fn stored_bytes(&self) -> u64 {
        self.index.read().values().sum()
    }

    fn hashes(&self) -> Vec<ContentHash> {
        self.index.read().keys().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise_store(store: &dyn ObjectStore) {
        assert_eq!(store.object_count(), 0);
        let h1 = store.put(b"first object").unwrap();
        let h2 = store.put(b"second object").unwrap();
        assert_ne!(h1, h2);
        assert_eq!(store.object_count(), 2);
        assert_eq!(
            store.get(h1).unwrap().as_deref(),
            Some(b"first object".as_slice())
        );
        assert!(store.contains(h2));
        assert!(!store.contains(ContentHash::of(b"absent")));
        assert_eq!(store.get(ContentHash::of(b"absent")).unwrap(), None);

        // Dedup: same content stored once.
        let before = store.stored_bytes();
        let h1_again = store.put(b"first object").unwrap();
        assert_eq!(h1, h1_again);
        assert_eq!(store.object_count(), 2);
        assert_eq!(store.stored_bytes(), before);
    }

    #[test]
    fn mem_store_basic() {
        exercise_store(&MemStore::new());
    }

    #[test]
    fn mem_store_shared_get() {
        let s = MemStore::new();
        let h = s.put(b"zero copy").unwrap();
        let shared = s.get_shared(h).unwrap();
        assert_eq!(&shared[..], b"zero copy");
    }

    #[test]
    fn disk_store_basic() {
        let dir = std::env::temp_dir().join(format!("landlord-disk-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let store = DiskStore::open(&dir).unwrap();
        exercise_store(&store);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn remove_frees_space() {
        let mem = MemStore::new();
        let h = mem.put(b"to be removed").unwrap();
        assert_eq!(mem.remove(h), 13);
        assert_eq!(mem.remove(h), 0, "second remove is a no-op");
        assert!(!mem.contains(h));
        assert_eq!(mem.stored_bytes(), 0);

        let dir = std::env::temp_dir().join(format!("landlord-disk-rm-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let disk = DiskStore::open(&dir).unwrap();
        let h = disk.put(b"on disk").unwrap();
        assert_eq!(disk.remove(h).unwrap(), 7);
        assert!(!disk.contains(h));
        assert_eq!(disk.object_count(), 0);
        // The blob file is actually gone (reopen finds nothing).
        let reopened = DiskStore::open(&dir).unwrap();
        assert_eq!(reopened.object_count(), 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn disk_store_reopens_with_index() {
        let dir = std::env::temp_dir().join(format!("landlord-disk-reopen-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let h = {
            let store = DiskStore::open(&dir).unwrap();
            store.put(b"persisted across opens").unwrap()
        };
        let store = DiskStore::open(&dir).unwrap();
        assert_eq!(store.object_count(), 1);
        assert!(store.contains(h));
        assert_eq!(
            store.get(h).unwrap().as_deref(),
            Some(b"persisted across opens".as_slice())
        );
        assert_eq!(store.stored_bytes(), b"persisted across opens".len() as u64);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stores_are_shareable_across_threads() {
        let store = Arc::new(MemStore::new());
        let mut handles = Vec::new();
        for t in 0..4u8 {
            let s = Arc::clone(&store);
            handles.push(std::thread::spawn(move || {
                for i in 0..100u32 {
                    // Half the objects are shared across threads.
                    let data = if i % 2 == 0 {
                        format!("shared-{i}")
                    } else {
                        format!("private-{t}-{i}")
                    };
                    s.put(data.as_bytes()).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        // 50 shared + 4×50 private.
        assert_eq!(store.object_count(), 50 + 200);
    }

    #[test]
    fn disk_store_metrics_count_io_and_dedup() {
        use landlord_obs::LogicalClock;

        let dir =
            std::env::temp_dir().join(format!("landlord-disk-metrics-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut store = DiskStore::open(&dir).unwrap();
        let registry = MetricsRegistry::new(Arc::new(LogicalClock::new()));
        store.attach_metrics(&registry);

        let h = store.put(b"payload").unwrap();
        store.put(b"payload").unwrap(); // dedup short-circuit
        store.put(b"other").unwrap();
        assert!(store.get(h).unwrap().is_some());

        let snap = registry.snapshot();
        assert_eq!(snap.counters["store.obj_puts"], 2);
        assert_eq!(snap.counters["store.obj_dedup_hits"], 1);
        assert_eq!(snap.counters["store.obj_put_bytes"], 7 + 5);
        assert_eq!(snap.counters["store.obj_gets"], 1);
        assert_eq!(snap.counters["store.obj_get_bytes"], 7);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
