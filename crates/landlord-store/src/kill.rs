//! Deterministic kill points for crash-consistency testing.
//!
//! A write-ahead log is only as crash-safe as its *worst* interleaving
//! of a power cut with its durability steps. [`KillSwitch`] is the
//! seam that lets a test cut the power at any one of those steps,
//! reproducibly: durability-sensitive code calls
//! [`KillSwitch::check`] at every point where a real crash could land,
//! and the switch decides — from an explicit plan, never ambient
//! entropy — whether the process "dies" there. Once a switch fires it
//! stays dead: every later check fails, exactly like a crashed
//! process that can issue no further I/O. The caller then drops its
//! handles and re-opens, which is precisely the recovery path a real
//! crash would exercise.
//!
//! Plans mirror [`crate::fault`]'s philosophy: the scripted modes
//! ([`KillSwitch::at_step`], [`KillSwitch::at_point`]) pin exact
//! crash sites so a sweep can enumerate *every* one; the seeded mode
//! ([`KillSwitch::seeded`]) Bernoulli-rolls each step from a SplitMix
//! mix of `(seed, step)`, fully reproducible under the same seed.

use parking_lot::Mutex;
use std::io;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// A durability step a crash can interrupt. One `check()` call guards
/// each of these in the WAL/checkpoint machinery.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum KillPoint {
    /// Inside a log append: only a prefix of the record reaches disk.
    MidAppend,
    /// After the record bytes are written but before the log fsync
    /// that would acknowledge them.
    PostAppendPreFsync,
    /// Inside a checkpoint write: only a prefix of the temp file
    /// reaches disk.
    MidCheckpoint,
    /// After the checkpoint temp file is renamed into place but before
    /// the parent-directory fsync that makes the rename durable.
    PostRenamePreDirFsync,
    /// Inside the log truncation that follows a checkpoint: the log is
    /// cut at an arbitrary byte, leaving a torn tail.
    MidCompactionTruncate,
}

impl KillPoint {
    /// Every kill point, in durability-step order.
    pub const ALL: [KillPoint; 5] = [
        KillPoint::MidAppend,
        KillPoint::PostAppendPreFsync,
        KillPoint::MidCheckpoint,
        KillPoint::PostRenamePreDirFsync,
        KillPoint::MidCompactionTruncate,
    ];

    /// Stable name (used in error messages and reports).
    pub fn name(self) -> &'static str {
        match self {
            KillPoint::MidAppend => "mid-append",
            KillPoint::PostAppendPreFsync => "post-append-pre-fsync",
            KillPoint::MidCheckpoint => "mid-checkpoint",
            KillPoint::PostRenamePreDirFsync => "post-rename-pre-dir-fsync",
            KillPoint::MidCompactionTruncate => "mid-compaction-truncate",
        }
    }

    fn index(self) -> usize {
        match self {
            KillPoint::MidAppend => 0,
            KillPoint::PostAppendPreFsync => 1,
            KillPoint::MidCheckpoint => 2,
            KillPoint::PostRenamePreDirFsync => 3,
            KillPoint::MidCompactionTruncate => 4,
        }
    }
}

/// When the switch fires.
#[derive(Debug, Clone, Copy)]
enum Plan {
    /// Never fires (production default).
    Never,
    /// Fires at the Nth durability step, whatever its kind (0-based
    /// over the global step counter). Sweeping N over
    /// [`KillSwitch::steps_taken`] of a clean run visits every site.
    AtStep(u64),
    /// Fires at the Nth occurrence of one specific point (0-based).
    AtPoint { point: KillPoint, occurrence: u64 },
    /// Fires each step with probability `per_mille`/1000, decided by
    /// mixing the seed with the step index (reproducible).
    Seeded { seed: u64, per_mille: u16 },
}

/// Marker text every kill error carries; see [`is_kill_error`].
const KILL_MSG: &str = "killed at kill-point";

/// True when `e` was produced by a [`KillSwitch`] firing (as opposed
/// to a genuine I/O failure on the same path).
pub fn is_kill_error(e: &io::Error) -> bool {
    e.to_string().contains(KILL_MSG)
}

/// The crash seam. Cheap to check when the plan is [`Plan::Never`];
/// shared behind an `Arc` by every component whose durability steps
/// belong to the same simulated process.
pub struct KillSwitch {
    plan: Plan,
    dead: AtomicBool,
    steps: AtomicU64,
    per_point: [AtomicU64; 5],
    fired: Mutex<Option<(KillPoint, u64)>>,
}

impl KillSwitch {
    fn with_plan(plan: Plan) -> Self {
        KillSwitch {
            plan,
            dead: AtomicBool::new(false),
            steps: AtomicU64::new(0),
            per_point: std::array::from_fn(|_| AtomicU64::new(0)),
            fired: Mutex::new(None),
        }
    }

    /// A switch that never fires — production behaviour, zero plans.
    pub fn never() -> Self {
        Self::with_plan(Plan::Never)
    }

    /// Fire at the `step`th durability step (0-based, any kind).
    pub fn at_step(step: u64) -> Self {
        Self::with_plan(Plan::AtStep(step))
    }

    /// Fire at the `occurrence`th time `point` is reached (0-based).
    pub fn at_point(point: KillPoint, occurrence: u64) -> Self {
        Self::with_plan(Plan::AtPoint { point, occurrence })
    }

    /// Fire each step with probability `per_mille`/1000, decided
    /// deterministically from `(seed, step index)`.
    pub fn seeded(seed: u64, per_mille: u16) -> Self {
        Self::with_plan(Plan::Seeded { seed, per_mille })
    }

    /// The crash seam: called once per durability step. Returns `Err`
    /// when the simulated process is (or just became) dead; the caller
    /// must abandon the operation exactly where it stands, leaving any
    /// partial bytes it already wrote.
    pub fn check(&self, point: KillPoint) -> io::Result<()> {
        if self.dead.load(Ordering::Acquire) {
            // sync: Acquire pairs with the Release store in the firing
            // branch so a dead switch is seen before any state behind it
            return Err(self.kill_error(point, "process already dead"));
        }
        let step = self.steps.fetch_add(1, Ordering::Relaxed); // sync: step ticket; uniqueness is all the plans need
        let occurrence = self.per_point[point.index()].fetch_add(1, Ordering::Relaxed); // sync: per-point ticket; uniqueness only
        let fire = match self.plan {
            Plan::Never => false,
            Plan::AtStep(n) => step == n,
            Plan::AtPoint {
                point: p,
                occurrence: n,
            } => p == point && occurrence == n,
            Plan::Seeded { seed, per_mille } => {
                rolls_kill(seed, point.index() as u64, step, per_mille)
            }
        };
        if fire {
            *self.fired.lock() = Some((point, step));
            self.dead.store(true, Ordering::Release); // sync: Release publishes `fired` to later Acquire loads
            return Err(self.kill_error(point, "power cut"));
        }
        Ok(())
    }

    /// Durability steps checked so far (dead or alive). A clean run's
    /// total is the sweep bound for [`KillSwitch::at_step`].
    pub fn steps_taken(&self) -> u64 {
        self.steps.load(Ordering::Relaxed) // sync: test-harness counter; read after the run settles
    }

    /// Has the switch fired?
    pub fn is_dead(&self) -> bool {
        self.dead.load(Ordering::Acquire) // sync: pairs with the Release store when firing
    }

    /// Where (and at which global step) the switch fired, if it has.
    pub fn fired_at(&self) -> Option<(KillPoint, u64)> {
        *self.fired.lock()
    }

    fn kill_error(&self, point: KillPoint, why: &str) -> io::Error {
        io::Error::other(format!("{KILL_MSG} {} ({why})", point.name()))
    }
}

/// SplitMix64 finalizer (same construction as [`crate::fault`]).
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

fn rolls_kill(seed: u64, salt: u64, step: u64, per_mille: u16) -> bool {
    if per_mille == 0 {
        return false;
    }
    let h = mix(seed ^ mix(salt) ^ step.wrapping_mul(0x2545_f491_4f6c_dd1d));
    (h % 1000) < u64::from(per_mille)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn never_mode_is_transparent() {
        let k = KillSwitch::never();
        for point in KillPoint::ALL {
            k.check(point).unwrap();
        }
        assert_eq!(k.steps_taken(), 5);
        assert!(!k.is_dead());
        assert_eq!(k.fired_at(), None);
    }

    #[test]
    fn at_step_fires_once_then_everything_fails() {
        let k = KillSwitch::at_step(2);
        k.check(KillPoint::MidAppend).unwrap();
        k.check(KillPoint::PostAppendPreFsync).unwrap();
        let err = k.check(KillPoint::MidCheckpoint).unwrap_err();
        assert!(is_kill_error(&err), "{err}");
        assert!(k.is_dead());
        assert_eq!(k.fired_at(), Some((KillPoint::MidCheckpoint, 2)));
        // A dead process can issue no further I/O, at any point.
        for point in KillPoint::ALL {
            assert!(is_kill_error(&k.check(point).unwrap_err()));
        }
    }

    #[test]
    fn at_point_counts_occurrences_of_that_point_only() {
        let k = KillSwitch::at_point(KillPoint::MidAppend, 1);
        k.check(KillPoint::MidAppend).unwrap();
        k.check(KillPoint::MidCheckpoint).unwrap();
        k.check(KillPoint::MidCheckpoint).unwrap();
        let err = k.check(KillPoint::MidAppend).unwrap_err();
        assert!(is_kill_error(&err));
        assert_eq!(k.fired_at().unwrap().0, KillPoint::MidAppend);
    }

    #[test]
    fn seeded_plans_are_deterministic_and_seed_sensitive() {
        let pattern = |seed: u64| {
            let k = KillSwitch::seeded(seed, 300);
            let mut died_at = None;
            for i in 0..200u64 {
                if k.check(KillPoint::ALL[(i % 5) as usize]).is_err() {
                    died_at = Some(i);
                    break;
                }
            }
            died_at
        };
        assert_eq!(pattern(9), pattern(9), "same seed, same crash site");
        assert!(pattern(9).is_some(), "300/1000 over 200 steps must fire");
        let mut differs = false;
        for other in 10..20 {
            if pattern(other) != pattern(9) {
                differs = true;
                break;
            }
        }
        assert!(differs, "some nearby seed must crash elsewhere");
    }

    #[test]
    fn zero_per_mille_never_fires() {
        let k = KillSwitch::seeded(1, 0);
        for _ in 0..100 {
            k.check(KillPoint::PostAppendPreFsync).unwrap();
        }
        assert!(!k.is_dead());
    }

    #[test]
    fn kill_errors_are_distinguishable_from_real_io_errors() {
        let real = io::Error::new(io::ErrorKind::StorageFull, "no space left on device");
        assert!(!is_kill_error(&real));
        let k = KillSwitch::at_step(0);
        let killed = k.check(KillPoint::MidAppend).unwrap_err();
        assert!(is_kill_error(&killed));
        assert!(killed.to_string().contains("mid-append"));
    }
}
