//! Append-only repository filesystem revisions.
//!
//! CVMFS repositories are "normally append-only and all previous
//! versions remain available" — the property that makes LANDLORD's
//! merge operation conflict-free for the LHC experiments. A
//! [`RepositoryFs`] is a sequence of published revisions, each a full
//! [`Catalog`] stored in the object store; publishing never mutates or
//! removes earlier revisions.

use crate::catalog::{Catalog, CatalogEntry};
use crate::hash::ContentHash;
use crate::object::ObjectStore;
use parking_lot::RwLock;
use serde::{Deserialize, Serialize};
use std::io;
use std::sync::Arc;

/// Identity of a published revision (1-based, monotonically increasing).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct RevisionId(pub u64);

impl std::fmt::Display for RevisionId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "rev{}", self.0)
    }
}

/// An append-only filesystem built on a content-addressed store.
pub struct RepositoryFs {
    store: Arc<dyn ObjectStore>,
    revisions: RwLock<Vec<ContentHash>>,
}

impl RepositoryFs {
    /// A fresh filesystem over `store` with no revisions.
    pub fn new(store: Arc<dyn ObjectStore>) -> Self {
        RepositoryFs {
            store,
            revisions: RwLock::new(Vec::new()),
        }
    }

    /// The underlying object store.
    pub fn store(&self) -> &Arc<dyn ObjectStore> {
        &self.store
    }

    /// Number of published revisions.
    pub fn revision_count(&self) -> usize {
        self.revisions.read().len()
    }

    /// Latest revision id, if any revision exists.
    pub fn head(&self) -> Option<RevisionId> {
        let n = self.revisions.read().len() as u64;
        (n > 0).then_some(RevisionId(n))
    }

    /// Publish files on top of the current head (copy-forward
    /// semantics: the new revision contains everything the head did,
    /// plus/overriding `files`). Returns the new revision id.
    ///
    /// Previous revisions remain readable forever — there is
    /// deliberately no delete operation on this type.
    pub fn publish<'a>(
        &self,
        files: impl IntoIterator<Item = (&'a str, &'a [u8], bool)>,
    ) -> io::Result<RevisionId> {
        let mut catalog = match self.head() {
            Some(head) => self.open(head)?.expect("head revision must load"),
            None => Catalog::new(),
        };
        for (path, data, executable) in files {
            let hash = self.store.put(data)?;
            catalog.insert(
                path,
                CatalogEntry {
                    hash,
                    size: data.len() as u64,
                    executable,
                },
            );
        }
        let root = catalog.store(self.store.as_ref())?;
        let mut revisions = self.revisions.write();
        revisions.push(root);
        Ok(RevisionId(revisions.len() as u64))
    }

    /// Open a revision's catalog. `Ok(None)` for unknown revisions.
    pub fn open(&self, rev: RevisionId) -> io::Result<Option<Catalog>> {
        let root = {
            let revisions = self.revisions.read();
            if rev.0 == 0 || rev.0 as usize > revisions.len() {
                return Ok(None);
            }
            revisions[rev.0 as usize - 1]
        };
        Catalog::load(self.store.as_ref(), root)
    }

    /// Read one file from one revision.
    pub fn read(&self, rev: RevisionId, path: &str) -> io::Result<Option<Vec<u8>>> {
        let Some(catalog) = self.open(rev)? else {
            return Ok(None);
        };
        let Some(entry) = catalog.get(path) else {
            return Ok(None);
        };
        self.store.get(entry.hash)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::MemStore;

    fn fs() -> RepositoryFs {
        RepositoryFs::new(Arc::new(MemStore::new()))
    }

    #[test]
    fn publish_and_read_back() {
        let fs = fs();
        assert_eq!(fs.head(), None);
        let r1 = fs.publish([("bin/app", b"v1".as_slice(), true)]).unwrap();
        assert_eq!(r1, RevisionId(1));
        assert_eq!(fs.head(), Some(r1));
        assert_eq!(
            fs.read(r1, "bin/app").unwrap().as_deref(),
            Some(b"v1".as_slice())
        );
        assert_eq!(fs.read(r1, "missing").unwrap(), None);
    }

    #[test]
    fn revisions_are_append_only() {
        let fs = fs();
        let r1 = fs.publish([("data", b"old".as_slice(), false)]).unwrap();
        let r2 = fs.publish([("data", b"new".as_slice(), false)]).unwrap();
        // New head sees the new content…
        assert_eq!(
            fs.read(r2, "data").unwrap().as_deref(),
            Some(b"new".as_slice())
        );
        // …and the old revision still serves the old content.
        assert_eq!(
            fs.read(r1, "data").unwrap().as_deref(),
            Some(b"old".as_slice())
        );
        assert_eq!(fs.revision_count(), 2);
    }

    #[test]
    fn publish_copies_forward() {
        let fs = fs();
        fs.publish([("a", b"1".as_slice(), false)]).unwrap();
        let r2 = fs.publish([("b", b"2".as_slice(), false)]).unwrap();
        // Revision 2 contains both files.
        let cat = fs.open(r2).unwrap().unwrap();
        assert_eq!(cat.len(), 2);
        assert!(cat.get("a").is_some());
    }

    #[test]
    fn unknown_revision_is_none() {
        let fs = fs();
        assert!(fs.open(RevisionId(0)).unwrap().is_none());
        assert!(fs.open(RevisionId(7)).unwrap().is_none());
        assert!(fs.read(RevisionId(7), "x").unwrap().is_none());
    }

    #[test]
    fn identical_content_dedups_across_revisions() {
        let fs = fs();
        fs.publish([("a", b"shared-bytes".as_slice(), false)])
            .unwrap();
        let before = fs.store().stored_bytes();
        fs.publish([("b", b"shared-bytes".as_slice(), false)])
            .unwrap();
        let after = fs.store().stored_bytes();
        // Only the catalog object grew; the file bytes were reused.
        assert!(
            after - before < 500,
            "file content duplicated: {before} -> {after}"
        );
    }
}
