//! # landlord-store
//!
//! A CVMFS-like content-addressed object store: the substrate the
//! paper's Shrinkwrap tool pulls container contents from.
//!
//! CVMFS properties this crate reproduces (the ones LANDLORD's design
//! leans on):
//!
//! * **Content addressing** — every stored blob is keyed by a hash of
//!   its contents, so identical files across packages, revisions, and
//!   images are stored once ([`object`]).
//! * **Directory catalogs** — path → object mappings, themselves stored
//!   as objects ([`catalog`]).
//! * **Append-only revisions** — publishing never mutates or deletes
//!   previous state; "CVMFS retains all historical versions to ensure
//!   reproducibility and backwards compatibility, making simple garbage
//!   collection impossible" ([`revision`]).
//! * **Deduplication analysis** — file-level and block-level (fixed and
//!   content-defined chunking) duplication measurement, backing the
//!   paper's §III discussion of why block dedup alone cannot solve the
//!   container explosion problem ([`dedup`]).
//!
//! A fault-injecting store decorator ([`fault`]) lets dependent crates
//! test their error paths against disk-full and read-error conditions.
//!
//! Two object-store backends are provided: in-memory (simulation,
//! tests) and on-disk with hash-prefix fan-out (the CLI's cache
//! directory).
//!
//! ```
//! use landlord_store::{MemStore, ObjectStore, RepositoryFs};
//! use std::sync::Arc;
//!
//! let fs = RepositoryFs::new(Arc::new(MemStore::new()));
//! let r1 = fs.publish([("setup.sh", b"v1".as_slice(), true)]).unwrap();
//! let r2 = fs.publish([("setup.sh", b"v2".as_slice(), true)]).unwrap();
//! // Append-only: the old revision still serves the old bytes.
//! assert_eq!(fs.read(r1, "setup.sh").unwrap().unwrap(), b"v1");
//! assert_eq!(fs.read(r2, "setup.sh").unwrap().unwrap(), b"v2");
//! ```

pub mod catalog;
pub mod dedup;
pub mod fault;
pub mod gc;
pub mod hash;
pub mod kill;
pub mod object;
pub mod revision;

pub use catalog::{Catalog, CatalogEntry};
pub use hash::ContentHash;
pub use kill::{KillPoint, KillSwitch};
pub use object::{DiskStore, MemStore, ObjectStore};
pub use revision::{RepositoryFs, RevisionId};
