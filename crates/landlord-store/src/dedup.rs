//! Duplication measurement: file-level and block-level.
//!
//! §III of the paper ("Imperfect Solution: Block Deduplication")
//! observes that finding duplicated blocks across container images is
//! easy — the hard part is that images must stay self-contained, so
//! dedup cannot actually reclaim the space for unprivileged users. This
//! module provides the measurement side: given a set of byte streams
//! (images, package trees), how much of the data is redundant?
//!
//! Three granularities:
//!
//! * whole-file ([`FileDedup`]),
//! * fixed-size blocks ([`block_dedup_fixed`]),
//! * content-defined chunks via a polynomial rolling hash
//!   ([`block_dedup_cdc`]) — robust to insertions that shift byte
//!   offsets, the standard trick from the dedup literature the paper
//!   cites.

use crate::hash::ContentHash;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Result of a dedup analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DedupReport {
    /// Bytes as stored with full copies (logical).
    pub total_bytes: u64,
    /// Bytes after deduplication (unique).
    pub unique_bytes: u64,
    /// Number of units (files/blocks/chunks) seen.
    pub total_units: u64,
    /// Number of distinct units.
    pub unique_units: u64,
}

impl DedupReport {
    /// `unique / total` in percent; 100 when nothing is duplicated.
    pub fn efficiency_pct(&self) -> f64 {
        if self.total_bytes == 0 {
            return 100.0;
        }
        100.0 * self.unique_bytes as f64 / self.total_bytes as f64
    }

    /// Classic dedup ratio `total / unique` (≥ 1).
    pub fn dedup_ratio(&self) -> f64 {
        if self.unique_bytes == 0 {
            return 1.0;
        }
        self.total_bytes as f64 / self.unique_bytes as f64
    }
}

/// Accumulates whole-file duplication across any number of inputs.
#[derive(Debug, Default)]
pub struct FileDedup {
    seen: HashMap<ContentHash, u64>,
    total_bytes: u64,
    unique_bytes: u64,
    total_units: u64,
}

impl FileDedup {
    /// Fresh accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one file's contents.
    pub fn add_file(&mut self, data: &[u8]) {
        self.add_hashed(ContentHash::of(data), data.len() as u64);
    }

    /// Record a file already hashed (avoids rehashing catalog entries).
    pub fn add_hashed(&mut self, hash: ContentHash, size: u64) {
        self.total_units += 1;
        self.total_bytes += size;
        if self.seen.insert(hash, size).is_none() {
            self.unique_bytes += size;
        }
    }

    /// The report so far.
    pub fn report(&self) -> DedupReport {
        DedupReport {
            total_bytes: self.total_bytes,
            unique_bytes: self.unique_bytes,
            total_units: self.total_units,
            unique_units: self.seen.len() as u64,
        }
    }
}

/// Block-level dedup over fixed-size blocks.
pub fn block_dedup_fixed(streams: &[&[u8]], block_size: usize) -> DedupReport {
    assert!(block_size > 0, "block size must be positive");
    let mut seen = HashMap::new();
    let mut total_bytes = 0u64;
    let mut unique_bytes = 0u64;
    let mut total_units = 0u64;
    for stream in streams {
        for block in stream.chunks(block_size) {
            total_units += 1;
            total_bytes += block.len() as u64;
            let h = ContentHash::of(block);
            if seen.insert(h, ()).is_none() {
                unique_bytes += block.len() as u64;
            }
        }
    }
    DedupReport {
        total_bytes,
        unique_bytes,
        total_units,
        unique_units: seen.len() as u64,
    }
}

/// Content-defined chunking parameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct CdcParams {
    /// Minimum chunk length.
    pub min: usize,
    /// A boundary is declared when the rolling hash has this many low
    /// bits zero; the expected chunk length is `2^mask_bits`.
    pub mask_bits: u32,
    /// Maximum chunk length (forced boundary).
    pub max: usize,
}

impl Default for CdcParams {
    fn default() -> Self {
        // Expected ~4 KiB chunks, bounded 1–16 KiB.
        CdcParams {
            min: 1024,
            mask_bits: 12,
            max: 16 * 1024,
        }
    }
}

/// Split a stream into content-defined chunks (boundaries depend only
/// on local content, so shared runs chunk identically across streams
/// even at different offsets).
pub fn cdc_chunks<'a>(data: &'a [u8], params: &CdcParams) -> Vec<&'a [u8]> {
    assert!(params.min >= 64, "window must fit in the minimum chunk");
    assert!(params.max >= params.min);
    let mask: u64 = (1u64 << params.mask_bits) - 1;
    let mut chunks = Vec::new();
    let mut start = 0usize;
    let mut hash: u64 = 0;
    const WINDOW: usize = 48;
    // Polynomial rolling hash: h = h*PRIME + byte, byte leaving the
    // window removed via precomputed PRIME^WINDOW.
    const PRIME: u64 = 0x3b9a_ca07;
    let mut pow = 1u64;
    for _ in 0..WINDOW {
        pow = pow.wrapping_mul(PRIME);
    }
    for i in 0..data.len() {
        hash = hash.wrapping_mul(PRIME).wrapping_add(data[i] as u64 + 1);
        if i >= WINDOW {
            hash = hash.wrapping_sub(pow.wrapping_mul(data[i - WINDOW] as u64 + 1));
        }
        let len = i + 1 - start;
        if (len >= params.min && hash & mask == 0) || len >= params.max {
            chunks.push(&data[start..=i]);
            start = i + 1;
            hash = 0;
        }
    }
    if start < data.len() {
        chunks.push(&data[start..]);
    }
    chunks
}

/// Block-level dedup over content-defined chunks.
pub fn block_dedup_cdc(streams: &[&[u8]], params: &CdcParams) -> DedupReport {
    let mut seen = HashMap::new();
    let mut total_bytes = 0u64;
    let mut unique_bytes = 0u64;
    let mut total_units = 0u64;
    for stream in streams {
        for chunk in cdc_chunks(stream, params) {
            total_units += 1;
            total_bytes += chunk.len() as u64;
            let h = ContentHash::of(chunk);
            if seen.insert(h, ()).is_none() {
                unique_bytes += chunk.len() as u64;
            }
        }
    }
    DedupReport {
        total_bytes,
        unique_bytes,
        total_units,
        unique_units: seen.len() as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn file_dedup_counts_duplicates_once() {
        let mut d = FileDedup::new();
        d.add_file(b"alpha-alpha-alpha");
        d.add_file(b"alpha-alpha-alpha");
        d.add_file(b"beta");
        let r = d.report();
        assert_eq!(r.total_units, 3);
        assert_eq!(r.unique_units, 2);
        assert_eq!(r.total_bytes, 17 * 2 + 4);
        assert_eq!(r.unique_bytes, 17 + 4);
        assert!(r.dedup_ratio() > 1.0);
        assert!(r.efficiency_pct() < 100.0);
    }

    #[test]
    fn empty_report_is_neutral() {
        let r = FileDedup::new().report();
        assert_eq!(r.efficiency_pct(), 100.0);
        assert_eq!(r.dedup_ratio(), 1.0);
    }

    #[test]
    fn fixed_blocks_find_aligned_duplication() {
        let a = vec![7u8; 4096];
        let mut b = vec![7u8; 4096];
        b.extend_from_slice(&[9u8; 1024]);
        let r = block_dedup_fixed(&[&a, &b], 1024);
        // a: 4 identical blocks; b: same 4 + one distinct.
        assert_eq!(r.total_units, 9);
        assert_eq!(r.unique_units, 2);
        assert_eq!(r.unique_bytes, 2048);
    }

    #[test]
    #[should_panic(expected = "block size must be positive")]
    fn zero_block_size_panics() {
        let _ = block_dedup_fixed(&[b"x"], 0);
    }

    #[test]
    fn cdc_chunks_cover_stream_exactly() {
        let data: Vec<u8> = (0..100_000u32)
            .map(|i| (i.wrapping_mul(2654435761)) as u8)
            .collect();
        let params = CdcParams::default();
        let chunks = cdc_chunks(&data, &params);
        let total: usize = chunks.iter().map(|c| c.len()).sum();
        assert_eq!(total, data.len(), "chunks must partition the stream");
        for c in &chunks[..chunks.len() - 1] {
            assert!(c.len() >= params.min);
            assert!(c.len() <= params.max);
        }
    }

    #[test]
    fn cdc_survives_offset_shift() {
        // Insert a prefix before shared content; fixed blocks lose all
        // alignment, CDC re-synchronizes.
        let shared: Vec<u8> = (0..200_000u32)
            .map(|i| (i.wrapping_mul(2654435761) >> 3) as u8)
            .collect();
        let mut shifted = vec![0xAAu8; 777];
        shifted.extend_from_slice(&shared);

        let fixed = block_dedup_fixed(&[&shared, &shifted], 4096);
        let cdc = block_dedup_cdc(&[&shared, &shifted], &CdcParams::default());
        assert!(
            cdc.unique_bytes < fixed.unique_bytes,
            "CDC ({}) should beat fixed ({}) under shift",
            cdc.unique_bytes,
            fixed.unique_bytes
        );
        // CDC should find most of the duplication: unique ≈ one copy.
        assert!(
            (cdc.unique_bytes as f64) < shared.len() as f64 * 1.25,
            "CDC unique {} vs shared {}",
            cdc.unique_bytes,
            shared.len()
        );
    }

    #[test]
    fn identical_streams_dedup_fully() {
        // Non-periodic pseudo-random data: periodic content would dedup
        // within a single stream and break the exact-ratio assertion.
        let data: Vec<u8> = (0..50_000u32)
            .map(|i| (i.wrapping_mul(2654435761) >> 13) as u8)
            .collect();
        let r = block_dedup_cdc(&[&data, &data, &data], &CdcParams::default());
        assert_eq!(r.unique_bytes * 3, r.total_bytes);
        assert!((r.dedup_ratio() - 3.0).abs() < 1e-9);
    }
}
