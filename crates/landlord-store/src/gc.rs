//! Reachability analysis and retention accounting.
//!
//! §III: "CVMFS retains all historical versions to ensure
//! reproducibility and backwards compatibility, making simple garbage
//! collection impossible." This module puts numbers on that statement
//! for a [`RepositoryFs`]: given a *retention window* (the set of
//! revisions that must stay readable), which objects are reachable,
//! and how many bytes would a collector reclaim if the older revisions
//! were allowed to expire?
//!
//! There is deliberately no `delete` here — the store stays append-only
//! (the property LANDLORD's conflict-free merging relies on). The
//! analysis is what an operator consults *before* deciding whether
//! breaking retention is worth it.

use crate::catalog::Catalog;
use crate::hash::ContentHash;
use crate::object::ObjectStore;
use crate::revision::{RepositoryFs, RevisionId};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use std::io;

/// Result of a reachability analysis.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GcReport {
    /// Revisions inspected (the retention window).
    pub retained_revisions: Vec<RevisionId>,
    /// Objects reachable from the retained revisions (catalogs + file
    /// contents).
    pub reachable_objects: usize,
    /// Bytes of reachable objects.
    pub reachable_bytes: u64,
    /// Objects in the store overall.
    pub total_objects: usize,
    /// Bytes in the store overall.
    pub total_bytes: u64,
}

impl GcReport {
    /// Objects a collector honouring the window could reclaim.
    pub fn reclaimable_objects(&self) -> usize {
        self.total_objects - self.reachable_objects
    }

    /// Bytes a collector honouring the window could reclaim.
    pub fn reclaimable_bytes(&self) -> u64 {
        self.total_bytes - self.reachable_bytes
    }

    /// Fraction of stored bytes the window pins, in percent.
    pub fn pinned_pct(&self) -> f64 {
        if self.total_bytes == 0 {
            return 100.0;
        }
        100.0 * self.reachable_bytes as f64 / self.total_bytes as f64
    }
}

/// Compute reachability for an explicit set of retained revisions.
///
/// Unknown revision ids are ignored (they pin nothing).
pub fn analyze(fs: &RepositoryFs, retained: &[RevisionId]) -> io::Result<GcReport> {
    let store = fs.store();
    let mut reachable: HashSet<ContentHash> = HashSet::new();
    let mut reachable_bytes = 0u64;
    let mut retained_seen = Vec::new();

    for &rev in retained {
        let Some(catalog) = fs.open(rev)? else {
            continue;
        };
        retained_seen.push(rev);
        // The catalog object itself is reachable; re-serialize through
        // Catalog::store's canonical form to learn its hash and size.
        let catalog_bytes = serde_json::to_vec(&catalog).expect("catalogs always serialize");
        let catalog_hash = ContentHash::of(&catalog_bytes);
        if reachable.insert(catalog_hash) {
            reachable_bytes += catalog_bytes.len() as u64;
        }
        for (_, entry) in catalog.iter() {
            if reachable.insert(entry.hash) {
                reachable_bytes += entry.size;
            }
        }
    }

    Ok(GcReport {
        retained_revisions: retained_seen,
        reachable_objects: reachable.len(),
        reachable_bytes,
        total_objects: store.object_count(),
        total_bytes: store.stored_bytes(),
    })
}

/// Convenience: retain only the newest `window` revisions.
pub fn analyze_window(fs: &RepositoryFs, window: usize) -> io::Result<GcReport> {
    let head = fs.head().map(|r| r.0).unwrap_or(0);
    let start = head.saturating_sub(window as u64) + 1;
    let retained: Vec<RevisionId> = (start..=head).map(RevisionId).collect();
    analyze(fs, &retained)
}

/// Bytes pinned per retention window size, newest-first — the curve an
/// operator looks at when deciding how much history to keep.
pub fn retention_curve(fs: &RepositoryFs, max_window: usize) -> io::Result<Vec<(usize, u64)>> {
    let mut curve = Vec::new();
    for window in 1..=max_window.min(fs.revision_count()) {
        let report = analyze_window(fs, window)?;
        curve.push((window, report.reachable_bytes));
    }
    Ok(curve)
}

/// Verify that every object referenced by the retained revisions is
/// actually present and intact in the store (fsck). Returns missing
/// hashes (empty = healthy).
pub fn verify(fs: &RepositoryFs, retained: &[RevisionId]) -> io::Result<Vec<ContentHash>> {
    let store = fs.store();
    let mut missing = Vec::new();
    let mut checked: HashSet<ContentHash> = HashSet::new();
    for &rev in retained {
        let Some(catalog) = fs.open(rev)? else {
            continue;
        };
        check_catalog(&catalog, store.as_ref(), &mut checked, &mut missing)?;
    }
    Ok(missing)
}

fn check_catalog(
    catalog: &Catalog,
    store: &dyn ObjectStore,
    checked: &mut HashSet<ContentHash>,
    missing: &mut Vec<ContentHash>,
) -> io::Result<()> {
    for (_, entry) in catalog.iter() {
        if !checked.insert(entry.hash) {
            continue;
        }
        match store.get(entry.hash)? {
            Some(data) => {
                // Content addressing makes integrity checking free.
                if ContentHash::of(&data) != entry.hash {
                    missing.push(entry.hash);
                }
            }
            None => missing.push(entry.hash),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::MemStore;
    use std::sync::Arc;

    fn fs_with_history() -> RepositoryFs {
        let fs = RepositoryFs::new(Arc::new(MemStore::new()));
        // rev1: a; rev2: a+b; rev3: a replaced, c added.
        fs.publish([("a", b"alpha-contents".as_slice(), false)])
            .unwrap();
        fs.publish([("b", b"beta-contents".as_slice(), false)])
            .unwrap();
        fs.publish([
            ("a", b"alpha-v2-contents".as_slice(), false),
            ("c", b"gamma-contents".as_slice(), false),
        ])
        .unwrap();
        fs
    }

    #[test]
    fn full_retention_pins_everything_file_sized() {
        let fs = fs_with_history();
        let all: Vec<RevisionId> = (1..=3).map(RevisionId).collect();
        let report = analyze(&fs, &all).unwrap();
        assert_eq!(report.retained_revisions.len(), 3);
        // Everything except nothing is reachable: the paper's point.
        assert_eq!(report.reclaimable_objects(), 0);
        assert_eq!(report.reclaimable_bytes(), 0);
        assert_eq!(report.pinned_pct(), 100.0);
    }

    #[test]
    fn head_only_retention_frees_old_versions() {
        let fs = fs_with_history();
        let report = analyze_window(&fs, 1).unwrap();
        assert_eq!(report.retained_revisions, vec![RevisionId(3)]);
        // Old alpha-contents + two superseded catalogs are reclaimable.
        assert!(report.reclaimable_objects() >= 3, "{report:?}");
        assert!(report.reclaimable_bytes() > 0);
        assert!(report.pinned_pct() < 100.0);
        // But the live tree (a-v2, b, c) is fully pinned.
        let head = fs.open(RevisionId(3)).unwrap().unwrap();
        assert!(report.reachable_bytes >= head.total_bytes());
    }

    #[test]
    fn retention_curve_is_monotone() {
        let fs = fs_with_history();
        let curve = retention_curve(&fs, 10).unwrap();
        assert_eq!(curve.len(), 3);
        assert!(
            curve.windows(2).all(|w| w[0].1 <= w[1].1),
            "pinned bytes grow with window"
        );
        assert_eq!(curve[0].0, 1);
    }

    #[test]
    fn unknown_revisions_pin_nothing() {
        let fs = fs_with_history();
        let report = analyze(&fs, &[RevisionId(99)]).unwrap();
        assert!(report.retained_revisions.is_empty());
        assert_eq!(report.reachable_objects, 0);
    }

    #[test]
    fn verify_healthy_store() {
        let fs = fs_with_history();
        let all: Vec<RevisionId> = (1..=3).map(RevisionId).collect();
        assert!(verify(&fs, &all).unwrap().is_empty());
    }

    #[test]
    fn verify_detects_missing_objects() {
        // Build a catalog referencing content that was never stored.
        use crate::catalog::{Catalog, CatalogEntry};
        let store = Arc::new(MemStore::new());
        let fs = RepositoryFs::new(Arc::clone(&store) as _);
        fs.publish([("present", b"here".as_slice(), false)])
            .unwrap();
        // Manually corrupt: craft a second revision whose catalog points
        // at a hash that does not exist. We publish it as raw bytes via
        // the catalog API to keep RepositoryFs internals intact.
        let mut cat = fs.open(RevisionId(1)).unwrap().unwrap();
        cat.insert(
            "ghost",
            CatalogEntry {
                hash: ContentHash::of(b"never stored"),
                size: 12,
                executable: false,
            },
        );
        // verify() against the crafted catalog directly.
        let mut checked = HashSet::new();
        let mut missing = Vec::new();
        check_catalog(&cat, store.as_ref(), &mut checked, &mut missing).unwrap();
        assert_eq!(missing, vec![ContentHash::of(b"never stored")]);
        let _ = Catalog::new(); // silence unused-import style lints in cfg(test)
    }
}
