//! Fault injection for storage-dependent code paths.
//!
//! [`FaultyStore`] wraps any [`ObjectStore`] and fails operations on a
//! schedule. Downstream crates use it to verify that image builds,
//! cache submissions, and publishes *propagate* storage errors instead
//! of panicking or silently corrupting accounting — the failure modes
//! that matter on real scratch filesystems, which do fill up and do
//! flake.

use crate::hash::ContentHash;
use crate::object::ObjectStore;
use std::io;
use std::sync::atomic::{AtomicU64, Ordering};

/// Which operations fail.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultMode {
    /// `put` fails once the budget is exhausted (disk-full behaviour).
    FailPutsAfter(u64),
    /// `get` fails unconditionally (unreadable medium).
    FailGets,
    /// Nothing fails (control).
    None,
}

/// An [`ObjectStore`] decorator that injects failures.
pub struct FaultyStore<S> {
    inner: S,
    mode: FaultMode,
    puts: AtomicU64,
}

impl<S: ObjectStore> FaultyStore<S> {
    /// Wrap `inner` with the given fault mode.
    pub fn new(inner: S, mode: FaultMode) -> Self {
        FaultyStore {
            inner,
            mode,
            puts: AtomicU64::new(0),
        }
    }

    /// The wrapped store.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Number of successful `put` calls so far.
    pub fn successful_puts(&self) -> u64 {
        self.puts.load(Ordering::Relaxed)
    }
}

impl<S: ObjectStore> ObjectStore for FaultyStore<S> {
    fn put(&self, data: &[u8]) -> io::Result<ContentHash> {
        if let FaultMode::FailPutsAfter(budget) = self.mode {
            if self.puts.load(Ordering::Relaxed) >= budget {
                return Err(io::Error::new(
                    io::ErrorKind::StorageFull,
                    "injected fault: no space left on device",
                ));
            }
        }
        let hash = self.inner.put(data)?;
        self.puts.fetch_add(1, Ordering::Relaxed);
        Ok(hash)
    }

    fn get(&self, hash: ContentHash) -> io::Result<Option<Vec<u8>>> {
        if self.mode == FaultMode::FailGets {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "injected fault: read error",
            ));
        }
        self.inner.get(hash)
    }

    fn contains(&self, hash: ContentHash) -> bool {
        self.inner.contains(hash)
    }

    fn object_count(&self) -> usize {
        self.inner.object_count()
    }

    fn stored_bytes(&self) -> u64 {
        self.inner.stored_bytes()
    }

    fn hashes(&self) -> Vec<ContentHash> {
        self.inner.hashes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::MemStore;

    #[test]
    fn put_budget_exhausts() {
        let store = FaultyStore::new(MemStore::new(), FaultMode::FailPutsAfter(2));
        store.put(b"one").unwrap();
        store.put(b"two").unwrap();
        let err = store.put(b"three").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::StorageFull);
        assert_eq!(store.successful_puts(), 2);
        assert_eq!(store.object_count(), 2);
    }

    #[test]
    fn get_faults() {
        let store = FaultyStore::new(MemStore::new(), FaultMode::FailGets);
        let h = store.put(b"data").unwrap();
        assert!(store.get(h).is_err());
        assert!(store.contains(h), "contains is metadata, still works");
    }

    #[test]
    fn none_mode_is_transparent() {
        let store = FaultyStore::new(MemStore::new(), FaultMode::None);
        let h = store.put(b"data").unwrap();
        assert_eq!(store.get(h).unwrap().as_deref(), Some(b"data".as_slice()));
        assert_eq!(store.stored_bytes(), 4);
    }
}
