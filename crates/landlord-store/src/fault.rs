//! Fault injection for storage-dependent code paths.
//!
//! [`FaultyStore`] wraps any [`ObjectStore`] and fails operations on a
//! schedule. Downstream crates use it to verify that image builds,
//! cache submissions, and publishes *propagate* storage errors instead
//! of panicking or silently corrupting accounting — the failure modes
//! that matter on real scratch filesystems, which do fill up and do
//! flake.
//!
//! Deterministic modes ([`FaultMode::FailPutsAfter`],
//! [`FaultMode::FailGets`]) script exact failure points; the seeded
//! modes ([`FaultMode::Transient`], [`FaultMode::FlakyGetsThenRecover`],
//! [`FaultMode::TornPutAfter`]) model the probabilistic and partial
//! failures of shared filesystems while staying fully reproducible:
//! every decision is a pure function of the explicit seed and a
//! per-store operation counter, never of ambient entropy.

use crate::hash::ContentHash;
use crate::object::ObjectStore;
use std::io;
use std::sync::atomic::{AtomicU64, Ordering};

/// Which operations fail.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultMode {
    /// `put` fails once the budget is exhausted (disk-full behaviour).
    FailPutsAfter(u64),
    /// `get` fails unconditionally (unreadable medium).
    FailGets,
    /// Nothing fails (control).
    None,
    /// Seeded transient faults: each operation independently fails with
    /// the given per-mille probability, decided by hashing the seed
    /// with the operation's index. Identical seeds reproduce identical
    /// failure patterns; failures do not persist (the next attempt
    /// rolls fresh).
    Transient {
        /// Explicit seed for the per-op failure decisions.
        seed: u64,
        /// `put` failure probability in thousandths (0..=1000).
        put_fail_per_mille: u16,
        /// `get` failure probability in thousandths (0..=1000).
        get_fail_per_mille: u16,
    },
    /// The first `0` reads fail, then the medium recovers — the
    /// flaky-then-recover pattern of a remounting network filesystem.
    FlakyGetsThenRecover(u64),
    /// Puts succeed until the budget is exhausted; the put at the
    /// budget *tears*: only a truncated prefix of the data reaches the
    /// inner store (as an orphaned partial object, exactly what a
    /// crash mid-write leaves behind) and the call errors. Later puts
    /// succeed again.
    TornPutAfter(u64),
}

/// SplitMix64 finalizer: turns (seed, op counter) into well-mixed bits.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Deterministic Bernoulli roll for operation `op` under `seed`.
fn rolls_fault(seed: u64, salt: u64, op: u64, per_mille: u16) -> bool {
    if per_mille == 0 {
        return false;
    }
    let h = mix(seed ^ mix(salt) ^ op.wrapping_mul(0x2545_f491_4f6c_dd1d));
    (h % 1000) < u64::from(per_mille)
}

/// An [`ObjectStore`] decorator that injects failures.
pub struct FaultyStore<S> {
    inner: S,
    mode: FaultMode,
    puts: AtomicU64,
    put_attempts: AtomicU64,
    get_attempts: AtomicU64,
    injected: AtomicU64,
}

impl<S: ObjectStore> FaultyStore<S> {
    /// Wrap `inner` with the given fault mode.
    pub fn new(inner: S, mode: FaultMode) -> Self {
        FaultyStore {
            inner,
            mode,
            puts: AtomicU64::new(0),
            put_attempts: AtomicU64::new(0),
            get_attempts: AtomicU64::new(0),
            injected: AtomicU64::new(0),
        }
    }

    /// The wrapped store.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Mutable access to the wrapped store (metric attachment and
    /// other configuration that must reach through the fault layer).
    pub fn inner_mut(&mut self) -> &mut S {
        &mut self.inner
    }

    /// Number of successful `put` calls so far.
    pub fn successful_puts(&self) -> u64 {
        self.puts.load(Ordering::Relaxed) // sync: fixture counter; read exactly only after threads join
    }

    /// Number of faults injected so far (across all operations).
    pub fn injected_faults(&self) -> u64 {
        self.injected.load(Ordering::Relaxed) // sync: fixture counter; read exactly only after threads join
    }

    fn inject(&self, kind: io::ErrorKind, msg: &str) -> io::Error {
        self.injected.fetch_add(1, Ordering::Relaxed); // sync: fixture counter bump; publishes no data
        io::Error::new(kind, format!("injected fault: {msg}"))
    }
}

impl<S: ObjectStore> ObjectStore for FaultyStore<S> {
    fn put(&self, data: &[u8]) -> io::Result<ContentHash> {
        let attempt = self.put_attempts.fetch_add(1, Ordering::Relaxed); // sync: attempt ticket; uniqueness is all the fault schedule needs
        match self.mode {
            FaultMode::FailPutsAfter(budget) if self.puts.load(Ordering::Relaxed) >= budget => {
                // sync: budget check tolerates a racy read; the test harness is single-writer
                return Err(self.inject(io::ErrorKind::StorageFull, "no space left on device"));
            }
            FaultMode::Transient {
                seed,
                put_fail_per_mille,
                ..
            } if rolls_fault(seed, 0x70, attempt, put_fail_per_mille) => {
                return Err(self.inject(io::ErrorKind::Interrupted, "transient write error"));
            }
            FaultMode::TornPutAfter(budget) if attempt == budget => {
                // Model a crash mid-write: a truncated prefix lands
                // in the store as a partial object under *its own*
                // content hash (the store is content-addressed, so
                // the full hash never points at torn bytes), and
                // the caller sees an error. Recovery/GC must clean
                // the orphan up.
                let keep = data.len() / 2;
                if keep > 0 {
                    self.inner.put(&data[..keep])?;
                }
                return Err(self.inject(io::ErrorKind::WriteZero, "torn write"));
            }
            _ => {}
        }
        let hash = self.inner.put(data)?;
        self.puts.fetch_add(1, Ordering::Relaxed); // sync: fixture counter bump; publishes no data
        Ok(hash)
    }

    fn get(&self, hash: ContentHash) -> io::Result<Option<Vec<u8>>> {
        let attempt = self.get_attempts.fetch_add(1, Ordering::Relaxed); // sync: attempt ticket; uniqueness is all the fault schedule needs
        match self.mode {
            FaultMode::FailGets => {
                return Err(self.inject(io::ErrorKind::InvalidData, "read error"));
            }
            FaultMode::Transient {
                seed,
                get_fail_per_mille,
                ..
            } if rolls_fault(seed, 0x67, attempt, get_fail_per_mille) => {
                return Err(self.inject(io::ErrorKind::Interrupted, "transient read error"));
            }
            FaultMode::FlakyGetsThenRecover(failures) if attempt < failures => {
                return Err(self.inject(io::ErrorKind::Interrupted, "flaky read"));
            }
            _ => {}
        }
        self.inner.get(hash)
    }

    fn contains(&self, hash: ContentHash) -> bool {
        self.inner.contains(hash)
    }

    fn object_count(&self) -> usize {
        self.inner.object_count()
    }

    fn stored_bytes(&self) -> u64 {
        self.inner.stored_bytes()
    }

    fn hashes(&self) -> Vec<ContentHash> {
        self.inner.hashes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::MemStore;

    #[test]
    fn put_budget_exhausts() {
        let store = FaultyStore::new(MemStore::new(), FaultMode::FailPutsAfter(2));
        store.put(b"one").unwrap();
        store.put(b"two").unwrap();
        let err = store.put(b"three").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::StorageFull);
        assert_eq!(store.successful_puts(), 2);
        assert_eq!(store.injected_faults(), 1);
        assert_eq!(store.object_count(), 2);
    }

    #[test]
    fn get_faults() {
        let store = FaultyStore::new(MemStore::new(), FaultMode::FailGets);
        let h = store.put(b"data").unwrap();
        assert!(store.get(h).is_err());
        assert!(store.contains(h), "contains is metadata, still works");
    }

    #[test]
    fn none_mode_is_transparent() {
        let store = FaultyStore::new(MemStore::new(), FaultMode::None);
        let h = store.put(b"data").unwrap();
        assert_eq!(store.get(h).unwrap().as_deref(), Some(b"data".as_slice()));
        assert_eq!(store.stored_bytes(), 4);
        assert_eq!(store.injected_faults(), 0);
    }

    fn transient(seed: u64, put_pm: u16, get_pm: u16) -> FaultMode {
        FaultMode::Transient {
            seed,
            put_fail_per_mille: put_pm,
            get_fail_per_mille: get_pm,
        }
    }

    /// Run 200 puts and record which attempt indexes failed.
    fn put_failure_pattern(mode: FaultMode) -> Vec<usize> {
        let store = FaultyStore::new(MemStore::new(), mode);
        (0..200)
            .filter(|i| store.put(format!("blob-{i}").as_bytes()).is_err())
            .collect()
    }

    #[test]
    fn transient_faults_are_deterministic_in_the_seed() {
        let a = put_failure_pattern(transient(42, 250, 0));
        let b = put_failure_pattern(transient(42, 250, 0));
        assert_eq!(a, b, "same seed, same failure pattern");
        assert!(!a.is_empty(), "250/1000 over 200 ops should fail some");
        assert!(a.len() < 200, "and not all");
        let c = put_failure_pattern(transient(43, 250, 0));
        assert_ne!(a, c, "different seed, different pattern");
    }

    #[test]
    fn transient_rate_extremes() {
        assert!(put_failure_pattern(transient(7, 0, 0)).is_empty());
        assert_eq!(put_failure_pattern(transient(7, 1000, 0)).len(), 200);
    }

    #[test]
    fn transient_failures_do_not_persist() {
        // A failed attempt leaves the store consistent: retrying the
        // same content eventually succeeds and reads back intact.
        let store = FaultyStore::new(MemStore::new(), transient(11, 500, 0));
        let mut hash = None;
        for _ in 0..64 {
            if let Ok(h) = store.put(b"retried content") {
                hash = Some(h);
                break;
            }
        }
        let h = hash.expect("500/1000 cannot fail 64 straight times");
        assert_eq!(
            store.get(h).unwrap().as_deref(),
            Some(b"retried content".as_slice())
        );
    }

    #[test]
    fn transient_get_faults_roll_independently() {
        let store = FaultyStore::new(MemStore::new(), transient(5, 0, 400));
        let h = store.put(b"stable write path").unwrap();
        let failures = (0..100).filter(|_| store.get(h).is_err()).count();
        assert!(failures > 0, "400/1000 over 100 reads should fail some");
        assert!(failures < 100, "and not all");
    }

    #[test]
    fn flaky_gets_recover() {
        let store = FaultyStore::new(MemStore::new(), FaultMode::FlakyGetsThenRecover(3));
        let h = store.put(b"data").unwrap();
        for _ in 0..3 {
            assert!(store.get(h).is_err(), "first three reads flake");
        }
        assert_eq!(
            store.get(h).unwrap().as_deref(),
            Some(b"data".as_slice()),
            "fourth read recovers"
        );
        assert_eq!(store.injected_faults(), 3);
    }

    #[test]
    fn torn_put_leaves_partial_object_then_recovers() {
        let store = FaultyStore::new(MemStore::new(), FaultMode::TornPutAfter(1));
        let h0 = store.put(b"first object fits").unwrap();

        let torn = store.put(b"this write is torn in half").unwrap_err();
        assert_eq!(torn.kind(), io::ErrorKind::WriteZero);
        // The truncated prefix landed as an orphan partial object.
        let partial = ContentHash::of(b"this write is");
        assert!(store.contains(partial), "partial object must be visible");
        assert!(
            !store.contains(ContentHash::of(b"this write is torn in half")),
            "the full object must NOT exist"
        );

        // The tear was transient: the retry goes through whole.
        let h2 = store.put(b"this write is torn in half").unwrap();
        assert_eq!(
            store.get(h2).unwrap().as_deref(),
            Some(b"this write is torn in half".as_slice())
        );
        assert_eq!(
            store.get(h0).unwrap().as_deref(),
            Some(b"first object fits".as_slice())
        );
        assert_eq!(store.successful_puts(), 2, "torn put does not count");
    }

    #[test]
    fn torn_put_of_tiny_data_stores_nothing() {
        let store = FaultyStore::new(MemStore::new(), FaultMode::TornPutAfter(0));
        assert!(store.put(b"x").is_err());
        assert_eq!(store.object_count(), 0, "half of 1 byte is nothing");
        assert!(store.put(b"x").is_ok());
    }
}
