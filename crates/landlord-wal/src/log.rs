//! The live log handle: open-with-recovery, fsync-acknowledged
//! appends, and compaction truncation, with a [`KillSwitch`] check at
//! every durability step so crash tests can kill the process model at
//! each point a real crash could land.

use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use landlord_store::{KillPoint, KillSwitch};

use crate::record::{self, MAGIC};

/// Flush a directory's entry table so a freshly created or renamed
/// file inside it survives a crash. No-op off unix, where directory
/// handles cannot be fsynced portably.
pub fn fsync_dir(dir: &Path) -> io::Result<()> {
    #[cfg(unix)]
    {
        File::open(dir)?.sync_all()?;
    }
    #[cfg(not(unix))]
    {
        let _ = dir;
    }
    Ok(())
}

/// An open write-ahead log.
///
/// The durability contract: [`Wal::append`] returning `Ok(seq)` is the
/// acknowledgement — the record has been fsynced and will survive any
/// crash. A crash *during* append leaves either nothing, a torn tail
/// (detected and stripped on reopen), or — when the bytes were fully
/// written but not yet fsynced — a record the OS may or may not
/// persist. Recovery therefore promises the reopened log is some
/// prefix of submitted records that is **at least** every acknowledged
/// one.
pub struct Wal {
    path: PathBuf,
    file: File,
    /// Valid byte length: magic plus every accepted frame. Kept in
    /// step with what [`record::scan`] would accept, so compaction and
    /// tail-stripping can truncate without rescanning.
    valid_len: u64,
    next_seq: u64,
    kill: Arc<KillSwitch>,
}

/// Result of [`Wal::open`]: the handle plus everything recovery needs
/// to report.
pub struct WalOpen {
    pub wal: Wal,
    /// Valid records found on disk, in order (empty for a new log).
    pub records: Vec<record::Record>,
    /// Bytes of torn tail that were stripped from the file, for the
    /// caller to quarantine. Empty when the log was whole.
    pub torn_tail: Vec<u8>,
}

impl Wal {
    /// Open (or create) the log at `path`, validating every frame and
    /// stripping any torn tail left by a crash. The stripped bytes are
    /// returned for quarantine; the on-disk file is truncated back to
    /// its valid prefix and fsynced before this returns.
    pub fn open(path: &Path, kill: Arc<KillSwitch>) -> io::Result<WalOpen> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;
        let created = bytes.is_empty();
        let scan = record::scan(&bytes)?;
        if created {
            // Brand-new log: lay down the magic and make both the file
            // and its directory entry durable before anyone appends.
            file.write_all(MAGIC)?;
            file.sync_all()?;
            if let Some(dir) = path.parent() {
                fsync_dir(dir)?;
            }
        } else if !scan.torn_tail.is_empty() {
            file.set_len(scan.valid_len)?;
            file.sync_all()?;
        }
        let valid_len = if created {
            MAGIC.len() as u64
        } else {
            scan.valid_len
        };
        // read_to_end left the cursor at the *old* EOF; park it at the
        // valid prefix so the next append cannot leave a zero-hole.
        file.seek(SeekFrom::Start(valid_len))?;
        let next_seq = scan.next_seq().unwrap_or(0);
        Ok(WalOpen {
            wal: Wal {
                path: path.to_path_buf(),
                file,
                valid_len,
                next_seq,
                kill,
            },
            records: scan.records,
            torn_tail: scan.torn_tail,
        })
    }

    /// Path this log lives at.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Sequence number the next append will receive.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Valid byte length of the log (magic plus accepted frames).
    pub fn valid_len(&self) -> u64 {
        self.valid_len
    }

    /// Continue an earlier epoch: after compaction folded records
    /// `..=seq-1` into a checkpoint, a freshly truncated (record-free)
    /// log must keep numbering from `seq` so replay can tell stale
    /// records from new ones. Refused when records are still present —
    /// renumbering live records would corrupt contiguity.
    pub fn set_next_seq(&mut self, seq: u64) -> io::Result<()> {
        if self.valid_len > MAGIC.len() as u64 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "refusing to renumber a WAL that still holds records",
            ));
        }
        self.next_seq = seq;
        Ok(())
    }

    /// Append one record and fsync it. `Ok(seq)` is the durability
    /// acknowledgement. Kill-points model the two distinct crash
    /// shapes: a torn half-written frame ([`KillPoint::MidAppend`])
    /// and a complete but not-yet-fsynced frame
    /// ([`KillPoint::PostAppendPreFsync`]).
    pub fn append(&mut self, payload: &[u8]) -> io::Result<u64> {
        let seq = self.next_seq;
        let frame = record::encode_frame(seq, payload)?;
        // Split inside the frame so a mid-append kill leaves a
        // genuinely torn record, not a clean boundary.
        let split = frame.len() / 2;
        self.file.write_all(&frame[..split])?;
        self.kill.check(KillPoint::MidAppend)?;
        self.file.write_all(&frame[split..])?;
        self.kill.check(KillPoint::PostAppendPreFsync)?;
        self.file.sync_data()?;
        self.valid_len += frame.len() as u64;
        self.next_seq = seq + 1;
        Ok(seq)
    }

    /// Discard every record after a checkpoint has made them
    /// redundant, keeping the file, its magic, and the sequence
    /// numbering. A kill mid-truncate leaves a half-cut file — a torn
    /// tail the next open strips like any other crash artifact.
    pub fn truncate_for_compaction(&mut self) -> io::Result<()> {
        let next = self.next_seq;
        if let Err(e) = self.kill.check(KillPoint::MidCompactionTruncate) {
            // Model the crash landing mid-ftruncate: the file is cut
            // at an arbitrary byte, tearing whatever frame straddles it.
            self.file.set_len(self.valid_len / 2 + 1)?;
            return Err(e);
        }
        self.file.set_len(MAGIC.len() as u64)?;
        // set_len does not move the cursor; reposition it or the next
        // append would punch a zero-hole after the magic.
        self.file.seek(SeekFrom::Start(MAGIC.len() as u64))?;
        self.file.sync_all()?;
        self.valid_len = MAGIC.len() as u64;
        self.next_seq = next;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

    fn test_dir(tag: &str) -> PathBuf {
        let n = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("landlord-wal-{tag}-{}-{n}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn reopen_clean(path: &Path) -> WalOpen {
        Wal::open(path, Arc::new(KillSwitch::never())).unwrap()
    }

    #[test]
    fn append_reopen_round_trip() {
        let dir = test_dir("round-trip");
        let path = dir.join("wal.log");
        let mut open = reopen_clean(&path);
        assert!(open.records.is_empty() && open.torn_tail.is_empty());
        assert_eq!(open.wal.append(b"one").unwrap(), 0);
        assert_eq!(open.wal.append(b"two").unwrap(), 1);
        drop(open);

        let again = reopen_clean(&path);
        assert_eq!(again.records.len(), 2);
        assert_eq!(again.records[0].payload, b"one");
        assert_eq!(again.records[1].seq, 1);
        assert!(again.torn_tail.is_empty());
        assert_eq!(again.wal.next_seq(), 2);
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn kill_mid_append_leaves_torn_tail_and_only_acked_records() {
        let dir = test_dir("mid-append");
        let path = dir.join("wal.log");
        let kill = Arc::new(KillSwitch::at_point(KillPoint::MidAppend, 1));
        let mut open = Wal::open(&path, kill.clone()).unwrap();
        assert_eq!(open.wal.append(b"acked-record").unwrap(), 0);
        let err = open.wal.append(b"torn-record-payload").unwrap_err();
        assert!(landlord_store::kill::is_kill_error(&err));
        assert!(kill.is_dead());
        // Once dead, every further durability step fails too.
        assert!(open.wal.append(b"after-death").is_err());
        drop(open);

        let again = reopen_clean(&path);
        assert_eq!(again.records.len(), 1, "only the acked record survives");
        assert_eq!(again.records[0].payload, b"acked-record");
        assert!(
            !again.torn_tail.is_empty(),
            "half-written frame is the tail"
        );
        assert_eq!(again.wal.next_seq(), 1);
        // The tail was stripped: a third open sees a whole log.
        drop(again);
        assert!(reopen_clean(&path).torn_tail.is_empty());
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn kill_pre_fsync_may_keep_the_unacked_record() {
        // The frame was fully written before the kill; in the
        // same-process model the page cache survives, so reopen sees a
        // valid unacked record — the `k = acked + 1` recovery case.
        let dir = test_dir("pre-fsync");
        let path = dir.join("wal.log");
        let kill = Arc::new(KillSwitch::at_point(KillPoint::PostAppendPreFsync, 0));
        let mut open = Wal::open(&path, kill).unwrap();
        let err = open.wal.append(b"written-not-acked").unwrap_err();
        assert!(landlord_store::kill::is_kill_error(&err));
        drop(open);

        let again = reopen_clean(&path);
        assert_eq!(again.records.len(), 1);
        assert_eq!(again.records[0].payload, b"written-not-acked");
        assert!(again.torn_tail.is_empty());
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn compaction_keeps_sequence_numbering() {
        let dir = test_dir("compact");
        let path = dir.join("wal.log");
        let mut open = reopen_clean(&path);
        for p in [b"a".as_slice(), b"b", b"c"] {
            open.wal.append(p).unwrap();
        }
        open.wal.truncate_for_compaction().unwrap();
        assert_eq!(open.wal.valid_len(), MAGIC.len() as u64);
        assert_eq!(open.wal.append(b"post-compaction").unwrap(), 3);
        drop(open);

        let again = reopen_clean(&path);
        assert_eq!(again.records.len(), 1);
        assert_eq!(again.records[0].seq, 3);
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn kill_mid_compaction_truncate_tears_the_file_recoverably() {
        let dir = test_dir("mid-truncate");
        let path = dir.join("wal.log");
        let kill = Arc::new(KillSwitch::at_point(KillPoint::MidCompactionTruncate, 0));
        let mut open = Wal::open(&path, kill).unwrap();
        for p in [b"one-record".as_slice(), b"two-record", b"three-record"] {
            open.wal.append(p).unwrap();
        }
        let err = open.wal.truncate_for_compaction().unwrap_err();
        assert!(landlord_store::kill::is_kill_error(&err));
        drop(open);

        // Recovery sees some prefix of the records plus a torn tail —
        // never an error, never a record that was not appended.
        let again = reopen_clean(&path);
        assert!(again.records.len() <= 3);
        for (i, r) in again.records.iter().enumerate() {
            assert_eq!(r.seq, i as u64);
        }
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn set_next_seq_requires_an_empty_log() {
        let dir = test_dir("set-seq");
        let path = dir.join("wal.log");
        let mut open = reopen_clean(&path);
        open.wal.set_next_seq(41).unwrap();
        assert_eq!(open.wal.append(b"x").unwrap(), 41);
        assert!(open.wal.set_next_seq(99).is_err());
        std::fs::remove_dir_all(dir).unwrap();
    }
}
