//! The on-disk WAL format: file magic plus checksummed,
//! length-prefixed, sequence-numbered record frames.
//!
//! ```text
//! file   := magic frame*
//! magic  := "LLWAL1\n"                       (7 bytes)
//! frame  := len:u32le seq:u64le crc:u32le payload[len]
//! crc    := CRC-32 (IEEE) over seq:u64le ++ payload
//! ```
//!
//! Everything a reader needs to validate a frame sits *before* the
//! payload, so a crash mid-append can only ever produce an invalid
//! suffix — a **torn tail** — never an ambiguous middle: [`scan`]
//! accepts frames until the first one that is short, oversized, or
//! checksum-broken, and reports every byte from there to EOF as the
//! tail. Sequence numbers are assigned contiguously by the appender
//! and survive compaction (a truncated log continues the old
//! numbering), so a valid frame whose `seq` breaks contiguity is not a
//! crash artifact but evidence of logic or media corruption, and scan
//! refuses the whole log rather than guessing.

use std::io;

/// Leading file magic, version 1.
pub const MAGIC: &[u8] = b"LLWAL1\n";

/// Bytes of frame metadata before the payload.
pub const FRAME_HEADER: usize = 4 + 8 + 4;

/// Upper bound on a single payload. Anything larger on disk is treated
/// as a torn/garbage length, not an allocation request.
pub const MAX_PAYLOAD: usize = 1 << 28;

/// CRC-32 (IEEE 802.3, reflected) lookup table, built at compile time.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut n = 0;
    while n < 256 {
        let mut c = n as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xedb8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[n] = c;
        n += 1;
    }
    table
};

/// CRC-32 over `parts` in order (equivalent to one pass over their
/// concatenation, without concatenating).
pub fn crc32_parts(parts: &[&[u8]]) -> u32 {
    let mut c = 0xffff_ffffu32;
    for part in parts {
        for &b in *part {
            c = CRC_TABLE[((c ^ u32::from(b)) & 0xff) as usize] ^ (c >> 8);
        }
    }
    c ^ 0xffff_ffff
}

/// One validated record read back from a log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// Contiguous sequence number assigned at append time.
    pub seq: u64,
    /// The caller's serialized payload, verbatim.
    pub payload: Vec<u8>,
}

/// Encode one frame (`len seq crc payload`) for appending.
pub fn encode_frame(seq: u64, payload: &[u8]) -> io::Result<Vec<u8>> {
    if payload.len() > MAX_PAYLOAD {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!(
                "WAL payload of {} bytes exceeds the format maximum",
                payload.len()
            ),
        ));
    }
    let len = u32::try_from(payload.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "WAL payload exceeds u32"))?;
    let seq_bytes = seq.to_le_bytes();
    let crc = crc32_parts(&[&seq_bytes, payload]);
    let mut frame = Vec::with_capacity(FRAME_HEADER + payload.len());
    frame.extend_from_slice(&len.to_le_bytes());
    frame.extend_from_slice(&seq_bytes);
    frame.extend_from_slice(&crc.to_le_bytes());
    frame.extend_from_slice(payload);
    Ok(frame)
}

/// Everything [`scan`] learned about a log's bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Scan {
    /// Records accepted, in order.
    pub records: Vec<Record>,
    /// Byte length of the valid prefix (magic plus whole frames). The
    /// file should be truncated here if a tail follows.
    pub valid_len: u64,
    /// Bytes past the valid prefix — a torn append or truncate left
    /// them; empty when the log is whole.
    pub torn_tail: Vec<u8>,
}

impl Scan {
    /// Sequence number the next append should use (last + 1), or
    /// `None` for an empty log (the caller decides the epoch).
    pub fn next_seq(&self) -> Option<u64> {
        self.records.last().map(|r| r.seq + 1)
    }
}

fn corrupt(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Validate a log image: accept whole, checksummed, contiguous frames;
/// classify any invalid suffix as the torn tail. A contiguity break
/// *inside* otherwise-valid frames is unrecoverable corruption (`Err`),
/// not a crash shape — crashes only ever tear the end.
pub fn scan(bytes: &[u8]) -> io::Result<Scan> {
    if bytes.is_empty() {
        return Ok(Scan {
            records: Vec::new(),
            valid_len: 0,
            torn_tail: Vec::new(),
        });
    }
    // A short or wrong magic means the file never finished being
    // created (or is not a WAL at all): everything is tail.
    if bytes.len() < MAGIC.len() || &bytes[..MAGIC.len()] != MAGIC {
        return Ok(Scan {
            records: Vec::new(),
            valid_len: 0,
            torn_tail: bytes.to_vec(),
        });
    }
    let mut records = Vec::new();
    let mut offset = MAGIC.len();
    let mut expected_seq: Option<u64> = None;
    loop {
        let rest = &bytes[offset..];
        if rest.is_empty() {
            break;
        }
        if rest.len() < FRAME_HEADER {
            break; // torn header
        }
        let len = u32::from_le_bytes([rest[0], rest[1], rest[2], rest[3]]) as usize;
        if len > MAX_PAYLOAD || rest.len() < FRAME_HEADER + len {
            break; // garbage length or torn payload
        }
        let seq = u64::from_le_bytes([
            rest[4], rest[5], rest[6], rest[7], rest[8], rest[9], rest[10], rest[11],
        ]);
        let crc = u32::from_le_bytes([rest[12], rest[13], rest[14], rest[15]]);
        let payload = &rest[FRAME_HEADER..FRAME_HEADER + len];
        if crc32_parts(&[&seq.to_le_bytes(), payload]) != crc {
            break; // torn or bit-flipped frame
        }
        if let Some(want) = expected_seq {
            if seq != want {
                return Err(corrupt(format!(
                    "WAL sequence break: record {seq} follows {}; the log is corrupt beyond \
                     crash recovery",
                    want - 1
                )));
            }
        }
        expected_seq = Some(seq + 1);
        records.push(Record {
            seq,
            payload: payload.to_vec(),
        });
        offset += FRAME_HEADER + len;
    }
    Ok(Scan {
        records,
        valid_len: offset as u64,
        torn_tail: bytes[offset..].to_vec(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn log_of(payloads: &[&[u8]], first_seq: u64) -> Vec<u8> {
        let mut bytes = MAGIC.to_vec();
        for (i, p) in payloads.iter().enumerate() {
            bytes.extend_from_slice(&encode_frame(first_seq + i as u64, p).unwrap());
        }
        bytes
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE CRC-32 of "123456789" is the classic check value.
        assert_eq!(crc32_parts(&[b"123456789"]), 0xcbf4_3926);
        assert_eq!(crc32_parts(&[b"1234", b"56789"]), 0xcbf4_3926);
        assert_eq!(crc32_parts(&[b""]), 0);
    }

    #[test]
    fn round_trip_and_next_seq() {
        let bytes = log_of(&[b"alpha", b"", b"gamma-record"], 7);
        let scan = scan(&bytes).unwrap();
        assert_eq!(scan.torn_tail, b"");
        assert_eq!(scan.valid_len, bytes.len() as u64);
        assert_eq!(scan.records.len(), 3);
        assert_eq!(scan.records[0].payload, b"alpha");
        assert_eq!(scan.records[1].payload, b"");
        assert_eq!(scan.records[2].seq, 9);
        assert_eq!(scan.next_seq(), Some(10));
    }

    #[test]
    fn empty_and_magic_only_logs_are_whole() {
        assert_eq!(scan(b"").unwrap().next_seq(), None);
        let s = scan(MAGIC).unwrap();
        assert!(s.records.is_empty() && s.torn_tail.is_empty());
        assert_eq!(s.valid_len, MAGIC.len() as u64);
    }

    #[test]
    fn every_truncation_point_is_a_clean_torn_tail() {
        // Cut the log at every possible byte: the scan must always
        // accept exactly the whole frames before the cut and classify
        // the rest as tail — never error, never accept a partial frame.
        let bytes = log_of(&[b"first", b"second!", b"x"], 0);
        let frame_ends: Vec<usize> = {
            let mut ends = vec![MAGIC.len()];
            for p in [b"first".as_slice(), b"second!", b"x"] {
                ends.push(ends.last().unwrap() + FRAME_HEADER + p.len());
            }
            ends
        };
        for cut in 0..bytes.len() {
            let s = scan(&bytes[..cut]).unwrap();
            // A cut inside the magic yields zero records and (for a
            // non-empty prefix) an all-tail scan.
            if cut < MAGIC.len() {
                assert_eq!(s.records.len(), 0, "cut at {cut}");
                assert_eq!(s.torn_tail.len(), cut);
                continue;
            }
            let whole_before = frame_ends.iter().filter(|&&e| e <= cut).count() - 1;
            assert_eq!(s.records.len(), whole_before, "cut at {cut}");
            assert_eq!(s.valid_len as usize + s.torn_tail.len(), cut);
        }
    }

    #[test]
    fn bit_flips_surface_as_tail_not_bad_data() {
        let bytes = log_of(&[b"only-record"], 0);
        for bit_byte in MAGIC.len()..bytes.len() {
            let mut flipped = bytes.clone();
            flipped[bit_byte] ^= 0x10;
            let s = scan(&flipped).unwrap();
            // Whatever was flipped (length, seq, crc, payload), the
            // record must not survive with wrong content.
            if let Some(r) = s.records.first() {
                panic!("flipped byte {bit_byte} still yielded record {r:?}");
            }
            assert!(!s.torn_tail.is_empty());
        }
    }

    #[test]
    fn wrong_magic_is_all_tail() {
        let s = scan(b"NOTAWAL\nstuff").unwrap();
        assert!(s.records.is_empty());
        assert_eq!(s.valid_len, 0);
        assert_eq!(s.torn_tail.len(), 13);
    }

    #[test]
    fn sequence_break_is_unrecoverable_corruption() {
        let mut bytes = MAGIC.to_vec();
        bytes.extend_from_slice(&encode_frame(3, b"a").unwrap());
        bytes.extend_from_slice(&encode_frame(5, b"b").unwrap());
        let err = scan(&bytes).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("sequence break"));
    }

    #[test]
    fn oversized_length_prefix_is_tail() {
        let mut bytes = MAGIC.to_vec();
        bytes.extend_from_slice(&(u32::MAX).to_le_bytes());
        bytes.extend_from_slice(&[0u8; 64]);
        let s = scan(&bytes).unwrap();
        assert!(s.records.is_empty());
        assert_eq!(s.valid_len, MAGIC.len() as u64);
    }

    #[test]
    fn encode_rejects_oversized_payloads() {
        let big = vec![0u8; MAX_PAYLOAD + 1];
        assert!(encode_frame(0, &big).is_err());
    }
}
