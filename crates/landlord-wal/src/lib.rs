//! # landlord-wal
//!
//! Append-only write-ahead logging for the persistent cache: the
//! log-structured half of the "WAL + checkpoint" durability design
//! that replaces rewrite-the-world state persistence.
//!
//! * [`record`] — the on-disk format: `LLWAL1\n` magic, then
//!   length-prefixed frames of `len:u32 seq:u64 crc:u32 payload`,
//!   CRC-32 over `seq ++ payload`. Torn tails are detectable by
//!   construction; sequence breaks inside valid frames are
//!   unrecoverable corruption.
//! * [`log`] — the live [`Wal`] handle: open-with-recovery (strip and
//!   return the torn tail for quarantine), fsync-acknowledged appends,
//!   and compaction truncation that preserves sequence numbering.
//!
//! Every durability step checks a [`KillSwitch`]
//! (from `landlord-store::kill`), so crash tests can deterministically
//! kill the process model at each point a real crash could land and
//! assert recovery restores a prefix of acknowledged operations.

pub mod log;
pub mod record;

pub use crate::log::{fsync_dir, Wal, WalOpen};
pub use crate::record::{crc32_parts, encode_frame, scan, Record, Scan, FRAME_HEADER, MAGIC};
pub use landlord_store::kill::is_kill_error;
pub use landlord_store::{KillPoint, KillSwitch};
