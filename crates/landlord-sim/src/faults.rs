//! Seeded per-request failure events with retry, backoff, and graceful
//! degradation — the end-to-end failure model the paper's deployment
//! setting implies but never simulates.
//!
//! In distributed HTC, serving a request is not free of risk: the
//! worker building an image can crash, the build itself can fail, and
//! the shared store can throw transient errors. This module drives the
//! same [`ImageCache`] as [`crate::simulator`], but each *build*
//! (merge or insert — hits touch no storage and never fail) draws a
//! failure from a seeded [`FaultPlan`]. A failed build is retried under
//! a [`RetryPolicy`] with exponential backoff in simulated ticks; a
//! merge whose retry budget is exhausted *degrades* to a fresh per-job
//! insert (with a fresh budget) instead of failing the request — the
//! job still launches, at the price of duplication. Only when the
//! degraded path also exhausts its budget is the request counted as
//! failed (goodput loss).
//!
//! Everything is a pure function of the explicit seeds, so fault sweeps
//! regenerate bit-identically.

use crate::workload::{self, WorkloadConfig};
use landlord_core::cache::{CacheConfig, ImageCache, Plan, PlannedOp};
use landlord_core::conflict::ConflictPolicy;
use landlord_core::policy::{BuildPlan, CachePolicy, RetryPolicy};
use landlord_core::sizes::SizeModel;
use landlord_core::spec::Spec;
use landlord_repo::Repository;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// What went wrong with one build attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultKind {
    /// The worker node running the build died mid-build.
    WorkerCrash,
    /// The image build itself failed (bad layer, tool error).
    BuildFailure,
    /// The shared object store returned a transient I/O error.
    TransientStoreError,
}

/// Deterministic per-attempt failure events derived from a seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Explicit seed; identical seeds reproduce identical fault
    /// sequences.
    pub seed: u64,
    /// Per-attempt failure probability in thousandths (0..=1000).
    pub fail_per_mille: u32,
}

/// SplitMix64 finalizer (same construction as the store's fault layer).
pub(crate) fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl FaultPlan {
    /// A plan that never fires.
    pub fn none() -> Self {
        FaultPlan {
            seed: 0,
            fail_per_mille: 0,
        }
    }

    /// Build a plan from a failure probability in `[0, 1]`.
    pub fn from_rate(seed: u64, rate: f64) -> Self {
        let clamped = rate.clamp(0.0, 1.0);
        FaultPlan {
            seed,
            fail_per_mille: (clamped * 1000.0).round() as u32,
        }
    }

    /// Decide whether attempt `attempt` of request `request` fails, and
    /// how. Pure in `(self, request, attempt)`.
    pub fn draw(&self, request: u64, attempt: u32) -> Option<FaultKind> {
        if self.fail_per_mille == 0 {
            return None;
        }
        let h = mix(self.seed
            ^ mix(request.wrapping_mul(0x2545_f491_4f6c_dd1d))
            ^ u64::from(attempt).wrapping_mul(0x9e37_79b9_7f4a_7c15));
        if h % 1000 >= u64::from(self.fail_per_mille) {
            return None;
        }
        Some(match (h >> 32) % 3 {
            0 => FaultKind::WorkerCrash,
            1 => FaultKind::BuildFailure,
            _ => FaultKind::TransientStoreError,
        })
    }
}

/// Failure-model knobs for one simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultConfig {
    /// Per-attempt failure probability in thousandths.
    pub fail_per_mille: u32,
    /// Seed for the fault plan.
    pub seed: u64,
    /// Retry/backoff policy applied to failed builds.
    pub retry: RetryPolicy,
}

impl FaultConfig {
    /// No faults, no retries — degenerates to the plain simulator.
    pub fn none() -> Self {
        FaultConfig {
            fail_per_mille: 0,
            seed: 0,
            retry: RetryPolicy::none(),
        }
    }
}

/// Failure-model counters accumulated over one run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultStats {
    /// Requests submitted (served + failed).
    pub requests: u64,
    /// Requests that exhausted every retry and the degraded path.
    pub failed_requests: u64,
    /// Injected failure events, total.
    pub faults: u64,
    /// ... of which worker crashes.
    pub worker_crashes: u64,
    /// ... of which build failures.
    pub build_failures: u64,
    /// ... of which transient store errors.
    pub store_errors: u64,
    /// Re-attempts scheduled by the retry policy.
    pub retries: u64,
    /// Simulated ticks spent waiting in backoff.
    pub backoff_ticks: u64,
    /// Bytes written by attempts that failed (retry write overhead).
    pub wasted_bytes: u64,
    /// Merge builds that fell back to a fresh per-job insert.
    pub degraded_inserts: u64,
    /// Served requests whose raw container-efficiency ratio exceeded
    /// 100% and was clamped (a degraded path served a request from a
    /// smaller image than it asked for; release builds used to report
    /// >100% silently).
    #[serde(default)]
    pub efficiency_clamps: u64,
}

impl FaultStats {
    /// Fraction of requests actually served, percent.
    pub fn goodput_pct(&self) -> f64 {
        if self.requests == 0 {
            return 100.0;
        }
        100.0 * (self.requests - self.failed_requests) as f64 / self.requests as f64
    }

    fn record_kind(&mut self, kind: FaultKind) {
        self.faults += 1;
        match kind {
            FaultKind::WorkerCrash => self.worker_crashes += 1,
            FaultKind::BuildFailure => self.build_failures += 1,
            FaultKind::TransientStoreError => self.store_errors += 1,
        }
    }

    /// Export every counter into `registry` under the `faults.*`
    /// prefix, so a metrics snapshot taken after a faulted run carries
    /// the failure model's retries, degradations, and clamp counts
    /// alongside the cache metrics. Additive: safe to call once per
    /// run on a shared registry (counters fold by sum).
    pub fn record_metrics(&self, registry: &landlord_obs::MetricsRegistry) {
        registry.counter("faults.requests").add(self.requests);
        registry
            .counter("faults.failed_requests")
            .add(self.failed_requests);
        registry.counter("faults.injected").add(self.faults);
        registry
            .counter("faults.worker_crashes")
            .add(self.worker_crashes);
        registry
            .counter("faults.build_failures")
            .add(self.build_failures);
        registry
            .counter("faults.store_errors")
            .add(self.store_errors);
        registry.counter("faults.retries").add(self.retries);
        registry
            .counter("faults.backoff_ticks")
            .add(self.backoff_ticks);
        registry
            .counter("faults.wasted_bytes")
            .add(self.wasted_bytes);
        registry
            .counter("faults.degraded_inserts")
            .add(self.degraded_inserts);
        registry
            .counter("faults.efficiency_clamps")
            .add(self.efficiency_clamps);
    }
}

/// Result of one simulation under the failure model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FaultRunResult {
    /// The cache-side outcome (identical in shape to the fault-free
    /// simulator's result; counters cover *served* requests only).
    pub run: crate::simulator::RunResult,
    /// The failure-model counters.
    pub faults: FaultStats,
}

/// Bytes one build attempt would write if it got through: the full
/// merged image for a merge, the requested image for an insert. This is
/// the I/O thrown away when the attempt fails.
fn attempt_cost(cache: &ImageCache, spec: &Spec, planned: &Plan, sizes: &dyn SizeModel) -> u64 {
    match planned.op {
        PlannedOp::Hit { .. } => 0,
        PlannedOp::Merge { image, .. } => match cache.get(image) {
            Some(img) => sizes.spec_bytes(&img.spec.union(spec)),
            None => sizes.spec_bytes(spec),
        },
        PlannedOp::Insert => sizes.spec_bytes(spec),
    }
}

/// Run one prepared stream through a cache under the failure model.
///
/// Each request is planned exactly once ([`ImageCache::plan`] on the
/// settled cache); the resulting [`Plan`] both prices the failed
/// attempts and, via [`ImageCache::apply`], serves the successful one —
/// the decision is never re-derived between the fault draws and the
/// mutation.
pub fn simulate_stream_with_faults(
    stream: &[Spec],
    cache_config: CacheConfig,
    sizes: Arc<dyn SizeModel>,
    conflicts: Option<Arc<dyn ConflictPolicy>>,
    config: &FaultConfig,
) -> FaultRunResult {
    let mut cache = match conflicts {
        Some(c) => ImageCache::with_conflicts(cache_config, Arc::clone(&sizes), c),
        None => ImageCache::new(cache_config, Arc::clone(&sizes)),
    };
    let plan = FaultPlan {
        seed: config.seed,
        fail_per_mille: config.fail_per_mille,
    };
    let mut stats = FaultStats::default();

    for (i, spec) in stream.iter().enumerate() {
        stats.requests += 1;
        cache.settle();
        let planned = cache.plan(spec);
        if matches!(planned.op, PlannedOp::Hit { .. }) {
            // Hits touch no storage: immune to build faults.
            cache.apply(spec, &planned);
            continue;
        }
        // Failed attempts never mutate the cache, so the attempt price
        // is fixed by the plan for the whole build loop.
        let build_cost = attempt_cost(&cache, spec, &planned, sizes.as_ref());

        // The build loop: `draws` indexes fault decisions (monotone per
        // request, so degraded attempts roll fresh), `budget` tracks the
        // retries left for the current build target.
        let mut draws = 0u32;
        let mut budget = config.retry.max_retries;
        let mut degraded = false;
        loop {
            match plan.draw(i as u64, draws) {
                None => {
                    if degraded {
                        cache.insert_fresh(spec);
                    } else {
                        cache.apply(spec, &planned);
                    }
                    break;
                }
                Some(kind) => {
                    stats.record_kind(kind);
                    let cost = if degraded {
                        sizes.spec_bytes(spec)
                    } else {
                        build_cost
                    };
                    stats.wasted_bytes += cost;
                    if budget > 0 {
                        let retry_index = config.retry.max_retries - budget + 1;
                        budget -= 1;
                        stats.retries += 1;
                        stats.backoff_ticks += config.retry.backoff_before(retry_index);
                    } else if !degraded && matches!(planned.op, PlannedOp::Merge { .. }) {
                        // Graceful degradation: stop rewriting the
                        // shared image, build a minimal per-job one.
                        degraded = true;
                        stats.degraded_inserts += 1;
                        budget = config.retry.max_retries;
                    } else {
                        stats.failed_requests += 1;
                        break;
                    }
                }
            }
            draws += 1;
        }
    }

    stats.efficiency_clamps = cache.container_eff().clamped_samples();
    FaultRunResult {
        run: crate::simulator::RunResult {
            final_stats: cache.stats(),
            container_eff_pct: cache.container_efficiency_pct(),
            cache_eff_pct: cache.cache_efficiency_pct(),
            series: Vec::new(),
        },
        faults: stats,
    }
}

/// Run one prepared stream through *any* [`CachePolicy`] under the
/// failure model — the policy-agnostic twin of
/// [`simulate_stream_with_faults`], used to put the baselines under the
/// same fault regime as LANDLORD.
///
/// The policy's [`CachePolicy::plan_build`] prices the attempts and
/// decides degradability: only a [`BuildPlan::Rewrite`] (a shared-image
/// rewrite) may fall back to a fresh per-job insert. Driving
/// [`ImageCache`] through this function is bit-identical to the
/// specialized driver.
pub fn simulate_policy_with_faults(
    policy: &mut dyn CachePolicy,
    stream: &[Spec],
    config: &FaultConfig,
) -> FaultRunResult {
    let plan = FaultPlan {
        seed: config.seed,
        fail_per_mille: config.fail_per_mille,
    };
    let mut stats = FaultStats::default();

    for (i, spec) in stream.iter().enumerate() {
        stats.requests += 1;
        policy.settle();
        let build = policy.plan_build(spec);
        if matches!(build, BuildPlan::Hit) {
            policy.request(spec);
            continue;
        }
        let mut draws = 0u32;
        let mut budget = config.retry.max_retries;
        let mut degraded = false;
        loop {
            match plan.draw(i as u64, draws) {
                None => {
                    if degraded {
                        policy.insert_fresh(spec);
                    } else {
                        policy.request(spec);
                    }
                    break;
                }
                Some(kind) => {
                    stats.record_kind(kind);
                    let cost = if degraded {
                        policy.spec_bytes(spec)
                    } else {
                        build.cost()
                    };
                    stats.wasted_bytes += cost;
                    if budget > 0 {
                        let retry_index = config.retry.max_retries - budget + 1;
                        budget -= 1;
                        stats.retries += 1;
                        stats.backoff_ticks += config.retry.backoff_before(retry_index);
                    } else if !degraded && matches!(build, BuildPlan::Rewrite { .. }) {
                        degraded = true;
                        stats.degraded_inserts += 1;
                        budget = config.retry.max_retries;
                    } else {
                        stats.failed_requests += 1;
                        break;
                    }
                }
            }
            draws += 1;
        }
    }

    stats.efficiency_clamps = policy.container_eff().clamped_samples();
    FaultRunResult {
        run: crate::simulator::RunResult {
            final_stats: policy.stats(),
            container_eff_pct: policy.container_efficiency_pct(),
            cache_eff_pct: policy.cache_efficiency_pct(),
            series: Vec::new(),
        },
        faults: stats,
    }
}

/// Convenience: generate the stream from a workload config and run it
/// under the failure model.
pub fn simulate_with_faults(
    repo: &Repository,
    workload: &WorkloadConfig,
    cache_config: CacheConfig,
    config: &FaultConfig,
) -> FaultRunResult {
    let stream = workload::generate_stream(repo, workload);
    let sizes: Arc<dyn SizeModel> = Arc::new(repo.size_table());
    simulate_stream_with_faults(&stream, cache_config, sizes, None, config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulator;
    use crate::workload::WorkloadScheme;
    use landlord_repo::RepoConfig;

    fn repo() -> Repository {
        Repository::generate(&RepoConfig::small_for_tests(31))
    }

    fn workload() -> WorkloadConfig {
        WorkloadConfig {
            unique_jobs: 30,
            repeats: 3,
            max_initial_selection: 8,
            scheme: WorkloadScheme::DependencyClosure,
            seed: 2,
        }
    }

    fn cache_cfg(repo: &Repository) -> CacheConfig {
        CacheConfig {
            alpha: 0.8,
            limit_bytes: repo.total_bytes(),
            ..CacheConfig::default()
        }
    }

    fn faults(per_mille: u32, retry: RetryPolicy) -> FaultConfig {
        FaultConfig {
            fail_per_mille: per_mille,
            seed: 99,
            retry,
        }
    }

    #[test]
    fn fault_stats_export_as_counters() {
        use landlord_obs::{LogicalClock, MetricsRegistry};

        let r = repo();
        let w = workload();
        let cfg = faults(250, RetryPolicy::new(2, 1, 8));
        let result = simulate_with_faults(&r, &w, cache_cfg(&r), &cfg);
        assert!(result.faults.faults > 0, "fault rate 25% must inject");

        let registry = MetricsRegistry::new(Arc::new(LogicalClock::new()));
        result.faults.record_metrics(&registry);
        let snap = registry.snapshot();
        assert_eq!(snap.counters["faults.requests"], result.faults.requests);
        assert_eq!(snap.counters["faults.injected"], result.faults.faults);
        assert_eq!(snap.counters["faults.retries"], result.faults.retries);
        assert_eq!(
            snap.counters["faults.degraded_inserts"],
            result.faults.degraded_inserts
        );
        assert_eq!(
            snap.counters["faults.worker_crashes"]
                + snap.counters["faults.build_failures"]
                + snap.counters["faults.store_errors"],
            result.faults.faults,
            "fault kinds partition the injected total"
        );
    }

    #[test]
    fn zero_rate_matches_plain_simulator() {
        let r = repo();
        let w = workload();
        let plain = simulator::simulate(&r, &w, cache_cfg(&r), 0);
        let faulty = simulate_with_faults(&r, &w, cache_cfg(&r), &FaultConfig::none());
        assert_eq!(faulty.run.final_stats, plain.final_stats);
        assert_eq!(faulty.faults.goodput_pct(), 100.0);
        assert_eq!(
            faulty.faults,
            FaultStats {
                requests: 90,
                ..FaultStats::default()
            }
        );
    }

    #[test]
    fn deterministic_in_the_seeds() {
        let r = repo();
        let w = workload();
        let cfg = faults(200, RetryPolicy::new(2, 1, 8));
        let a = simulate_with_faults(&r, &w, cache_cfg(&r), &cfg);
        let b = simulate_with_faults(&r, &w, cache_cfg(&r), &cfg);
        assert_eq!(a.faults, b.faults);
        assert_eq!(a.run.final_stats, b.run.final_stats);

        let other = FaultConfig { seed: 100, ..cfg };
        let c = simulate_with_faults(&r, &w, cache_cfg(&r), &other);
        assert_ne!(a.faults, c.faults, "different fault seed must differ");
    }

    #[test]
    fn total_failure_without_retries_serves_nothing() {
        let r = repo();
        let result = simulate_with_faults(
            &r,
            &workload(),
            cache_cfg(&r),
            &faults(1000, RetryPolicy::none()),
        );
        // Every build fails, degraded or not; no image is ever created,
        // so nothing can hit either.
        assert_eq!(result.faults.failed_requests, result.faults.requests);
        assert_eq!(result.faults.goodput_pct(), 0.0);
        assert_eq!(result.run.final_stats.requests, 0);
        assert_eq!(result.run.final_stats.image_count, 0);
    }

    #[test]
    fn retries_preserve_goodput_at_a_write_cost() {
        let r = repo();
        let w = workload();
        let none = simulate_with_faults(&r, &w, cache_cfg(&r), &faults(300, RetryPolicy::none()));
        let some = simulate_with_faults(
            &r,
            &w,
            cache_cfg(&r),
            &faults(300, RetryPolicy::new(3, 1, 8)),
        );
        assert!(
            some.faults.goodput_pct() > none.faults.goodput_pct(),
            "retries must recover goodput: {} vs {}",
            some.faults.goodput_pct(),
            none.faults.goodput_pct()
        );
        assert!(some.faults.retries > 0);
        assert!(some.faults.backoff_ticks > 0);
        assert!(
            some.faults.wasted_bytes > 0,
            "failed attempts must cost wasted I/O"
        );
    }

    #[test]
    fn accounting_adds_up() {
        let r = repo();
        let w = workload();
        let result = simulate_with_faults(
            &r,
            &w,
            cache_cfg(&r),
            &faults(400, RetryPolicy::new(1, 2, 4)),
        );
        let f = result.faults;
        assert_eq!(f.requests as usize, w.total_requests());
        assert_eq!(
            f.faults,
            f.worker_crashes + f.build_failures + f.store_errors
        );
        assert_eq!(
            result.run.final_stats.requests,
            f.requests - f.failed_requests,
            "cache counters cover exactly the served requests"
        );
        assert!(f.faults >= f.failed_requests);
    }

    #[test]
    fn merge_failures_degrade_to_fresh_inserts() {
        let r = repo();
        let w = WorkloadConfig {
            unique_jobs: 40,
            repeats: 2,
            ..workload()
        };
        // High rate without retries: first-attempt merge failures go
        // straight to the degraded path.
        let result = simulate_with_faults(&r, &w, cache_cfg(&r), &faults(500, RetryPolicy::none()));
        assert!(
            result.faults.degraded_inserts > 0,
            "failing merges must degrade"
        );
        // Degradation keeps goodput above the no-degradation floor:
        // some requests that lost their merge still launched.
        assert!(result.faults.goodput_pct() > 0.0);
    }

    #[test]
    fn generic_driver_matches_specialized_for_landlord() {
        let r = repo();
        let w = workload();
        let stream = workload::generate_stream(&r, &w);
        let sizes: Arc<dyn SizeModel> = Arc::new(r.size_table());
        let cfg = faults(350, RetryPolicy::new(2, 1, 8));

        let special =
            simulate_stream_with_faults(&stream, cache_cfg(&r), Arc::clone(&sizes), None, &cfg);
        let mut cache = ImageCache::new(cache_cfg(&r), sizes);
        let generic = simulate_policy_with_faults(&mut cache, &stream, &cfg);

        assert_eq!(special.faults, generic.faults);
        assert_eq!(special.run.final_stats, generic.run.final_stats);
        assert_eq!(special.run.container_eff_pct, generic.run.container_eff_pct);
    }

    #[test]
    fn degraded_serving_clamps_efficiency_and_counts_it() {
        use landlord_core::cache::{CacheStats, Ledger};
        use landlord_core::metrics::ContainerEfficiency;
        use landlord_core::policy::Served;

        /// Test double: a policy whose degraded path launches jobs from
        /// an image *half* the requested size — the exact shape that
        /// made `container_efficiency_pct` exceed 100% silently in
        /// release builds before the clamp.
        struct UndersizedDegrade {
            ledger: Ledger,
        }
        impl CachePolicy for UndersizedDegrade {
            fn name(&self) -> &'static str {
                "undersized-degrade"
            }
            fn request(&mut self, spec: &Spec) -> Served {
                let bytes = self.spec_bytes(spec);
                self.ledger.begin_request(bytes);
                self.ledger.count_insert();
                self.ledger.serve(bytes, bytes);
                Served {
                    op: landlord_core::policy::ServedOp::Inserted,
                    image: 0,
                    image_bytes: bytes,
                    revision: 0,
                }
            }
            fn insert_fresh(&mut self, spec: &Spec) -> Served {
                let bytes = self.spec_bytes(spec);
                self.ledger.begin_request(bytes);
                self.ledger.count_insert();
                // The degraded image is smaller than the request.
                self.ledger.serve(bytes, bytes / 2);
                Served {
                    op: landlord_core::policy::ServedOp::Inserted,
                    image: 0,
                    image_bytes: bytes / 2,
                    revision: 0,
                }
            }
            fn plan_build(&self, spec: &Spec) -> BuildPlan {
                BuildPlan::Rewrite {
                    bytes: self.spec_bytes(spec),
                }
            }
            fn spec_bytes(&self, spec: &Spec) -> u64 {
                spec.len() as u64 * 10
            }
            fn stats(&self) -> CacheStats {
                self.ledger.stats()
            }
            fn container_efficiency_pct(&self) -> f64 {
                self.ledger.container_efficiency_pct()
            }
            fn container_eff(&self) -> ContainerEfficiency {
                self.ledger.container_eff()
            }
            fn len(&self) -> usize {
                0
            }
            fn limit_bytes(&self) -> u64 {
                u64::MAX
            }
            fn check_invariants(&self) {}
        }

        let r = repo();
        let stream = workload::generate_stream(&r, &workload());
        // Every first attempt fails, no retries: every build degrades
        // to the undersized fresh insert, whose second draw succeeds
        // often enough to serve plenty of requests.
        let cfg = faults(600, RetryPolicy::none());
        let mut policy = UndersizedDegrade {
            ledger: Ledger::new(),
        };
        let result = simulate_policy_with_faults(&mut policy, &stream, &cfg);
        assert!(result.faults.degraded_inserts > 0, "no degradation driven");
        assert!(
            result.faults.efficiency_clamps > 0,
            "undersized degraded serves must be counted as clamps"
        );
        assert!(
            result.run.container_eff_pct <= 100.0,
            "container efficiency leaked past 100%: {}",
            result.run.container_eff_pct
        );
        // The clamp counter survives the report serialization path.
        let json = serde_json::to_string(&result.faults).expect("serialize");
        let back: FaultStats = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, result.faults);
    }

    #[test]
    fn fault_plan_is_pure_and_seed_sensitive() {
        let p = FaultPlan::from_rate(7, 0.5);
        assert_eq!(p.fail_per_mille, 500);
        for req in 0..20u64 {
            for attempt in 0..4u32 {
                assert_eq!(p.draw(req, attempt), p.draw(req, attempt));
            }
        }
        let q = FaultPlan { seed: 8, ..p };
        let pa: Vec<_> = (0..200u64).map(|r| p.draw(r, 0)).collect();
        let qa: Vec<_> = (0..200u64).map(|r| q.draw(r, 0)).collect();
        assert_ne!(pa, qa);
        assert!(FaultPlan::none().draw(3, 1).is_none());
        assert!(FaultPlan::from_rate(1, 1.0).draw(3, 1).is_some());
    }
}
