//! Simulated HTC job streams.
//!
//! §VI, "Simulating HTC Jobs": each simulated request starts from "a
//! random selection of up to 100 packages"; the dependency-closure
//! scheme then "recursively include\[s\] dependencies of requested
//! software", while the uniform-random control draws the same *number*
//! of packages with no structure (Fig. 7). A stream consists of some
//! number of unique jobs, each repeated several times, shuffled.

use landlord_core::spec::Spec;
use landlord_repo::sampler::{Sampler, SelectionScheme};
use landlord_repo::{ClosureComputer, Repository};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// How a unique job's specification is produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum WorkloadScheme {
    /// Selection + dependency closure (the paper's realistic scheme).
    #[default]
    DependencyClosure,
    /// Same package *count* as a closure image, drawn uniformly with no
    /// dependency structure — the Fig. 7 control: "we considered only
    /// the total number of software packages in the resulting image,
    /// and then chose the same number of packages uniformly randomly
    /// from the entire repository".
    UniformRandom,
}

impl WorkloadScheme {
    /// Stable token for CLI parsing.
    pub fn token(self) -> &'static str {
        match self {
            WorkloadScheme::DependencyClosure => "deps",
            WorkloadScheme::UniformRandom => "random",
        }
    }

    /// Parse a CLI token.
    pub fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "deps" => WorkloadScheme::DependencyClosure,
            "random" => WorkloadScheme::UniformRandom,
            _ => return None,
        })
    }
}

/// Parameters of a job stream.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct WorkloadConfig {
    /// Number of distinct job specifications.
    pub unique_jobs: usize,
    /// Times each unique job appears in the stream.
    pub repeats: usize,
    /// Upper bound on the initial random selection ("up to 100").
    pub max_initial_selection: usize,
    /// Image generation scheme.
    pub scheme: WorkloadScheme,
    /// Stream RNG seed.
    pub seed: u64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        // The paper's standard stream: 500 unique jobs × 5 repeats.
        WorkloadConfig {
            unique_jobs: 500,
            repeats: 5,
            max_initial_selection: 100,
            scheme: WorkloadScheme::DependencyClosure,
            seed: 0,
        }
    }
}

impl WorkloadConfig {
    /// Total requests in the stream.
    pub fn total_requests(&self) -> usize {
        self.unique_jobs * self.repeats
    }
}

/// Generate the unique job specifications (no repetition).
pub fn unique_specs(repo: &Repository, config: &WorkloadConfig) -> Vec<Spec> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    // The random-control redraw uses its own RNG stream so that job k's
    // closure (and hence the matched image size) is identical across
    // both schemes for the same seed — the Fig. 7 comparison is then
    // size-for-size fair.
    let mut redraw_rng = StdRng::seed_from_u64(config.seed ^ 0xd1_ce0f_u64);
    let sampler = Sampler::new(repo);
    let mut computer = ClosureComputer::new(repo.package_count());
    (0..config.unique_jobs)
        .map(|_| {
            let seeds = sampler.sample_request_seeds(
                &mut rng,
                SelectionScheme::UniformRandom,
                config.max_initial_selection,
            );
            let closure = computer.closure(repo.graph(), &seeds);
            match config.scheme {
                WorkloadScheme::DependencyClosure => closure,
                // Match the closure's package count, structure-free.
                WorkloadScheme::UniformRandom => {
                    sampler.sample_random_image(&mut redraw_rng, closure.len())
                }
            }
        })
        .collect()
}

/// Generate the full shuffled stream: each unique spec repeated
/// `repeats` times, order randomized.
pub fn generate_stream(repo: &Repository, config: &WorkloadConfig) -> Vec<Spec> {
    let uniques = unique_specs(repo, config);
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0x5487_ff1e_u64.rotate_left(1));
    let mut stream = Vec::with_capacity(config.total_requests());
    for spec in &uniques {
        for _ in 0..config.repeats {
            stream.push(spec.clone());
        }
    }
    stream.shuffle(&mut rng);
    stream
}

#[cfg(test)]
mod tests {
    use super::*;
    use landlord_repo::RepoConfig;

    fn repo() -> Repository {
        Repository::generate(&RepoConfig::small_for_tests(77))
    }

    fn config(scheme: WorkloadScheme) -> WorkloadConfig {
        WorkloadConfig {
            unique_jobs: 20,
            repeats: 3,
            max_initial_selection: 10,
            scheme,
            seed: 4,
        }
    }

    #[test]
    fn stream_has_expected_length_and_multiplicity() {
        let r = repo();
        let cfg = config(WorkloadScheme::DependencyClosure);
        let stream = generate_stream(&r, &cfg);
        assert_eq!(stream.len(), 60);
        // Each unique spec appears exactly `repeats` times.
        let uniques = unique_specs(&r, &cfg);
        for u in &uniques {
            let n = stream.iter().filter(|s| *s == u).count();
            assert!(
                n >= cfg.repeats,
                "spec appeared {n} < {} times",
                cfg.repeats
            );
        }
    }

    #[test]
    fn deps_scheme_specs_are_closed() {
        let r = repo();
        for spec in unique_specs(&r, &config(WorkloadScheme::DependencyClosure)) {
            for p in spec.iter() {
                for &d in r.graph().deps(p) {
                    assert!(spec.contains(d), "stream spec not dependency-closed");
                }
            }
        }
    }

    #[test]
    fn random_scheme_matches_closure_sizes_but_not_structure() {
        let r = repo();
        let deps = unique_specs(&r, &config(WorkloadScheme::DependencyClosure));
        let random = unique_specs(&r, &config(WorkloadScheme::UniformRandom));
        assert_eq!(deps.len(), random.len());
        // Sizes pair up exactly (same rng stream for selection sizes).
        for (d, x) in deps.iter().zip(random.iter()) {
            assert_eq!(d.len(), x.len(), "random image must match closure size");
        }
        // But random specs are (almost surely) not dependency-closed.
        let mut violations = 0;
        for spec in &random {
            for p in spec.iter() {
                for &d in r.graph().deps(p) {
                    if !spec.contains(d) {
                        violations += 1;
                    }
                }
            }
        }
        assert!(violations > 0, "uniform-random specs should break closure");
    }

    #[test]
    fn streams_are_deterministic_per_seed() {
        let r = repo();
        let cfg = config(WorkloadScheme::DependencyClosure);
        assert_eq!(generate_stream(&r, &cfg), generate_stream(&r, &cfg));
        let other = WorkloadConfig { seed: 5, ..cfg };
        assert_ne!(generate_stream(&r, &cfg), generate_stream(&r, &other));
    }

    #[test]
    fn shuffle_actually_interleaves() {
        let r = repo();
        let cfg = config(WorkloadScheme::DependencyClosure);
        let stream = generate_stream(&r, &cfg);
        // If unshuffled, every run of `repeats` identical specs would be
        // adjacent; count adjacency breaks to confirm interleaving.
        let breaks = stream.windows(2).filter(|w| w[0] != w[1]).count();
        assert!(
            breaks > stream.len() / 2,
            "stream looks unshuffled: {breaks} breaks"
        );
    }

    #[test]
    fn scheme_tokens_round_trip() {
        for s in [
            WorkloadScheme::DependencyClosure,
            WorkloadScheme::UniformRandom,
        ] {
            assert_eq!(WorkloadScheme::parse(s.token()), Some(s));
        }
        assert_eq!(WorkloadScheme::parse("?"), None);
    }
}

/// Multi-user workload structure (extension past the paper's uniform
/// selections).
///
/// §I: jobs are "generated automatically by submission systems on
/// behalf of multiple users", and "each computing site has a different
/// set of users and projects". Each simulated user owns a *project
/// pool* of packages; that user's jobs select only from their pool, so
/// jobs from one user overlap heavily while jobs from different users
/// overlap mainly through shared frameworks — exactly the structure a
/// real site's stream has and the uniform scheme lacks.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct UserMixConfig {
    /// Number of users submitting jobs.
    pub users: usize,
    /// Packages in each user's project pool.
    pub pool_size: usize,
    /// Distinct jobs across all users.
    pub unique_jobs: usize,
    /// Repeats per unique job.
    pub repeats: usize,
    /// Max seeds drawn from the owner's pool per job.
    pub max_initial_selection: usize,
    /// RNG seed.
    pub seed: u64,
}

/// Generate the unique jobs of a user-structured stream. Jobs are
/// assigned to users round-robin; each job selects 1..=max seeds from
/// its owner's pool and expands the dependency closure.
pub fn user_mix_unique_specs(repo: &Repository, config: &UserMixConfig) -> Vec<Spec> {
    assert!(config.users > 0, "need at least one user");
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0x0be5);
    let sampler = Sampler::new(repo);
    let mut computer = ClosureComputer::new(repo.package_count());

    // Each user's pool: a contiguous interest area plus random extras,
    // drawn once.
    let pools: Vec<Vec<landlord_core::spec::PackageId>> = (0..config.users)
        .map(|_| {
            sampler.sample_distinct(
                &mut rng,
                SelectionScheme::UniformRandom,
                config.pool_size.max(1),
            )
        })
        .collect();

    (0..config.unique_jobs)
        .map(|job| {
            let pool = &pools[job % config.users];
            let k = rng.gen_range(1..=config.max_initial_selection.min(pool.len()).max(1));
            let mut seeds = Vec::with_capacity(k);
            let mut taken = std::collections::HashSet::new();
            while seeds.len() < k {
                let idx = rng.gen_range(0..pool.len());
                if taken.insert(idx) {
                    seeds.push(pool[idx]);
                }
            }
            computer.closure(repo.graph(), &seeds)
        })
        .collect()
}

/// Full shuffled user-mix stream (repeats + shuffle, like
/// [`generate_stream`]).
pub fn generate_user_mix_stream(repo: &Repository, config: &UserMixConfig) -> Vec<Spec> {
    let uniques = user_mix_unique_specs(repo, config);
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0x5487_ff1e);
    let mut stream = Vec::with_capacity(config.unique_jobs * config.repeats);
    for spec in &uniques {
        for _ in 0..config.repeats {
            stream.push(spec.clone());
        }
    }
    stream.shuffle(&mut rng);
    stream
}

#[cfg(test)]
mod user_mix_tests {
    use super::*;
    use landlord_core::jaccard::jaccard_distance;
    use landlord_repo::RepoConfig;

    fn repo() -> Repository {
        Repository::generate(&RepoConfig::small_for_tests(88))
    }

    fn config(users: usize) -> UserMixConfig {
        UserMixConfig {
            users,
            pool_size: 12,
            unique_jobs: 24,
            repeats: 2,
            max_initial_selection: 5,
            seed: 6,
        }
    }

    #[test]
    fn stream_shape() {
        let r = repo();
        let stream = generate_user_mix_stream(&r, &config(4));
        assert_eq!(stream.len(), 48);
        for spec in &stream {
            for p in spec.iter() {
                for &d in r.graph().deps(p) {
                    assert!(spec.contains(d), "user-mix specs must be closed");
                }
            }
        }
    }

    #[test]
    fn same_user_jobs_are_closer_than_cross_user() {
        let r = repo();
        // Two users, many jobs: jobs 0,2,4.. belong to user 0.
        let uniques = user_mix_unique_specs(&r, &config(2));
        let mut same = Vec::new();
        let mut cross = Vec::new();
        for i in 0..uniques.len() {
            for j in (i + 1)..uniques.len() {
                let d = jaccard_distance(&uniques[i], &uniques[j]);
                if i % 2 == j % 2 {
                    same.push(d);
                } else {
                    cross.push(d);
                }
            }
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
        assert!(
            mean(&same) < mean(&cross),
            "same-user mean distance {} should beat cross-user {}",
            mean(&same),
            mean(&cross)
        );
    }

    #[test]
    fn deterministic_in_seed() {
        let r = repo();
        let a = user_mix_unique_specs(&r, &config(3));
        let b = user_mix_unique_specs(&r, &config(3));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "at least one user")]
    fn zero_users_rejected() {
        let r = repo();
        let _ = user_mix_unique_specs(
            &r,
            &UserMixConfig {
                users: 0,
                ..config(1)
            },
        );
    }
}

/// Generate a stream whose *repeat counts* follow a Zipf distribution
/// instead of the paper's uniform "each job repeated five times": job
/// rank `k` (0-based) receives weight `1/(k+1)^exponent`, scaled so the
/// stream totals `config.total_requests()` requests (±rounding, min 1
/// per job). Real HTC streams are popularity-skewed — a few pilot-job
/// templates dominate — which gives LANDLORD more hit opportunities
/// than the paper's uniform repetition.
pub fn generate_zipf_stream(
    repo: &Repository,
    config: &WorkloadConfig,
    exponent: f64,
) -> Vec<Spec> {
    assert!(exponent >= 0.0, "Zipf exponent must be non-negative");
    let uniques = unique_specs(repo, config);
    let weights: Vec<f64> = (0..uniques.len())
        .map(|k| 1.0 / ((k + 1) as f64).powf(exponent))
        .collect();
    let total_weight: f64 = weights.iter().sum();
    let target = config.total_requests() as f64;

    let mut stream = Vec::with_capacity(config.total_requests());
    for (spec, w) in uniques.iter().zip(&weights) {
        let copies = ((w / total_weight) * target).round().max(1.0) as usize;
        for _ in 0..copies {
            stream.push(spec.clone());
        }
    }
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0x21bf);
    stream.shuffle(&mut rng);
    stream
}

#[cfg(test)]
mod zipf_tests {
    use super::*;
    use landlord_repo::RepoConfig;

    fn repo() -> Repository {
        Repository::generate(&RepoConfig::small_for_tests(77))
    }

    fn config() -> WorkloadConfig {
        WorkloadConfig {
            unique_jobs: 30,
            repeats: 4,
            max_initial_selection: 6,
            scheme: WorkloadScheme::DependencyClosure,
            seed: 11,
        }
    }

    #[test]
    fn zipf_zero_exponent_is_uniform() {
        let r = repo();
        let stream = generate_zipf_stream(&r, &config(), 0.0);
        // Equal weights: every job gets exactly `repeats` copies.
        assert_eq!(stream.len(), 120);
        let uniques = unique_specs(&r, &config());
        for u in &uniques {
            assert_eq!(stream.iter().filter(|s| *s == u).count(), 4);
        }
    }

    #[test]
    fn zipf_skews_toward_low_ranks() {
        let r = repo();
        let cfg = config();
        let stream = generate_zipf_stream(&r, &cfg, 1.2);
        let uniques = unique_specs(&r, &cfg);
        let count = |u: &Spec| stream.iter().filter(|s| *s == u).count();
        // Rank 0 dominates; the tail still appears at least once.
        assert!(count(&uniques[0]) > count(&uniques[uniques.len() - 1]) * 3);
        for u in &uniques {
            assert!(count(u) >= 1, "tail job dropped from the stream");
        }
        // Volume within 25% of the uniform stream's.
        let target = cfg.total_requests() as f64;
        assert!((stream.len() as f64 - target).abs() / target < 0.25);
    }

    #[test]
    fn zipf_stream_raises_hit_rate() {
        use landlord_core::cache::{CacheConfig, ImageCache};
        use std::sync::Arc;
        let r = repo();
        let cfg = config();
        let cache_cfg = CacheConfig {
            alpha: 0.8,
            limit_bytes: r.total_bytes() / 2,
            ..Default::default()
        };

        let run = |stream: &[Spec]| {
            let mut c = ImageCache::new(cache_cfg, Arc::new(r.size_table()));
            for s in stream {
                c.request(s);
            }
            c.check_invariants();
            c.stats().hits as f64 / c.stats().requests as f64
        };
        let uniform = run(&generate_stream(&r, &cfg));
        let zipf = run(&generate_zipf_stream(&r, &cfg, 1.5));
        assert!(
            zipf > uniform,
            "popularity skew should raise hit rate: zipf {zipf:.3} vs uniform {uniform:.3}"
        );
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_exponent_rejected() {
        let r = repo();
        let _ = generate_zipf_stream(&r, &config(), -1.0);
    }
}
