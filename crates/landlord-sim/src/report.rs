//! Experiment output: fixed-width tables and CSV.
//!
//! Every experiment returns a [`Table`]; the CLI renders it to the
//! terminal and (optionally) writes the CSV next to it so the series
//! can be re-plotted with gnuplot exactly like the paper's figures.

use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// A titled table of string cells.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table {
    /// Title shown above the table (e.g. "Fig. 4a — Total Cache Operations").
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Row data; each row must match `columns` in length.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Create an empty table with headers.
    pub fn new(title: impl Into<String>, columns: &[&str]) -> Self {
        Table {
            title: title.into(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    ///
    /// # Panics
    ///
    /// Panics when the row width disagrees with the header.
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(
            row.len(),
            self.columns.len(),
            "row width mismatch in '{}'",
            self.title
        );
        self.rows.push(row);
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let mut header = String::new();
        for (w, c) in widths.iter().zip(&self.columns) {
            let _ = write!(header, "{c:>w$}  ");
        }
        let _ = writeln!(out, "{}", header.trim_end());
        let _ = writeln!(out, "{}", "-".repeat(header.trim_end().len()));
        for row in &self.rows {
            let mut line = String::new();
            for (w, cell) in widths.iter().zip(row) {
                let _ = write!(line, "{cell:>w$}  ");
            }
            let _ = writeln!(out, "{}", line.trim_end());
        }
        out
    }

    /// CSV rendering (header + rows; cells containing commas quoted).
    pub fn to_csv(&self) -> String {
        fn cell(s: &str) -> String {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        }
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.columns
                .iter()
                .map(|c| cell(c))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| cell(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }
}

/// Format bytes as GB with one decimal (decimal GB, like the paper).
pub fn fmt_gb(bytes: f64) -> String {
    format!("{:.1}", bytes / 1e9)
}

/// Format bytes as TB with two decimals.
pub fn fmt_tb(bytes: f64) -> String {
    format!("{:.2}", bytes / 1e12)
}

/// Format a percentage with one decimal.
pub fn fmt_pct(pct: f64) -> String {
    format!("{pct:.1}")
}

/// Format a count (median counts may be fractional).
pub fn fmt_count(n: f64) -> String {
    if (n - n.round()).abs() < 1e-9 {
        format!("{}", n.round() as i64)
    } else {
        format!("{n:.1}")
    }
}

/// Format seconds with one decimal.
pub fn fmt_secs(s: f64) -> String {
    format!("{s:.1}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("Demo", &["alpha", "hits"]);
        t.push_row(vec!["0.40".into(), "12".into()]);
        t.push_row(vec!["1.00".into(), "1234".into()]);
        let s = t.render();
        assert!(s.contains("== Demo =="));
        assert!(s.contains("alpha"));
        let lines: Vec<&str> = s.lines().collect();
        // Title, header, separator, two rows.
        assert_eq!(lines.len(), 5);
        // Right-aligned numbers line up at the end.
        assert!(lines[3].ends_with("12"));
        assert!(lines[4].ends_with("1234"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn width_mismatch_panics() {
        let mut t = Table::new("Bad", &["a", "b"]);
        t.push_row(vec!["only one".into()]);
    }

    #[test]
    fn csv_escapes() {
        let mut t = Table::new("Csv", &["name", "note"]);
        t.push_row(vec!["a,b".into(), "say \"hi\"".into()]);
        let csv = t.to_csv();
        assert_eq!(csv.lines().next().unwrap(), "name,note");
        assert!(csv.contains("\"a,b\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt_gb(1.5e9), "1.5");
        assert_eq!(fmt_tb(2.5e12), "2.50");
        assert_eq!(fmt_pct(33.333), "33.3");
        assert_eq!(fmt_count(5.0), "5");
        assert_eq!(fmt_count(5.5), "5.5");
        assert_eq!(fmt_secs(12.34), "12.3");
    }
}

/// Gnuplot emission: the paper's figures are classic gnuplot line
/// plots; these helpers recreate that pipeline from any [`Table`] whose
/// first column is the x value and remaining columns are series.
impl Table {
    /// Whitespace-separated data file (`#`-prefixed header).
    pub fn to_gnuplot_data(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "# {}",
            self.columns
                .iter()
                .map(|c| c.replace(' ', "_"))
                .collect::<Vec<_>>()
                .join(" ")
        );
        for row in &self.rows {
            let cells: Vec<String> = row
                .iter()
                .map(|c| {
                    let cleaned = c.replace(' ', "_");
                    if cleaned.is_empty() {
                        "-".to_string()
                    } else {
                        cleaned
                    }
                })
                .collect();
            let _ = writeln!(out, "{}", cells.join(" "));
        }
        out
    }

    /// A gnuplot script plotting every series column against column 1,
    /// reading from `data_file`.
    pub fn to_gnuplot_script(&self, data_file: &str, output_png: &str) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "set terminal pngcairo size 900,600");
        let _ = writeln!(out, "set output '{output_png}'");
        let _ = writeln!(out, "set title \"{}\"", self.title.replace('"', ""));
        let _ = writeln!(
            out,
            "set xlabel '{}'",
            self.columns.first().map(|s| s.as_str()).unwrap_or("x")
        );
        let _ = writeln!(out, "set key outside right");
        let _ = writeln!(out, "set grid");
        let series: Vec<String> = self
            .columns
            .iter()
            .enumerate()
            .skip(1)
            .map(|(i, name)| {
                format!(
                    "'{data_file}' using 1:{} with linespoints title '{}'",
                    i + 1,
                    name.replace('\'', "")
                )
            })
            .collect();
        let _ = writeln!(out, "plot {}", series.join(", \\\n     "));
        out
    }

    /// Write `<stem>.dat` and `<stem>.gp` into `dir`.
    pub fn write_gnuplot(&self, dir: &std::path::Path, stem: &str) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        let dat = format!("{stem}.dat");
        std::fs::write(dir.join(&dat), self.to_gnuplot_data())?;
        std::fs::write(
            dir.join(format!("{stem}.gp")),
            self.to_gnuplot_script(&dat, &format!("{stem}.png")),
        )
    }
}

#[cfg(test)]
mod gnuplot_tests {
    use super::*;

    fn table() -> Table {
        let mut t = Table::new("Fig. X — demo", &["alpha", "hits", "merges"]);
        t.push_row(vec!["0.40".into(), "10".into(), "0".into()]);
        t.push_row(vec!["0.80".into(), "31".into(), "19".into()]);
        t
    }

    #[test]
    fn data_file_shape() {
        let dat = table().to_gnuplot_data();
        let lines: Vec<&str> = dat.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("# alpha hits merges"));
        assert_eq!(lines[2], "0.80 31 19");
    }

    #[test]
    fn empty_cells_become_placeholders() {
        let mut t = Table::new("T", &["x", "flag"]);
        t.push_row(vec!["1".into(), "".into()]);
        assert!(t.to_gnuplot_data().lines().nth(1).unwrap().ends_with(" -"));
    }

    #[test]
    fn script_plots_every_series() {
        let gp = table().to_gnuplot_script("demo.dat", "demo.png");
        assert!(gp.contains("using 1:2"));
        assert!(gp.contains("using 1:3"));
        assert!(gp.contains("title 'hits'"));
        assert!(gp.contains("set output 'demo.png'"));
    }

    #[test]
    fn write_gnuplot_creates_both_files() {
        let dir = std::env::temp_dir().join(format!("landlord-gp-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        table().write_gnuplot(&dir, "figx").unwrap();
        assert!(dir.join("figx.dat").exists());
        let gp = std::fs::read_to_string(dir.join("figx.gp")).unwrap();
        assert!(gp.contains("figx.dat"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
