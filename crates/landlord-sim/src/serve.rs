//! Open-loop serve-mode driver: seeded arrivals against the sharded
//! cache, with single-flight coalescing and bounded-queue backpressure
//! modeled in **virtual time**.
//!
//! The paper's deployment (§V) is a long-running service: submitters
//! fire job specs at the cache continuously, they do not wait for the
//! previous job to finish before submitting the next (an *open-loop*
//! load model). This module simulates that regime deterministically:
//!
//! * [`generate_requests`] stamps a Zipf-skewed spec stream with seeded
//!   Poisson (or uniform) interarrival ticks — integer virtual time,
//!   no wall clock anywhere.
//! * [`serve_stream`] replays the timed stream shard-affine (the same
//!   `shard % threads` ownership as [`crate::sharded::replay_sharded`]),
//!   so every per-shard decision depends only on that shard's arrival
//!   subsequence and the folded results are **independent of the thread
//!   count** — the serve determinism contract.
//!
//! Each shard runs a one-server queueing machine: one build in flight,
//! a bounded FIFO admission queue behind it. An arrival whose spec is a
//! subset of the in-flight build's spec *coalesces*: it rides the
//! existing build and wakes when it completes (the virtual-time mirror
//! of [`landlord_core::cache::SingleFlight`], which the CLI's
//! wall-clock bench exercises for real). A full queue applies
//! backpressure: [`Backpressure::Reject`] drops the request with a
//! retry-after hint, [`Backpressure::Block`] admits it anyway and
//! counts the overflow.

use crate::simulator::milli_pct;
use crate::workload::{self, WorkloadConfig};
use landlord_core::cache::{CacheConfig, CacheStats, Outcome, ShardedImageCache};
use landlord_core::sizes::SizeModel;
use landlord_core::spec::Spec;
use landlord_obs::{Histogram, HistogramSnapshot, MetricsRegistry};
use landlord_repo::Repository;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::sync::Arc;

/// Metric names the serve driver records (when given a registry).
pub mod names {
    /// Histogram: request latency in virtual ticks, arrival → build
    /// completion (coalesced waiters record their residual wait).
    pub const SERVE_LATENCY_TICKS: &str = "serve.latency_ticks";
    /// Histogram: suggested retry-after ticks handed to rejected
    /// requests (residual service time of the in-flight build).
    pub const SERVE_RETRY_AFTER_TICKS: &str = "serve.retry_after_ticks";
    /// Counter: requests that coalesced onto an in-flight build.
    pub const SERVE_COALESCE_HITS: &str = "serve.coalesce_hits";
    /// Counter: requests rejected by backpressure.
    pub const SERVE_REJECTED: &str = "serve.rejected";
    /// Counter: admissions past the cap under [`super::Backpressure::Block`].
    pub const SERVE_BLOCK_EVENTS: &str = "serve.block_events";
    /// Gauge (high-water): deepest admission queue observed on any shard.
    pub const SERVE_QUEUE_PEAK_DEPTH: &str = "serve.queue_peak_depth";
}

/// Interarrival model for the open-loop generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum ArrivalModel {
    /// Exponential gaps (Poisson process), the classic open-loop model.
    #[default]
    Poisson,
    /// Uniform gaps in `1..=2·mean−1` (same mean, bounded burstiness).
    Uniform,
}

impl ArrivalModel {
    /// Valid CLI tokens, for error messages.
    pub const TOKENS: &'static str = "poisson|uniform";

    /// Stable token for CLI parsing.
    pub fn token(self) -> &'static str {
        match self {
            ArrivalModel::Poisson => "poisson",
            ArrivalModel::Uniform => "uniform",
        }
    }

    /// Parse a CLI token.
    pub fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "poisson" => ArrivalModel::Poisson,
            "uniform" => ArrivalModel::Uniform,
            _ => return None,
        })
    }
}

/// What happens to an arrival that finds the admission queue full.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum Backpressure {
    /// Admit past the cap anyway, counting the overflow — models a
    /// submitter that waits however long it takes.
    #[default]
    Block,
    /// Drop the request and hand back a retry-after hint (the residual
    /// service ticks of the build in flight).
    Reject,
}

impl Backpressure {
    /// Valid CLI tokens, for error messages.
    pub const TOKENS: &'static str = "block|reject";

    /// Stable token for CLI parsing.
    pub fn token(self) -> &'static str {
        match self {
            Backpressure::Block => "block",
            Backpressure::Reject => "reject",
        }
    }

    /// Parse a CLI token.
    pub fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "block" => Backpressure::Block,
            "reject" => Backpressure::Reject,
            _ => return None,
        })
    }
}

/// Parameters of a timed serve workload.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ServeConfig {
    /// Spec population (unique jobs, repeats, seed, …).
    pub workload: WorkloadConfig,
    /// Popularity skew of the spec stream (0 = uniform); see
    /// [`workload::generate_zipf_stream`].
    pub zipf_exponent: f64,
    /// Interarrival model.
    pub arrival: ArrivalModel,
    /// Mean interarrival gap in virtual ticks (min 1).
    pub mean_interarrival_ticks: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workload: WorkloadConfig::default(),
            zipf_exponent: 1.2,
            arrival: ArrivalModel::Poisson,
            mean_interarrival_ticks: 4,
        }
    }
}

/// One timed request: a spec and its arrival tick.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeRequest {
    /// Requested package set.
    pub spec: Spec,
    /// Virtual arrival time (strictly increasing across the stream).
    pub arrival: u64,
}

/// Salt for the arrival-gap RNG stream, kept independent of the spec
/// RNG streams so the same seed yields the same spec *population* under
/// every arrival model.
const ARRIVAL_SALT: u64 = 0x7a11_ae5c;

/// Generate the timed request stream: Zipf-skewed specs (via
/// [`workload::generate_zipf_stream`]) stamped with seeded arrival
/// ticks. Gaps are at least 1 tick, so arrivals are strictly
/// increasing. Deterministic in the config.
pub fn generate_requests(repo: &Repository, config: &ServeConfig) -> Vec<ServeRequest> {
    let specs = workload::generate_zipf_stream(repo, &config.workload, config.zipf_exponent);
    let mean = config.mean_interarrival_ticks.max(1);
    let mut rng = StdRng::seed_from_u64(config.workload.seed ^ ARRIVAL_SALT);
    let mut now = 0u64;
    specs
        .into_iter()
        .map(|spec| {
            let gap = match config.arrival {
                ArrivalModel::Poisson => {
                    // Inverse-CDF exponential draw on integer ticks;
                    // u < 1 strictly, so ln(1-u) is finite.
                    let u: f64 = rng.gen_range(0.0..1.0);
                    let ticks = (-(1.0 - u).ln() * mean as f64).round();
                    (ticks as u64).max(1)
                }
                ArrivalModel::Uniform => {
                    if mean <= 1 {
                        1
                    } else {
                        rng.gen_range(1..=2 * mean - 1)
                    }
                }
            };
            now = now.saturating_add(gap);
            ServeRequest { spec, arrival: now }
        })
        .collect()
}

/// Knobs of the serve loop itself (the workload is [`ServeConfig`]).
#[derive(Debug, Clone, Copy)]
pub struct ServeOptions {
    /// Coalesce arrivals whose spec is a subset of the in-flight
    /// build's spec. Off = every arrival queues individually.
    pub coalesce: bool,
    /// Full-queue policy.
    pub backpressure: Backpressure,
    /// Admission queue capacity per shard.
    pub queue_cap: usize,
    /// Build throughput: a miss serving `b` bytes occupies the shard
    /// for `1 + b / bytes_per_tick` ticks (hits take 1 tick). 0 makes
    /// every request a 1-tick operation.
    pub bytes_per_tick: u64,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            coalesce: true,
            backpressure: Backpressure::Block,
            queue_cap: 32,
            bytes_per_tick: 64,
        }
    }
}

/// One coalescing event: request `request` (stream index) attached to a
/// build in flight on `shard` and woke at `wake`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoalesceRecord {
    /// Owning shard.
    pub shard: u32,
    /// Stream index of the coalesced request.
    pub request: u64,
    /// Arrival tick.
    pub arrival: u64,
    /// Completion tick of the build it rode.
    pub wake: u64,
}

/// FNV-1a over the ledger's fields — a compact fingerprint for the
/// byte-determinism contract (equal ledgers ⇔ equal digests, up to
/// collisions; the tests compare full ledgers, benches the digest).
pub fn coalesce_ledger_digest(ledger: &[CoalesceRecord]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for rec in ledger {
        for field in [u64::from(rec.shard), rec.request, rec.arrival, rec.wake] {
            for b in field.to_le_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(PRIME);
            }
        }
    }
    h
}

/// Folded outcome of one serve run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServeReport {
    /// Requests in the input stream.
    pub arrivals: u64,
    /// Requests that went through the cache (leaders + queued).
    pub served: u64,
    /// Requests that rode an in-flight build instead.
    pub coalesce_hits: u64,
    /// Requests dropped by backpressure.
    pub rejected: u64,
    /// Over-cap admissions under [`Backpressure::Block`].
    pub block_events: u64,
    /// Deepest admission queue observed on any shard.
    pub queue_peak: u64,
    /// Latency (ticks, arrival → completion) of served + coalesced
    /// requests.
    pub latency_ticks: HistogramSnapshot,
    /// Retry-after hints (ticks) handed to rejected requests.
    pub retry_after_ticks: HistogramSnapshot,
    /// Folded cache counters (rejected requests never reach the cache,
    /// so `final_stats.requests == served`).
    pub final_stats: CacheStats,
    /// Mean container efficiency, milli-percent.
    pub container_eff_milli_pct: u64,
    /// Final cache efficiency, milli-percent.
    pub cache_eff_milli_pct: u64,
    /// [`coalesce_ledger_digest`] of the run's ledger.
    pub coalesce_ledger_digest: u64,
}

/// A [`ServeReport`] plus the full coalesce ledger it digests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeResult {
    /// Folded counters and distributions.
    pub report: ServeReport,
    /// Every coalescing event, in shard order then arrival order.
    pub ledger: Vec<CoalesceRecord>,
}

/// Build service time in virtual ticks.
fn service_ticks(outcome: Outcome, bytes_per_tick: u64) -> u64 {
    match outcome {
        Outcome::Hit { .. } => 1,
        Outcome::Merged { image_bytes, .. } | Outcome::Inserted { image_bytes, .. } => {
            1 + image_bytes.checked_div(bytes_per_tick).unwrap_or(0)
        }
    }
}

/// A build occupying a shard: what it's building and when it finishes.
struct InFlight {
    spec: Spec,
    done_at: u64,
}

/// Per-shard tallies carried back to the fold.
struct ShardOutcome {
    served: u64,
    coalesce_hits: u64,
    rejected: u64,
    block_events: u64,
    queue_peak: u64,
    latency: Histogram,
    retry_after: Histogram,
    ledger: Vec<CoalesceRecord>,
}

impl ShardOutcome {
    fn new() -> Self {
        ShardOutcome {
            served: 0,
            coalesce_hits: 0,
            rejected: 0,
            block_events: 0,
            queue_peak: 0,
            latency: Histogram::new(),
            retry_after: Histogram::new(),
            ledger: Vec::new(),
        }
    }
}

/// One shard's single-server queueing machine, advanced in virtual
/// time by its arrival subsequence.
struct Machine<'a> {
    cache: &'a ShardedImageCache,
    requests: &'a [ServeRequest],
    opts: &'a ServeOptions,
    shard: u32,
    inflight: Option<InFlight>,
    queue: VecDeque<usize>,
    out: ShardOutcome,
}

impl Machine<'_> {
    /// Start building request `i` at tick `at` (the shard is idle).
    fn start(&mut self, i: usize, at: u64) {
        let req = &self.requests[i];
        let outcome = self.cache.request(&req.spec);
        let done_at = at.saturating_add(service_ticks(outcome, self.opts.bytes_per_tick));
        self.out.served += 1;
        self.out.latency.record(done_at - req.arrival);
        self.inflight = Some(InFlight {
            spec: req.spec.clone(),
            done_at,
        });
    }

    /// Retire every build that completes by tick `t`, immediately
    /// starting the next queued request at the tick the shard freed.
    fn advance_to(&mut self, t: u64) {
        loop {
            let done_at = match &self.inflight {
                Some(inf) if inf.done_at <= t => inf.done_at,
                _ => break,
            };
            self.inflight = None;
            match self.queue.pop_front() {
                Some(next) => self.start(next, done_at),
                None => break,
            }
        }
    }

    /// Process the arrival of request `i`.
    fn admit(&mut self, i: usize) {
        let arrival = self.requests[i].arrival;
        self.advance_to(arrival);
        let inf = match &self.inflight {
            None => {
                self.start(i, arrival);
                return;
            }
            Some(inf) => inf,
        };
        // advance_to retired everything with done_at <= arrival, so the
        // residual wait below is always >= 1 tick.
        if self.opts.coalesce && self.requests[i].spec.is_subset(&inf.spec) {
            self.out.coalesce_hits += 1;
            self.out.latency.record(inf.done_at - arrival);
            self.out.ledger.push(CoalesceRecord {
                shard: self.shard,
                request: i as u64,
                arrival,
                wake: inf.done_at,
            });
        } else if self.queue.len() < self.opts.queue_cap {
            self.queue.push_back(i);
            self.out.queue_peak = self.out.queue_peak.max(self.queue.len() as u64);
        } else {
            match self.opts.backpressure {
                Backpressure::Reject => {
                    self.out.rejected += 1;
                    self.out.retry_after.record(inf.done_at - arrival);
                }
                Backpressure::Block => {
                    self.out.block_events += 1;
                    self.queue.push_back(i);
                    self.out.queue_peak = self.out.queue_peak.max(self.queue.len() as u64);
                }
            }
        }
    }

    /// Finish everything still in flight or queued.
    fn drain(mut self) -> ShardOutcome {
        self.advance_to(u64::MAX);
        self.out
    }
}

/// Serve one shard's arrival subsequence to completion.
fn serve_shard(
    cache: &ShardedImageCache,
    requests: &[ServeRequest],
    shard: usize,
    owned: &[usize],
    opts: &ServeOptions,
) -> ShardOutcome {
    let mut machine = Machine {
        cache,
        requests,
        opts,
        shard: shard as u32,
        inflight: None,
        queue: VecDeque::new(),
        out: ShardOutcome::new(),
    };
    for &i in owned {
        machine.admit(i);
    }
    machine.drain()
}

/// Serve a timed request stream against a fresh [`ShardedImageCache`]
/// with `threads` workers. Deterministic in the stream, config, and
/// options regardless of `threads` (see the module docs); with
/// coalescing off, a single-threaded [`Backpressure::Block`] run feeds
/// the cache exactly the per-shard subsequences of
/// [`crate::sharded::replay_sharded`], which the differential test
/// pins down.
pub fn serve_stream(
    requests: &[ServeRequest],
    cache_config: CacheConfig,
    sizes: Arc<dyn SizeModel>,
    shards: usize,
    threads: usize,
    options: ServeOptions,
    registry: Option<&MetricsRegistry>,
) -> ServeResult {
    let cache = ShardedImageCache::new(shards.max(1), cache_config, sizes);
    if let Some(registry) = registry {
        cache.attach_metrics(registry);
    }
    let shard_count = cache.shard_count();
    let mut by_shard: Vec<Vec<usize>> = vec![Vec::new(); shard_count];
    for (i, req) in requests.iter().enumerate() {
        by_shard[cache.route(&req.spec)].push(i);
    }
    let threads = threads.max(1).min(shard_count);

    let collected: Mutex<Vec<(usize, ShardOutcome)>> = Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for worker in 0..threads {
            let by_shard = &by_shard;
            let cache = cache.clone();
            let collected = &collected;
            let options = &options;
            scope.spawn(move || {
                for (shard, owned) in by_shard.iter().enumerate() {
                    if shard % threads != worker {
                        continue;
                    }
                    let out = serve_shard(&cache, requests, shard, owned, options);
                    collected.lock().push((shard, out));
                }
            });
        }
    });
    let mut outcomes = collected.into_inner();
    // Fold in shard order: every sum below is associative and the
    // per-shard values are thread-count independent, so the fold is too.
    outcomes.sort_by_key(|(shard, _)| *shard);

    let latency = Histogram::new();
    let retry_after = Histogram::new();
    let mut ledger = Vec::new();
    let mut served = 0u64;
    let mut coalesce_hits = 0u64;
    let mut rejected = 0u64;
    let mut block_events = 0u64;
    let mut queue_peak = 0u64;
    for (_, out) in &outcomes {
        served = served.saturating_add(out.served);
        coalesce_hits = coalesce_hits.saturating_add(out.coalesce_hits);
        rejected = rejected.saturating_add(out.rejected);
        block_events = block_events.saturating_add(out.block_events);
        queue_peak = queue_peak.max(out.queue_peak);
        latency.merge(&out.latency);
        retry_after.merge(&out.retry_after);
    }
    for (_, out) in outcomes {
        ledger.extend(out.ledger);
    }

    if let Some(registry) = registry {
        registry
            .counter(names::SERVE_COALESCE_HITS)
            .add(coalesce_hits);
        registry.counter(names::SERVE_REJECTED).add(rejected);
        registry
            .counter(names::SERVE_BLOCK_EVENTS)
            .add(block_events);
        registry
            .gauge(names::SERVE_QUEUE_PEAK_DEPTH)
            .raise(queue_peak);
        registry
            .histogram(names::SERVE_LATENCY_TICKS)
            .merge(&latency);
        registry
            .histogram(names::SERVE_RETRY_AFTER_TICKS)
            .merge(&retry_after);
    }

    let report = ServeReport {
        arrivals: requests.len() as u64,
        served,
        coalesce_hits,
        rejected,
        block_events,
        queue_peak,
        latency_ticks: latency.snapshot(),
        retry_after_ticks: retry_after.snapshot(),
        final_stats: cache.stats(),
        container_eff_milli_pct: milli_pct(cache.container_efficiency_pct()),
        cache_eff_milli_pct: milli_pct(cache.cache_efficiency_pct()),
        coalesce_ledger_digest: coalesce_ledger_digest(&ledger),
    };
    ServeResult { report, ledger }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sharded::simulate_stream_sharded_observed;
    use landlord_obs::LogicalClock;
    use landlord_repo::{RepoConfig, Repository};

    fn repo() -> Repository {
        Repository::generate(&RepoConfig::small_for_tests(31))
    }

    fn serve_config(seed: u64) -> ServeConfig {
        ServeConfig {
            workload: WorkloadConfig {
                unique_jobs: 40,
                repeats: 4,
                max_initial_selection: 8,
                scheme: workload::WorkloadScheme::DependencyClosure,
                seed,
            },
            zipf_exponent: 1.3,
            arrival: ArrivalModel::Poisson,
            mean_interarrival_ticks: 2,
        }
    }

    /// Slow builds + fast arrivals: shards stay busy, so the Zipf-hot
    /// specs coalesce.
    fn busy_options() -> ServeOptions {
        ServeOptions {
            coalesce: true,
            backpressure: Backpressure::Block,
            queue_cap: 32,
            bytes_per_tick: 8,
        }
    }

    fn cfg(limit: u64) -> CacheConfig {
        CacheConfig {
            alpha: 0.7,
            limit_bytes: limit,
            ..CacheConfig::default()
        }
    }

    #[test]
    fn arrival_ticks_are_strictly_increasing_and_deterministic() {
        let r = repo();
        for arrival in [ArrivalModel::Poisson, ArrivalModel::Uniform] {
            let config = ServeConfig {
                arrival,
                ..serve_config(9)
            };
            let a = generate_requests(&r, &config);
            let b = generate_requests(&r, &config);
            assert_eq!(a, b, "{arrival:?}: same seed must stamp same ticks");
            assert!(!a.is_empty());
            assert!(a[0].arrival >= 1);
            for w in a.windows(2) {
                assert!(
                    w[1].arrival > w[0].arrival,
                    "{arrival:?}: arrivals must be strictly increasing"
                );
            }
        }
        // Uniform gaps stay within 1..=2·mean−1.
        let config = ServeConfig {
            arrival: ArrivalModel::Uniform,
            mean_interarrival_ticks: 5,
            ..serve_config(9)
        };
        let reqs = generate_requests(&r, &config);
        for w in reqs.windows(2) {
            let gap = w[1].arrival - w[0].arrival;
            assert!((1..=9).contains(&gap), "uniform gap {gap} out of range");
        }
    }

    #[test]
    fn cli_tokens_round_trip() {
        for m in [ArrivalModel::Poisson, ArrivalModel::Uniform] {
            assert_eq!(ArrivalModel::parse(m.token()), Some(m));
            assert!(ArrivalModel::TOKENS.contains(m.token()));
        }
        for b in [Backpressure::Block, Backpressure::Reject] {
            assert_eq!(Backpressure::parse(b.token()), Some(b));
            assert!(Backpressure::TOKENS.contains(b.token()));
        }
        assert_eq!(ArrivalModel::parse("exponential"), None);
        assert_eq!(Backpressure::parse("drop"), None);
    }

    #[test]
    fn empty_stream_is_a_defined_no_op() {
        let r = repo();
        let sizes: Arc<dyn SizeModel> = Arc::new(r.size_table());
        let result = serve_stream(
            &[],
            cfg(u64::MAX),
            sizes,
            4,
            2,
            ServeOptions::default(),
            None,
        );
        assert_eq!(result.report.arrivals, 0);
        assert_eq!(result.report.served, 0);
        assert_eq!(result.report.final_stats, CacheStats::default());
        assert_eq!(result.report.latency_ticks, HistogramSnapshot::empty());
        assert!(result.ledger.is_empty());
        // 100% efficiencies, not NaN artifacts (satellite: degenerate folds).
        assert_eq!(result.report.container_eff_milli_pct, 100_000);
        assert_eq!(result.report.cache_eff_milli_pct, 100_000);
    }

    /// The serve determinism contract: at a fixed seed, the folded
    /// report — counters, histograms, ledger — is byte-identical across
    /// runs and independent of the thread count.
    #[test]
    fn report_is_thread_count_invariant_and_byte_stable() {
        let r = repo();
        let requests = generate_requests(&r, &serve_config(7));
        let sizes: Arc<dyn SizeModel> = Arc::new(r.size_table());
        let config = cfg(r.total_bytes() / 2);

        let run = |threads: usize| {
            serve_stream(
                &requests,
                config,
                Arc::clone(&sizes),
                8,
                threads,
                busy_options(),
                None,
            )
        };
        let baseline = run(1);
        let baseline_json = serde_json::to_string(&baseline.report).unwrap_or_default();
        assert!(!baseline_json.is_empty());
        for threads in [1, 2, 4, 8] {
            let again = run(threads);
            assert_eq!(
                again.report, baseline.report,
                "{threads} threads diverged from the single-threaded run"
            );
            assert_eq!(again.ledger, baseline.ledger);
            assert_eq!(
                serde_json::to_string(&again.report).unwrap_or_default(),
                baseline_json,
                "{threads} threads: report JSON must be byte-identical"
            );
        }
    }

    #[test]
    fn zipf_load_coalesces_and_disabling_coalescing_stops_it() {
        let r = repo();
        let requests = generate_requests(&r, &serve_config(7));
        let sizes: Arc<dyn SizeModel> = Arc::new(r.size_table());
        let config = cfg(r.total_bytes() / 2);

        let on = serve_stream(
            &requests,
            config,
            Arc::clone(&sizes),
            4,
            4,
            busy_options(),
            None,
        );
        assert!(
            on.report.coalesce_hits > 0,
            "hot Zipf specs should coalesce under load"
        );
        assert_eq!(on.report.coalesce_hits as usize, on.ledger.len());
        assert_eq!(
            on.report.coalesce_ledger_digest,
            coalesce_ledger_digest(&on.ledger)
        );
        for rec in &on.ledger {
            assert!(rec.wake > rec.arrival, "coalesced wait must be >= 1 tick");
        }
        // Coalesced requests never touch the cache; everything else does.
        assert_eq!(
            on.report.served + on.report.coalesce_hits,
            on.report.arrivals
        );
        assert_eq!(on.report.final_stats.requests, on.report.served);

        let off = serve_stream(
            &requests,
            config,
            Arc::clone(&sizes),
            4,
            4,
            ServeOptions {
                coalesce: false,
                ..busy_options()
            },
            None,
        );
        assert_eq!(off.report.coalesce_hits, 0);
        assert!(off.ledger.is_empty());
        assert_eq!(off.report.served, off.report.arrivals);
    }

    #[test]
    fn backpressure_accounting_is_conserved() {
        let r = repo();
        let requests = generate_requests(&r, &serve_config(3));
        let sizes: Arc<dyn SizeModel> = Arc::new(r.size_table());
        let config = cfg(r.total_bytes() / 2);

        // Zero queue capacity + Reject: every busy non-coalescible
        // arrival is dropped with a retry-after hint.
        let reject = serve_stream(
            &requests,
            config,
            Arc::clone(&sizes),
            4,
            2,
            ServeOptions {
                queue_cap: 0,
                backpressure: Backpressure::Reject,
                ..busy_options()
            },
            None,
        );
        let rep = &reject.report;
        assert!(rep.rejected > 0, "queue_cap 0 under load must reject");
        assert_eq!(rep.block_events, 0);
        assert_eq!(rep.queue_peak, 0);
        assert_eq!(rep.served + rep.coalesce_hits + rep.rejected, rep.arrivals);
        assert_eq!(rep.final_stats.requests, rep.served);
        assert_eq!(rep.retry_after_ticks.count, rep.rejected);
        assert!(rep.retry_after_ticks.min >= 1, "retry-after hints are >= 1");

        // Same load under Block: nothing is dropped, overflow is counted.
        let block = serve_stream(
            &requests,
            config,
            Arc::clone(&sizes),
            4,
            2,
            ServeOptions {
                queue_cap: 0,
                backpressure: Backpressure::Block,
                ..busy_options()
            },
            None,
        );
        let rep = &block.report;
        assert_eq!(rep.rejected, 0);
        assert!(rep.block_events > 0, "queue_cap 0 under load must overflow");
        assert_eq!(rep.served + rep.coalesce_hits, rep.arrivals);
        assert_eq!(rep.retry_after_ticks, HistogramSnapshot::empty());
    }

    /// Satellite: the differential contract. With coalescing off and
    /// blocking admission, serve feeds every shard exactly the
    /// subsequence — in exactly the order — that `replay_sharded`
    /// feeds it, so the cache-side results replay byte-for-byte,
    /// including the deterministic `core.*` metrics.
    #[test]
    fn no_coalesce_serve_replays_simulate_byte_for_byte() {
        let r = repo();
        let config = serve_config(5);
        let requests = generate_requests(&r, &config);
        let specs: Vec<Spec> = requests.iter().map(|req| req.spec.clone()).collect();
        let sizes: Arc<dyn SizeModel> = Arc::new(r.size_table());
        let cache_config = cfg(r.total_bytes() / 3);

        let serve_reg = MetricsRegistry::new(Arc::new(LogicalClock::new()));
        let served = serve_stream(
            &requests,
            cache_config,
            Arc::clone(&sizes),
            8,
            1,
            ServeOptions {
                coalesce: false,
                backpressure: Backpressure::Block,
                ..ServeOptions::default()
            },
            Some(&serve_reg),
        );

        let sim_reg = MetricsRegistry::new(Arc::new(LogicalClock::new()));
        let simulated = simulate_stream_sharded_observed(
            &specs,
            cache_config,
            Arc::clone(&sizes),
            8,
            1,
            Some(&sim_reg),
        );

        assert_eq!(served.report.final_stats, simulated.final_stats);
        assert_eq!(
            served.report.container_eff_milli_pct,
            milli_pct(simulated.container_eff_pct)
        );
        assert_eq!(
            served.report.cache_eff_milli_pct,
            milli_pct(simulated.cache_eff_pct)
        );

        // The deterministic core.* metrics must agree exactly. (The
        // sharded.* lock histograms legitimately differ: replay batches
        // requests per lock acquisition, serve locks per request.)
        let serve_snap = serve_reg.snapshot();
        let sim_snap = sim_reg.snapshot();
        let core_counters = |snap: &landlord_obs::MetricsSnapshot| {
            snap.counters
                .iter()
                .filter(|(name, _)| name.starts_with("core."))
                .map(|(name, v)| (name.clone(), *v))
                .collect::<Vec<_>>()
        };
        let core_histograms = |snap: &landlord_obs::MetricsSnapshot| {
            snap.histograms
                .iter()
                .filter(|(name, _)| name.starts_with("core."))
                .map(|(name, h)| (name.clone(), h.clone()))
                .collect::<Vec<_>>()
        };
        assert_eq!(core_counters(&serve_snap), core_counters(&sim_snap));
        assert_eq!(core_histograms(&serve_snap), core_histograms(&sim_snap));
        assert!(
            !core_counters(&serve_snap).is_empty(),
            "differential test compared nothing"
        );
    }

    /// The serve.* metrics recorded into a shared registry agree with
    /// the report's own folds.
    #[test]
    fn registry_records_match_the_report() {
        let r = repo();
        let requests = generate_requests(&r, &serve_config(7));
        let sizes: Arc<dyn SizeModel> = Arc::new(r.size_table());
        let registry = MetricsRegistry::new(Arc::new(LogicalClock::new()));
        let result = serve_stream(
            &requests,
            cfg(r.total_bytes() / 2),
            sizes,
            4,
            4,
            ServeOptions {
                queue_cap: 1,
                backpressure: Backpressure::Reject,
                ..busy_options()
            },
            Some(&registry),
        );
        let snap = registry.snapshot();
        let rep = &result.report;
        assert_eq!(
            snap.counters.get(names::SERVE_COALESCE_HITS),
            Some(&rep.coalesce_hits)
        );
        assert_eq!(
            snap.counters.get(names::SERVE_REJECTED),
            Some(&rep.rejected)
        );
        assert_eq!(
            snap.counters.get(names::SERVE_BLOCK_EVENTS),
            Some(&rep.block_events)
        );
        assert_eq!(
            snap.gauges.get(names::SERVE_QUEUE_PEAK_DEPTH),
            Some(&rep.queue_peak)
        );
        assert_eq!(
            snap.histograms.get(names::SERVE_LATENCY_TICKS),
            Some(&rep.latency_ticks)
        );
        assert_eq!(
            snap.histograms.get(names::SERVE_RETRY_AFTER_TICKS),
            Some(&rep.retry_after_ticks)
        );
    }

    #[test]
    fn ledger_digest_is_order_and_field_sensitive() {
        let a = CoalesceRecord {
            shard: 1,
            request: 2,
            arrival: 3,
            wake: 4,
        };
        let b = CoalesceRecord { shard: 2, ..a };
        assert_eq!(coalesce_ledger_digest(&[]), coalesce_ledger_digest(&[]));
        assert_ne!(coalesce_ledger_digest(&[a]), coalesce_ledger_digest(&[]));
        assert_ne!(coalesce_ledger_digest(&[a]), coalesce_ledger_digest(&[b]));
        assert_ne!(
            coalesce_ledger_digest(&[a, b]),
            coalesce_ledger_digest(&[b, a])
        );
    }
}
