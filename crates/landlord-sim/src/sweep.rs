//! Parameter sweeps with repeated runs and median aggregation.
//!
//! Every sweep figure in the paper follows the same recipe: "At each
//! choice of α (in steps of 0.05) we performed a set of 20 simulated
//! runs", reporting medians because "there is noticeable variability
//! between individual simulations". Runs are independent, so they fan
//! out across worker threads (crossbeam scoped threads over a shared
//! atomic work queue); the repository is generated once and shared.

use crate::simulator::{simulate, RunResult};
use crate::workload::WorkloadConfig;
use landlord_core::cache::CacheConfig;
use landlord_repo::stats::median_f64;
use landlord_repo::Repository;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Median-aggregated metrics of one sweep point.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct AggregatedRun {
    /// Hits (median across runs).
    pub hits: f64,
    /// Inserts (median).
    pub inserts: f64,
    /// Deletes (median).
    pub deletes: f64,
    /// Merges (median).
    pub merges: f64,
    /// Final unique cached bytes (median).
    pub unique_bytes: f64,
    /// Final total cached bytes (median).
    pub total_bytes: f64,
    /// Cumulative actual writes (median).
    pub bytes_written: f64,
    /// Cumulative requested writes (median).
    pub bytes_requested: f64,
    /// Cache efficiency %, median.
    pub cache_eff_pct: f64,
    /// Container efficiency %, median.
    pub container_eff_pct: f64,
}

impl AggregatedRun {
    /// Median-aggregate a set of run results.
    pub fn from_runs(runs: &[RunResult]) -> AggregatedRun {
        fn med(runs: &[RunResult], f: impl Fn(&RunResult) -> f64) -> f64 {
            let mut v: Vec<f64> = runs.iter().map(f).collect();
            median_f64(&mut v)
        }
        AggregatedRun {
            hits: med(runs, |r| r.final_stats.hits as f64),
            inserts: med(runs, |r| r.final_stats.inserts as f64),
            deletes: med(runs, |r| r.final_stats.deletes as f64),
            merges: med(runs, |r| r.final_stats.merges as f64),
            unique_bytes: med(runs, |r| r.final_stats.unique_bytes as f64),
            total_bytes: med(runs, |r| r.final_stats.total_bytes as f64),
            bytes_written: med(runs, |r| r.final_stats.bytes_written as f64),
            bytes_requested: med(runs, |r| r.final_stats.bytes_requested as f64),
            cache_eff_pct: med(runs, |r| r.cache_eff_pct),
            container_eff_pct: med(runs, |r| r.container_eff_pct),
        }
    }
}

/// One α point of a sweep.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SweepPoint {
    /// The α this point was simulated at.
    pub alpha: f64,
    /// Median metrics over the runs.
    pub median: AggregatedRun,
}

/// The α grid the paper sweeps: 0.40 to 1.00 in steps of 0.05.
pub fn paper_alpha_grid() -> Vec<f64> {
    (8..=20).map(|i| i as f64 * 0.05).collect()
}

/// Sweep α over a fixed workload shape and cache configuration.
///
/// Each (α, run) pair gets workload seed `workload.seed + run`, so run
/// `k` sees the *same* stream at every α — variance between α points
/// comes from the policy, not the workload.
pub fn sweep_alpha(
    repo: &Repository,
    workload: &WorkloadConfig,
    cache_config: &CacheConfig,
    alphas: &[f64],
    runs: usize,
    threads: usize,
) -> Vec<SweepPoint> {
    assert!(runs > 0, "need at least one run per point");
    let jobs: Vec<(usize, f64, u64)> = alphas
        .iter()
        .enumerate()
        .flat_map(|(ai, &alpha)| (0..runs).map(move |run| (ai, alpha, run as u64)))
        .collect();

    let results = run_parallel(repo, &jobs, threads, |alpha, run_seed| {
        let w = WorkloadConfig {
            seed: workload.seed + run_seed,
            ..*workload
        };
        let cfg = CacheConfig {
            alpha,
            ..*cache_config
        };
        simulate(repo, &w, cfg, 0)
    });

    // Group by α index and aggregate.
    let mut grouped: Vec<Vec<RunResult>> = (0..alphas.len()).map(|_| Vec::new()).collect();
    for ((ai, _, _), result) in jobs.iter().zip(results) {
        grouped[*ai].push(result);
    }
    alphas
        .iter()
        .zip(grouped)
        .map(|(&alpha, runs)| SweepPoint {
            alpha,
            median: AggregatedRun::from_runs(&runs),
        })
        .collect()
}

/// Fan `jobs` out over `threads` workers; results in job order.
fn run_parallel<F>(
    _repo: &Repository,
    jobs: &[(usize, f64, u64)],
    threads: usize,
    work: F,
) -> Vec<RunResult>
where
    F: Fn(f64, u64) -> RunResult + Sync,
{
    let threads = threads.max(1).min(jobs.len().max(1));
    let next = AtomicUsize::new(0);
    let results: Vec<parking_lot_free::Slot> = (0..jobs.len())
        .map(|_| parking_lot_free::Slot::new())
        .collect();

    let scope_result = crossbeam::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|_| loop {
                let i = next.fetch_add(1, Ordering::Relaxed); // sync: job-claim ticket; fetch_add's atomicity alone partitions the work, results publish via Slot
                if i >= jobs.len() {
                    break;
                }
                let (_, alpha, run_seed) = jobs[i];
                results[i].set(work(alpha, run_seed));
            });
        }
    });
    debug_assert!(scope_result.is_ok(), "sweep worker panicked");

    // A slot is only ever empty if its worker died mid-sweep; recompute
    // those jobs inline so the output stays aligned with `jobs`.
    results
        .into_iter()
        .zip(jobs)
        .map(|(slot, &(_, alpha, run_seed))| match slot.take() {
            Some(result) => result,
            None => work(alpha, run_seed),
        })
        .collect()
}

/// A tiny write-once cell usable from scoped threads without locks on
/// the read side (each slot is written by exactly one worker).
mod parking_lot_free {
    use crate::simulator::RunResult;
    use std::sync::{Mutex, PoisonError};

    pub struct Slot(Mutex<Option<RunResult>>);

    impl Slot {
        pub fn new() -> Self {
            Slot(Mutex::new(None))
        }

        pub fn set(&self, value: RunResult) {
            // A poisoned slot only means another worker died; the value
            // we are writing is still sound.
            let mut guard = self.0.lock().unwrap_or_else(PoisonError::into_inner);
            debug_assert!(guard.is_none(), "slot written twice");
            *guard = Some(value);
        }

        /// The stored result, or `None` when the owning worker never
        /// completed its write.
        pub fn take(self) -> Option<RunResult> {
            self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::WorkloadScheme;
    use landlord_repo::RepoConfig;

    fn repo() -> Repository {
        Repository::generate(&RepoConfig::small_for_tests(41))
    }

    fn workload() -> WorkloadConfig {
        WorkloadConfig {
            unique_jobs: 20,
            repeats: 3,
            max_initial_selection: 6,
            scheme: WorkloadScheme::DependencyClosure,
            seed: 9,
        }
    }

    #[test]
    fn paper_grid_shape() {
        let grid = paper_alpha_grid();
        assert_eq!(grid.len(), 13);
        assert!((grid[0] - 0.40).abs() < 1e-12);
        assert!((grid[12] - 1.00).abs() < 1e-12);
    }

    #[test]
    fn sweep_covers_all_alphas_in_order() {
        let r = repo();
        let cfg = CacheConfig {
            limit_bytes: r.total_bytes(),
            ..CacheConfig::default()
        };
        let points = sweep_alpha(&r, &workload(), &cfg, &[0.0, 0.5, 1.0], 3, 2);
        assert_eq!(points.len(), 3);
        assert_eq!(points[0].alpha, 0.0);
        assert_eq!(points[2].alpha, 1.0);
        // α = 0 never merges; α = 1 merges plenty on this workload.
        assert_eq!(points[0].median.merges, 0.0);
        assert!(points[2].median.merges > 0.0);
    }

    #[test]
    fn parallel_equals_sequential() {
        let r = repo();
        let cfg = CacheConfig {
            limit_bytes: r.total_bytes(),
            ..CacheConfig::default()
        };
        let seq = sweep_alpha(&r, &workload(), &cfg, &[0.4, 0.8], 4, 1);
        let par = sweep_alpha(&r, &workload(), &cfg, &[0.4, 0.8], 4, 4);
        for (a, b) in seq.iter().zip(&par) {
            assert_eq!(a.median.hits.to_bits(), b.median.hits.to_bits());
            assert_eq!(
                a.median.bytes_written.to_bits(),
                b.median.bytes_written.to_bits()
            );
            assert_eq!(
                a.median.cache_eff_pct.to_bits(),
                b.median.cache_eff_pct.to_bits()
            );
        }
    }

    #[test]
    fn requested_bytes_constant_across_alpha() {
        // The paper's Fig. 4c anchor: "Requested Writes … is on average
        // constant since the same procedure was used to generate all
        // simulated job requirements." With per-run fixed seeds it is
        // *exactly* constant here.
        let r = repo();
        let cfg = CacheConfig {
            limit_bytes: r.total_bytes(),
            ..CacheConfig::default()
        };
        let points = sweep_alpha(&r, &workload(), &cfg, &[0.4, 0.7, 1.0], 3, 2);
        let req: Vec<u64> = points
            .iter()
            .map(|p| p.median.bytes_requested as u64)
            .collect();
        assert!(req.windows(2).all(|w| w[0] == w[1]), "{req:?}");
    }

    #[test]
    fn aggregate_medians() {
        use landlord_core::cache::CacheStats;
        let mk = |hits: u64| RunResult {
            final_stats: CacheStats {
                hits,
                ..Default::default()
            },
            container_eff_pct: hits as f64,
            cache_eff_pct: 50.0,
            series: Vec::new(),
        };
        let agg = AggregatedRun::from_runs(&[mk(1), mk(9), mk(5)]);
        assert_eq!(agg.hits, 5.0);
        assert_eq!(agg.container_eff_pct, 5.0);
        assert_eq!(agg.cache_eff_pct, 50.0);
    }
}
