//! The experiment harness: one module per paper table/figure.
//!
//! Every experiment is a function from an [`ExperimentContext`] to one
//! or more [`Table`]s whose rows are the series the paper plots. The
//! context chooses between two scales:
//!
//! * [`Scale::Full`] — the paper's parameters (9,660-package repo,
//!   500 unique jobs × 5 repeats, 1.4 TB cache, α swept 0.40–1.00 in
//!   0.05 steps, 20 runs per point). Minutes of CPU.
//! * [`Scale::Smoke`] — a miniature universe exercising the identical
//!   code paths in well under a second, used by the test suite.
//!
//! The experiment ids (`fig2` … `fig8`, `fig1`, ablations) are indexed
//! in `DESIGN.md` §4 and runnable via `landlord experiment <id>`.

pub mod ablations;
pub mod ext_cluster;
pub mod ext_evict;
pub mod ext_faults;
pub mod ext_update;
pub mod ext_usermix;
pub mod fig1;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod paper_shapes;

use crate::report::Table;
use crate::sweep::{self, SweepPoint};
use crate::workload::{WorkloadConfig, WorkloadScheme};
use landlord_core::cache::CacheConfig;
use landlord_repo::{RepoConfig, Repository};
use serde::{Deserialize, Serialize};

/// How big to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Scale {
    /// Paper-scale parameters.
    Full,
    /// Miniature parameters for tests.
    Smoke,
}

/// Shared experiment parameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ExperimentContext {
    /// Full or smoke scale.
    pub scale: Scale,
    /// Master seed; every random element derives from it.
    pub seed: u64,
    /// Worker threads for sweeps.
    pub threads: usize,
}

impl ExperimentContext {
    /// Paper-scale context.
    pub fn full(seed: u64, threads: usize) -> Self {
        ExperimentContext {
            scale: Scale::Full,
            seed,
            threads,
        }
    }

    /// Miniature context for tests.
    pub fn smoke(seed: u64) -> Self {
        ExperimentContext {
            scale: Scale::Smoke,
            seed,
            threads: 2,
        }
    }

    /// The SFT-like repository for the simulation figures.
    pub fn repo(&self) -> Repository {
        let cfg = match self.scale {
            Scale::Full => RepoConfig::sft_like(self.seed),
            Scale::Smoke => RepoConfig::small_for_tests(self.seed),
        };
        Repository::generate(&cfg)
    }

    /// The paper's standard stream: 500 unique jobs × 5 repeats.
    pub fn standard_workload(&self) -> WorkloadConfig {
        match self.scale {
            Scale::Full => WorkloadConfig {
                unique_jobs: 500,
                repeats: 5,
                max_initial_selection: 100,
                scheme: WorkloadScheme::DependencyClosure,
                seed: self.seed,
            },
            Scale::Smoke => WorkloadConfig {
                unique_jobs: 40,
                repeats: 3,
                max_initial_selection: 8,
                scheme: WorkloadScheme::DependencyClosure,
                seed: self.seed,
            },
        }
    }

    /// The paper's standard cache: 1.4 TB (2× the 700 GB repo).
    pub fn standard_cache_bytes(&self, repo: &Repository) -> u64 {
        match self.scale {
            Scale::Full => 1_400_000_000_000,
            Scale::Smoke => repo.total_bytes() / 2,
        }
    }

    /// Standard cache configuration at a given α.
    pub fn standard_cache(&self, repo: &Repository, alpha: f64) -> CacheConfig {
        CacheConfig {
            alpha,
            limit_bytes: self.standard_cache_bytes(repo),
            ..CacheConfig::default()
        }
    }

    /// Runs per sweep point (paper: 20).
    pub fn runs(&self) -> usize {
        match self.scale {
            Scale::Full => 20,
            Scale::Smoke => 3,
        }
    }

    /// The α grid.
    pub fn alphas(&self) -> Vec<f64> {
        match self.scale {
            Scale::Full => sweep::paper_alpha_grid(),
            Scale::Smoke => vec![0.4, 0.6, 0.8, 0.95, 1.0],
        }
    }

    /// The standard α sweep shared by Figs. 4a–c and 8.
    pub fn standard_sweep(&self, repo: &Repository) -> Vec<SweepPoint> {
        let workload = self.standard_workload();
        let cache = self.standard_cache(repo, 0.0);
        sweep::sweep_alpha(
            repo,
            &workload,
            &cache,
            &self.alphas(),
            self.runs(),
            self.threads,
        )
    }
}

/// All experiment ids, in paper order.
pub fn all_ids() -> &'static [&'static str] {
    &[
        "fig1",
        "fig2",
        "fig3",
        "fig4a",
        "fig4b",
        "fig4c",
        "fig5",
        "fig6a",
        "fig6b",
        "fig6c",
        "fig6d",
        "fig7",
        "fig8",
        "ablation-evict",
        "ablation-merge-order",
        "ablation-candidates",
        "ablation-split",
        "ablation-metric",
        "ext-cluster",
        "ext-evict-sweep",
        "ext-usermix",
        "ext-update",
        "ext-faults",
    ]
}

/// Run one experiment by id. Returns its tables, or `None` for an
/// unknown id.
pub fn run(id: &str, ctx: &ExperimentContext) -> Option<Vec<Table>> {
    Some(match id {
        "fig1" => vec![fig1::run(ctx)],
        "fig2" => vec![fig2::run(ctx)],
        "fig3" => vec![fig3::run(ctx)],
        "fig4a" => vec![fig4::run_a(ctx)],
        "fig4b" => vec![fig4::run_b(ctx)],
        "fig4c" => vec![fig4::run_c(ctx)],
        "fig4" => fig4::run_all(ctx),
        "fig5" => vec![fig5::run(ctx)],
        "fig6a" => vec![fig6::run_cache_size(ctx, fig6::Metric::Container)],
        "fig6b" => vec![fig6::run_cache_size(ctx, fig6::Metric::Cache)],
        "fig6c" => vec![fig6::run_job_count(ctx, fig6::Metric::Container)],
        "fig6d" => vec![fig6::run_job_count(ctx, fig6::Metric::Cache)],
        "fig7" => vec![fig7::run(ctx)],
        "fig8" => vec![fig8::run(ctx)],
        "ablation-evict" => vec![ablations::eviction(ctx)],
        "ablation-merge-order" => vec![ablations::merge_order(ctx)],
        "ablation-candidates" => vec![ablations::candidates(ctx)],
        "ablation-split" => vec![ablations::split(ctx)],
        "ablation-metric" => vec![ablations::metric(ctx)],
        "ext-cluster" => vec![ext_cluster::run(ctx)],
        "ext-evict-sweep" => vec![ext_evict::run(ctx)],
        "ext-faults" => vec![ext_faults::run(ctx)],
        "ext-usermix" => vec![ext_usermix::run(ctx)],
        "ext-update" => vec![ext_update::run(ctx)],
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_unique_and_dispatchable() {
        let ids = all_ids();
        let set: std::collections::HashSet<_> = ids.iter().collect();
        assert_eq!(set.len(), ids.len());
    }

    #[test]
    fn unknown_id_is_none() {
        assert!(run("fig99", &ExperimentContext::smoke(1)).is_none());
    }

    #[test]
    fn context_parameters_match_paper_at_full_scale() {
        let ctx = ExperimentContext::full(1, 4);
        let w = ctx.standard_workload();
        assert_eq!(w.unique_jobs, 500);
        assert_eq!(w.repeats, 5);
        assert_eq!(w.max_initial_selection, 100);
        assert_eq!(ctx.runs(), 20);
        assert_eq!(ctx.alphas().len(), 13);
    }
}
