//! Fig. 3 — image size vs. specification size.
//!
//! "For each fixed specification size (on the x axis), we selected a
//! random sample of packages. … We repeated this procedure 100 times
//! for each specification size, taking the median." Columns mirror the
//! figure's three series: the on-disk size of just the selection, the
//! package count after closure, and the on-disk size after closure.

use super::{ExperimentContext, Scale};
use crate::report::{fmt_gb, Table};
use landlord_repo::stats;

/// Run the Fig. 3 growth curve.
pub fn run(ctx: &ExperimentContext) -> Table {
    let repo = ctx.repo();
    let (sizes, samples): (Vec<usize>, usize) = match ctx.scale {
        // Paper: 0–1000 on the x axis, 100 samples per point.
        Scale::Full => ((1..=10).map(|i| i * 100).chain([10, 50]).collect(), 100),
        Scale::Smoke => (vec![5, 20, 60], 10),
    };
    let mut sizes = sizes;
    sizes.sort_unstable();

    let rows = stats::closure_growth(&repo, &sizes, samples, ctx.seed ^ 0xf163);
    let mut table = Table::new(
        "Fig. 3 — Image size vs. selection size (medians)",
        &[
            "spec_pkgs",
            "spec_GB",
            "image_pkgs",
            "image_GB",
            "expansion_x",
        ],
    );
    for r in rows {
        table.push_row(vec![
            r.spec_size.to_string(),
            fmt_gb(r.selection_bytes as f64),
            r.image_packages.to_string(),
            fmt_gb(r.image_bytes as f64),
            format!("{:.1}", r.image_packages as f64 / r.spec_size.max(1) as f64),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_shape() {
        let t = run(&ExperimentContext::smoke(9));
        assert_eq!(t.rows.len(), 3);
        // Expansion factors decrease down the table (saturation).
        let factors: Vec<f64> = t.rows.iter().map(|r| r[4].parse().unwrap()).collect();
        assert!(factors[0] >= factors[2], "no saturation: {factors:?}");
        // Image ≥ selection for every row.
        for r in &t.rows {
            let spec: f64 = r[1].parse().unwrap();
            let img: f64 = r[3].parse().unwrap();
            assert!(img >= spec);
        }
    }
}
