//! Fig. 1 — "Refining via layers vs. Composition", quantified.
//!
//! The paper's Fig. 1 is a conceptual diagram: three jobs requiring
//! {A,B,C}, {A,B,D}, {A,B,C} served either by refining one Docker-style
//! layer chain or by composing specification images. We reproduce the
//! exact three-job example and then scale the comparison up on a
//! generated workload, reporting stored bytes for each approach.

use super::ExperimentContext;
use crate::report::{fmt_gb, Table};
use crate::workload;
use landlord_baselines::LayerChain;
use landlord_core::cache::{CacheConfig, ImageCache};
use landlord_core::sizes::UniformSizes;
use landlord_core::spec::{PackageId, Spec};
use std::sync::Arc;

/// Run the comparison.
pub fn run(ctx: &ExperimentContext) -> Table {
    let mut table = Table::new(
        "Fig. 1 — Layering vs. composition (stored bytes)",
        &[
            "workload",
            "requests",
            "layered",
            "composed",
            "layered/composed",
        ],
    );

    // --- The paper's exact three-job illustration. ---------------------
    // A=1, B=2, C=3, D=4; each item 1 byte.
    let jobs: Vec<Spec> = [&[1u32, 2, 3][..], &[1, 2, 4], &[1, 2, 3]]
        .iter()
        .map(|ids| Spec::from_ids(ids.iter().map(|&i| PackageId(i))))
        .collect();
    let sizes = Arc::new(UniformSizes::new(1));
    let (layered, composed) = compare(&jobs, sizes, u64::MAX);
    table.push_row(vec![
        "fig1-abc/abd/abc".into(),
        "3".into(),
        layered.to_string(),
        composed.to_string(),
        format!("{:.2}", layered as f64 / composed as f64),
    ]);

    // --- A generated stream at scale. ----------------------------------
    let repo = ctx.repo();
    let stream = workload::generate_stream(&repo, &ctx.standard_workload());
    let sizes: Arc<dyn landlord_core::sizes::SizeModel> = Arc::new(repo.size_table());
    let (layered, composed) = compare(&stream, sizes, u64::MAX);
    table.push_row(vec![
        "generated stream".into(),
        stream.len().to_string(),
        fmt_gb(layered as f64),
        fmt_gb(composed as f64),
        format!("{:.2}", layered as f64 / composed as f64),
    ]);
    table
}

/// Serve `jobs` both ways; return (layered stored bytes, composed
/// stored bytes). Composition = LANDLORD with an unbounded cache and a
/// merge-everything threshold, i.e. the union image.
fn compare(
    jobs: &[Spec],
    sizes: Arc<dyn landlord_core::sizes::SizeModel>,
    limit: u64,
) -> (u64, u64) {
    let mut chain = LayerChain::new(Arc::clone(&sizes));
    for job in jobs {
        chain.refine_to(job);
    }

    let cfg = CacheConfig {
        alpha: 1.0,
        limit_bytes: limit,
        ..CacheConfig::default()
    };
    let mut cache = ImageCache::new(cfg, sizes);
    for job in jobs {
        cache.request(job);
    }
    (chain.stored_bytes(), cache.stats().total_bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_numbers() {
        // Layered: {A,B,C} (3) + add D (1) + re-add C (1) = 5 stored.
        // Composed: union {A,B,C,D} = 4 stored.
        let jobs: Vec<Spec> = [&[1u32, 2, 3][..], &[1, 2, 4], &[1, 2, 3]]
            .iter()
            .map(|ids| Spec::from_ids(ids.iter().map(|&i| PackageId(i))))
            .collect();
        let (layered, composed) = compare(&jobs, Arc::new(UniformSizes::new(1)), u64::MAX);
        assert_eq!(layered, 5);
        assert_eq!(composed, 4);
    }

    #[test]
    fn smoke_table_shape() {
        let t = run(&ExperimentContext::smoke(3));
        assert_eq!(t.rows.len(), 2);
        assert_eq!(t.columns.len(), 5);
        // Layering never beats composition on storage.
        for row in &t.rows {
            let ratio: f64 = row[4].parse().unwrap();
            assert!(ratio >= 1.0, "layered/composed ratio {ratio} < 1");
        }
    }
}
