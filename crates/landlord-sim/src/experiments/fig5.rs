//! Fig. 5 — one simulation's time series.
//!
//! "A single simulation of LANDLORD with α = 0.75 and cache size of
//! 1.4 TB processing 500 unique job specifications, each one repeated
//! five times." The table samples the stream at regular intervals and
//! reports the running operation counts (Y1 in the figure) and the
//! cached-data / bytes-written curves (Y2).

use super::ExperimentContext;
use crate::report::{fmt_tb, Table};
use crate::simulator;

/// The α the paper uses for this figure.
pub const FIG5_ALPHA: f64 = 0.75;

/// Run the single-simulation time series.
pub fn run(ctx: &ExperimentContext) -> Table {
    let repo = ctx.repo();
    let workload = ctx.standard_workload();
    let cache = ctx.standard_cache(&repo, FIG5_ALPHA);
    let total = workload.total_requests();
    // ~25 sample points across the stream.
    let sample_every = (total / 25).max(1);
    let result = simulator::simulate(&repo, &workload, cache, sample_every);

    let mut t = Table::new(
        format!(
            "Fig. 5 — Single simulation (alpha={FIG5_ALPHA}, cache={} TB, {} requests)",
            cache.limit_bytes as f64 / 1e12,
            total
        ),
        &[
            "request",
            "hits",
            "inserts",
            "deletes",
            "merges",
            "cached_TB",
            "written_TB",
        ],
    );
    for p in &result.series {
        t.push_row(vec![
            p.request_index.to_string(),
            p.stats.hits.to_string(),
            p.stats.inserts.to_string(),
            p.stats.deletes.to_string(),
            p.stats.merges.to_string(),
            fmt_tb(p.stats.total_bytes as f64),
            fmt_tb(p.stats.bytes_written as f64),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_is_monotone_and_fills_cache() {
        let ctx = ExperimentContext::smoke(13);
        let t = run(&ctx);
        assert!(t.rows.len() >= 10);
        // Counters monotone nondecreasing down the table.
        for col in 1..=4 {
            let vals: Vec<u64> = t.rows.iter().map(|r| r[col].parse().unwrap()).collect();
            assert!(
                vals.windows(2).all(|w| w[0] <= w[1]),
                "column {col} not monotone"
            );
        }
        // Merges dominate at α = 0.75 on a closure workload (paper:
        // "most of the operations are merges").
        let last = t.rows.last().unwrap();
        let merges: u64 = last[4].parse().unwrap();
        let inserts: u64 = last[1].parse::<u64>().unwrap_or(0); // hits col is 1
        let _ = inserts;
        assert!(merges > 0, "no merges at alpha 0.75");
    }
}
