//! Extension experiment — worker-node image distribution.
//!
//! Not a paper figure: §V *describes* the deployment setting (head-node
//! scratch for the image cache, per-worker scratch for local copies)
//! but only evaluates the shared cache. This experiment measures the
//! distribution half: for a fixed α, how do worker count and dispatch
//! policy change the network transfer volume and the local hit rate?
//! Merges cut the number of distinct images (fewer transfers) but
//! rewrite them in place, invalidating worker copies — the same
//! tension as Fig. 4c, one hop further out.

use super::{ExperimentContext, Scale};
use crate::cluster::{self, ClusterConfig, Dispatch};
use crate::report::{fmt_tb, Table};

/// α used for the cluster runs (the paper's recommended moderate pick).
pub const CLUSTER_ALPHA: f64 = 0.8;

/// Run the cluster distribution table.
pub fn run(ctx: &ExperimentContext) -> Table {
    let repo = ctx.repo();
    let workload = ctx.standard_workload();
    let cache = ctx.standard_cache(&repo, CLUSTER_ALPHA);
    let worker_counts: &[usize] = match ctx.scale {
        Scale::Full => &[4, 16, 64],
        Scale::Smoke => &[2, 4],
    };
    // Each worker's scratch holds roughly a handful of images.
    let scratch = ctx.standard_cache_bytes(&repo) / 8;

    let mut t = Table::new(
        format!("Extension — worker-node distribution at alpha={CLUSTER_ALPHA}"),
        &[
            "workers",
            "dispatch",
            "local_hit_pct",
            "transfers",
            "transfer_TB",
            "scratch_evicts",
        ],
    );
    for &workers in worker_counts {
        for dispatch in [Dispatch::RoundRobin, Dispatch::Random, Dispatch::CacheAware] {
            let cfg = ClusterConfig {
                workers,
                worker_scratch_bytes: scratch,
                dispatch,
                seed: ctx.seed ^ 0xc1,
                faults: None,
            };
            let result = cluster::simulate_cluster(&repo, &workload, cache, &cfg);
            t.push_row(vec![
                workers.to_string(),
                dispatch.token().to_string(),
                format!("{:.1}", result.cluster.local_hit_pct()),
                result.cluster.transfers.to_string(),
                fmt_tb(result.cluster.transfer_bytes as f64),
                result.cluster.scratch_evictions.to_string(),
            ]);
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_covers_all_combinations() {
        let ctx = ExperimentContext::smoke(43);
        let t = run(&ctx);
        assert_eq!(t.rows.len(), 2 * 3);
        // Cache-aware never does worse than round-robin on local hits
        // at the same worker count.
        for chunk in t.rows.chunks(3) {
            let rr: f64 = chunk[0][2].parse().unwrap();
            let ca: f64 = chunk[2][2].parse().unwrap();
            assert!(ca + 1e-9 >= rr, "cache-aware {ca} < round-robin {rr}");
        }
    }
}
