//! Fig. 7 — impact of dependency structure on duplication.
//!
//! Compares the realistic dependency-closure workload against the
//! uniform-random control at matched image sizes. The paper's claim:
//! "In the purely random case, there is no correlation between
//! different images. Thus, it is much more difficult to find images
//! similar enough to merge until the α value is very lax." — i.e. the
//! random series shows little efficiency movement until α approaches 1,
//! while the dependency-structured series responds across the range.

use super::ExperimentContext;
use crate::report::Table;
use crate::sweep;
use crate::workload::{WorkloadConfig, WorkloadScheme};

/// Run both workload schemes over the α grid.
pub fn run(ctx: &ExperimentContext) -> Table {
    let repo = ctx.repo();
    let alphas = ctx.alphas();
    let cache = ctx.standard_cache(&repo, 0.0);
    let runs = ctx.runs();

    let mut series = Vec::new();
    for scheme in [
        WorkloadScheme::DependencyClosure,
        WorkloadScheme::UniformRandom,
    ] {
        let workload = WorkloadConfig {
            scheme,
            ..ctx.standard_workload()
        };
        series.push(sweep::sweep_alpha(
            &repo,
            &workload,
            &cache,
            &alphas,
            runs,
            ctx.threads,
        ));
    }

    let mut t = Table::new(
        "Fig. 7 — Dependency vs random workloads (cache/container efficiency)",
        &[
            "alpha",
            "deps_cache_eff",
            "random_cache_eff",
            "deps_container_eff",
            "random_container_eff",
            "deps_merges",
            "random_merges",
        ],
    );
    for (i, &alpha) in alphas.iter().enumerate() {
        t.push_row(vec![
            format!("{alpha:.2}"),
            format!("{:.1}", series[0][i].median.cache_eff_pct),
            format!("{:.1}", series[1][i].median.cache_eff_pct),
            format!("{:.1}", series[0][i].median.container_eff_pct),
            format!("{:.1}", series[1][i].median.container_eff_pct),
            format!("{:.0}", series[0][i].median.merges),
            format!("{:.0}", series[1][i].median.merges),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deps_workload_merges_more_in_the_operational_range() {
        let ctx = ExperimentContext::smoke(23);
        let t = run(&ctx);
        assert_eq!(t.rows.len(), ctx.alphas().len());
        // Sum merges over the sub-1.0 α range: the structured workload
        // must find substantially more merge opportunities.
        let (mut deps, mut random) = (0.0f64, 0.0f64);
        for row in &t.rows {
            let alpha: f64 = row[0].parse().unwrap();
            if alpha < 0.999 {
                deps += row[5].parse::<f64>().unwrap();
                random += row[6].parse::<f64>().unwrap();
            }
        }
        assert!(
            deps > random,
            "dependency workload should merge more below alpha=1: {deps} vs {random}"
        );
    }
}
