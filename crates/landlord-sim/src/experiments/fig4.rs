//! Fig. 4 — cache behavior over the α range (three panels, one sweep).
//!
//! * **4a** Total cache operations: inserts/deletes dominate at low α
//!   and fall as merges take over; hits jump at α = 1.
//! * **4b** Duplication of data in cache: total pinned near the limit
//!   at low α; unique data rising with merging; the two meet at α = 1.
//! * **4c** Cumulative I/O overhead: actual writes track requested
//!   writes at low α, then blow past them as merges rewrite images.

use super::ExperimentContext;
use crate::report::{fmt_count, fmt_gb, fmt_tb, Table};
use crate::sweep::SweepPoint;

/// All three panels from one shared sweep.
pub fn run_all(ctx: &ExperimentContext) -> Vec<Table> {
    let repo = ctx.repo();
    let sweep = ctx.standard_sweep(&repo);
    vec![table_a(&sweep), table_b(&sweep), table_c(&sweep)]
}

/// Fig. 4a only.
pub fn run_a(ctx: &ExperimentContext) -> Table {
    let repo = ctx.repo();
    table_a(&ctx.standard_sweep(&repo))
}

/// Fig. 4b only.
pub fn run_b(ctx: &ExperimentContext) -> Table {
    let repo = ctx.repo();
    table_b(&ctx.standard_sweep(&repo))
}

/// Fig. 4c only.
pub fn run_c(ctx: &ExperimentContext) -> Table {
    let repo = ctx.repo();
    table_c(&ctx.standard_sweep(&repo))
}

fn table_a(sweep: &[SweepPoint]) -> Table {
    let mut t = Table::new(
        "Fig. 4a — Total cache operations vs alpha (medians of runs)",
        &["alpha", "inserts", "deletes", "merges", "hits"],
    );
    for p in sweep {
        t.push_row(vec![
            format!("{:.2}", p.alpha),
            fmt_count(p.median.inserts),
            fmt_count(p.median.deletes),
            fmt_count(p.median.merges),
            fmt_count(p.median.hits),
        ]);
    }
    t
}

fn table_b(sweep: &[SweepPoint]) -> Table {
    let mut t = Table::new(
        "Fig. 4b — Duplication of data in cache vs alpha",
        &["alpha", "unique_GB", "total_GB", "cache_eff_pct"],
    );
    for p in sweep {
        t.push_row(vec![
            format!("{:.2}", p.alpha),
            fmt_gb(p.median.unique_bytes),
            fmt_gb(p.median.total_bytes),
            format!("{:.1}", p.median.cache_eff_pct),
        ]);
    }
    t
}

fn table_c(sweep: &[SweepPoint]) -> Table {
    let mut t = Table::new(
        "Fig. 4c — Cumulative I/O overhead vs alpha",
        &[
            "alpha",
            "actual_writes_TB",
            "requested_writes_TB",
            "overhead_x",
        ],
    );
    for p in sweep {
        let overhead = if p.median.bytes_requested > 0.0 {
            p.median.bytes_written / p.median.bytes_requested
        } else {
            1.0
        };
        t.push_row(vec![
            format!("{:.2}", p.alpha),
            fmt_tb(p.median.bytes_written),
            fmt_tb(p.median.bytes_requested),
            format!("{overhead:.2}"),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn panels_share_alpha_grid_and_match_paper_shape() {
        let ctx = ExperimentContext::smoke(11);
        let tables = run_all(&ctx);
        assert_eq!(tables.len(), 3);
        let n = ctx.alphas().len();
        for t in &tables {
            assert_eq!(t.rows.len(), n);
        }

        // Shape checks on 4a: merges increase from the low-α end to the
        // high range; inserts decrease.
        let a = &tables[0];
        let first_merges: f64 = a.rows.first().unwrap()[3].parse().unwrap();
        let merges_near_one: f64 = a.rows[a.rows.len() - 2][3].parse().unwrap();
        assert!(
            merges_near_one >= first_merges,
            "merging must rise with alpha"
        );
        let first_inserts: f64 = a.rows.first().unwrap()[1].parse().unwrap();
        let last_inserts: f64 = a.rows.last().unwrap()[1].parse().unwrap();
        assert!(
            last_inserts <= first_inserts,
            "inserts must fall with alpha"
        );

        // 4c: merging costs I/O — the α point with the most merges pays
        // at least as much write overhead as the point with the fewest.
        // (The strict monotone-in-α shape only emerges at full scale,
        // where the paper's parameters keep low α truly merge-free.)
        let c = &tables[2];
        let merges: Vec<f64> = a.rows.iter().map(|r| r[3].parse().unwrap()).collect();
        let overheads: Vec<f64> = c.rows.iter().map(|r| r[3].parse().unwrap()).collect();
        let max_m = merges.iter().copied().fold(f64::MIN, f64::max);
        let min_m = merges.iter().copied().fold(f64::MAX, f64::min);
        let oh_at = |m: f64| {
            merges
                .iter()
                .position(|&x| x == m)
                .map(|i| overheads[i])
                .expect("value from the same vec")
        };
        assert!(
            oh_at(max_m) + 1e-9 >= oh_at(min_m),
            "more merging should not cost less I/O: {overheads:?} for merges {merges:?}"
        );
    }
}
