//! Extension experiment — failure rate × retry policy.
//!
//! Not a paper figure: the paper's deployment setting (distributed HTC)
//! implies worker crashes, failed builds, and flaky storage, but the
//! evaluation assumes every build succeeds. This experiment sweeps the
//! per-attempt failure probability against three retry policies and
//! reports goodput (requests actually served), retry overhead (extra
//! attempts, backoff ticks, wasted write bytes), degraded inserts, and
//! both of the paper's efficiencies — showing how LANDLORD's merging
//! behaves when builds can die under it.

use super::{ExperimentContext, Scale};
use crate::faults::{self, FaultConfig};
use crate::report::{fmt_tb, Table};
use landlord_core::policy::RetryPolicy;

/// α used for the fault runs (the paper's recommended moderate pick).
pub const FAULT_ALPHA: f64 = 0.8;

/// The retry policies compared: none (the paper's implicit setting),
/// one retry, and three retries with capped exponential backoff.
pub fn retry_grid() -> Vec<RetryPolicy> {
    vec![
        RetryPolicy::none(),
        RetryPolicy::new(1, 4, 32),
        RetryPolicy::new(3, 4, 32),
    ]
}

/// Run the failure-rate × retry-policy table.
pub fn run(ctx: &ExperimentContext) -> Table {
    let repo = ctx.repo();
    let workload = ctx.standard_workload();
    let cache = ctx.standard_cache(&repo, FAULT_ALPHA);
    let rates: &[u32] = match ctx.scale {
        Scale::Full => &[0, 10, 50, 100, 200],
        Scale::Smoke => &[0, 50, 200],
    };

    let mut t = Table::new(
        format!("Extension — failure rate x retry policy at alpha={FAULT_ALPHA}"),
        &[
            "fail_pm",
            "retry",
            "goodput_pct",
            "failed",
            "retries",
            "backoff",
            "degraded",
            "wasted_TB",
            "container_eff_pct",
            "cache_eff_pct",
        ],
    );
    for &fail_per_mille in rates {
        for retry in retry_grid() {
            let cfg = FaultConfig {
                fail_per_mille,
                seed: ctx.seed ^ 0xfa,
                retry,
            };
            let result = faults::simulate_with_faults(&repo, &workload, cache, &cfg);
            let f = result.faults;
            t.push_row(vec![
                fail_per_mille.to_string(),
                retry.label(),
                format!("{:.1}", f.goodput_pct()),
                f.failed_requests.to_string(),
                f.retries.to_string(),
                f.backoff_ticks.to_string(),
                f.degraded_inserts.to_string(),
                fmt_tb(f.wasted_bytes as f64),
                format!("{:.1}", result.run.container_eff_pct),
                format!("{:.1}", result.run.cache_eff_pct),
            ]);
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_covers_the_grid_and_shapes_hold() {
        let ctx = ExperimentContext::smoke(43);
        let t = run(&ctx);
        assert_eq!(t.rows.len(), 3 * 3);

        let goodput = |row: &[String]| -> f64 { row[2].parse().unwrap() };
        // Zero failure rate: perfect goodput regardless of retries.
        for row in &t.rows[0..3] {
            assert_eq!(goodput(row), 100.0);
            assert_eq!(row[3], "0");
        }
        // At each non-zero rate, more retries never hurt goodput.
        for chunk in t.rows[3..].chunks(3) {
            let none = goodput(&chunk[0]);
            let three = goodput(&chunk[2]);
            assert!(
                three + 1e-9 >= none,
                "retries must not lose goodput: {three} vs {none}"
            );
        }
    }

    #[test]
    fn regenerates_bit_identically_from_the_seed() {
        let a = run(&ExperimentContext::smoke(7));
        let b = run(&ExperimentContext::smoke(7));
        assert_eq!(a.rows, b.rows);
        let c = run(&ExperimentContext::smoke(8));
        assert_ne!(a.rows, c.rows, "different master seed must differ");
    }
}
