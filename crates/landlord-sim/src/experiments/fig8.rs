//! Fig. 8 — limits on efficiency and the operational zone.
//!
//! Overlays the two efficiency curves and derives the two limit lines
//! the paper draws:
//!
//! * the **thrashing** limit — the lowest α where cache efficiency
//!   reaches an acceptable floor (the paper's plot shows ~30%);
//! * the **excessive image size / I/O** limit — the highest α where
//!   merge I/O stays within a budget ("e.g. allowing at most a twofold
//!   increase in the compute and I/O time compared to directly
//!   creating the requested images").
//!
//! Between them lies the operational zone, which the paper reports as
//! roughly α ∈ [0.65, 0.95] for this configuration.

use super::ExperimentContext;
use crate::report::Table;
use crate::sweep::SweepPoint;
use serde::{Deserialize, Serialize};

/// Cache-efficiency floor for the thrashing limit (percent).
///
/// The paper's Fig. 8 draws its left limit where *its* cache-efficiency
/// curve passes ≈30%; our synthetic workload duplicates slightly less
/// per image, so the equivalent knee sits a few points lower. The
/// calibration is documented in `EXPERIMENTS.md`.
pub const CACHE_EFF_FLOOR_PCT: f64 = 25.0;
/// Maximum allowed actual/requested write ratio (the paper's example:
/// "allowing at most a twofold increase in the compute and I/O time
/// compared to directly creating the requested images").
pub const WRITE_OVERHEAD_CEILING: f64 = 2.0;

/// The derived operational zone.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct OperationalZone {
    /// Lowest α meeting the cache-efficiency floor.
    pub low: Option<f64>,
    /// Highest α before merge I/O first exceeds the overhead ceiling.
    pub high: Option<f64>,
}

/// Derive the zone from a standard sweep.
///
/// The high limit scans *upward* and stops just before the first α
/// whose write overhead exceeds the ceiling: α = 1 often shows a
/// misleading overhead dip (one converged image turns everything into
/// hits) but sits far past the excessive-image-size limit the paper
/// draws, so a reverse scan must not resurrect it.
pub fn zone_from_sweep(sweep: &[SweepPoint]) -> OperationalZone {
    let low = sweep
        .iter()
        .find(|p| p.median.cache_eff_pct >= CACHE_EFF_FLOOR_PCT)
        .map(|p| p.alpha);
    let overhead = |p: &SweepPoint| {
        if p.median.bytes_requested > 0.0 {
            p.median.bytes_written / p.median.bytes_requested
        } else {
            1.0
        }
    };
    let mut high = None;
    for p in sweep {
        if overhead(p) > WRITE_OVERHEAD_CEILING {
            break;
        }
        high = Some(p.alpha);
    }
    OperationalZone { low, high }
}

/// Run the Fig. 8 overlay plus the derived zone.
pub fn run(ctx: &ExperimentContext) -> Table {
    let repo = ctx.repo();
    let sweep = ctx.standard_sweep(&repo);
    let zone = zone_from_sweep(&sweep);

    let zone_txt = match (zone.low, zone.high) {
        (Some(lo), Some(hi)) if lo <= hi => {
            format!("operational zone: alpha in [{lo:.2}, {hi:.2}]")
        }
        _ => "operational zone: not found (limits do not overlap)".to_string(),
    };
    let mut t = Table::new(
        format!("Fig. 8 — Limits on efficiency ({zone_txt})"),
        &[
            "alpha",
            "cache_eff_pct",
            "container_eff_pct",
            "write_overhead_x",
            "in_zone",
        ],
    );
    for p in &sweep {
        let overhead = if p.median.bytes_requested > 0.0 {
            p.median.bytes_written / p.median.bytes_requested
        } else {
            1.0
        };
        let in_zone = match (zone.low, zone.high) {
            (Some(lo), Some(hi)) => p.alpha >= lo - 1e-9 && p.alpha <= hi + 1e-9,
            _ => false,
        };
        t.push_row(vec![
            format!("{:.2}", p.alpha),
            format!("{:.1}", p.median.cache_eff_pct),
            format!("{:.1}", p.median.container_eff_pct),
            format!("{overhead:.2}"),
            if in_zone { "yes".into() } else { "".into() },
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::AggregatedRun;

    fn point(alpha: f64, cache_eff: f64, written: f64, requested: f64) -> SweepPoint {
        SweepPoint {
            alpha,
            median: AggregatedRun {
                cache_eff_pct: cache_eff,
                bytes_written: written,
                bytes_requested: requested,
                ..Default::default()
            },
        }
    }

    #[test]
    fn zone_derivation() {
        let sweep = vec![
            point(0.4, 10.0, 100.0, 100.0),
            point(0.6, 20.0, 120.0, 100.0),
            point(0.7, 35.0, 150.0, 100.0), // first >= 25% cache eff
            point(0.9, 60.0, 190.0, 100.0), // last before overhead > 2x
            point(1.0, 100.0, 400.0, 100.0),
        ];
        let z = zone_from_sweep(&sweep);
        assert_eq!(z.low, Some(0.7));
        assert_eq!(z.high, Some(0.9));
    }

    #[test]
    fn alpha_one_overhead_dip_does_not_extend_the_zone() {
        // Overhead exceeds the ceiling at 0.95 and dips back under at
        // 1.0; the zone must still end at 0.9.
        let sweep = vec![
            point(0.8, 30.0, 150.0, 100.0),
            point(0.9, 33.0, 190.0, 100.0),
            point(0.95, 38.0, 260.0, 100.0),
            point(1.0, 100.0, 180.0, 100.0),
        ];
        let z = zone_from_sweep(&sweep);
        assert_eq!(z.high, Some(0.9));
        assert_eq!(z.low, Some(0.8));
    }

    #[test]
    fn zone_absent_when_limits_unreachable() {
        let sweep = vec![point(0.5, 5.0, 500.0, 100.0)];
        let z = zone_from_sweep(&sweep);
        assert_eq!(z.low, None);
        assert_eq!(z.high, None);
    }

    #[test]
    fn smoke_run_emits_all_alphas() {
        let ctx = ExperimentContext::smoke(29);
        let t = run(&ctx);
        assert_eq!(t.rows.len(), ctx.alphas().len());
        assert!(t.title.contains("operational zone"));
    }
}
