//! Fig. 2 — the LHC benchmark application table.
//!
//! Columns follow the paper: running time, preparation time, minimal
//! image, full repo — with the paper's measured values printed next to
//! ours. Running times are carried from the paper (physics doesn't
//! re-run here); preparation times come from the documented cost model
//! over the measured synthetic image; minimal-image and repo sizes are
//! measured from the per-experiment synthetic repositories.

use super::{ExperimentContext, Scale};
use crate::report::{fmt_gb, fmt_secs, fmt_tb, Table};
use landlord_repo::Repository;
use landlord_shrinkwrap::bench_apps::{self, Experiment};
use landlord_shrinkwrap::timing::CostModel;

/// Run the Fig. 2 table.
pub fn run(ctx: &ExperimentContext) -> Table {
    let cost = CostModel::default();
    let rows = match ctx.scale {
        Scale::Full => bench_apps::fig2_table(ctx.seed, &cost),
        // Smoke: shrink every experiment repo ~20× so tests stay fast;
        // paper columns are still printed for comparison.
        Scale::Smoke => scaled_fig2(ctx.seed, &cost, 20),
    };

    let mut table = Table::new(
        "Fig. 2 — LHC benchmark applications (paper vs measured)",
        &[
            "app",
            "run_s",
            "prep_s(paper)",
            "prep_s(model)",
            "min_img_GB(paper)",
            "min_img_GB(ours)",
            "img_pkgs",
            "repo_TB(paper)",
            "repo_TB(ours)",
        ],
    );
    for r in rows {
        table.push_row(vec![
            r.name,
            fmt_secs(r.running_s),
            fmt_secs(r.paper_prep_s),
            fmt_secs(r.model_prep_s),
            fmt_gb(r.paper_minimal_bytes as f64),
            fmt_gb(r.measured_minimal_bytes as f64),
            r.image_packages.to_string(),
            fmt_tb(r.paper_repo_bytes as f64),
            fmt_tb(r.measured_repo_bytes as f64),
        ]);
    }
    table
}

/// Fig. 2 with every experiment repository scaled down by `divisor`
/// (both package count and bytes), for fast smoke testing.
fn scaled_fig2(seed: u64, cost: &CostModel, divisor: u64) -> Vec<bench_apps::Fig2Row> {
    let mut repos: std::collections::HashMap<&'static str, Repository> =
        std::collections::HashMap::new();
    for e in Experiment::all() {
        let mut cfg = e.repo_config(seed);
        cfg.package_count =
            usize::try_from((cfg.package_count as u64 / divisor).max(200)).unwrap_or(usize::MAX);
        cfg.total_bytes /= divisor;
        repos.insert(e.name(), Repository::generate(&cfg));
    }
    bench_apps::apps()
        .iter()
        .map(|app| {
            let repo = &repos[app.experiment.name()];
            // Scale the target too, so derivation stays meaningful.
            let scaled_app = bench_apps::BenchApp {
                paper_minimal_bytes: app.paper_minimal_bytes / divisor,
                ..*app
            };
            let spec = bench_apps::derive_spec(&scaled_app, repo, seed);
            let measured: u64 = spec.iter().map(|p| repo.meta(p).bytes).sum();
            let files: u64 = spec
                .iter()
                .map(|p| ((repo.meta(p).bytes / (4 << 20)) + 1).min(64))
                .sum();
            bench_apps::Fig2Row {
                name: app.name.to_string(),
                running_s: app.paper_running_s,
                paper_prep_s: app.paper_prep_s,
                model_prep_s: cost.preparation_seconds(measured, files),
                paper_minimal_bytes: app.paper_minimal_bytes,
                measured_minimal_bytes: measured,
                paper_repo_bytes: app.paper_repo_bytes,
                measured_repo_bytes: repo.total_bytes(),
                image_packages: spec.len(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_has_seven_rows() {
        let t = run(&ExperimentContext::smoke(5));
        assert_eq!(t.rows.len(), 7);
        assert!(t.rows.iter().any(|r| r[0] == "atlas-sim"));
        // Paper constants survive into the table.
        let atlas_sim = t.rows.iter().find(|r| r[0] == "atlas-sim").unwrap();
        assert_eq!(atlas_sim[1], "5340.0");
        assert_eq!(atlas_sim[2], "115.0");
    }
}
