//! Ablation studies on LANDLORD's design choices (DESIGN.md §5).
//!
//! The paper fixes LRU eviction, nearest-first merge ordering and exact
//! Jaccard scanning; these experiments vary each choice independently
//! at a fixed α to show how much each matters.

use super::ExperimentContext;
use crate::report::{fmt_count, fmt_tb, Table};
use crate::simulator;
use crate::sweep::AggregatedRun;
use landlord_core::cache::CacheConfig;
use landlord_core::policy::{CandidateStrategy, DistanceMetric, EvictionPolicy, MergeOrder};

/// The α the ablations hold fixed (the paper's recommended moderate
/// starting point, §VI "Tuning LANDLORD").
pub const ABLATION_ALPHA: f64 = 0.8;

fn run_variant(
    ctx: &ExperimentContext,
    repo: &landlord_repo::Repository,
    mutate: impl Fn(&mut CacheConfig),
) -> AggregatedRun {
    let workload = ctx.standard_workload();
    let mut results = Vec::new();
    for run in 0..ctx.runs().min(8) {
        let w = crate::workload::WorkloadConfig {
            seed: workload.seed + run as u64,
            ..workload
        };
        let mut cfg = ctx.standard_cache(repo, ABLATION_ALPHA);
        mutate(&mut cfg);
        results.push(simulator::simulate(repo, &w, cfg, 0));
    }
    AggregatedRun::from_runs(&results)
}

fn push_variant(t: &mut Table, name: &str, agg: &AggregatedRun) {
    t.push_row(vec![
        name.to_string(),
        fmt_count(agg.hits),
        fmt_count(agg.merges),
        fmt_count(agg.deletes),
        format!("{:.1}", agg.cache_eff_pct),
        format!("{:.1}", agg.container_eff_pct),
        fmt_tb(agg.bytes_written),
    ]);
}

const COLUMNS: [&str; 7] = [
    "variant",
    "hits",
    "merges",
    "deletes",
    "cache_eff",
    "container_eff",
    "written_TB",
];

/// Eviction-policy ablation.
pub fn eviction(ctx: &ExperimentContext) -> Table {
    let repo = ctx.repo();
    let mut t = Table::new(
        format!("Ablation — eviction policy at alpha={ABLATION_ALPHA}"),
        &COLUMNS,
    );
    for policy in EvictionPolicy::ALL {
        let agg = run_variant(ctx, &repo, |c| c.eviction = policy);
        push_variant(&mut t, policy.token(), &agg);
    }
    t
}

/// Merge-candidate-ordering ablation (Algorithm 1's "selection can be
/// sorted by dj()").
pub fn merge_order(ctx: &ExperimentContext) -> Table {
    let repo = ctx.repo();
    let mut t = Table::new(
        format!("Ablation — merge candidate order at alpha={ABLATION_ALPHA}"),
        &COLUMNS,
    );
    for order in [
        MergeOrder::NearestFirst,
        MergeOrder::ArrivalOrder,
        MergeOrder::LargestFirst,
        MergeOrder::SmallestFirst,
    ] {
        let agg = run_variant(ctx, &repo, |c| c.merge_order = order);
        push_variant(&mut t, order.token(), &agg);
    }
    t
}

/// Candidate-enumeration ablation: exact scan vs MinHash+LSH
/// pre-filtering (§V's constant-time approximation).
pub fn candidates(ctx: &ExperimentContext) -> Table {
    let repo = ctx.repo();
    let mut t = Table::new(
        format!("Ablation — candidate strategy at alpha={ABLATION_ALPHA}"),
        &COLUMNS,
    );
    let exact = run_variant(ctx, &repo, |c| c.candidates = CandidateStrategy::ExactScan);
    push_variant(&mut t, "exact-scan", &exact);
    for (bands, rows) in [(32usize, 4usize), (16, 8)] {
        let agg = run_variant(ctx, &repo, |c| {
            c.candidates = CandidateStrategy::MinHashLsh { bands, rows }
        });
        push_variant(&mut t, &format!("lsh-{bands}x{rows}"), &agg);
    }
    t
}

/// Bloat-splitting ablation: the paper's configuration (no splitting,
/// bloat ages out via distance + LRU) against auto-split at several
/// merge-count thresholds. Splitting trades extra write I/O for
/// improved container efficiency (jobs run closer to what they asked
/// for).
pub fn split(ctx: &ExperimentContext) -> Table {
    let repo = ctx.repo();
    let mut t = Table::new(
        format!("Ablation — bloat splitting at alpha={ABLATION_ALPHA}"),
        &COLUMNS,
    );
    let agg = run_variant(ctx, &repo, |c| c.split_threshold = None);
    push_variant(&mut t, "no-split (paper)", &agg);
    for threshold in [4u64, 8, 16] {
        let agg = run_variant(ctx, &repo, |c| c.split_threshold = Some(threshold));
        push_variant(&mut t, &format!("split@{threshold}"), &agg);
    }
    t
}

/// Distance-metric ablation: the paper's package-count Jaccard vs the
/// byte-weighted variant. Byte weighting merges pairs whose *storage*
/// overlaps even when their package lists diverge, so it should trade
/// container efficiency for cache efficiency differently at the same α.
pub fn metric(ctx: &ExperimentContext) -> Table {
    let repo = ctx.repo();
    let mut t = Table::new(
        format!("Ablation — distance metric at alpha={ABLATION_ALPHA}"),
        &COLUMNS,
    );
    for m in [DistanceMetric::PackageCount, DistanceMetric::Bytes] {
        let agg = run_variant(ctx, &repo, |c| c.metric = m);
        push_variant(&mut t, m.token(), &agg);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eviction_table_covers_all_policies() {
        let t = eviction(&ExperimentContext::smoke(31));
        assert_eq!(t.rows.len(), EvictionPolicy::ALL.len());
        let names: Vec<&str> = t.rows.iter().map(|r| r[0].as_str()).collect();
        assert!(names.contains(&"lru"));
        assert!(names.contains(&"cost-density"));
        assert!(names.contains(&"gdsf"));
    }

    #[test]
    fn lsh_never_beats_exact_on_merges() {
        // LSH is a pre-filter with false negatives only, so it can only
        // find at most as many merge opportunities as the exact scan.
        let t = candidates(&ExperimentContext::smoke(37));
        let exact_merges: f64 = t.rows[0][2].parse().unwrap();
        for row in &t.rows[1..] {
            let merges: f64 = row[2].parse().unwrap();
            assert!(
                merges <= exact_merges + 1e-9,
                "LSH {merges} merges > exact {exact_merges}"
            );
        }
    }

    #[test]
    fn metric_table_shape() {
        let t = metric(&ExperimentContext::smoke(53));
        assert_eq!(t.rows.len(), 2);
        assert_eq!(t.rows[0][0], "package-count");
        assert_eq!(t.rows[1][0], "bytes");
    }

    #[test]
    fn merge_order_table_shape() {
        let t = merge_order(&ExperimentContext::smoke(41));
        assert_eq!(t.rows.len(), 4);
        assert_eq!(t.columns.len(), 7);
    }
}
