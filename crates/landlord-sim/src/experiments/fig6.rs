//! Fig. 6 — sensitivity of the efficiency curves to cache size and
//! unique-job count.
//!
//! Four panels from two sweep families:
//!
//! * **6a/6b** container / cache efficiency vs α at cache sizes of
//!   1×, 2×, 5×, 10× the repository size;
//! * **6c/6d** the same metrics at 100, 500, 1000 unique jobs.
//!
//! Expected shapes (§VI "Sensitivity Analysis"): larger caches lower
//! *both* efficiencies; 500 and 1000 jobs are nearly indistinguishable
//! (steady state) while 100 jobs is not.

use super::{ExperimentContext, Scale};
use crate::report::Table;
use crate::sweep;
use landlord_core::cache::CacheConfig;

/// Which efficiency a panel reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Metric {
    /// Container efficiency (Figs. 6a, 6c).
    Container,
    /// Cache efficiency (Figs. 6b, 6d).
    Cache,
}

impl Metric {
    fn label(self) -> &'static str {
        match self {
            Metric::Container => "container_eff_pct",
            Metric::Cache => "cache_eff_pct",
        }
    }

    fn pick(self, agg: &crate::sweep::AggregatedRun) -> f64 {
        match self {
            Metric::Container => agg.container_eff_pct,
            Metric::Cache => agg.cache_eff_pct,
        }
    }
}

/// Cache-size multipliers the paper sweeps.
pub const CACHE_MULTIPLIERS: [f64; 4] = [1.0, 2.0, 5.0, 10.0];

/// Fig. 6a/6b: efficiency vs α for each cache size.
pub fn run_cache_size(ctx: &ExperimentContext, metric: Metric) -> Table {
    let repo = ctx.repo();
    let workload = ctx.standard_workload();
    let alphas = ctx.alphas();
    let runs = sensitivity_runs(ctx);

    let mut columns = vec!["alpha".to_string()];
    for m in CACHE_MULTIPLIERS {
        columns.push(format!("{m:.0}x_repo"));
    }
    let title = match metric {
        Metric::Container => "Fig. 6a — Container efficiency vs cache size",
        Metric::Cache => "Fig. 6b — Cache efficiency vs cache size",
    };
    let mut series = Vec::new();
    for m in CACHE_MULTIPLIERS {
        let cache = CacheConfig {
            limit_bytes: (repo.total_bytes() as f64 * m) as u64,
            ..CacheConfig::default()
        };
        series.push(sweep::sweep_alpha(
            &repo,
            &workload,
            &cache,
            &alphas,
            runs,
            ctx.threads,
        ));
    }
    assemble(title, &columns, &alphas, &series, metric)
}

/// Unique-job counts the paper sweeps.
pub fn job_counts(ctx: &ExperimentContext) -> Vec<usize> {
    match ctx.scale {
        Scale::Full => vec![100, 500, 1000],
        Scale::Smoke => vec![10, 40, 80],
    }
}

/// Fig. 6c/6d: efficiency vs α for each unique-job count.
pub fn run_job_count(ctx: &ExperimentContext, metric: Metric) -> Table {
    let repo = ctx.repo();
    let alphas = ctx.alphas();
    let runs = sensitivity_runs(ctx);
    let counts = job_counts(ctx);

    let mut columns = vec!["alpha".to_string()];
    for c in &counts {
        columns.push(format!("{c}_jobs"));
    }
    let title = match metric {
        Metric::Container => "Fig. 6c — Container efficiency vs unique job count",
        Metric::Cache => "Fig. 6d — Cache efficiency vs unique job count",
    };
    let cache = ctx.standard_cache(&repo, 0.0);
    let mut series = Vec::new();
    for &c in &counts {
        let workload = crate::workload::WorkloadConfig {
            unique_jobs: c,
            ..ctx.standard_workload()
        };
        series.push(sweep::sweep_alpha(
            &repo,
            &workload,
            &cache,
            &alphas,
            runs,
            ctx.threads,
        ));
    }
    assemble(title, &columns, &alphas, &series, metric)
}

/// Sensitivity sweeps multiply the simulation count 4×; use half the
/// standard runs at full scale (documented in EXPERIMENTS.md).
fn sensitivity_runs(ctx: &ExperimentContext) -> usize {
    match ctx.scale {
        Scale::Full => (ctx.runs() / 2).max(1),
        Scale::Smoke => ctx.runs(),
    }
}

fn assemble(
    title: &str,
    columns: &[String],
    alphas: &[f64],
    series: &[Vec<sweep::SweepPoint>],
    metric: Metric,
) -> Table {
    let col_refs: Vec<&str> = columns.iter().map(|s| s.as_str()).collect();
    let mut t = Table::new(format!("{title} ({})", metric.label()), &col_refs);
    for (i, &alpha) in alphas.iter().enumerate() {
        let mut row = vec![format!("{alpha:.2}")];
        for s in series {
            row.push(format!("{:.1}", metric.pick(&s[i].median)));
        }
        t.push_row(row);
    }
    t
}

// Re-export for lib users that want raw sweeps.
pub use sweep::SweepPoint;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_size_panel_shape() {
        let ctx = ExperimentContext::smoke(17);
        let t = run_cache_size(&ctx, Metric::Cache);
        assert_eq!(t.columns.len(), 5);
        assert_eq!(t.rows.len(), ctx.alphas().len());
        // Efficiencies are valid percentages.
        for row in &t.rows {
            for cell in &row[1..] {
                let v: f64 = cell.parse().unwrap();
                assert!((0.0..=100.0).contains(&v), "bad pct {v}");
            }
        }
    }

    #[test]
    fn job_count_panel_shape() {
        let ctx = ExperimentContext::smoke(19);
        let t = run_job_count(&ctx, Metric::Container);
        assert_eq!(t.columns.len(), 1 + job_counts(&ctx).len());
        assert_eq!(t.rows.len(), ctx.alphas().len());
    }
}
