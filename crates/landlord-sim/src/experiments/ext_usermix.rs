//! Extension experiment — multi-user workload structure.
//!
//! The paper's simulations draw selections uniformly over the whole
//! repository; real sites see per-user streams where one user's jobs
//! are near-clones of each other (§I: jobs "generated automatically by
//! submission systems on behalf of multiple users"). This experiment
//! holds the request count constant and varies the number of users the
//! stream is partitioned across: fewer users ⇒ more intra-stream
//! similarity ⇒ LANDLORD merges more effectively at moderate α.

use super::{ExperimentContext, Scale};
use crate::report::Table;
use crate::simulator;
use crate::sweep::AggregatedRun;
use crate::workload::{self, UserMixConfig};
use landlord_repo::Repository;

/// α used for the user-mix comparison.
pub const USERMIX_ALPHA: f64 = 0.8;

fn run_mix(ctx: &ExperimentContext, repo: &Repository, users: usize, runs: usize) -> AggregatedRun {
    let base = ctx.standard_workload();
    let mut results = Vec::with_capacity(runs);
    for run in 0..runs {
        let cfg = UserMixConfig {
            users,
            pool_size: match ctx.scale {
                Scale::Full => 60,
                Scale::Smoke => 15,
            },
            unique_jobs: base.unique_jobs,
            repeats: base.repeats,
            max_initial_selection: base.max_initial_selection.min(20),
            seed: base.seed + run as u64,
        };
        let stream = workload::generate_user_mix_stream(repo, &cfg);
        let sizes: std::sync::Arc<dyn landlord_core::sizes::SizeModel> =
            std::sync::Arc::new(repo.size_table());
        results.push(simulator::simulate_stream(
            &stream,
            ctx.standard_cache(repo, USERMIX_ALPHA),
            sizes,
            None,
            0,
        ));
    }
    AggregatedRun::from_runs(&results)
}

/// Run the user-mix table.
pub fn run(ctx: &ExperimentContext) -> Table {
    let repo = ctx.repo();
    let runs = ctx.runs().min(8);
    let user_counts: &[usize] = match ctx.scale {
        Scale::Full => &[5, 20, 100],
        Scale::Smoke => &[2, 8],
    };

    let mut t = Table::new(
        format!("Extension — multi-user structure at alpha={USERMIX_ALPHA}"),
        &[
            "users",
            "hits",
            "merges",
            "inserts",
            "cache_eff",
            "container_eff",
        ],
    );
    for &users in user_counts {
        let agg = run_mix(ctx, &repo, users, runs);
        t.push_row(vec![
            users.to_string(),
            format!("{:.0}", agg.hits),
            format!("{:.0}", agg.merges),
            format!("{:.0}", agg.inserts),
            format!("{:.1}", agg.cache_eff_pct),
            format!("{:.1}", agg.container_eff_pct),
        ]);
    }
    // Uniform baseline for reference (the paper's scheme).
    let base = ctx.standard_workload();
    let mut uniform = Vec::new();
    for run in 0..runs {
        let w = crate::workload::WorkloadConfig {
            seed: base.seed + run as u64,
            ..base
        };
        uniform.push(simulator::simulate(
            &repo,
            &w,
            ctx.standard_cache(&repo, USERMIX_ALPHA),
            0,
        ));
    }
    let agg = AggregatedRun::from_runs(&uniform);
    t.push_row(vec![
        "uniform".into(),
        format!("{:.0}", agg.hits),
        format!("{:.0}", agg.merges),
        format!("{:.0}", agg.inserts),
        format!("{:.1}", agg.cache_eff_pct),
        format!("{:.1}", agg.container_eff_pct),
    ]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fewer_users_hit_more() {
        let ctx = ExperimentContext::smoke(47);
        let t = run(&ctx);
        assert_eq!(t.rows.len(), 3); // 2 user counts + uniform
        let hits_few: f64 = t.rows[0][1].parse().unwrap();
        let hits_many: f64 = t.rows[1][1].parse().unwrap();
        // Fewer users ⇒ more overlap ⇒ at least as many hits.
        assert!(
            hits_few + 1e-9 >= hits_many,
            "2 users ({hits_few}) should hit at least as often as 8 ({hits_many})"
        );
    }
}
