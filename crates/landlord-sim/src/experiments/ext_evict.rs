//! Extension — the eviction-policy frontier across the paper's
//! workload regimes.
//!
//! The paper fixes LRU eviction throughout; `ablation-evict` already
//! varies the policy at one fixed α. This extension sweeps **all seven
//! eviction policies over the full α grid** in two cache regimes —
//! the fig. 4 standard cache (2× repo at full scale) and a tight
//! quarter-repo cache in the spirit of fig. 6's cache-size sensitivity
//! panel, where victim selection dominates the outcome — and reports
//! each policy at its best α plus the per-regime winner. The winners
//! land in EXPERIMENTS.md.

use super::{ExperimentContext, Scale};
use crate::report::{fmt_tb, Table};
use crate::sweep::{self, SweepPoint};
use landlord_core::cache::CacheConfig;
use landlord_core::policy::EvictionPolicy;

/// Seed for the stateful evictors' RNG (sampled LHD's victim draws);
/// fixed so the tables are reproducible run to run.
const EVICTION_SEED: u64 = 42;

/// This sweep multiplies the simulation count 14× (7 policies × 2
/// regimes); use half the standard runs at full scale, like the fig. 6
/// sensitivity panels (documented in EXPERIMENTS.md).
fn frontier_runs(ctx: &ExperimentContext) -> usize {
    match ctx.scale {
        Scale::Full => (ctx.runs() / 2).max(1),
        Scale::Smoke => ctx.runs(),
    }
}

/// Ranking key: container efficiency first (the paper's headline
/// metric), then *least* I/O written — container efficiency saturates
/// near 100% over much of the α range, so write amplification is what
/// actually separates policies there.
fn score(p: &SweepPoint) -> (f64, f64) {
    (p.median.container_eff_pct, -p.median.bytes_written)
}

/// The α point where a policy performed best under [`score`].
fn best_point(sweep: &[SweepPoint]) -> SweepPoint {
    *sweep
        .iter()
        .max_by(|a, b| {
            score(a)
                .partial_cmp(&score(b))
                .unwrap_or(std::cmp::Ordering::Equal)
        })
        .unwrap_or(&SweepPoint {
            alpha: 0.0,
            median: Default::default(),
        })
}

/// The eviction-frontier table: seven policies × two cache regimes,
/// each at its best α, winners marked.
pub fn run(ctx: &ExperimentContext) -> Table {
    let repo = ctx.repo();
    let workload = ctx.standard_workload();
    let alphas = ctx.alphas();
    let runs = frontier_runs(ctx);

    let mut t = Table::new(
        "Extension — eviction-policy frontier (each policy at its best alpha)",
        &[
            "regime",
            "eviction",
            "best_alpha",
            "container_eff",
            "cache_eff",
            "written_TB",
            "winner",
        ],
    );

    let regimes: [(&str, u64); 2] = [
        ("fig4-standard-cache", ctx.standard_cache_bytes(&repo)),
        ("fig6-tight-cache", repo.total_bytes() / 4),
    ];
    for (regime, limit_bytes) in regimes {
        let per_policy: Vec<(EvictionPolicy, SweepPoint)> = EvictionPolicy::ALL
            .into_iter()
            .map(|eviction| {
                let cache = CacheConfig {
                    limit_bytes,
                    eviction,
                    eviction_seed: EVICTION_SEED,
                    ..CacheConfig::default()
                };
                let sweep =
                    sweep::sweep_alpha(&repo, &workload, &cache, &alphas, runs, ctx.threads);
                (eviction, best_point(&sweep))
            })
            .collect();
        let winner = per_policy
            .iter()
            .map(|(_, p)| score(p))
            .max_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal))
            .unwrap_or((f64::MIN, f64::MIN));
        for (eviction, p) in per_policy {
            t.push_row(vec![
                regime.to_string(),
                eviction.token().to_string(),
                format!("{:.2}", p.alpha),
                format!("{:.1}", p.median.container_eff_pct),
                format!("{:.1}", p.median.cache_eff_pct),
                fmt_tb(p.median.bytes_written),
                if score(&p) >= winner {
                    "*".to_string()
                } else {
                    String::new()
                },
            ]);
        }
    }
    t
}
