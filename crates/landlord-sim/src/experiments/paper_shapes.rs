//! Machine-checked paper-shape assertions at full scale.
//!
//! `EXPERIMENTS.md` claims that every figure reproduces the paper's
//! *shape*; this module turns each claim into an assertion so the
//! reproduction can be re-validated in one command:
//!
//! ```console
//! cargo test -p landlord-sim --release -- --ignored paper_shape
//! ```
//!
//! The tests are `#[ignore]`d because they run the full paper-scale
//! sweeps (minutes of CPU); the regular test suite exercises the same
//! code paths at smoke scale.

#[cfg(test)]
mod tests {
    use crate::experiments::{fig8, ExperimentContext};
    use crate::sweep::SweepPoint;
    use crate::workload::{WorkloadConfig, WorkloadScheme};

    fn full() -> ExperimentContext {
        ExperimentContext::full(1, 1)
    }

    fn at(sweep: &[SweepPoint], alpha: f64) -> &SweepPoint {
        sweep
            .iter()
            .find(|p| (p.alpha - alpha).abs() < 1e-9)
            .unwrap_or_else(|| panic!("no sweep point at alpha {alpha}"))
    }

    /// Figs. 4a–c and 8 all read off the standard sweep; check every
    /// claimed shape in one pass.
    #[test]
    #[ignore = "paper-scale (minutes); run with --ignored --release"]
    fn paper_shape_fig4_and_fig8() {
        let ctx = full();
        let repo = ctx.repo();
        let sweep = ctx.standard_sweep(&repo);

        // 4a: plain-LRU regime at low α — no merges, inserts/deletes in
        // lockstep (deletes lag only by what still fits in cache).
        let low = at(&sweep, 0.40);
        assert_eq!(low.median.merges, 0.0, "no merges in the LRU regime");
        assert!(low.median.inserts > low.median.deletes);
        assert!(low.median.inserts - low.median.deletes < 100.0, "lockstep");

        // 4a: merges dominate the operational range; hits spike at α=1.
        let mid = at(&sweep, 0.80);
        assert!(mid.median.merges > mid.median.inserts * 3.0);
        let one = at(&sweep, 1.00);
        let near_one = at(&sweep, 0.95);
        assert!(
            one.median.hits > near_one.median.hits * 2.0,
            "hit spike at alpha=1"
        );
        assert!(
            one.median.merges < near_one.median.merges / 2.0,
            "merge collapse at alpha=1"
        );

        // 4b: total pinned near the limit at low α; unique rises with α;
        // the two meet at α=1.
        let limit = ctx.standard_cache_bytes(&repo) as f64;
        assert!(
            low.median.total_bytes > limit * 0.9,
            "cache pinned at the limit"
        );
        assert!(mid.median.unique_bytes > low.median.unique_bytes * 1.2);
        assert!(
            (one.median.unique_bytes - one.median.total_bytes).abs()
                < one.median.total_bytes * 0.01,
            "unique == total at alpha=1"
        );

        // 4c: requested writes constant; actual ≤ requested at low α;
        // overhead grows through the merge regime.
        let req_low = low.median.bytes_requested;
        for p in &sweep {
            assert!(
                (p.median.bytes_requested - req_low).abs() < req_low * 0.01,
                "requested writes must be constant in alpha"
            );
        }
        assert!(
            low.median.bytes_written <= req_low,
            "reuse beats rebuild at low alpha"
        );
        assert!(
            at(&sweep, 0.95).median.bytes_written > mid.median.bytes_written,
            "merge I/O grows with alpha"
        );

        // Fig. 8: a non-empty operational zone at moderate α.
        let zone = fig8::zone_from_sweep(&sweep);
        let (lo, hi) = (zone.low.expect("low limit"), zone.high.expect("high limit"));
        assert!(lo <= hi, "zone must be non-empty: [{lo}, {hi}]");
        assert!((0.6..=0.95).contains(&lo), "zone start {lo} not moderate");
        assert!((0.7..=1.0).contains(&hi), "zone end {hi} not moderate");
    }

    /// Fig. 7: the uniform-random control barely merges below α = 0.95.
    #[test]
    #[ignore = "paper-scale (minutes); run with --ignored --release"]
    fn paper_shape_fig7_random_control() {
        let ctx = full();
        let repo = ctx.repo();
        let cache = ctx.standard_cache(&repo, 0.0);
        let workload = WorkloadConfig {
            scheme: WorkloadScheme::UniformRandom,
            ..ctx.standard_workload()
        };
        // A handful of runs suffices for the zero-merge claim.
        let sweep =
            crate::sweep::sweep_alpha(&repo, &workload, &cache, &[0.6, 0.8, 0.9], 5, ctx.threads);
        for p in &sweep {
            assert_eq!(
                p.median.merges, 0.0,
                "random workload must not merge at alpha {}",
                p.alpha
            );
        }
    }

    /// Fig. 6a/b: larger caches lower both efficiencies at moderate α.
    #[test]
    #[ignore = "paper-scale (minutes); run with --ignored --release"]
    fn paper_shape_fig6_cache_size_ordering() {
        let ctx = full();
        let repo = ctx.repo();
        let workload = ctx.standard_workload();
        let alpha = [0.8];
        let mut container = Vec::new();
        let mut cache_eff = Vec::new();
        for mult in [1.0f64, 2.0, 5.0, 10.0] {
            let cache = landlord_core::cache::CacheConfig {
                limit_bytes: (repo.total_bytes() as f64 * mult) as u64,
                ..Default::default()
            };
            let sweep = crate::sweep::sweep_alpha(&repo, &workload, &cache, &alpha, 5, ctx.threads);
            container.push(sweep[0].median.container_eff_pct);
            cache_eff.push(sweep[0].median.cache_eff_pct);
        }
        assert!(
            container.windows(2).all(|w| w[0] >= w[1] - 1.0),
            "container efficiency must fall with cache size: {container:?}"
        );
        assert!(
            cache_eff.windows(2).all(|w| w[0] >= w[1] - 1.0),
            "cache efficiency must fall with cache size: {cache_eff:?}"
        );
    }
}
