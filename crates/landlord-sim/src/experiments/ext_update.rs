//! Extension experiment — update costs on an evolving repository.
//!
//! The paper's sharpest criticism of full-repo images is what happens
//! when software *changes*: "it also becomes prohibitively expensive to
//! update and transfer such large container images" (§III, the 24-hour
//! NERSC rebuild), while per-request approaches pay "high compute and
//! bandwidth overhead … for every image update, which in the worst case
//! could be every job" (§VI). This experiment quantifies the claim: the
//! repository gains new package versions each epoch, job streams shift
//! toward the new versions, and three strategies pay their respective
//! update bills.

use super::{ExperimentContext, Scale};
use crate::report::{fmt_tb, Table};
use crate::workload::{self, WorkloadConfig};
use landlord_baselines::PerJobCache;
use landlord_core::cache::ImageCache;
use landlord_core::policy::CachePolicy;
use landlord_repo::evolution::{self, EvolutionConfig};
use std::sync::Arc;

/// α for the LANDLORD strategy.
pub const UPDATE_ALPHA: f64 = 0.8;

/// Run the update-cost comparison.
pub fn run(ctx: &ExperimentContext) -> Table {
    let base = ctx.repo();
    let (epochs, releases, jobs_per_epoch) = match ctx.scale {
        Scale::Full => (4usize, 300usize, 125usize),
        Scale::Smoke => (3, 25, 12),
    };
    let snapshots = evolution::evolve(
        &base,
        &EvolutionConfig {
            epochs,
            releases_per_epoch: releases,
            seed: ctx.seed,
        },
    );
    let Some(last) = snapshots.last() else {
        // epochs >= 3 always, but degrade to an empty table rather
        // than panic if the evolution config ever yields no snapshots.
        return Table::new("Extension — update cost (no epochs)".to_string(), &[]);
    };
    // The final snapshot's size table covers every id that will ever
    // appear (ids are append-only), so one model serves all epochs.
    let sizes = Arc::new(last.size_table());
    let limit = ctx.standard_cache_bytes(&base);

    // Per-epoch streams drawn against the *current* snapshot: later
    // epochs naturally request the new versions.
    let streams: Vec<Vec<landlord_core::spec::Spec>> = snapshots
        .iter()
        .enumerate()
        .map(|(k, snap)| {
            let w = WorkloadConfig {
                unique_jobs: jobs_per_epoch,
                repeats: match ctx.scale {
                    Scale::Full => 5,
                    Scale::Smoke => 2,
                },
                max_initial_selection: ctx.standard_workload().max_initial_selection,
                scheme: crate::workload::WorkloadScheme::DependencyClosure,
                seed: ctx.seed + k as u64 * 101,
            };
            workload::generate_stream(snap, &w)
        })
        .collect();
    let total_requests: usize = streams.iter().map(|s| s.len()).sum();
    let requested_bytes: u64 = streams
        .iter()
        .flatten()
        .map(|s| {
            let sizes = &sizes;
            s.iter()
                .map(|p| landlord_core::sizes::SizeModel::package_size(sizes.as_ref(), p))
                .sum::<u64>()
        })
        .sum();

    let mut t = Table::new(
        format!(
            "Extension — update cost over {epochs} epochs ({releases} releases each, \
             {total_requests} requests)"
        ),
        &[
            "strategy",
            "written_TB",
            "requested_TB",
            "overhead_x",
            "hits",
            "container_eff",
            "node_image_GB",
        ],
    );

    // --- LANDLORD: one cache across all epochs. ------------------------
    let cfg = landlord_core::cache::CacheConfig {
        alpha: UPDATE_ALPHA,
        limit_bytes: limit,
        ..Default::default()
    };
    let mut landlord = ImageCache::new(cfg, Arc::clone(&sizes) as _);
    for stream in &streams {
        for spec in stream {
            landlord.request(spec);
        }
    }
    let s = landlord.stats();
    // The paper's §III constraint: "individual worker nodes may have
    // limited local disk space and be unable to store large container
    // images" — report the largest image a node must hold.
    let landlord_node_image = landlord.images().map(|i| i.bytes).max().unwrap_or(0);
    t.push_row(vec![
        format!("landlord a={UPDATE_ALPHA}"),
        fmt_tb(s.bytes_written as f64),
        fmt_tb(requested_bytes as f64),
        format!(
            "{:.2}",
            s.bytes_written as f64 / requested_bytes.max(1) as f64
        ),
        s.hits.to_string(),
        format!("{:.1}", landlord.container_efficiency_pct()),
        format!("{:.0}", landlord_node_image as f64 / 1e9),
    ]);

    // --- Per-job LRU (no merging). -------------------------------------
    let mut per_job = PerJobCache::new(limit, Arc::clone(&sizes) as _);
    for stream in &streams {
        for spec in stream {
            per_job.request(spec);
        }
    }
    let p = per_job.stats();
    let per_job_node_image: u64 = streams
        .iter()
        .flatten()
        .map(|spec| {
            spec.iter()
                .map(|pkg| landlord_core::sizes::SizeModel::package_size(sizes.as_ref(), pkg))
                .sum()
        })
        .max()
        .unwrap_or(0);
    t.push_row(vec![
        "per-job LRU".into(),
        fmt_tb(p.bytes_written as f64),
        fmt_tb(requested_bytes as f64),
        format!(
            "{:.2}",
            p.bytes_written as f64 / requested_bytes.max(1) as f64
        ),
        p.hits.to_string(),
        format!("{:.1}", per_job.container_efficiency_pct()),
        format!("{:.0}", per_job_node_image as f64 / 1e9),
    ]);

    // --- Full-repo image, rebuilt every epoch. --------------------------
    // Every request hits; the bill is one full image build + transfer
    // per epoch (the paper's NERSC pattern), and container efficiency
    // is requested / whole-repo.
    let rebuild_bytes: u64 = snapshots.iter().map(|s| s.total_bytes()).sum();
    let mut full_eff = landlord_core::metrics::ContainerEfficiency::new();
    for (stream, snap) in streams.iter().zip(&snapshots) {
        for spec in stream {
            let req: u64 = spec
                .iter()
                .map(|p| landlord_core::sizes::SizeModel::package_size(sizes.as_ref(), p))
                .sum();
            full_eff.record(req, snap.total_bytes().max(req));
        }
    }
    t.push_row(vec![
        "full-repo rebuild/epoch".into(),
        fmt_tb(rebuild_bytes as f64),
        fmt_tb(requested_bytes as f64),
        format!(
            "{:.2}",
            rebuild_bytes as f64 / requested_bytes.max(1) as f64
        ),
        total_requests.to_string(),
        format!("{:.1}", full_eff.mean_pct()),
        format!("{:.0}", last.total_bytes() as f64 / 1e9),
    ]);
    // The paper's NERSC anecdote is the *scale-out*: the rebuilt image
    // must reach every worker ("the process took around 24 hours").
    let fleet = 64u64;
    t.push_row(vec![
        format!("full-repo scale-out x{fleet} nodes"),
        fmt_tb((rebuild_bytes * fleet) as f64),
        fmt_tb(requested_bytes as f64),
        format!(
            "{:.2}",
            (rebuild_bytes * fleet) as f64 / requested_bytes.max(1) as f64
        ),
        total_requests.to_string(),
        format!("{:.1}", full_eff.mean_pct()),
        format!("{:.0}", last.total_bytes() as f64 / 1e9),
    ]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn three_strategies_reported() {
        let ctx = ExperimentContext::smoke(59);
        let t = run(&ctx);
        assert_eq!(t.rows.len(), 4);
        // Requested bytes identical across strategies (same streams).
        let req: Vec<&str> = t.rows.iter().map(|r| r[2].as_str()).collect();
        assert!(req.windows(2).all(|w| w[0] == w[1]), "{req:?}");
        // Node footprint ordering: full-repo worst by far.
        let node_gb: Vec<f64> = t.rows.iter().map(|r| r[6].parse().unwrap()).collect();
        assert!(
            node_gb[2] >= node_gb[0],
            "full-repo node image must be largest"
        );
        assert!(node_gb[2] >= node_gb[1]);
        // Full-repo always "hits".
        let full = &t.rows[2];
        let landlord_hits: u64 = t.rows[0][4].parse().unwrap();
        let full_hits: u64 = full[4].parse().unwrap();
        assert!(full_hits >= landlord_hits);
        // And its container efficiency is the worst of the three.
        let effs: Vec<f64> = t.rows.iter().map(|r| r[5].parse().unwrap()).collect();
        assert!(effs[2] <= effs[0] + 1e-9);
        assert!(effs[2] <= effs[1] + 1e-9);
    }
}
