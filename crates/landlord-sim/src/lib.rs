//! # landlord-sim
//!
//! The trace-driven simulator behind every quantitative result in the
//! paper (§VI), plus the experiment harness that regenerates each
//! figure.
//!
//! Pipeline:
//!
//! * [`workload`] — turn a repository into a stream of job
//!   specifications: 500 unique jobs, each repeated 5 times, shuffled;
//!   each job is a uniform random selection of up to 100 packages
//!   expanded by its dependency closure (or, for the Fig. 7 control,
//!   re-drawn uniformly with no closure).
//! * [`simulator`] — run a stream through a
//!   [`landlord_core::cache::ImageCache`], sampling counters along the
//!   way (Fig. 5) and summarizing at the end.
//! * [`sweep`] — repeat simulations across α values / cache sizes / job
//!   counts, `runs` times each with distinct workload seeds, in
//!   parallel via crossbeam, reporting per-metric medians (the paper:
//!   "we repeated the simulation 20 times and reported the median
//!   behavior").
//! * [`trace`] — record/replay streams as JSON for reproducibility.
//! * [`report`] — fixed-width tables and CSV for every experiment.
//! * [`cluster`] — an extension past the paper's single shared cache: a
//!   head node plus a fleet of worker nodes with local scratch,
//!   measuring image transfer volume under different dispatch policies.
//! * [`faults`] — an end-to-end failure model: seeded per-request
//!   fault events (worker crash, build failure, transient store error)
//!   with bounded retry/backoff and graceful merge→insert degradation,
//!   reporting goodput and retry overhead.
//! * [`sharded`] — multi-threaded replay against the sharded cache
//!   frontend: shard-affine workers, per-shard stream order, folded
//!   counters identical to a single-threaded partitioned replay.
//! * [`serve`] — open-loop server mode: seeded Poisson/uniform arrivals
//!   over Zipf-skewed specs, single-flight coalescing onto in-flight
//!   builds, bounded-queue backpressure, per-request latency — all in
//!   deterministic virtual time.
//! * [`experiments`] — one module per paper table/figure; the CLI and
//!   benches call these.

//! ```
//! use landlord_core::cache::CacheConfig;
//! use landlord_repo::{RepoConfig, Repository};
//! use landlord_sim::workload::{WorkloadConfig, WorkloadScheme};
//! use landlord_sim::simulator;
//!
//! let repo = Repository::generate(&RepoConfig::small_for_tests(3));
//! let workload = WorkloadConfig {
//!     unique_jobs: 20,
//!     repeats: 3,
//!     max_initial_selection: 6,
//!     scheme: WorkloadScheme::DependencyClosure,
//!     seed: 1,
//! };
//! let cache = CacheConfig {
//!     alpha: 0.8,
//!     limit_bytes: repo.total_bytes() / 2,
//!     ..CacheConfig::default()
//! };
//! let result = simulator::simulate(&repo, &workload, cache, 0);
//! assert_eq!(result.final_stats.requests, 60);
//! ```

pub mod cluster;
pub mod experiments;
pub mod faults;
pub mod report;
pub mod serve;
pub mod sharded;
pub mod simulator;
pub mod sweep;
pub mod trace;
pub mod workload;

pub use report::Table;
pub use serve::{
    generate_requests, serve_stream, ArrivalModel, Backpressure, ServeConfig, ServeOptions,
    ServeReport, ServeRequest, ServeResult,
};
pub use simulator::{simulate, RunResult, SeriesPoint};
pub use sweep::{sweep_alpha, AggregatedRun, SweepPoint};
pub use workload::{WorkloadConfig, WorkloadScheme};
