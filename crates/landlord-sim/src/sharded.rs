//! Multi-threaded trace replay against the sharded cache frontend.
//!
//! The paper's site-wide deployment (§V) is many submitters hammering
//! one shared cache. This driver replays a prepared stream with `M`
//! worker threads against a [`ShardedImageCache`] — and stays
//! **deterministic**: requests are partitioned by owning shard (the
//! same pure routing the cache itself uses), each shard is assigned to
//! exactly one worker (`shard % threads`), and every worker serves its
//! shards' requests in stream order via batched
//! [`ShardedImageCache::request_many`] calls. Each shard therefore
//! observes exactly the subsequence — in exactly the order — it would
//! observe under a single-threaded replay, so the folded counters are
//! independent of the thread count. The `sharded_stress` proptest pins
//! this equality down.

use crate::simulator::RunResult;
use landlord_core::cache::{CacheConfig, ShardedImageCache};
use landlord_core::sizes::SizeModel;
use landlord_core::spec::Spec;
use std::sync::Arc;

/// Requests per [`ShardedImageCache::request_many`] batch. Small enough
/// to keep shard locks short, large enough to amortize them.
const BATCH: usize = 64;

/// Replay `stream` against a fresh [`ShardedImageCache`] with `shards`
/// shards and `threads` worker threads. Deterministic in the stream and
/// config regardless of `threads` (see the module docs).
///
/// The time series is not sampled (there is no global request order to
/// sample along); `series` comes back empty.
pub fn simulate_stream_sharded(
    stream: &[Spec],
    cache_config: CacheConfig,
    sizes: Arc<dyn SizeModel>,
    shards: usize,
    threads: usize,
) -> RunResult {
    simulate_stream_sharded_observed(stream, cache_config, sizes, shards, threads, None)
}

/// [`simulate_stream_sharded`] with an optional metrics registry
/// attached before the replay. The `core.*` metrics recorded into the
/// registry fold exactly: at a fixed stream and config they are
/// independent of both the thread count and whether shards share one
/// registry or record into private registries merged afterwards.
pub fn simulate_stream_sharded_observed(
    stream: &[Spec],
    cache_config: CacheConfig,
    sizes: Arc<dyn SizeModel>,
    shards: usize,
    threads: usize,
    registry: Option<&landlord_obs::MetricsRegistry>,
) -> RunResult {
    let cache = ShardedImageCache::new(shards.max(1), cache_config, sizes);
    if let Some(registry) = registry {
        cache.attach_metrics(registry);
    }
    replay_sharded(&cache, stream, threads.max(1));
    RunResult {
        final_stats: cache.stats(),
        container_eff_pct: cache.container_efficiency_pct(),
        cache_eff_pct: cache.cache_efficiency_pct(),
        series: Vec::new(),
    }
}

/// Drive one prepared stream into an existing sharded cache with
/// `threads` workers, shard-affine and in per-shard stream order.
pub fn replay_sharded(cache: &ShardedImageCache, stream: &[Spec], threads: usize) {
    let shard_count = cache.shard_count();
    let mut by_shard: Vec<Vec<usize>> = vec![Vec::new(); shard_count];
    for (i, spec) in stream.iter().enumerate() {
        by_shard[cache.route(spec)].push(i);
    }
    let threads = threads.max(1).min(shard_count);
    std::thread::scope(|scope| {
        for worker in 0..threads {
            let by_shard = &by_shard;
            let cache = cache.clone();
            scope.spawn(move || {
                for (shard, owned) in by_shard.iter().enumerate() {
                    if shard % threads != worker {
                        continue;
                    }
                    for chunk in owned.chunks(BATCH) {
                        let batch: Vec<Spec> = chunk.iter().map(|&i| stream[i].clone()).collect();
                        cache.request_many(&batch);
                    }
                }
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{self, WorkloadConfig, WorkloadScheme};
    use landlord_core::cache::{shard_limit_bytes, CacheStats, ImageCache};
    use landlord_core::metrics::ContainerEfficiency;
    use landlord_repo::{RepoConfig, Repository};

    fn repo() -> Repository {
        Repository::generate(&RepoConfig::small_for_tests(31))
    }

    fn stream() -> Vec<Spec> {
        let w = WorkloadConfig {
            unique_jobs: 60,
            repeats: 3,
            max_initial_selection: 8,
            scheme: WorkloadScheme::DependencyClosure,
            seed: 5,
        };
        workload::generate_stream(&repo(), &w)
    }

    fn cfg(limit: u64) -> CacheConfig {
        CacheConfig {
            alpha: 0.7,
            limit_bytes: limit,
            ..CacheConfig::default()
        }
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let r = repo();
        let jobs = stream();
        let sizes: Arc<dyn SizeModel> = Arc::new(r.size_table());
        let config = cfg(r.total_bytes() / 2);
        let baseline = simulate_stream_sharded(&jobs, config, Arc::clone(&sizes), 8, 1);
        for threads in [2, 4, 8] {
            let run = simulate_stream_sharded(&jobs, config, Arc::clone(&sizes), 8, threads);
            assert_eq!(
                run.final_stats, baseline.final_stats,
                "{threads} threads diverged from single-threaded replay"
            );
            assert_eq!(run.container_eff_pct, baseline.container_eff_pct);
        }
    }

    #[test]
    fn folded_counters_equal_partitioned_single_threaded_replay() {
        let r = repo();
        let jobs = stream();
        let sizes: Arc<dyn SizeModel> = Arc::new(r.size_table());
        let shards = 4usize;
        let config = cfg(r.total_bytes() / 3);

        let sharded = ShardedImageCache::new(shards, config, Arc::clone(&sizes));
        replay_sharded(&sharded, &jobs, 4);
        sharded.check_invariants();

        // Reference: one plain ImageCache per shard, fed exactly the
        // subsequence the router assigns, with the partitioned budget.
        let mut folded = CacheStats::default();
        let mut eff = ContainerEfficiency::new();
        for shard in 0..shards {
            let shard_config = CacheConfig {
                limit_bytes: shard_limit_bytes(config.limit_bytes, shards as u64, shard as u64),
                ..config
            };
            let mut reference = ImageCache::new(shard_config, Arc::clone(&sizes));
            for spec in jobs.iter().filter(|s| sharded.route(s) == shard) {
                reference.request(spec);
            }
            reference.check_invariants();
            let shard_stats = reference.stats();
            folded.merge(&shard_stats);
            let shard_eff = reference.container_eff();
            eff.merge(&shard_eff);
        }
        assert_eq!(sharded.stats(), folded);
        assert_eq!(
            sharded.container_eff().samples(),
            eff.samples(),
            "container-efficiency sample counts diverged"
        );
        assert!(
            (sharded.container_efficiency_pct() - eff.mean_pct()).abs() < 1e-9,
            "container-efficiency means diverged"
        );
    }

    /// The metrics analogue of the counter-fold property above, under
    /// real concurrency: a 4-thread sharded replay recording into one
    /// shared registry produces exactly the same deterministic `core.*`
    /// metrics as per-shard single-threaded replays recording into
    /// private registries merged afterwards.
    #[test]
    fn concurrent_metrics_fold_equals_partitioned_registries() {
        use landlord_obs::{LogicalClock, MetricsRegistry};

        let r = repo();
        let jobs = stream();
        let sizes: Arc<dyn SizeModel> = Arc::new(r.size_table());
        let shards = 4usize;
        let config = cfg(r.total_bytes() / 3);

        let sharded = ShardedImageCache::new(shards, config, Arc::clone(&sizes));
        let shared = MetricsRegistry::new(Arc::new(LogicalClock::new()));
        sharded.attach_metrics(&shared);
        replay_sharded(&sharded, &jobs, 4);
        sharded.check_invariants();

        let folded = MetricsRegistry::new(Arc::new(LogicalClock::new()));
        for shard in 0..shards {
            let shard_config = CacheConfig {
                limit_bytes: shard_limit_bytes(config.limit_bytes, shards as u64, shard as u64),
                ..config
            };
            let mut reference = ImageCache::new(shard_config, Arc::clone(&sizes));
            let own = MetricsRegistry::new(Arc::new(LogicalClock::new()));
            reference.attach_metrics(&own);
            for spec in jobs.iter().filter(|s| sharded.route(s) == shard) {
                reference.request(spec);
            }
            reference.check_invariants();
            folded.merge(&own);
        }

        let shared_snap = shared.snapshot();
        let folded_snap = folded.snapshot();
        for (name, hist) in &folded_snap.histograms {
            assert_eq!(
                shared_snap.histograms.get(name),
                Some(hist),
                "histogram {name} diverged under concurrency"
            );
        }
        for (name, value) in &folded_snap.counters {
            assert_eq!(
                shared_snap.counters.get(name),
                Some(value),
                "counter {name} diverged under concurrency"
            );
        }
        for (name, value) in &folded_snap.gauges {
            assert_eq!(
                shared_snap.gauges.get(name),
                Some(value),
                "gauge {name} diverged under concurrency"
            );
        }
    }

    /// The stateful eviction policies (S3-FIFO's queue rotation,
    /// sampled LHD's seeded draws) through the sharded frontend:
    /// thread-count independence AND exact equality with per-shard
    /// plain-cache replays. Each shard owns an independent evictor
    /// built from the same config (including `eviction_seed`), so the
    /// fold must be exact — an α=0 eviction-heavy config makes victim
    /// selection constant, not incidental.
    #[test]
    fn stateful_eviction_policies_fold_exactly_and_ignore_thread_count() {
        use landlord_core::policy::EvictionPolicy;

        let r = repo();
        let jobs = stream();
        let sizes: Arc<dyn SizeModel> = Arc::new(r.size_table());
        let shards = 4usize;
        for eviction in [EvictionPolicy::S3Fifo, EvictionPolicy::LhdSample] {
            let config = CacheConfig {
                alpha: 0.0,
                limit_bytes: r.total_bytes() / 3,
                eviction,
                eviction_seed: 42,
                ..CacheConfig::default()
            };

            let baseline = simulate_stream_sharded(&jobs, config, Arc::clone(&sizes), shards, 1);
            for threads in [2, 4] {
                let run =
                    simulate_stream_sharded(&jobs, config, Arc::clone(&sizes), shards, threads);
                assert_eq!(
                    run.final_stats, baseline.final_stats,
                    "{eviction:?}: {threads} threads diverged from single-threaded replay"
                );
            }

            let sharded = ShardedImageCache::new(shards, config, Arc::clone(&sizes));
            replay_sharded(&sharded, &jobs, 4);
            sharded.check_invariants();
            let mut folded = CacheStats::default();
            for shard in 0..shards {
                let shard_config = CacheConfig {
                    limit_bytes: shard_limit_bytes(config.limit_bytes, shards as u64, shard as u64),
                    ..config
                };
                let mut reference = ImageCache::new(shard_config, Arc::clone(&sizes));
                for spec in jobs.iter().filter(|s| sharded.route(s) == shard) {
                    reference.request(spec);
                }
                reference.check_invariants();
                folded.merge(&reference.stats());
            }
            assert_eq!(
                sharded.stats(),
                folded,
                "{eviction:?}: sharded fold diverged from partitioned plain caches"
            );
            assert!(
                folded.deletes > 0,
                "{eviction:?}: scenario exercised no evictions; tighten the limit"
            );
        }
    }

    #[test]
    fn more_threads_than_shards_is_clamped_not_wrong() {
        let r = repo();
        let jobs = stream();
        let sizes: Arc<dyn SizeModel> = Arc::new(r.size_table());
        let config = cfg(r.total_bytes());
        let narrow = simulate_stream_sharded(&jobs, config, Arc::clone(&sizes), 2, 16);
        let wide = simulate_stream_sharded(&jobs, config, Arc::clone(&sizes), 2, 2);
        assert_eq!(narrow.final_stats, wide.final_stats);
        assert_eq!(narrow.final_stats.requests as usize, jobs.len());
    }
}
