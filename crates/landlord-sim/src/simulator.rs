//! Driving a request stream through a cache policy.
//!
//! One simulation = one [`CachePolicy`] (LANDLORD's [`ImageCache`] or
//! any baseline) processing one job stream, with counter snapshots
//! sampled along the way (Fig. 5's time series) and a summary at the
//! end (one data point of every sweep figure). [`simulate_policy`] is
//! the single generic driver; the `ImageCache`-typed entry points
//! delegate to it.

use crate::workload::{self, WorkloadConfig};
use landlord_baselines::{DedupStore, FullRepoStrategy, LayerChain, PerJobCache};
use landlord_core::cache::{CacheConfig, CacheStats, ImageCache};
use landlord_core::conflict::ConflictPolicy;
use landlord_core::policy::CachePolicy;
use landlord_core::sizes::SizeModel;
use landlord_core::spec::Spec;
use landlord_obs::{LogicalClock, MetricsRegistry, MonotonicClock};
use landlord_repo::Repository;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// One sampled point of a simulation's time series.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SeriesPoint {
    /// Requests processed when the sample was taken (1-based).
    pub request_index: usize,
    /// Counter snapshot.
    pub stats: CacheStats,
    /// Mean container efficiency so far, percent.
    pub container_eff_pct: f64,
}

/// Result of one complete simulation run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunResult {
    /// Final counters.
    pub final_stats: CacheStats,
    /// Mean container efficiency over all requests, percent.
    pub container_eff_pct: f64,
    /// Cache efficiency at the end, percent.
    pub cache_eff_pct: f64,
    /// Sampled time series (empty when `sample_every == 0`).
    pub series: Vec<SeriesPoint>,
}

/// Run one prepared stream through a cache built from `cache_config`.
///
/// `sample_every` > 0 records a [`SeriesPoint`] after every that many
/// requests (and always after the last).
pub fn simulate_stream(
    stream: &[Spec],
    cache_config: CacheConfig,
    sizes: Arc<dyn landlord_core::sizes::SizeModel>,
    conflicts: Option<Arc<dyn ConflictPolicy>>,
    sample_every: usize,
) -> RunResult {
    let mut cache = match conflicts {
        Some(c) => ImageCache::with_conflicts(cache_config, sizes, c),
        None => ImageCache::new(cache_config, sizes),
    };
    simulate_policy(&mut cache, stream, sample_every)
}

/// Run one prepared stream through *any* policy — the one generic
/// driver behind every simulation entry point.
pub fn simulate_policy(
    policy: &mut dyn CachePolicy,
    stream: &[Spec],
    sample_every: usize,
) -> RunResult {
    simulate_policy_observed(policy, stream, sample_every, None)
}

/// The observability harness for one simulation run: a registry the
/// policy records into, plus (for the deterministic flavour) the
/// logical clock the driver advances once per request so span
/// histograms measure *requests*, not wall time.
pub struct SimObs {
    /// The registry to attach to the policy and export afterwards.
    pub registry: Arc<MetricsRegistry>,
    /// The logical clock driving the registry, when deterministic;
    /// `None` for wall-clock registries (the clock advances itself).
    pub tick: Option<Arc<LogicalClock>>,
}

impl SimObs {
    /// A registry on a logical clock, ticked once per request by
    /// [`simulate_policy_observed`]: every metric — including span
    /// histograms — is a pure function of the request stream, so the
    /// exported snapshot is byte-identical across runs at a fixed
    /// seed.
    pub fn deterministic() -> Self {
        let clock = Arc::new(LogicalClock::new());
        SimObs {
            registry: Arc::new(MetricsRegistry::new(Arc::clone(&clock) as _)),
            tick: Some(clock),
        }
    }

    /// A registry on a monotonic wall clock (nanosecond ticks), for
    /// real timing (`bench-report`). Not deterministic by design.
    pub fn wall_clock() -> Self {
        SimObs {
            registry: Arc::new(MetricsRegistry::new(Arc::new(MonotonicClock::new()))),
            tick: None,
        }
    }
}

/// [`simulate_policy`] with optional observability: attaches the
/// registry to the policy up front and, for deterministic harnesses,
/// advances the logical clock once per request.
pub fn simulate_policy_observed(
    policy: &mut dyn CachePolicy,
    stream: &[Spec],
    sample_every: usize,
    obs: Option<&SimObs>,
) -> RunResult {
    if let Some(o) = obs {
        policy.attach_metrics(&o.registry);
    }
    let mut series = Vec::new();
    for (i, spec) in stream.iter().enumerate() {
        if let Some(tick) = obs.and_then(|o| o.tick.as_deref()) {
            tick.tick();
        }
        policy.request(spec);
        let done = i + 1 == stream.len();
        if sample_every > 0 && ((i + 1) % sample_every == 0 || done) {
            series.push(SeriesPoint {
                request_index: i + 1,
                stats: policy.stats(),
                container_eff_pct: policy.container_efficiency_pct(),
            });
        }
    }
    RunResult {
        final_stats: policy.stats(),
        container_eff_pct: policy.container_efficiency_pct(),
        cache_eff_pct: policy.cache_efficiency_pct(),
        series,
    }
}

/// CLI/report tokens accepted by [`make_policy`].
pub const POLICY_TOKENS: &[&str] = &["landlord", "per-job", "full-repo", "layered", "block-dedup"];

/// Construct a policy by token. `cache_config` shapes LANDLORD (and
/// supplies the byte limit for per-job); `repo_bytes` sizes the
/// full-repo image. Returns `None` for an unknown token.
pub fn make_policy(
    name: &str,
    cache_config: CacheConfig,
    sizes: Arc<dyn SizeModel>,
    repo_bytes: u64,
) -> Option<Box<dyn CachePolicy>> {
    Some(match name {
        "landlord" => Box::new(ImageCache::new(cache_config, sizes)),
        "per-job" => Box::new(PerJobCache::new(cache_config.limit_bytes, sizes)),
        "full-repo" => Box::new(FullRepoStrategy::new(sizes, repo_bytes)),
        "layered" => Box::new(LayerChain::new(sizes)),
        "block-dedup" => Box::new(DedupStore::new(sizes)),
        _ => return None,
    })
}

/// Pin a percentage to integer milli-percent (60957 ⇒ 60.957%) —
/// the one fixed-precision rounding used everywhere a report is
/// serialized. Golden report JSON compares byte-for-byte, so every
/// serialized metric must pass through this helper rather than ad-hoc
/// float formatting that could drift across platforms or formatting
/// changes. Round-half-up via `f64::round`; inputs are percentages in
/// `[0, 100]` by construction, but a NaN reaching a report (a
/// division-by-zero upstream) pins to 0 explicitly rather than relying
/// on `as`-cast semantics — a byte-stable artifact must not encode
/// "whatever the cast does" as its contract. Negative and infinite
/// inputs saturate the same way the cast always did (0 and `u64::MAX`).
pub fn milli_pct(pct: f64) -> u64 {
    if pct.is_nan() {
        return 0;
    }
    (pct * 1000.0).round() as u64
}

/// One policy's summary in a multi-policy comparison report.
/// Percentages are pinned as integer milli-percent so the JSON is
/// byte-stable across float formatting changes.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq, Eq)]
pub struct PolicyReport {
    /// Policy token (see [`POLICY_TOKENS`]).
    pub policy: String,
    /// Final counters.
    pub final_stats: CacheStats,
    /// Mean container efficiency, milli-percent (60957 = 60.957%).
    pub container_eff_milli: u64,
    /// Final cache efficiency, milli-percent.
    pub cache_eff_milli: u64,
    /// Fault-model counters when the run injected faults (`null` for
    /// fault-free runs).
    #[serde(default)]
    pub faults: Option<crate::faults::FaultStats>,
}

impl PolicyReport {
    /// Summarize a finished run.
    pub fn from_run(
        policy: &str,
        run: &RunResult,
        faults: Option<crate::faults::FaultStats>,
    ) -> Self {
        PolicyReport {
            policy: policy.to_string(),
            final_stats: run.final_stats,
            container_eff_milli: milli_pct(run.container_eff_pct),
            cache_eff_milli: milli_pct(run.cache_eff_pct),
            faults,
        }
    }
}

/// Convenience: generate the stream from a workload config and run it.
pub fn simulate(
    repo: &Repository,
    workload: &WorkloadConfig,
    cache_config: CacheConfig,
    sample_every: usize,
) -> RunResult {
    let stream = workload::generate_stream(repo, workload);
    let sizes: Arc<dyn landlord_core::sizes::SizeModel> = Arc::new(repo.size_table());
    simulate_stream(&stream, cache_config, sizes, None, sample_every)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::WorkloadScheme;
    use landlord_repo::RepoConfig;

    fn repo() -> Repository {
        Repository::generate(&RepoConfig::small_for_tests(31))
    }

    fn workload() -> WorkloadConfig {
        WorkloadConfig {
            unique_jobs: 30,
            repeats: 3,
            max_initial_selection: 8,
            scheme: WorkloadScheme::DependencyClosure,
            seed: 2,
        }
    }

    fn cache_cfg(alpha: f64, limit: u64) -> CacheConfig {
        CacheConfig {
            alpha,
            limit_bytes: limit,
            ..CacheConfig::default()
        }
    }

    #[test]
    fn observed_run_records_spans_and_is_byte_deterministic() {
        let r = repo();
        let w = workload();
        let jobs = workload::generate_stream(&r, &w);
        let sizes: Arc<dyn SizeModel> = Arc::new(r.size_table());

        let run = |jobs: &[Spec]| {
            let obs = SimObs::deterministic();
            let mut cache =
                ImageCache::new(cache_cfg(0.75, r.total_bytes() / 2), Arc::clone(&sizes));
            simulate_policy_observed(&mut cache, jobs, 0, Some(&obs));
            obs.registry.snapshot()
        };

        let snap = run(&jobs);
        // One plan span and one apply span per request; the logical
        // clock advanced once per request, so ticks sum to at most the
        // request count per span.
        assert_eq!(snap.histograms["core.plan_ticks"].count, jobs.len() as u64);
        assert_eq!(snap.histograms["core.apply_ticks"].count, jobs.len() as u64);
        assert!(snap.counters.contains_key("core.evictions"));
        // The whole snapshot (JSON bytes included) reproduces exactly.
        assert_eq!(snap.to_json_pretty(), run(&jobs).to_json_pretty());
    }

    #[test]
    fn all_requests_accounted() {
        let r = repo();
        let w = workload();
        let result = simulate(&r, &w, cache_cfg(0.75, r.total_bytes()), 0);
        let s = result.final_stats;
        assert_eq!(s.requests as usize, w.total_requests());
        assert_eq!(s.requests, s.hits + s.merges + s.inserts);
        assert!(result.series.is_empty());
    }

    #[test]
    fn repeats_guarantee_hits() {
        let r = repo();
        let result = simulate(&r, &workload(), cache_cfg(0.75, r.total_bytes() * 10), 0);
        // With 3 repeats per job and a roomy cache, at least the exact
        // re-requests hit.
        assert!(
            result.final_stats.hits >= 30,
            "only {} hits over 90 requests with repeats",
            result.final_stats.hits
        );
    }

    #[test]
    fn series_sampling() {
        let r = repo();
        let result = simulate(&r, &workload(), cache_cfg(0.75, r.total_bytes()), 10);
        assert_eq!(result.series.len(), 9, "90 requests sampled every 10");
        assert_eq!(result.series.last().unwrap().request_index, 90);
        // Monotone counters along the series.
        for w in result.series.windows(2) {
            assert!(w[0].stats.requests < w[1].stats.requests);
            assert!(w[0].stats.bytes_written <= w[1].stats.bytes_written);
        }
    }

    #[test]
    fn tight_cache_forces_deletes() {
        let r = repo();
        // Cache a twentieth of the repo: heavy eviction pressure.
        let result = simulate(&r, &workload(), cache_cfg(0.0, r.total_bytes() / 20), 0);
        assert!(result.final_stats.deletes > 0, "tight cache must evict");
        let total = result.final_stats.total_bytes;
        // Bound: limit + one oversized image.
        assert!(total <= r.total_bytes() / 20 + r.total_bytes() / 2);
    }

    #[test]
    fn merging_raises_cache_efficiency() {
        let r = repo();
        let w = workload();
        let limit = r.total_bytes(); // roomy enough to show duplication
        let none = simulate(&r, &w, cache_cfg(0.0, limit), 0);
        let lots = simulate(&r, &w, cache_cfg(0.95, limit), 0);
        assert!(lots.final_stats.merges > 0);
        assert!(
            lots.cache_eff_pct > none.cache_eff_pct,
            "merging should deduplicate: {} vs {}",
            lots.cache_eff_pct,
            none.cache_eff_pct
        );
        // And costs container efficiency.
        assert!(lots.container_eff_pct < none.container_eff_pct + 1e-9);
    }

    #[test]
    fn deterministic_given_seeds() {
        let r = repo();
        let w = workload();
        let a = simulate(&r, &w, cache_cfg(0.8, r.total_bytes()), 0);
        let b = simulate(&r, &w, cache_cfg(0.8, r.total_bytes()), 0);
        assert_eq!(a.final_stats, b.final_stats);
    }

    #[test]
    fn every_policy_token_constructs_and_runs() {
        let r = repo();
        let stream = workload::generate_stream(&r, &workload());
        let sizes: Arc<dyn SizeModel> = Arc::new(r.size_table());
        for &token in POLICY_TOKENS {
            let mut policy = make_policy(
                token,
                cache_cfg(0.8, r.total_bytes()),
                Arc::clone(&sizes),
                r.total_bytes(),
            )
            .expect("known token");
            assert_eq!(policy.name(), token);
            let run = simulate_policy(policy.as_mut(), &stream, 0);
            assert_eq!(run.final_stats.requests as usize, stream.len());
            policy.check_invariants();
        }
        assert!(make_policy("nope", CacheConfig::default(), Arc::clone(&sizes), 1).is_none());
    }

    #[test]
    fn generic_driver_matches_typed_entry_point_for_landlord() {
        let r = repo();
        let w = workload();
        let cfg = cache_cfg(0.8, r.total_bytes() / 2);
        let typed = simulate(&r, &w, cfg, 7);
        let stream = workload::generate_stream(&r, &w);
        let sizes: Arc<dyn SizeModel> = Arc::new(r.size_table());
        let mut policy = make_policy("landlord", cfg, sizes, r.total_bytes()).unwrap();
        let generic = simulate_policy(policy.as_mut(), &stream, 7);
        assert_eq!(typed.final_stats, generic.final_stats);
        assert_eq!(typed.container_eff_pct, generic.container_eff_pct);
        assert_eq!(typed.series.len(), generic.series.len());
    }

    #[test]
    fn milli_pct_is_pinned() {
        // Regression: golden report JSON depends on this exact
        // rounding; any drift rewrites every golden file.
        assert_eq!(milli_pct(0.0), 0);
        assert_eq!(milli_pct(100.0), 100_000);
        assert_eq!(milli_pct(60.957), 60_957);
        assert_eq!(milli_pct(12.3456), 12_346);
        assert_eq!(milli_pct(0.0004), 0);
        assert_eq!(milli_pct(33.0 + 1.0 / 3.0), 33_333);
    }

    #[test]
    fn milli_pct_pins_degenerate_inputs() {
        // Serve-mode folds routinely cross empty shards; a NaN-shaped
        // percentage (0/0 upstream) must pin to 0, not to whatever an
        // `as` cast happens to do on the platform. Out-of-range inputs
        // keep the historical saturating behavior.
        assert_eq!(milli_pct(f64::NAN), 0);
        assert_eq!(milli_pct(-f64::NAN), 0);
        assert_eq!(milli_pct(-1.0), 0);
        assert_eq!(milli_pct(f64::NEG_INFINITY), 0);
        assert_eq!(milli_pct(f64::INFINITY), u64::MAX);
    }

    #[test]
    fn policy_report_round_trips_through_json() {
        let r = repo();
        let run = simulate(&r, &workload(), cache_cfg(0.8, r.total_bytes()), 0);
        let report = PolicyReport::from_run("landlord", &run, None);
        let json = serde_json::to_string(&report).unwrap();
        let back: PolicyReport = serde_json::from_str(&json).unwrap();
        assert_eq!(report, back);
    }
}
