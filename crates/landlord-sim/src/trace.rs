//! Recording and replaying request streams.
//!
//! A trace pins an exact stream of specifications to disk so a
//! simulation can be re-run bit-for-bit later (or against a different
//! cache configuration) without regenerating the workload — the
//! "trace-driven" in the paper's "trace-driven simulation".

use landlord_core::spec::Spec;
use serde::{Deserialize, Serialize};
use std::io::{BufReader, BufWriter};
use std::path::Path;

/// A recorded request stream plus provenance.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct Trace {
    /// Schema version for forward compatibility.
    pub version: u32,
    /// Free-form description of how the trace was generated.
    pub description: String,
    /// Seed of the generating workload (0 when hand-built).
    pub workload_seed: u64,
    /// The requests, in arrival order.
    pub requests: Vec<Spec>,
}

impl Trace {
    /// Current schema version.
    pub const VERSION: u32 = 1;

    /// Wrap a stream in a trace.
    pub fn new(description: impl Into<String>, workload_seed: u64, requests: Vec<Spec>) -> Self {
        Trace {
            version: Self::VERSION,
            description: description.into(),
            workload_seed,
            requests,
        }
    }

    /// Number of requests.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// True when the trace holds no requests.
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// Write as JSON.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        let file = std::fs::File::create(path)?;
        serde_json::to_writer(BufWriter::new(file), self)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }

    /// Read from JSON; rejects unknown schema versions.
    pub fn load(path: &Path) -> std::io::Result<Trace> {
        let file = std::fs::File::open(path)?;
        let trace: Trace = serde_json::from_reader(BufReader::new(file))
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
        if trace.version != Self::VERSION {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("unsupported trace version {}", trace.version),
            ));
        }
        Ok(trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use landlord_core::spec::PackageId;

    fn sample_trace() -> Trace {
        Trace::new(
            "test trace",
            7,
            vec![
                Spec::from_ids([1, 2].map(PackageId)),
                Spec::from_ids([3].map(PackageId)),
            ],
        )
    }

    #[test]
    fn save_load_round_trip() {
        let path = std::env::temp_dir().join(format!("landlord-trace-{}.json", std::process::id()));
        let t = sample_trace();
        t.save(&path).unwrap();
        let back = Trace::load(&path).unwrap();
        assert_eq!(back, t);
        assert_eq!(back.len(), 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn version_checked() {
        let path =
            std::env::temp_dir().join(format!("landlord-trace-v-{}.json", std::process::id()));
        let mut t = sample_trace();
        t.version = 99;
        // Serialize manually (save doesn't check; load does).
        std::fs::write(&path, serde_json::to_vec(&t).unwrap()).unwrap();
        let err = Trace::load(&path).unwrap_err();
        assert!(err.to_string().contains("unsupported trace version"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_trace() {
        let t = Trace::new("empty", 0, Vec::new());
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
    }
}
