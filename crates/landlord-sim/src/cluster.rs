//! Worker-node image distribution — modeling the paper's deployment
//! setting beyond the single shared cache.
//!
//! §V: "We also suppose that each compute node has scratch space
//! available for storing container images locally, but that the total
//! repository contents or the collection of all container images may be
//! too large to store on every worker node."
//!
//! The model: a head node runs LANDLORD's [`ImageCache`]; each job is
//! dispatched to one of `workers` nodes. If the serving image (at its
//! current *revision* — merges rewrite an image in place, invalidating
//! worker copies) is not in the worker's scratch, it is transferred
//! from the head cache, evicting least-recently-used scratch entries to
//! fit. The interesting outputs are the transfer volume and the local
//! hit rate, and how the dispatch policy changes them.

use crate::workload::{self, WorkloadConfig};
use landlord_core::cache::{CacheConfig, CacheStats, ImageCache};
use landlord_core::image::ImageId;
use landlord_core::policy::CachePolicy;
use landlord_core::spec::Spec;
use landlord_repo::Repository;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::Arc;

/// How jobs are assigned to worker nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum Dispatch {
    /// Cycle through workers in order (fair, cache-oblivious).
    #[default]
    RoundRobin,
    /// Uniform random worker per job.
    Random,
    /// Prefer a worker already holding the job's image at the current
    /// revision; fall back to round-robin. This is the data-locality
    /// scheduling HTC systems approximate with ranked matchmaking.
    CacheAware,
}

impl Dispatch {
    /// Stable token for reports and CLI parsing.
    pub fn token(self) -> &'static str {
        match self {
            Dispatch::RoundRobin => "round-robin",
            Dispatch::Random => "random",
            Dispatch::CacheAware => "cache-aware",
        }
    }

    /// Parse a CLI token.
    pub fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "round-robin" => Dispatch::RoundRobin,
            "random" => Dispatch::Random,
            "cache-aware" => Dispatch::CacheAware,
            _ => return None,
        })
    }
}

/// Cluster shape and scheduling policy.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ClusterConfig {
    /// Number of worker nodes.
    pub workers: usize,
    /// Local scratch bytes per worker.
    pub worker_scratch_bytes: u64,
    /// Job dispatch policy.
    pub dispatch: Dispatch,
    /// Seed for the random dispatch policy.
    pub seed: u64,
    /// Optional worker crash/rejoin model (`None` = reliable fleet).
    #[serde(default)]
    pub faults: Option<WorkerFaultConfig>,
}

/// Seeded worker crash model: before serving a job, the dispatched
/// worker may crash — its scratch cache is lost and it stays down for
/// `rejoin_after` jobs before rejoining empty. The job itself is
/// re-dispatched to a surviving worker (HTC schedulers requeue, they
/// don't fail the job).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkerFaultConfig {
    /// Per-dispatch crash probability in thousandths (0..=1000).
    pub crash_per_mille: u32,
    /// Explicit seed; identical seeds reproduce identical crashes.
    pub seed: u64,
    /// Jobs a crashed worker stays down before rejoining with an
    /// empty scratch cache.
    pub rejoin_after: u64,
}

impl WorkerFaultConfig {
    /// Does the worker dispatched for job `job` crash? Pure in
    /// `(self, job)`.
    fn crashes(&self, job: u64) -> bool {
        self.crash_per_mille > 0
            && crate::faults::mix(self.seed ^ job.wrapping_mul(0x2545_f491_4f6c_dd1d)) % 1000
                < u64::from(self.crash_per_mille)
    }
}

/// Aggregate outcome of a cluster simulation.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct ClusterStats {
    /// Jobs dispatched.
    pub jobs: u64,
    /// Jobs whose image (current revision) was already on the worker.
    pub local_hits: u64,
    /// Image transfers head → worker.
    pub transfers: u64,
    /// Bytes moved over the network.
    pub transfer_bytes: u64,
    /// Scratch evictions across all workers.
    pub scratch_evictions: u64,
    /// Worker crashes injected by the fault model.
    #[serde(default)]
    pub worker_crashes: u64,
    /// Scratch bytes wiped by those crashes.
    #[serde(default)]
    pub scratch_lost_bytes: u64,
}

impl ClusterStats {
    /// Fraction of jobs served from local scratch, percent.
    pub fn local_hit_pct(&self) -> f64 {
        if self.jobs == 0 {
            return 100.0;
        }
        100.0 * self.local_hits as f64 / self.jobs as f64
    }
}

/// Result of a cluster run: head-cache stats plus distribution stats.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClusterResult {
    /// The head node's LANDLORD cache counters.
    pub head: CacheStats,
    /// Worker-side distribution counters.
    pub cluster: ClusterStats,
}

#[derive(Debug, Clone, Copy)]
struct ScratchEntry {
    bytes: u64,
    revision: u64,
    last_used: u64,
}

struct Worker {
    scratch: HashMap<u64, ScratchEntry>, // key: ImageId.0
    used_bytes: u64,
}

impl Worker {
    fn new() -> Self {
        Worker {
            scratch: HashMap::new(),
            used_bytes: 0,
        }
    }

    fn has_current(&self, image: ImageId, revision: u64) -> bool {
        self.scratch
            .get(&image.0)
            .is_some_and(|e| e.revision == revision)
    }

    /// Install an image, evicting LRU entries to fit. Returns evictions.
    fn install(&mut self, image: ImageId, bytes: u64, revision: u64, now: u64, limit: u64) -> u64 {
        if let Some(old) = self.scratch.remove(&image.0) {
            self.used_bytes -= old.bytes;
        }
        let mut evictions = 0;
        while self.used_bytes + bytes > limit {
            let Some((&victim, _)) = self
                .scratch
                .iter()
                .min_by_key(|(id, e)| (e.last_used, **id))
            else {
                break;
            };
            if let Some(removed) = self.scratch.remove(&victim) {
                self.used_bytes -= removed.bytes;
            }
            evictions += 1;
        }
        self.scratch.insert(
            image.0,
            ScratchEntry {
                bytes,
                revision,
                last_used: now,
            },
        );
        self.used_bytes += bytes;
        evictions
    }

    fn touch(&mut self, image: ImageId, now: u64) {
        if let Some(e) = self.scratch.get_mut(&image.0) {
            e.last_used = now;
        }
    }
}

/// Pick a worker among the up fleet under the dispatch policy.
fn pick_target(
    dispatch: Dispatch,
    workers: &[Worker],
    up: &[usize],
    image: ImageId,
    revision: u64,
    rr_next: &mut usize,
    rng: &mut StdRng,
) -> usize {
    debug_assert!(!up.is_empty());
    let round_robin = |rr_next: &mut usize| {
        // Advance the cursor over the whole fleet, skipping down
        // workers, so the rotation stays fair as workers come and go.
        for _ in 0..workers.len() {
            let t = *rr_next;
            *rr_next = (*rr_next + 1) % workers.len();
            if up.contains(&t) {
                return t;
            }
        }
        up[0]
    };
    match dispatch {
        Dispatch::RoundRobin => round_robin(rr_next),
        Dispatch::Random => up[rng.gen_range(0..up.len())],
        Dispatch::CacheAware => up
            .iter()
            .copied()
            .find(|&w| workers[w].has_current(image, revision))
            .unwrap_or_else(|| round_robin(rr_next)),
    }
}

/// Simulate a prepared stream over a LANDLORD head cache plus worker
/// fleet.
pub fn simulate_cluster_stream(
    stream: &[Spec],
    repo: &Repository,
    cache_config: CacheConfig,
    cluster: &ClusterConfig,
) -> ClusterResult {
    let mut head = ImageCache::new(cache_config, Arc::new(repo.size_table()));
    simulate_cluster_policy_stream(&mut head, stream, cluster)
}

/// Simulate a prepared stream over *any* head policy plus worker
/// fleet. The [`landlord_core::policy::Served`] value carries the
/// serving image's id, size, and revision, which is all the
/// distribution model needs.
pub fn simulate_cluster_policy_stream(
    head: &mut dyn CachePolicy,
    stream: &[Spec],
    cluster: &ClusterConfig,
) -> ClusterResult {
    assert!(cluster.workers > 0, "need at least one worker");
    let mut workers: Vec<Worker> = (0..cluster.workers).map(|_| Worker::new()).collect();
    let mut rng = StdRng::seed_from_u64(cluster.seed);
    let mut stats = ClusterStats::default();
    let mut rr_next = 0usize;
    let mut down_until: Vec<u64> = vec![0; cluster.workers];

    for (now, spec) in stream.iter().enumerate() {
        let now = now as u64 + 1;
        let served = head.request(spec);
        let image = ImageId(served.image);
        let bytes = served.image_bytes;
        // An image's revision is its merge count: every merge rewrites
        // the file, so worker copies of earlier revisions are stale.
        let revision = served.revision;

        // Workers whose downtime has elapsed have rejoined (with the
        // empty scratch the crash left them). If the whole fleet is
        // down, the earliest-due worker rejoins now so the job has
        // somewhere to run.
        let mut up: Vec<usize> = (0..workers.len())
            .filter(|&w| down_until[w] <= now)
            .collect();
        if up.is_empty() {
            let w = (0..workers.len())
                .min_by_key(|&w| (down_until[w], w))
                .unwrap_or(0);
            down_until[w] = now;
            up.push(w);
        }

        let mut target = pick_target(
            cluster.dispatch,
            &workers,
            &up,
            image,
            revision,
            &mut rr_next,
            &mut rng,
        );

        // The dispatched worker may crash before serving: its scratch
        // is lost, it leaves the fleet for a while, and the job is
        // re-dispatched — HTC schedulers requeue, they don't fail jobs.
        if let Some(f) = cluster.faults {
            if f.crashes(now) {
                stats.worker_crashes += 1;
                stats.scratch_lost_bytes += workers[target].used_bytes;
                workers[target].scratch.clear();
                workers[target].used_bytes = 0;
                down_until[target] = now + f.rejoin_after.max(1);
                up.retain(|&w| w != target);
                if up.is_empty() {
                    // Sole worker crashed: it restarts immediately,
                    // empty, and serves the job itself.
                    down_until[target] = now;
                    up.push(target);
                }
                target = pick_target(
                    cluster.dispatch,
                    &workers,
                    &up,
                    image,
                    revision,
                    &mut rr_next,
                    &mut rng,
                );
            }
        }

        stats.jobs += 1;
        let worker = &mut workers[target];
        if worker.has_current(image, revision) {
            stats.local_hits += 1;
            worker.touch(image, now);
        } else {
            stats.transfers += 1;
            stats.transfer_bytes += bytes;
            stats.scratch_evictions +=
                worker.install(image, bytes, revision, now, cluster.worker_scratch_bytes);
        }
    }

    ClusterResult {
        head: head.stats(),
        cluster: stats,
    }
}

/// Convenience: generate the workload stream and run the cluster.
pub fn simulate_cluster(
    repo: &Repository,
    workload: &WorkloadConfig,
    cache_config: CacheConfig,
    cluster: &ClusterConfig,
) -> ClusterResult {
    let stream = workload::generate_stream(repo, workload);
    simulate_cluster_stream(&stream, repo, cache_config, cluster)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::WorkloadScheme;
    use landlord_repo::RepoConfig;

    fn repo() -> Repository {
        Repository::generate(&RepoConfig::small_for_tests(71))
    }

    fn workload() -> WorkloadConfig {
        WorkloadConfig {
            unique_jobs: 25,
            repeats: 4,
            max_initial_selection: 6,
            scheme: WorkloadScheme::DependencyClosure,
            seed: 5,
        }
    }

    fn cluster(workers: usize, dispatch: Dispatch, scratch: u64) -> ClusterConfig {
        ClusterConfig {
            workers,
            worker_scratch_bytes: scratch,
            dispatch,
            seed: 1,
            faults: None,
        }
    }

    fn cache_cfg(repo: &Repository) -> CacheConfig {
        CacheConfig {
            alpha: 0.8,
            limit_bytes: repo.total_bytes(),
            ..CacheConfig::default()
        }
    }

    #[test]
    fn accounting_adds_up() {
        let r = repo();
        let result = simulate_cluster(
            &r,
            &workload(),
            cache_cfg(&r),
            &cluster(4, Dispatch::RoundRobin, r.total_bytes()),
        );
        let c = result.cluster;
        assert_eq!(c.jobs, 100);
        assert_eq!(c.jobs, c.local_hits + c.transfers);
        assert!(c.transfer_bytes > 0);
        assert_eq!(result.head.requests, 100);
    }

    #[test]
    fn single_worker_with_roomy_scratch_converges_to_local_hits() {
        let r = repo();
        let result = simulate_cluster(
            &r,
            &workload(),
            cache_cfg(&r),
            &cluster(1, Dispatch::RoundRobin, r.total_bytes() * 10),
        );
        // One worker sees every job; once merging settles, repeats are
        // local. Expect a solid local hit rate.
        assert!(
            result.cluster.local_hit_pct() > 30.0,
            "local hits only {:.1}%",
            result.cluster.local_hit_pct()
        );
    }

    #[test]
    fn cache_aware_beats_round_robin_on_transfers() {
        let r = repo();
        let roomy = r.total_bytes() * 10;
        let rr = simulate_cluster(
            &r,
            &workload(),
            cache_cfg(&r),
            &cluster(8, Dispatch::RoundRobin, roomy),
        );
        let ca = simulate_cluster(
            &r,
            &workload(),
            cache_cfg(&r),
            &cluster(8, Dispatch::CacheAware, roomy),
        );
        assert!(
            ca.cluster.transfer_bytes < rr.cluster.transfer_bytes,
            "cache-aware {} >= round-robin {}",
            ca.cluster.transfer_bytes,
            rr.cluster.transfer_bytes
        );
        assert!(ca.cluster.local_hit_pct() > rr.cluster.local_hit_pct());
    }

    #[test]
    fn tiny_scratch_forces_evictions() {
        let r = repo();
        let result = simulate_cluster(
            &r,
            &workload(),
            cache_cfg(&r),
            &cluster(2, Dispatch::RoundRobin, r.total_bytes() / 50),
        );
        assert!(
            result.cluster.scratch_evictions > 0,
            "tiny scratch must evict"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let r = repo();
        let cfg = cluster(4, Dispatch::Random, r.total_bytes());
        let a = simulate_cluster(&r, &workload(), cache_cfg(&r), &cfg);
        let b = simulate_cluster(&r, &workload(), cache_cfg(&r), &cfg);
        assert_eq!(a.cluster.transfer_bytes, b.cluster.transfer_bytes);
        assert_eq!(a.cluster.local_hits, b.cluster.local_hits);
    }

    #[test]
    fn dispatch_tokens_round_trip() {
        for d in [Dispatch::RoundRobin, Dispatch::Random, Dispatch::CacheAware] {
            assert_eq!(Dispatch::parse(d.token()), Some(d));
        }
        assert_eq!(Dispatch::parse("nope"), None);
    }

    #[test]
    fn merged_image_revisions_invalidate_worker_copies() {
        // With very aggressive merging, the head image is rewritten
        // often; workers must re-transfer, so transfers exceed the
        // distinct-image count.
        let r = repo();
        let cfg = CacheConfig {
            alpha: 1.0,
            limit_bytes: r.total_bytes(),
            ..CacheConfig::default()
        };
        let result = simulate_cluster(
            &r,
            &workload(),
            cfg,
            &cluster(1, Dispatch::RoundRobin, r.total_bytes() * 10),
        );
        assert!(
            result.cluster.transfers > result.head.inserts,
            "revision invalidation should force re-transfers: {} vs {}",
            result.cluster.transfers,
            result.head.inserts
        );
    }

    fn with_faults(base: ClusterConfig, crash_per_mille: u32, rejoin_after: u64) -> ClusterConfig {
        ClusterConfig {
            faults: Some(WorkerFaultConfig {
                crash_per_mille,
                seed: 77,
                rejoin_after,
            }),
            ..base
        }
    }

    #[test]
    fn crashes_lose_scratch_but_never_jobs() {
        let r = repo();
        let cfg = with_faults(cluster(4, Dispatch::RoundRobin, r.total_bytes()), 300, 5);
        let result = simulate_cluster(&r, &workload(), cache_cfg(&r), &cfg);
        let c = result.cluster;
        assert!(c.worker_crashes > 0, "30% crash rate must fire on 100 jobs");
        assert!(c.scratch_lost_bytes > 0, "crashes must wipe warm scratch");
        // Crashes requeue, never fail: every job still served exactly once.
        assert_eq!(c.jobs, 100);
        assert_eq!(c.jobs, c.local_hits + c.transfers);
        assert_eq!(result.head.requests, 100);
    }

    #[test]
    fn crashes_cost_local_hits_and_transfers() {
        let r = repo();
        let base = cluster(2, Dispatch::RoundRobin, r.total_bytes() * 10);
        let reliable = simulate_cluster(&r, &workload(), cache_cfg(&r), &base);
        let flaky = simulate_cluster(&r, &workload(), cache_cfg(&r), &with_faults(base, 400, 10));
        assert!(
            flaky.cluster.local_hits < reliable.cluster.local_hits,
            "scratch loss must cost local hits: {} vs {}",
            flaky.cluster.local_hits,
            reliable.cluster.local_hits
        );
        assert!(flaky.cluster.transfer_bytes > reliable.cluster.transfer_bytes);
    }

    #[test]
    fn sole_worker_crashes_restart_immediately() {
        let r = repo();
        let cfg = with_faults(cluster(1, Dispatch::RoundRobin, r.total_bytes()), 500, 100);
        let result = simulate_cluster(&r, &workload(), cache_cfg(&r), &cfg);
        assert!(result.cluster.worker_crashes > 0);
        assert_eq!(result.cluster.jobs, 100, "single worker still serves all");
    }

    #[test]
    fn crash_model_is_deterministic_in_the_seed() {
        let r = repo();
        let cfg = with_faults(cluster(4, Dispatch::Random, r.total_bytes()), 250, 4);
        let a = simulate_cluster(&r, &workload(), cache_cfg(&r), &cfg);
        let b = simulate_cluster(&r, &workload(), cache_cfg(&r), &cfg);
        assert_eq!(a.cluster.worker_crashes, b.cluster.worker_crashes);
        assert_eq!(a.cluster.scratch_lost_bytes, b.cluster.scratch_lost_bytes);
        assert_eq!(a.cluster.transfer_bytes, b.cluster.transfer_bytes);
        let other = ClusterConfig {
            faults: Some(WorkerFaultConfig {
                crash_per_mille: 250,
                seed: 78,
                rejoin_after: 4,
            }),
            ..cfg
        };
        let c = simulate_cluster(&r, &workload(), cache_cfg(&r), &other);
        assert_ne!(
            a.cluster.worker_crashes, c.cluster.worker_crashes,
            "different crash seed must differ"
        );
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use landlord_core::spec::{PackageId, Spec};
    use landlord_repo::RepoConfig;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Accounting invariants hold for arbitrary streams, dispatch
        /// policies, fleet sizes, and scratch limits.
        #[test]
        fn cluster_accounting_invariants(
            raw_stream in proptest::collection::vec(
                proptest::collection::vec(0u32..200, 1..8),
                1..40,
            ),
            workers in 1usize..12,
            dispatch in prop_oneof![
                Just(Dispatch::RoundRobin),
                Just(Dispatch::Random),
                Just(Dispatch::CacheAware),
            ],
            scratch_divisor in 1u64..50,
            crash_per_mille in prop_oneof![Just(None), (1u32..600).prop_map(Some)],
        ) {
            let repo = Repository::generate(&RepoConfig::small_for_tests(5));
            let stream: Vec<Spec> = raw_stream
                .into_iter()
                .map(|ids| Spec::from_ids(ids.into_iter().map(PackageId)))
                .collect();
            let cache = CacheConfig {
                alpha: 0.8,
                limit_bytes: repo.total_bytes(),
                ..CacheConfig::default()
            };
            let cluster = ClusterConfig {
                workers,
                worker_scratch_bytes: repo.total_bytes() / scratch_divisor,
                dispatch,
                seed: 3,
                faults: crash_per_mille.map(|p| WorkerFaultConfig {
                    crash_per_mille: p,
                    seed: 4,
                    rejoin_after: 3,
                }),
            };
            let result = simulate_cluster_stream(&stream, &repo, cache, &cluster);
            let c = result.cluster;
            prop_assert_eq!(c.jobs as usize, stream.len());
            prop_assert_eq!(c.jobs, c.local_hits + c.transfers);
            prop_assert!(c.local_hit_pct() <= 100.0);
            // Transfers move at least one byte per non-empty image.
            prop_assert!(c.transfer_bytes >= c.transfers.saturating_sub(
                stream.iter().filter(|s| s.is_empty()).count() as u64
            ));
            // Head cache served every job exactly once.
            prop_assert_eq!(result.head.requests as usize, stream.len());
        }
    }
}
