//! Worker-node image distribution — modeling the paper's deployment
//! setting beyond the single shared cache.
//!
//! §V: "We also suppose that each compute node has scratch space
//! available for storing container images locally, but that the total
//! repository contents or the collection of all container images may be
//! too large to store on every worker node."
//!
//! The model: a head node runs LANDLORD's [`ImageCache`]; each job is
//! dispatched to one of `workers` nodes. If the serving image (at its
//! current *revision* — merges rewrite an image in place, invalidating
//! worker copies) is not in the worker's scratch, it is transferred
//! from the head cache, evicting least-recently-used scratch entries to
//! fit. The interesting outputs are the transfer volume and the local
//! hit rate, and how the dispatch policy changes them.

use crate::workload::{self, WorkloadConfig};
use landlord_core::cache::{CacheConfig, CacheStats, ImageCache};
use landlord_core::image::ImageId;
use landlord_core::spec::Spec;
use landlord_repo::Repository;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::Arc;

/// How jobs are assigned to worker nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum Dispatch {
    /// Cycle through workers in order (fair, cache-oblivious).
    #[default]
    RoundRobin,
    /// Uniform random worker per job.
    Random,
    /// Prefer a worker already holding the job's image at the current
    /// revision; fall back to round-robin. This is the data-locality
    /// scheduling HTC systems approximate with ranked matchmaking.
    CacheAware,
}

impl Dispatch {
    /// Stable token for reports and CLI parsing.
    pub fn token(self) -> &'static str {
        match self {
            Dispatch::RoundRobin => "round-robin",
            Dispatch::Random => "random",
            Dispatch::CacheAware => "cache-aware",
        }
    }

    /// Parse a CLI token.
    pub fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "round-robin" => Dispatch::RoundRobin,
            "random" => Dispatch::Random,
            "cache-aware" => Dispatch::CacheAware,
            _ => return None,
        })
    }
}

/// Cluster shape and scheduling policy.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ClusterConfig {
    /// Number of worker nodes.
    pub workers: usize,
    /// Local scratch bytes per worker.
    pub worker_scratch_bytes: u64,
    /// Job dispatch policy.
    pub dispatch: Dispatch,
    /// Seed for the random dispatch policy.
    pub seed: u64,
}

/// Aggregate outcome of a cluster simulation.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct ClusterStats {
    /// Jobs dispatched.
    pub jobs: u64,
    /// Jobs whose image (current revision) was already on the worker.
    pub local_hits: u64,
    /// Image transfers head → worker.
    pub transfers: u64,
    /// Bytes moved over the network.
    pub transfer_bytes: u64,
    /// Scratch evictions across all workers.
    pub scratch_evictions: u64,
}

impl ClusterStats {
    /// Fraction of jobs served from local scratch, percent.
    pub fn local_hit_pct(&self) -> f64 {
        if self.jobs == 0 {
            return 100.0;
        }
        100.0 * self.local_hits as f64 / self.jobs as f64
    }
}

/// Result of a cluster run: head-cache stats plus distribution stats.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClusterResult {
    /// The head node's LANDLORD cache counters.
    pub head: CacheStats,
    /// Worker-side distribution counters.
    pub cluster: ClusterStats,
}

#[derive(Debug, Clone, Copy)]
struct ScratchEntry {
    bytes: u64,
    revision: u64,
    last_used: u64,
}

struct Worker {
    scratch: HashMap<u64, ScratchEntry>, // key: ImageId.0
    used_bytes: u64,
}

impl Worker {
    fn new() -> Self {
        Worker {
            scratch: HashMap::new(),
            used_bytes: 0,
        }
    }

    fn has_current(&self, image: ImageId, revision: u64) -> bool {
        self.scratch
            .get(&image.0)
            .is_some_and(|e| e.revision == revision)
    }

    /// Install an image, evicting LRU entries to fit. Returns evictions.
    fn install(&mut self, image: ImageId, bytes: u64, revision: u64, now: u64, limit: u64) -> u64 {
        if let Some(old) = self.scratch.remove(&image.0) {
            self.used_bytes -= old.bytes;
        }
        let mut evictions = 0;
        while self.used_bytes + bytes > limit {
            let Some((&victim, _)) = self
                .scratch
                .iter()
                .min_by_key(|(id, e)| (e.last_used, **id))
            else {
                break;
            };
            if let Some(removed) = self.scratch.remove(&victim) {
                self.used_bytes -= removed.bytes;
            }
            evictions += 1;
        }
        self.scratch.insert(
            image.0,
            ScratchEntry {
                bytes,
                revision,
                last_used: now,
            },
        );
        self.used_bytes += bytes;
        evictions
    }

    fn touch(&mut self, image: ImageId, now: u64) {
        if let Some(e) = self.scratch.get_mut(&image.0) {
            e.last_used = now;
        }
    }
}

/// Simulate a prepared stream over a head cache plus worker fleet.
pub fn simulate_cluster_stream(
    stream: &[Spec],
    repo: &Repository,
    cache_config: CacheConfig,
    cluster: &ClusterConfig,
) -> ClusterResult {
    assert!(cluster.workers > 0, "need at least one worker");
    let mut head = ImageCache::new(cache_config, Arc::new(repo.size_table()));
    let mut workers: Vec<Worker> = (0..cluster.workers).map(|_| Worker::new()).collect();
    let mut rng = StdRng::seed_from_u64(cluster.seed);
    let mut stats = ClusterStats::default();
    let mut rr_next = 0usize;

    for (now, spec) in stream.iter().enumerate() {
        let now = now as u64 + 1;
        let outcome = head.request(spec);
        let image = outcome.image();
        let bytes = outcome.image_bytes();
        // An image's revision is its merge count: every merge rewrites
        // the file, so worker copies of earlier revisions are stale.
        let revision = head.get(image).map(|i| i.merge_count).unwrap_or(0);

        let target = match cluster.dispatch {
            Dispatch::RoundRobin => {
                let t = rr_next;
                rr_next = (rr_next + 1) % workers.len();
                t
            }
            Dispatch::Random => rng.gen_range(0..workers.len()),
            Dispatch::CacheAware => {
                match (0..workers.len()).find(|&w| workers[w].has_current(image, revision)) {
                    Some(w) => w,
                    None => {
                        let t = rr_next;
                        rr_next = (rr_next + 1) % workers.len();
                        t
                    }
                }
            }
        };

        stats.jobs += 1;
        let worker = &mut workers[target];
        if worker.has_current(image, revision) {
            stats.local_hits += 1;
            worker.touch(image, now);
        } else {
            stats.transfers += 1;
            stats.transfer_bytes += bytes;
            stats.scratch_evictions +=
                worker.install(image, bytes, revision, now, cluster.worker_scratch_bytes);
        }
    }

    ClusterResult {
        head: head.stats(),
        cluster: stats,
    }
}

/// Convenience: generate the workload stream and run the cluster.
pub fn simulate_cluster(
    repo: &Repository,
    workload: &WorkloadConfig,
    cache_config: CacheConfig,
    cluster: &ClusterConfig,
) -> ClusterResult {
    let stream = workload::generate_stream(repo, workload);
    simulate_cluster_stream(&stream, repo, cache_config, cluster)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::WorkloadScheme;
    use landlord_repo::RepoConfig;

    fn repo() -> Repository {
        Repository::generate(&RepoConfig::small_for_tests(71))
    }

    fn workload() -> WorkloadConfig {
        WorkloadConfig {
            unique_jobs: 25,
            repeats: 4,
            max_initial_selection: 6,
            scheme: WorkloadScheme::DependencyClosure,
            seed: 5,
        }
    }

    fn cluster(workers: usize, dispatch: Dispatch, scratch: u64) -> ClusterConfig {
        ClusterConfig {
            workers,
            worker_scratch_bytes: scratch,
            dispatch,
            seed: 1,
        }
    }

    fn cache_cfg(repo: &Repository) -> CacheConfig {
        CacheConfig {
            alpha: 0.8,
            limit_bytes: repo.total_bytes(),
            ..CacheConfig::default()
        }
    }

    #[test]
    fn accounting_adds_up() {
        let r = repo();
        let result = simulate_cluster(
            &r,
            &workload(),
            cache_cfg(&r),
            &cluster(4, Dispatch::RoundRobin, r.total_bytes()),
        );
        let c = result.cluster;
        assert_eq!(c.jobs, 100);
        assert_eq!(c.jobs, c.local_hits + c.transfers);
        assert!(c.transfer_bytes > 0);
        assert_eq!(result.head.requests, 100);
    }

    #[test]
    fn single_worker_with_roomy_scratch_converges_to_local_hits() {
        let r = repo();
        let result = simulate_cluster(
            &r,
            &workload(),
            cache_cfg(&r),
            &cluster(1, Dispatch::RoundRobin, r.total_bytes() * 10),
        );
        // One worker sees every job; once merging settles, repeats are
        // local. Expect a solid local hit rate.
        assert!(
            result.cluster.local_hit_pct() > 30.0,
            "local hits only {:.1}%",
            result.cluster.local_hit_pct()
        );
    }

    #[test]
    fn cache_aware_beats_round_robin_on_transfers() {
        let r = repo();
        let roomy = r.total_bytes() * 10;
        let rr = simulate_cluster(
            &r,
            &workload(),
            cache_cfg(&r),
            &cluster(8, Dispatch::RoundRobin, roomy),
        );
        let ca = simulate_cluster(
            &r,
            &workload(),
            cache_cfg(&r),
            &cluster(8, Dispatch::CacheAware, roomy),
        );
        assert!(
            ca.cluster.transfer_bytes < rr.cluster.transfer_bytes,
            "cache-aware {} >= round-robin {}",
            ca.cluster.transfer_bytes,
            rr.cluster.transfer_bytes
        );
        assert!(ca.cluster.local_hit_pct() > rr.cluster.local_hit_pct());
    }

    #[test]
    fn tiny_scratch_forces_evictions() {
        let r = repo();
        let result = simulate_cluster(
            &r,
            &workload(),
            cache_cfg(&r),
            &cluster(2, Dispatch::RoundRobin, r.total_bytes() / 50),
        );
        assert!(
            result.cluster.scratch_evictions > 0,
            "tiny scratch must evict"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let r = repo();
        let cfg = cluster(4, Dispatch::Random, r.total_bytes());
        let a = simulate_cluster(&r, &workload(), cache_cfg(&r), &cfg);
        let b = simulate_cluster(&r, &workload(), cache_cfg(&r), &cfg);
        assert_eq!(a.cluster.transfer_bytes, b.cluster.transfer_bytes);
        assert_eq!(a.cluster.local_hits, b.cluster.local_hits);
    }

    #[test]
    fn dispatch_tokens_round_trip() {
        for d in [Dispatch::RoundRobin, Dispatch::Random, Dispatch::CacheAware] {
            assert_eq!(Dispatch::parse(d.token()), Some(d));
        }
        assert_eq!(Dispatch::parse("nope"), None);
    }

    #[test]
    fn merged_image_revisions_invalidate_worker_copies() {
        // With very aggressive merging, the head image is rewritten
        // often; workers must re-transfer, so transfers exceed the
        // distinct-image count.
        let r = repo();
        let cfg = CacheConfig {
            alpha: 1.0,
            limit_bytes: r.total_bytes(),
            ..CacheConfig::default()
        };
        let result = simulate_cluster(
            &r,
            &workload(),
            cfg,
            &cluster(1, Dispatch::RoundRobin, r.total_bytes() * 10),
        );
        assert!(
            result.cluster.transfers > result.head.inserts,
            "revision invalidation should force re-transfers: {} vs {}",
            result.cluster.transfers,
            result.head.inserts
        );
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use landlord_core::spec::{PackageId, Spec};
    use landlord_repo::RepoConfig;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Accounting invariants hold for arbitrary streams, dispatch
        /// policies, fleet sizes, and scratch limits.
        #[test]
        fn cluster_accounting_invariants(
            raw_stream in proptest::collection::vec(
                proptest::collection::vec(0u32..200, 1..8),
                1..40,
            ),
            workers in 1usize..12,
            dispatch in prop_oneof![
                Just(Dispatch::RoundRobin),
                Just(Dispatch::Random),
                Just(Dispatch::CacheAware),
            ],
            scratch_divisor in 1u64..50,
        ) {
            let repo = Repository::generate(&RepoConfig::small_for_tests(5));
            let stream: Vec<Spec> = raw_stream
                .into_iter()
                .map(|ids| Spec::from_ids(ids.into_iter().map(PackageId)))
                .collect();
            let cache = CacheConfig {
                alpha: 0.8,
                limit_bytes: repo.total_bytes(),
                ..CacheConfig::default()
            };
            let cluster = ClusterConfig {
                workers,
                worker_scratch_bytes: repo.total_bytes() / scratch_divisor,
                dispatch,
                seed: 3,
            };
            let result = simulate_cluster_stream(&stream, &repo, cache, &cluster);
            let c = result.cluster;
            prop_assert_eq!(c.jobs as usize, stream.len());
            prop_assert_eq!(c.jobs, c.local_hits + c.transfers);
            prop_assert!(c.local_hit_pct() <= 100.0);
            // Transfers move at least one byte per non-empty image.
            prop_assert!(c.transfer_bytes >= c.transfers.saturating_sub(
                stream.iter().filter(|s| s.is_empty()).count() as u64
            ));
            // Head cache served every job exactly once.
            prop_assert_eq!(result.head.requests as usize, stream.len());
        }
    }
}
