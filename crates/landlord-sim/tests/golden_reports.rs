//! Golden-file tests pinning seeded `simulate` reports byte-identical.
//!
//! One fixed scenario (seeded repository, workload, byte limit) is run
//! through every policy token, with and without the fault model, and
//! the [`PolicyReport`] JSON is compared byte-for-byte against the
//! files in `tests/golden/`. Any change to planning, eviction, merge
//! accounting, or the fault loop that shifts a single counter fails
//! here first.
//!
//! To regenerate after an *intentional* behavior change:
//!
//! ```text
//! BLESS_GOLDENS=1 cargo test -p landlord-sim --test golden_reports
//! ```

use landlord_core::cache::CacheConfig;
use landlord_core::policy::RetryPolicy;
use landlord_core::sizes::SizeModel;
use landlord_repo::{RepoConfig, Repository};
use landlord_sim::faults::{simulate_policy_with_faults, FaultConfig};
use landlord_sim::simulator::{make_policy, simulate_policy, PolicyReport, POLICY_TOKENS};
use landlord_sim::workload::{generate_stream, WorkloadConfig, WorkloadScheme};
use std::path::PathBuf;
use std::sync::Arc;

fn scenario() -> (Repository, Vec<landlord_core::spec::Spec>, CacheConfig) {
    let repo = Repository::generate(&RepoConfig::small_for_tests(1234));
    let workload = WorkloadConfig {
        unique_jobs: 60,
        repeats: 3,
        max_initial_selection: 8,
        scheme: WorkloadScheme::DependencyClosure,
        seed: 7,
    };
    let stream = generate_stream(&repo, &workload);
    let cfg = CacheConfig {
        alpha: 0.75,
        limit_bytes: repo.total_bytes() / 3,
        ..CacheConfig::default()
    };
    (repo, stream, cfg)
}

fn fault_config() -> FaultConfig {
    FaultConfig {
        fail_per_mille: 250,
        seed: 99,
        retry: RetryPolicy::new(2, 1, 8),
    }
}

fn report(token: &str, faulted: bool) -> PolicyReport {
    let (repo, stream, cfg) = scenario();
    let sizes: Arc<dyn SizeModel> = Arc::new(repo.size_table());
    let mut policy = make_policy(token, cfg, sizes, repo.total_bytes()).expect("known token");
    if faulted {
        let result = simulate_policy_with_faults(policy.as_mut(), &stream, &fault_config());
        PolicyReport::from_run(token, &result.run, Some(result.faults))
    } else {
        let run = simulate_policy(policy.as_mut(), &stream, 0);
        PolicyReport::from_run(token, &run, None)
    }
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{name}.json"))
}

#[test]
fn golden_reports_are_byte_identical() {
    let bless = std::env::var_os("BLESS_GOLDENS").is_some();
    for &token in POLICY_TOKENS {
        for faulted in [false, true] {
            let name = if faulted {
                format!("{token}-faults")
            } else {
                token.to_string()
            };
            let rendered = format!(
                "{}\n",
                serde_json::to_string_pretty(&report(token, faulted)).unwrap()
            );
            let path = golden_path(&name);
            if bless {
                std::fs::write(&path, &rendered).unwrap();
                continue;
            }
            let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
                panic!("missing golden {path:?} ({e}); regenerate with BLESS_GOLDENS=1")
            });
            assert_eq!(
                rendered, expected,
                "report for `{name}` drifted from {path:?}; if the change \
                 is intentional, regenerate with BLESS_GOLDENS=1"
            );
        }
    }
}

/// Seeded goldens for the LANDLORD policy under every eviction policy,
/// including the stateful ones (S3-FIFO's queue rotation, sampled
/// LHD's seeded victim draws). Byte-identical files pin both the
/// eviction decisions and the RNG stream: a reordered queue op or an
/// extra `rng.next()` call shifts a victim and fails here first.
#[test]
fn eviction_golden_reports_are_byte_identical() {
    use landlord_core::policy::EvictionPolicy;
    let bless = std::env::var_os("BLESS_GOLDENS").is_some();
    for eviction in EvictionPolicy::ALL {
        // Eviction-heavy variant of the shared scenario: α=0 disables
        // merging, so many distinct images stay resident and victim
        // selection is exercised constantly with partial evictions.
        // (The α=0.75 scenario merges down to one image, making every
        // eviction forced and all seven policies byte-identical.)
        let (repo, stream, mut cfg) = scenario();
        cfg.alpha = 0.0;
        cfg.limit_bytes = repo.total_bytes() / 3;
        cfg.eviction = eviction;
        cfg.eviction_seed = 42;
        let sizes: Arc<dyn SizeModel> = Arc::new(repo.size_table());
        let mut policy =
            make_policy("landlord", cfg, sizes, repo.total_bytes()).expect("known token");
        let run = simulate_policy(policy.as_mut(), &stream, 0);
        let report = PolicyReport::from_run("landlord", &run, None);
        let name = format!("eviction-{}", eviction.token());
        let rendered = format!("{}\n", serde_json::to_string_pretty(&report).unwrap());
        let path = golden_path(&name);
        if bless {
            std::fs::write(&path, &rendered).unwrap();
            continue;
        }
        let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!("missing golden {path:?} ({e}); regenerate with BLESS_GOLDENS=1")
        });
        assert_eq!(
            rendered, expected,
            "report for `{name}` drifted from {path:?}; if the change \
             is intentional, regenerate with BLESS_GOLDENS=1"
        );
    }
}

/// The eviction goldens must actually discriminate between policies —
/// if a scenario tweak ever collapses them back to one shared outcome,
/// the per-policy pins stop guarding anything interesting.
#[test]
fn eviction_goldens_diverge_across_policies() {
    use landlord_core::policy::EvictionPolicy;
    use std::collections::BTreeSet;
    let distinct: BTreeSet<String> = EvictionPolicy::ALL
        .iter()
        .map(|p| std::fs::read_to_string(golden_path(&format!("eviction-{}", p.token()))).unwrap())
        .collect();
    assert!(
        distinct.len() >= 4,
        "only {} distinct eviction goldens across 7 policies; the \
         scenario no longer exercises victim selection",
        distinct.len()
    );
}

/// The LANDLORD numbers in the goldens were captured from the
/// pre-refactor monolithic `ImageCache::request` path. Pinning them
/// here too means even a blessed regeneration cannot silently change
/// the engine's behavior on this scenario.
#[test]
fn landlord_goldens_match_the_pre_refactor_engine() {
    let plain = report("landlord", false);
    let s = plain.final_stats;
    assert_eq!(
        (s.requests, s.hits, s.merges, s.inserts, s.deletes),
        (180, 24, 127, 29, 28)
    );
    assert_eq!(s.bytes_written, 30_610_013_723);
    assert_eq!(s.total_bytes, 332_024_302);
    assert_eq!(s.image_count, 1);
    assert_eq!(plain.container_eff_milli, 60_957);
    assert_eq!(plain.cache_eff_milli, 100_000);

    let faulted = report("landlord", true);
    let s = faulted.final_stats;
    assert_eq!(
        (s.requests, s.hits, s.merges, s.inserts, s.deletes),
        (180, 25, 124, 31, 30)
    );
    assert_eq!(s.bytes_written, 29_577_446_183);
    assert_eq!(faulted.container_eff_milli, 62_300);
    let f = faulted.faults.expect("fault stats recorded");
    assert_eq!(f.failed_requests, 0);
    assert_eq!(f.faults, 49);
    assert_eq!(f.retries, 47);
    assert_eq!(f.wasted_bytes, 10_134_000_217);
    assert_eq!(f.degraded_inserts, 2);
}

/// Same pin for the baselines that existed before the refactor: the
/// Ledger rewrite must not move a single counter.
#[test]
fn baseline_goldens_match_the_pre_refactor_accounting() {
    let per_job = report("per-job", false);
    let s = per_job.final_stats;
    assert_eq!(
        (s.requests, s.hits, s.inserts, s.deletes),
        (180, 17, 163, 161)
    );
    assert_eq!(s.bytes_written, 18_535_863_049);
    assert_eq!(s.total_bytes, 197_472_344);
    assert_eq!(s.unique_bytes, 131_203_383);
    assert_eq!(s.image_count, 2);
    assert_eq!(per_job.container_eff_milli, 95_269);
    assert_eq!(per_job.cache_eff_milli, 66_441);

    let full = report("full-repo", false);
    let s = full.final_stats;
    assert_eq!((s.requests, s.hits, s.inserts), (180, 180, 1));
    assert_eq!(s.bytes_written, 999_999_999);
    assert_eq!(s.total_bytes, 999_999_999);
    assert_eq!(full.container_eff_milli, 10_861);
    assert_eq!(full.cache_eff_milli, 100_000);
}
