//! Meta-tests for the structural analyses: known-bad fixtures must
//! produce exactly the pinned findings, known-good fixtures none, and
//! the real workspace must be clean under every analysis.

use landlord_audit::rules::{FileKind, Finding};
use landlord_audit::{analyze_sources, analyze_workspace, find_workspace_root, json_report};
use std::path::Path;

fn analyze(sources: &[(&str, FileKind, &str)], names: &[&str]) -> Vec<Finding> {
    analyze_sources(sources, names)
}

fn lib(src: &str) -> [(&str, FileKind, &str); 1] {
    [("crates/fix/src/lib.rs", FileKind::Lib, src)]
}

// ---------------------------------------------------------------- lock-order

#[test]
fn fixture_workspace_two_lock_inversion_detected() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/lockwork");
    let report = analyze_workspace(&root, &["lock-order"]).expect("fixture tree readable");
    let pinned: Vec<(&str, usize, &str)> = report
        .findings
        .iter()
        .map(|f| (f.file.as_str(), f.line, f.rule))
        .collect();
    assert_eq!(
        pinned,
        vec![
            ("crates/condwait/src/lib.rs", 32, "lock-order"),
            ("crates/condwait/src/lib.rs", 39, "lock-order"),
            ("crates/inversion/src/lib.rs", 14, "lock-order"),
            ("crates/iohold/src/lib.rs", 15, "lock-order"),
        ],
        "exactly the condvar parks, the inversion cycle, and the \
         guard-across-I/O: {:#?}",
        report.findings
    );
    let direct_wait = &report.findings[0];
    assert_eq!(
        direct_wait.message,
        "condvar wait `self.cell.ready.wait(state)` in `Registry::blocked_wait` parks \
         while a guard on `Registry.index` is still held: a wait releases only its own guard"
    );
    let wait_via_call = &report.findings[1];
    assert_eq!(
        wait_via_call.message,
        "guard on `Registry.index` held across a condvar wait in `Registry::blocked_call`: \
         `Cell::wait_ready` reaches self.ready.wait"
    );
    let cycle = &report.findings[2];
    assert_eq!(
        cycle.message,
        "lock-order cycle: `Pair.a` -> `Pair.b` (crates/inversion/src/lib.rs:14), \
         `Pair.b` -> `Pair.a` (crates/inversion/src/lib.rs:20)"
    );
    let held = &report.findings[3];
    assert!(
        held.message
            .contains("`Logger.entries` held across store I/O (`std::fs::write`)"),
        "unexpected message: {}",
        held.message
    );
}

#[test]
fn consistent_order_with_drop_release_is_clean() {
    let src = "impl Pair {\n\
        \x20   pub fn ok(&self) -> u64 {\n\
        \x20       let ga = self.a.lock();\n\
        \x20       drop(ga);\n\
        \x20       let gb = self.b.lock();\n\
        \x20       *gb\n\
        \x20   }\n\
        \x20   pub fn rev(&self) -> u64 {\n\
        \x20       let gb = self.b.lock();\n\
        \x20       let ga = self.a.lock();\n\
        \x20       *ga + *gb\n\
        \x20   }\n\
        }\n";
    assert!(
        analyze(&lib(src), &["lock-order"]).is_empty(),
        "drop(ga) releases the guard, so only the b->a order exists"
    );
}

#[test]
fn inversion_through_a_resolved_call_is_detected() {
    let src = "impl Hub {\n\
        \x20   fn tail(&self) -> u64 {\n\
        \x20       *self.b.lock()\n\
        \x20   }\n\
        \x20   pub fn head(&self) -> u64 {\n\
        \x20       let ga = self.a.lock();\n\
        \x20       *ga + self.tail()\n\
        \x20   }\n\
        \x20   pub fn rev(&self) -> u64 {\n\
        \x20       let gb = self.b.lock();\n\
        \x20       let ga = self.a.lock();\n\
        \x20       *ga + *gb\n\
        \x20   }\n\
        }\n";
    let findings = analyze(&lib(src), &["lock-order"]);
    assert_eq!(findings.len(), 1, "one cycle: {findings:#?}");
    assert!(findings[0].message.contains("lock-order cycle"));
    assert!(findings[0].message.contains("Hub.a"));
    assert!(findings[0].message.contains("Hub.b"));
}

#[test]
fn reacquiring_the_same_lock_is_detected() {
    let src = "impl S {\n\
        \x20   pub fn double(&self) -> u64 {\n\
        \x20       let g1 = self.m.lock();\n\
        \x20       let g2 = self.m.lock();\n\
        \x20       *g1 + *g2\n\
        \x20   }\n\
        }\n";
    let findings = analyze(&lib(src), &["lock-order"]);
    assert_eq!(findings.len(), 1);
    assert!(findings[0].message.contains("re-acquired"));
    assert_eq!(findings[0].line, 4);
}

#[test]
fn read_then_write_upgrade_after_if_let_is_clean() {
    // The MetricsRegistry shape: the read guard is an `if let`
    // scrutinee temporary, dead before the write on the next
    // statement. Regression test for the false self-deadlock.
    let src = "impl R {\n\
        \x20   pub fn get_or_insert(&self) -> u64 {\n\
        \x20       if let Some(v) = self.map.read().get(&1) {\n\
        \x20           return *v;\n\
        \x20       }\n\
        \x20       *self.map.write().entry(1).or_default()\n\
        \x20   }\n\
        }\n";
    assert!(analyze(&lib(src), &["lock-order"]).is_empty());
}

#[test]
fn let_else_guard_temporary_is_clean() {
    // The DiskStore::remove shape: the write guard is consumed by
    // `.remove()` inside the let-else initializer and is dead before
    // the file I/O below. Regression test for the false
    // guard-across-I/O.
    let src = "impl D {\n\
        \x20   pub fn remove(&self) -> std::io::Result<u64> {\n\
        \x20       let Some(size) = self.index.write().remove(&1) else {\n\
        \x20           return Ok(0);\n\
        \x20       };\n\
        \x20       std::fs::remove_file(\"x\")?;\n\
        \x20       Ok(size)\n\
        \x20   }\n\
        }\n";
    assert!(analyze(&lib(src), &["lock-order"]).is_empty());
}

#[test]
fn let_bound_match_guard_dropped_before_io_is_clean() {
    // The poison-tolerant lock shape: the guard is bound through a
    // `match` expression and explicitly dropped before the file I/O.
    // The match braces are part of the binding statement, not a
    // header block — the drop must still be honoured.
    let src = "impl E {\n\
        \x20   pub fn export(&self) -> std::io::Result<()> {\n\
        \x20       let events = match self.buf.lock() {\n\
        \x20           Ok(events) => events,\n\
        \x20           Err(poisoned) => poisoned.into_inner(),\n\
        \x20       };\n\
        \x20       let body = events.join(\"n\");\n\
        \x20       drop(events);\n\
        \x20       std::fs::write(\"x\", body)\n\
        \x20   }\n\
        }\n";
    assert!(
        analyze(&lib(src), &["lock-order"]).is_empty(),
        "drop(events) releases the match-bound guard before the I/O"
    );
}

#[test]
fn let_bound_match_guard_held_across_io_is_flagged() {
    let src = "impl E {\n\
        \x20   pub fn export(&self) -> std::io::Result<()> {\n\
        \x20       let events = match self.buf.lock() {\n\
        \x20           Ok(events) => events,\n\
        \x20           Err(poisoned) => poisoned.into_inner(),\n\
        \x20       };\n\
        \x20       std::fs::write(\"x\", events.join(\"n\"))\n\
        \x20   }\n\
        }\n";
    let findings = analyze(&lib(src), &["lock-order"]);
    assert_eq!(findings.len(), 1, "{findings:#?}");
    assert!(findings[0].message.contains("held across store I/O"));
}

#[test]
fn io_read_write_with_arguments_are_not_acquisitions() {
    let src = "impl F {\n\
        \x20   pub fn copy(&mut self, buf: &mut [u8]) -> std::io::Result<()> {\n\
        \x20       self.input.read(buf)?;\n\
        \x20       self.output.write(buf)?;\n\
        \x20       Ok(())\n\
        \x20   }\n\
        }\n";
    assert!(
        analyze(&lib(src), &["lock-order"]).is_empty(),
        "io::Read/Write calls take arguments, RwLock acquisitions do not"
    );
}

#[test]
fn condvar_wait_on_its_own_guard_is_clean() {
    // The Flight::wait shape: a method named `wait` that locks its own
    // state and parks on its own condvar, releasing exactly that guard.
    // Regression test: `self.done.wait(state)` used to resolve to the
    // enclosing workspace `wait` method itself and report a bogus
    // self-re-acquire.
    let src = "impl Flight {\n\
        \x20   pub fn wait(&self) -> u64 {\n\
        \x20       let mut state = self.state.lock();\n\
        \x20       while *state == 0 {\n\
        \x20           state = self.done.wait(state);\n\
        \x20       }\n\
        \x20       *state\n\
        \x20   }\n\
        }\n";
    assert!(
        analyze(&lib(src), &["lock-order"]).is_empty(),
        "waiting with only your own guard is the legitimate single-flight shape"
    );
}

#[test]
fn condvar_wait_while_second_guard_held_is_flagged() {
    let src = "impl Hub {\n\
        \x20   pub fn drain(&self) -> u64 {\n\
        \x20       let map = self.map.lock();\n\
        \x20       let mut state = self.state.lock();\n\
        \x20       while *state == 0 {\n\
        \x20           state = self.done.wait(state);\n\
        \x20       }\n\
        \x20       *state + *map\n\
        \x20   }\n\
        }\n";
    let findings = analyze(&lib(src), &["lock-order"]);
    assert_eq!(findings.len(), 1, "{findings:#?}");
    assert_eq!(findings[0].line, 6);
    assert!(findings[0]
        .message
        .contains("parks while a guard on `Hub.map`"));
    assert!(findings[0].message.contains("self.done.wait(state)"));
}

#[test]
fn by_ref_condvar_wait_is_recognised() {
    // parking_lot's real Condvar takes the guard by `&mut`.
    let src = "impl Hub {\n\
        \x20   pub fn drain(&self) -> u64 {\n\
        \x20       let map = self.map.lock();\n\
        \x20       let mut state = self.state.lock();\n\
        \x20       self.done.wait(&mut state);\n\
        \x20       *state + *map\n\
        \x20   }\n\
        }\n";
    let findings = analyze(&lib(src), &["lock-order"]);
    assert_eq!(findings.len(), 1, "{findings:#?}");
    assert!(findings[0]
        .message
        .contains("parks while a guard on `Hub.map`"));
}

#[test]
fn call_reaching_a_condvar_wait_while_guard_held_is_flagged() {
    let src = "impl Hub {\n\
        \x20   fn park(&self) -> u64 {\n\
        \x20       let mut state = self.state.lock();\n\
        \x20       state = self.done.wait(state);\n\
        \x20       *state\n\
        \x20   }\n\
        \x20   pub fn blocked(&self) -> u64 {\n\
        \x20       let map = self.map.lock();\n\
        \x20       self.park() + *map\n\
        \x20   }\n\
        }\n";
    let findings = analyze(&lib(src), &["lock-order"]);
    assert_eq!(findings.len(), 1, "{findings:#?}");
    assert_eq!(findings[0].line, 9);
    assert!(
        findings[0]
            .message
            .contains("guard on `Hub.map` held across a condvar wait"),
        "{}",
        findings[0].message
    );
    assert!(findings[0]
        .message
        .contains("`Hub::park` reaches self.done.wait"));
}

#[test]
fn condvar_findings_respect_allows() {
    let src = "impl Hub {\n\
        \x20   pub fn drain(&self) -> u64 {\n\
        \x20       let map = self.map.lock();\n\
        \x20       let mut state = self.state.lock();\n\
        \x20       // audit: allow(lock-order) -- fixture exercising the escape hatch\n\
        \x20       state = self.done.wait(state);\n\
        \x20       *state + *map\n\
        \x20   }\n\
        }\n";
    assert!(analyze(&lib(src), &["lock-order"]).is_empty());
}

#[test]
fn lock_order_findings_respect_allows() {
    let src = "impl S {\n\
        \x20   pub fn double(&self) -> u64 {\n\
        \x20       let g1 = self.m.lock();\n\
        \x20       // audit: allow(lock-order) -- fixture exercising the escape hatch\n\
        \x20       let g2 = self.m.lock();\n\
        \x20       *g1 + *g2\n\
        \x20   }\n\
        }\n";
    assert!(analyze(&lib(src), &["lock-order"]).is_empty());
}

// ------------------------------------------------------------ atomic-ordering

#[test]
fn unannotated_relaxed_is_flagged() {
    let src = "impl C {\n\
        \x20   pub fn bump(&self) {\n\
        \x20       self.v.fetch_add(1, Ordering::Relaxed);\n\
        \x20   }\n\
        }\n";
    let findings = analyze(&lib(src), &["atomic-ordering"]);
    assert_eq!(findings.len(), 1);
    assert_eq!(findings[0].line, 3);
    assert_eq!(findings[0].rule, "atomic-ordering");
}

#[test]
fn sync_notes_cover_the_site_and_two_lines_above() {
    let trailing = "fn f(v: &AtomicU64) {\n\
        \x20   v.store(1, Ordering::Relaxed); // sync: test fixture counter\n\
        }\n";
    assert!(analyze(&lib(trailing), &["atomic-ordering"]).is_empty());

    let above = "fn f(v: &AtomicU64) {\n\
        \x20   // sync: monotone counter, no payload\n\
        \x20   v.store(1, Ordering::Relaxed);\n\
        }\n";
    assert!(analyze(&lib(above), &["atomic-ordering"]).is_empty());

    let two_above = "fn f(v: &AtomicU64) {\n\
        \x20   // sync: monotone counter, no payload,\n\
        \x20   // so relaxed is enough\n\
        \x20   v.store(1, Ordering::Relaxed);\n\
        }\n";
    assert!(analyze(&lib(two_above), &["atomic-ordering"]).is_empty());

    let three_above = "fn f(v: &AtomicU64) {\n\
        \x20   // sync: too far away\n\
        \x20   //\n\
        \x20   //\n\
        \x20   v.store(1, Ordering::Relaxed);\n\
        }\n";
    assert_eq!(analyze(&lib(three_above), &["atomic-ordering"]).len(), 1);
}

#[test]
fn relaxed_in_test_code_is_exempt() {
    let src = "#[cfg(test)]\n\
        mod tests {\n\
        \x20   #[test]\n\
        \x20   fn t() {\n\
        \x20       V.store(1, Ordering::Relaxed);\n\
        \x20   }\n\
        }\n";
    assert!(analyze(&lib(src), &["atomic-ordering"]).is_empty());
}

#[test]
fn relaxed_in_strings_and_comments_is_ignored() {
    let src = "fn f() -> &'static str {\n\
        \x20   // A doc mention of Ordering::Relaxed is not a use.\n\
        \x20   \"Ordering::Relaxed\"\n\
        }\n";
    assert!(analyze(&lib(src), &["atomic-ordering"]).is_empty());
}

#[test]
fn atomic_ordering_respects_allows() {
    let src = "fn f(v: &AtomicU64) {\n\
        \x20   // audit: allow(atomic-ordering) -- legacy site pending upgrade\n\
        \x20   v.store(1, Ordering::Relaxed);\n\
        }\n";
    assert!(analyze(&lib(src), &["atomic-ordering"]).is_empty());
}

// ------------------------------------------------------------ counter-overflow

#[test]
fn raw_addition_in_merge_path_is_flagged() {
    let src = "impl Stats {\n\
        \x20   pub fn merge(&mut self, other: &Stats) {\n\
        \x20       self.total_bytes += other.total_bytes;\n\
        \x20   }\n\
        }\n";
    let findings = analyze(&lib(src), &["counter-overflow"]);
    assert_eq!(findings.len(), 1);
    assert_eq!(findings[0].line, 3);
    assert!(findings[0].message.contains("total_bytes"));
    assert!(findings[0].message.contains("Stats::merge"));
}

#[test]
fn multiplication_of_counters_in_fold_path_is_flagged() {
    let src = "impl Stats {\n\
        \x20   pub fn fold_in(&mut self, n: u64) {\n\
        \x20       self.total = self.count * n;\n\
        \x20   }\n\
        }\n";
    assert_eq!(analyze(&lib(src), &["counter-overflow"]).len(), 1);
}

#[test]
fn saturating_arithmetic_in_merge_path_is_clean() {
    let src = "impl Stats {\n\
        \x20   pub fn merge(&mut self, other: &Stats) {\n\
        \x20       self.total_bytes = self.total_bytes.saturating_add(other.total_bytes);\n\
        \x20       self.hits = self.hits.checked_add(other.hits).unwrap_or(u64::MAX);\n\
        \x20   }\n\
        }\n";
    assert!(analyze(&lib(src), &["counter-overflow"]).is_empty());
}

#[test]
fn raw_addition_outside_merge_paths_is_not_flagged() {
    let src = "impl Stats {\n\
        \x20   pub fn record(&mut self) {\n\
        \x20       self.total_bytes += 1;\n\
        \x20   }\n\
        }\n";
    assert!(analyze(&lib(src), &["counter-overflow"]).is_empty());
}

#[test]
fn float_accumulators_are_exempt() {
    let src = "impl Eff {\n\
        \x20   pub fn merge(&mut self, other: &Eff) {\n\
        \x20       self.sum_pct += other.sum_pct;\n\
        \x20   }\n\
        }\n";
    assert!(analyze(&lib(src), &["counter-overflow"]).is_empty());
}

#[test]
fn counter_overflow_respects_allows() {
    let src = "impl Stats {\n\
        \x20   pub fn merge(&mut self, other: &Stats) {\n\
        \x20       // audit: allow(counter-overflow) -- fixture exercising the escape hatch\n\
        \x20       self.total_bytes += other.total_bytes;\n\
        \x20   }\n\
        }\n";
    assert!(analyze(&lib(src), &["counter-overflow"]).is_empty());
}

// ------------------------------------------------------------------ workspace

#[test]
fn real_workspace_is_clean_under_all_analyses() {
    let here = Path::new(env!("CARGO_MANIFEST_DIR"));
    let root = find_workspace_root(here).expect("workspace root above the audit crate");
    let report = analyze_workspace(
        &root,
        &["lock-order", "atomic-ordering", "counter-overflow"],
    )
    .expect("workspace tree readable");
    assert!(
        report.files_scanned > 50,
        "sanity: the real tree was scanned ({} files)",
        report.files_scanned
    );
    assert!(
        report.findings.is_empty(),
        "the workspace must stay clean under every structural analysis — a lock cycle, \
         unannotated Relaxed, or raw merge arithmetic fails the suite:\n{:#?}",
        report.findings
    );
}

// ----------------------------------------------------------------------- json

#[test]
fn json_report_shape_and_escaping() {
    let findings = vec![Finding {
        file: "crates/x/src/lib.rs".to_string(),
        line: 7,
        rule: "lock-order",
        message: "guard on `A.b` held across \"io\"".to_string(),
    }];
    let json = json_report(&["rules", "lock-order"], 42, &findings);
    assert!(json.contains("\"passes\": [\"rules\", \"lock-order\"]"));
    assert!(json.contains("\"files_scanned\": 42"));
    assert!(json.contains("\"finding_count\": 1"));
    assert!(json.contains("\"line\": 7"));
    assert!(json.contains("held across \\\"io\\\""));

    let empty = json_report(&["rules"], 42, &[]);
    assert!(empty.contains("\"findings\": []"));
}
