//! Fixture tests: every rule must (a) fire on a seeded violation,
//! (b) honour an `// audit: allow(..)` directive, and (c) exempt test
//! code. The final test audits the real workspace and demands zero
//! findings, so the lint gate in CI can never silently rot.

use landlord_audit::rules::FileKind;
use landlord_audit::{audit_source, find_workspace_root};

fn findings(kind: FileKind, src: &str) -> Vec<&'static str> {
    audit_source("fixture.rs", kind, src)
        .into_iter()
        .map(|f| f.rule)
        .collect()
}

// ---- R1: no-panic-path -------------------------------------------------

#[test]
fn no_panic_path_fires_on_expect() {
    let src = "fn f() {\n    let v = map.get(&k).expect(\"missing\");\n}\n";
    assert_eq!(findings(FileKind::StrictLib, src), vec!["no-panic-path"]);
}

#[test]
fn no_panic_path_honours_allow() {
    let src = "fn f() {\n    // audit: allow(no-panic-path) -- fixture exercises the allowlist\n    let v = map.get(&k).expect(\"missing\");\n}\n";
    assert!(findings(FileKind::StrictLib, src).is_empty());
}

#[test]
fn no_panic_path_exempts_test_code() {
    let src = "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {\n        map.get(&k).expect(\"missing\");\n    }\n}\n";
    assert!(findings(FileKind::StrictLib, src).is_empty());
}

#[test]
fn no_panic_path_only_applies_to_strict_crates() {
    let src = "fn f() {\n    let v = map.get(&k).unwrap();\n}\n";
    assert!(findings(FileKind::Lib, src).is_empty());
    assert!(findings(FileKind::Support, src).is_empty());
}

// ---- R2: lossy-cast ----------------------------------------------------

#[test]
fn lossy_cast_fires_on_narrowed_counter() {
    let src = "fn f(total_bytes: u64) -> u32 {\n    total_bytes as u32\n}\n";
    assert_eq!(findings(FileKind::Lib, src), vec!["lossy-cast"]);
}

#[test]
fn lossy_cast_honours_allow() {
    let src = "fn f(total_bytes: u64) -> u32 {\n    total_bytes as u32 // audit: allow(lossy-cast) -- fixture exercises the allowlist\n}\n";
    assert!(findings(FileKind::Lib, src).is_empty());
}

#[test]
fn lossy_cast_exempts_test_code() {
    let src = "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {\n        let x = total_bytes as u32;\n    }\n}\n";
    assert!(findings(FileKind::Lib, src).is_empty());
}

#[test]
fn lossy_cast_permits_widening_to_usize() {
    let src = "fn f(b: [u8; 4]) -> usize {\n    u32::from_le_bytes(b) as usize\n}\n";
    assert!(findings(FileKind::Lib, src).is_empty());
}

// ---- R3: float-eq ------------------------------------------------------

#[test]
fn float_eq_fires_on_exact_comparison() {
    let src = "fn f(a: f64) -> bool {\n    jaccard_distance(a) == 0.5\n}\n";
    assert_eq!(findings(FileKind::Lib, src), vec!["float-eq"]);
}

#[test]
fn float_eq_honours_allow() {
    let src = "fn f(a: f64) -> bool {\n    // audit: allow(float-eq) -- fixture exercises the allowlist\n    jaccard_distance(a) == 0.5\n}\n";
    assert!(findings(FileKind::Lib, src).is_empty());
}

#[test]
fn float_eq_exempts_test_code() {
    let src = "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {\n        assert!(jaccard_distance(a) == 0.5);\n    }\n}\n";
    assert!(findings(FileKind::Lib, src).is_empty());
}

#[test]
fn float_eq_permits_integer_scaled_values() {
    let src = "fn f(distance_milli: u64) -> bool {\n    distance_milli == 500\n}\n";
    assert!(findings(FileKind::Lib, src).is_empty());
}

// ---- R4: unseeded-rng --------------------------------------------------

#[test]
fn unseeded_rng_fires_on_thread_rng() {
    let src = "fn f() {\n    let mut rng = thread_rng();\n}\n";
    assert_eq!(findings(FileKind::Lib, src), vec!["unseeded-rng"]);
}

#[test]
fn unseeded_rng_honours_allow() {
    let src = "fn f() {\n    let mut rng = thread_rng(); // audit: allow(unseeded-rng) -- fixture exercises the allowlist\n}\n";
    assert!(findings(FileKind::Lib, src).is_empty());
}

#[test]
fn unseeded_rng_exempts_test_code() {
    let src = "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {\n        let mut rng = thread_rng();\n    }\n}\n";
    assert!(findings(FileKind::Lib, src).is_empty());
}

#[test]
fn unseeded_rng_applies_to_benches_too() {
    // Benchmarks must be reproducible as well.
    let src = "fn bench() {\n    let mut rng = StdRng::from_entropy();\n}\n";
    assert_eq!(findings(FileKind::Support, src), vec!["unseeded-rng"]);
}

// ---- R5: guard-across-closure ------------------------------------------

#[test]
fn guard_across_closure_fires() {
    let src = "fn f(&self) {\n    let n = self.inner.lock().apply(|c| c.len());\n}\n";
    assert_eq!(findings(FileKind::Lib, src), vec!["guard-across-closure"]);
}

#[test]
fn guard_across_closure_honours_allow() {
    let src = "fn f(&self) {\n    // audit: allow(guard-across-closure) -- fixture exercises the allowlist\n    let n = self.inner.lock().apply(|c| c.len());\n}\n";
    assert!(findings(FileKind::Lib, src).is_empty());
}

#[test]
fn guard_across_closure_sanctions_with_cache() {
    let src = "fn with_cache(&self) {\n    let n = self.inner.lock().apply(|c| c.len());\n}\n";
    assert!(findings(FileKind::Lib, src).is_empty());
}

#[test]
fn guard_across_closure_exempts_test_code() {
    let src = "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {\n        let n = m.lock().apply(|c| c.len());\n    }\n}\n";
    assert!(findings(FileKind::Lib, src).is_empty());
}

// ---- R6: test-invariants -----------------------------------------------

#[test]
fn test_invariants_fires_on_unchecked_mutation() {
    let src = "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {\n        let mut c = ImageCache::new(cfg, sizes);\n        c.request(&spec);\n    }\n}\n";
    assert_eq!(findings(FileKind::StrictLib, src), vec!["test-invariants"]);
}

#[test]
fn test_invariants_satisfied_by_check_call() {
    let src = "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {\n        let mut c = ImageCache::new(cfg, sizes);\n        c.request(&spec);\n        c.check_invariants();\n    }\n}\n";
    assert!(findings(FileKind::StrictLib, src).is_empty());
}

#[test]
fn test_invariants_honours_allow() {
    let src = "#[cfg(test)]\nmod tests {\n    #[test]\n    // audit: allow(test-invariants) -- fixture exercises the allowlist\n    fn t() {\n        let mut c = ImageCache::new(cfg, sizes);\n        c.request(&spec);\n    }\n}\n";
    assert!(findings(FileKind::StrictLib, src).is_empty());
}

#[test]
fn test_invariants_ignores_read_only_tests() {
    let src = "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {\n        let c = ImageCache::new(cfg, sizes);\n        assert!(c.is_empty());\n    }\n}\n";
    assert!(findings(FileKind::StrictLib, src).is_empty());
}

// ---- R7: no-silent-io-drop ---------------------------------------------

#[test]
fn silent_io_drop_fires_on_let_underscore() {
    let src = "fn f(p: &Path) {\n    let _ = std::fs::remove_file(p);\n}\n";
    assert_eq!(findings(FileKind::Lib, src), vec!["no-silent-io-drop"]);
}

#[test]
fn silent_io_drop_fires_on_bare_ok() {
    let src = "fn f(a: &Path, b: &Path) {\n    std::fs::rename(a, b).ok();\n}\n";
    assert_eq!(findings(FileKind::Lib, src), vec!["no-silent-io-drop"]);
}

#[test]
fn silent_io_drop_fires_across_continuation_lines() {
    let src = "fn f(a: &Path, b: &Path) {\n    std::fs::rename(a, b)\n        .ok();\n}\n";
    assert_eq!(findings(FileKind::Lib, src), vec!["no-silent-io-drop"]);
}

#[test]
fn silent_io_drop_honours_allow() {
    let src = "fn f(p: &Path) {\n    // audit: allow(no-silent-io-drop) -- fixture exercises the allowlist\n    let _ = std::fs::remove_file(p);\n}\n";
    assert!(findings(FileKind::Lib, src).is_empty());
}

#[test]
fn silent_io_drop_exempts_test_code() {
    let src = "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {\n        std::fs::remove_dir_all(&dir).ok();\n    }\n}\n";
    assert!(findings(FileKind::Lib, src).is_empty());
}

#[test]
fn silent_io_drop_ignores_non_io_discards() {
    // `let _ =` on plain values and fmt writes to Strings are idiomatic.
    let src = "fn f(out: &mut String, pos: usize) {\n    let _ = pos;\n    let _ = writeln!(out, \"header\");\n}\n";
    assert!(findings(FileKind::Lib, src).is_empty());
}

#[test]
fn silent_io_drop_permits_bound_ok_values() {
    let src = "fn f(p: &Path) -> bool {\n    let removed = std::fs::remove_file(p).ok();\n    removed.is_some()\n}\n";
    assert!(findings(FileKind::Lib, src).is_empty());
}

// ---- R7 (durability half): fsync-before-ack ----------------------------

fn findings_in(file: &str, src: &str) -> Vec<&'static str> {
    audit_source(file, FileKind::Lib, src)
        .into_iter()
        .map(|f| f.rule)
        .collect()
}

#[test]
fn fsync_before_ack_fires_on_unsynced_wal_append() {
    let src = "impl Wal {\n    pub fn append(&mut self, frame: &[u8]) -> io::Result<u64> {\n        self.file.write_all(frame)?;\n        Ok(self.bump())\n    }\n}\n";
    assert_eq!(
        findings_in("crates/landlord-wal/src/log.rs", src),
        vec!["no-silent-io-drop"]
    );
}

#[test]
fn fsync_before_ack_fires_on_unsynced_checkpoint_rename() {
    let src = "fn write_state(dir: &Path, bytes: &[u8]) -> io::Result<()> {\n    std::fs::write(dir.join(\"tmp\"), bytes)?;\n    std::fs::rename(dir.join(\"tmp\"), dir.join(\"state.json\"))\n}\n";
    assert_eq!(
        findings_in("crates/landlord-cli/src/persistent.rs", src),
        vec!["no-silent-io-drop"]
    );
}

#[test]
fn fsync_before_ack_accepts_synced_writes() {
    let src = "impl Wal {\n    pub fn append(&mut self, frame: &[u8]) -> io::Result<u64> {\n        self.file.write_all(frame)?;\n        self.file.sync_data()?;\n        Ok(self.bump())\n    }\n}\n";
    assert!(findings_in("crates/landlord-wal/src/log.rs", src).is_empty());
    // A dir-fsync helper call counts: the sync happens, just not via a
    // direct method on the written file.
    let src = "fn move_in(dir: &Path, a: &Path, b: &Path) -> io::Result<()> {\n    std::fs::rename(a, b)?;\n    fsync_dir(dir)\n}\n";
    assert!(findings_in("crates/landlord-cli/src/persistent.rs", src).is_empty());
}

#[test]
fn fsync_before_ack_is_scoped_to_the_durability_layer() {
    // The same unsynced write outside landlord-wal / persistent.rs is
    // ordinary IO — other rules may care, this one must not.
    let src = "fn jot(p: &Path, line: &[u8]) -> io::Result<()> {\n    let mut f = std::fs::File::create(p)?;\n    f.write_all(line)\n}\n";
    assert!(findings_in("crates/landlord-core/src/cache/mod.rs", src).is_empty());
}

#[test]
fn fsync_before_ack_exempts_test_code_and_honours_allow() {
    let src = "#[cfg(test)]\nmod tests {\n    fn scribble(p: &Path, b: &[u8]) -> io::Result<()> {\n        std::fs::File::create(p)?.write_all(b)\n    }\n}\n";
    assert!(findings_in("crates/landlord-wal/src/log.rs", src).is_empty());
    let src = "// audit: allow(no-silent-io-drop) -- fixture exercises the allowlist\nfn jot(f: &mut File, b: &[u8]) -> io::Result<()> {\n    f.write_all(b)\n}\n";
    assert!(findings_in("crates/landlord-wal/src/log.rs", src).is_empty());
}

// ---- R10: no-unsafe ----------------------------------------------------

#[test]
fn no_unsafe_fires_on_unsafe_block() {
    let src = "fn f(p: *const u8) -> u8 {\n    unsafe { *p }\n}\n";
    assert_eq!(findings(FileKind::Lib, src), vec!["no-unsafe"]);
}

#[test]
fn no_unsafe_fires_even_in_test_code() {
    // Unlike the other rules, unsafety in tests is still unsafety:
    // a UB-laden test poisons every suite run that includes it.
    let src = "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {\n        let v = unsafe { std::mem::zeroed::<u64>() };\n        assert_eq!(v, 0);\n    }\n}\n";
    assert_eq!(findings(FileKind::Lib, src), vec!["no-unsafe"]);
}

#[test]
fn no_unsafe_honours_allow_with_safety_argument() {
    let src = "fn f(p: *const u8) -> u8 {\n    // audit: allow(no-unsafe) -- caller guarantees p outlives the call\n    unsafe { *p }\n}\n";
    assert!(findings(FileKind::Lib, src).is_empty());
}

#[test]
fn no_unsafe_ignores_mentions_in_comments_and_strings() {
    let src =
        "fn f() -> &'static str {\n    // The word unsafe in prose is fine.\n    \"unsafe\"\n}\n";
    assert!(findings(FileKind::Lib, src).is_empty());
}

// ---- Allow hygiene -----------------------------------------------------

#[test]
fn allow_with_unknown_rule_is_flagged() {
    let src = "fn f() {\n    // audit: allow(no-such-rule) -- bogus\n    let x = 1;\n}\n";
    assert_eq!(findings(FileKind::Lib, src), vec!["bad-allow"]);
}

#[test]
fn allow_without_reason_is_flagged() {
    let src = "fn f() {\n    // audit: allow(no-panic-path)\n    let v = map.get(&k).expect(\"missing\");\n}\n";
    let rules = findings(FileKind::StrictLib, src);
    assert!(rules.contains(&"bad-allow"), "{rules:?}");
}

#[test]
fn allow_that_suppresses_nothing_is_flagged() {
    let src = "fn f() {\n    // audit: allow(no-panic-path) -- stale\n    let x = 1;\n}\n";
    assert_eq!(findings(FileKind::Lib, src), vec!["bad-allow"]);
}

// ---- Meta: the real workspace is clean ---------------------------------

#[test]
fn real_workspace_has_zero_findings() {
    let manifest = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
    let root = find_workspace_root(manifest).expect("workspace root above the audit crate");
    let report = landlord_audit::audit_workspace(&root).expect("workspace scan succeeds");
    assert!(
        report.findings.is_empty(),
        "the workspace must stay audit-clean; run `cargo run -p landlord-audit`:\n{}",
        report
            .findings
            .iter()
            .map(|f| format!("{}:{}: [{}] {}", f.file, f.line, f.rule, f.message))
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(report.files_scanned > 50, "scan walked the whole tree");
}
