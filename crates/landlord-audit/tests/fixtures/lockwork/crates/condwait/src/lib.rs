//! Known-bad: condvar waits that park while an unrelated guard is
//! still held — directly and through a call — plus the known-good
//! single-flight shape that waits with only its own guard.

use parking_lot::{Condvar, Mutex};

pub struct Cell {
    state: Mutex<u64>,
    ready: Condvar,
}

impl Cell {
    pub fn wait_ready(&self) -> u64 {
        let mut state = self.state.lock();
        while *state == 0 {
            state = self.ready.wait(state);
        }
        *state
    }
}

pub struct Registry {
    index: Mutex<u64>,
    cell: Cell,
}

impl Registry {
    pub fn blocked_wait(&self) -> u64 {
        let index = self.index.lock();
        let mut state = self.cell.state.lock();
        while *state == 0 {
            state = self.cell.ready.wait(state);
        }
        *state + *index
    }

    pub fn blocked_call(&self) -> u64 {
        let index = self.index.lock();
        self.cell.wait_ready() + *index
    }
}
