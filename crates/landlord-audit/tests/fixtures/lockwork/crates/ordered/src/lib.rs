//! Known-good: both paths take the locks in the same order, so the
//! lock graph has an a→b edge but no cycle.

use parking_lot::Mutex;

pub struct Consistent {
    a: Mutex<u64>,
    b: Mutex<u64>,
}

impl Consistent {
    pub fn sum(&self) -> u64 {
        let ga = self.a.lock();
        let gb = self.b.lock();
        *ga + *gb
    }

    pub fn swap_halves(&self) -> u64 {
        let ga = self.a.lock();
        let gb = self.b.lock();
        *gb - *ga
    }

    pub fn only_b(&self) -> u64 {
        *self.b.lock()
    }
}
