//! Known-bad: a deliberate two-lock inversion. `forward` takes a then
//! b; `backward` takes b then a — the classic AB/BA deadlock.

use parking_lot::Mutex;

pub struct Pair {
    a: Mutex<u64>,
    b: Mutex<u64>,
}

impl Pair {
    pub fn forward(&self) -> u64 {
        let ga = self.a.lock();
        let gb = self.b.lock();
        *ga + *gb
    }

    pub fn backward(&self) -> u64 {
        let gb = self.b.lock();
        let ga = self.a.lock();
        *ga + *gb
    }
}
