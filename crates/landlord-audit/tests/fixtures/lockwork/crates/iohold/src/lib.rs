//! Known-bad: a guard held across file I/O (the journal-export bug
//! shape), plus a known-good sibling that releases first.

use parking_lot::Mutex;
use std::io;
use std::path::Path;

pub struct Logger {
    entries: Mutex<Vec<String>>,
}

impl Logger {
    pub fn dump_holding_guard(&self, path: &Path) -> io::Result<()> {
        let entries = self.entries.lock();
        std::fs::write(path, entries.join("\n"))
    }

    pub fn dump_after_release(&self, path: &Path) -> io::Result<()> {
        let body = {
            let entries = self.entries.lock();
            entries.join("\n")
        };
        std::fs::write(path, body)
    }
}
