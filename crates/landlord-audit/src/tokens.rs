//! Whole-file token stream for the structural analyses.
//!
//! [`crate::scan`] classifies *lines*; the cross-file analyses
//! (lock-order, atomic-ordering, counter-overflow) need more: call
//! targets, receiver chains, operator occurrences, brace nesting. This
//! module lexes the *blanked* source (strings and comments already
//! neutralised by [`crate::scan::blank_source`]) into a flat token
//! stream with line numbers, which [`crate::structure`] then shapes
//! into functions and impl blocks.
//!
//! The lexer is deliberately small: identifiers, numbers, lifetimes,
//! (blanked) string/char literals, and punctuation with maximal-munch
//! multi-character operators (`::`, `->`, `+=`, `..=`, ...). It is not
//! a full Rust lexer — it only needs to be faithful on blanked text,
//! where literal contents can no longer confuse it.

/// What a token is, coarsely.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`fn`, `impl`, `foo`, `u64`).
    Ident,
    /// Numeric literal (`42`, `0x1f`, `1_000`).
    Number,
    /// A (blanked) string literal, raw or not, including prefixes.
    Str,
    /// A (blanked) char literal.
    Char,
    /// A lifetime (`'a`, `'static`).
    Lifetime,
    /// Punctuation, possibly multi-character (`::`, `+=`, `{`).
    Punct,
}

/// One lexed token.
#[derive(Debug, Clone)]
pub struct Token {
    /// The token text. For `Str`/`Char` this is the blanked literal.
    pub text: String,
    /// Coarse classification.
    pub kind: TokenKind,
    /// 0-based line the token starts on.
    pub line: usize,
}

impl Token {
    /// True when this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == s
    }

    /// True when this token is the punctuation `s`.
    pub fn is_punct(&self, s: &str) -> bool {
        self.kind == TokenKind::Punct && self.text == s
    }
}

/// Multi-character operators, longest first so maximal munch works by
/// scanning the table in order.
const MULTI_PUNCT: &[&str] = &[
    "<<=", ">>=", "..=", "...", "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "+=", "-=",
    "*=", "/=", "%=", "^=", "&=", "|=", "<<", ">>", "..",
];

/// Lex blanked source into tokens. Never fails: unexpected bytes
/// become single-character `Punct` tokens.
pub fn tokenize(blanked: &str) -> Vec<Token> {
    let chars: Vec<char> = blanked.chars().collect();
    let mut tokens = Vec::new();
    let mut line = 0usize;
    let mut i = 0usize;

    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // String literal (blanked): optional b/c prefix, optional r and
        // hashes, then a quote. The blanking pass guarantees contents
        // are spaces/newlines, so scanning to the closing quote+hashes
        // is exact.
        if let Some((prefix_len, hashes)) = string_start(&chars, i) {
            let start_line = line;
            let mut text = String::new();
            let mut j = i;
            for _ in 0..prefix_len {
                text.push(chars[j]);
                j += 1;
            }
            // Body: scan for `"` followed by `hashes` hashes.
            while j < chars.len() {
                let ch = chars[j];
                if ch == '\n' {
                    line += 1;
                }
                text.push(ch);
                j += 1;
                if ch == '"' && closes_raw(&chars, j, hashes) {
                    for _ in 0..hashes {
                        text.push(chars[j]);
                        j += 1;
                    }
                    break;
                }
            }
            tokens.push(Token {
                text,
                kind: TokenKind::Str,
                line: start_line,
            });
            i = j;
            continue;
        }
        // Lifetime or (blanked) char literal.
        if c == '\'' {
            let next = chars.get(i + 1).copied();
            let is_lifetime = next.is_some_and(|n| n.is_alphabetic() || n == '_')
                && chars.get(i + 2).copied() != Some('\'');
            if is_lifetime {
                let mut text = String::from('\'');
                let mut j = i + 1;
                while j < chars.len() && (chars[j].is_alphanumeric() || chars[j] == '_') {
                    text.push(chars[j]);
                    j += 1;
                }
                tokens.push(Token {
                    text,
                    kind: TokenKind::Lifetime,
                    line,
                });
                i = j;
            } else {
                // Blanked char literal: `'` ... `'`.
                let mut text = String::from('\'');
                let mut j = i + 1;
                while j < chars.len() && chars[j] != '\'' && chars[j] != '\n' {
                    text.push(chars[j]);
                    j += 1;
                }
                if chars.get(j).copied() == Some('\'') {
                    text.push('\'');
                    j += 1;
                }
                tokens.push(Token {
                    text,
                    kind: TokenKind::Char,
                    line,
                });
                i = j;
            }
            continue;
        }
        // Identifier / keyword.
        if c.is_alphabetic() || c == '_' {
            let mut text = String::new();
            let mut j = i;
            while j < chars.len() && (chars[j].is_alphanumeric() || chars[j] == '_') {
                text.push(chars[j]);
                j += 1;
            }
            tokens.push(Token {
                text,
                kind: TokenKind::Ident,
                line,
            });
            i = j;
            continue;
        }
        // Number (digits plus the usual suffix/separator characters;
        // precision does not matter for the analyses).
        if c.is_ascii_digit() {
            let mut text = String::new();
            let mut j = i;
            while j < chars.len()
                && (chars[j].is_alphanumeric() || chars[j] == '_' || is_float_continue(&chars, j))
            {
                text.push(chars[j]);
                j += 1;
            }
            tokens.push(Token {
                text,
                kind: TokenKind::Number,
                line,
            });
            i = j;
            continue;
        }
        // Punctuation: maximal munch over the multi-char table.
        let mut matched = None;
        for op in MULTI_PUNCT {
            let op_chars: Vec<char> = op.chars().collect();
            if chars[i..].starts_with(&op_chars) {
                matched = Some(*op);
                break;
            }
        }
        if let Some(op) = matched {
            tokens.push(Token {
                text: op.to_string(),
                kind: TokenKind::Punct,
                line,
            });
            i += op.chars().count();
        } else {
            tokens.push(Token {
                text: c.to_string(),
                kind: TokenKind::Punct,
                line,
            });
            i += 1;
        }
    }
    tokens
}

/// A `.` inside a number continues it only when followed by a digit
/// (so `1..4` and `x.0` lex as separate tokens but `1.5` is one).
fn is_float_continue(chars: &[char], j: usize) -> bool {
    chars[j] == '.' && chars.get(j + 1).is_some_and(|c| c.is_ascii_digit())
}

/// Is a string literal starting at `i`? Returns the prefix length
/// (characters before the string body, including the opening quote)
/// and the number of hashes a raw string closes with.
fn string_start(chars: &[char], i: usize) -> Option<(usize, usize)> {
    if i > 0 {
        let prev = chars[i - 1];
        if prev.is_alphanumeric() || prev == '_' {
            return None;
        }
    }
    let mut j = i;
    // Optional byte/C-string prefix.
    if matches!(chars.get(j), Some('b') | Some('c')) {
        j += 1;
    }
    let raw = chars.get(j) == Some(&'r');
    if raw {
        j += 1;
    }
    let mut hashes = 0usize;
    if raw {
        while chars.get(j) == Some(&'#') {
            hashes += 1;
            j += 1;
        }
    }
    if chars.get(j) == Some(&'"') {
        Some((j - i + 1, hashes))
    } else {
        None
    }
}

/// After consuming a `"` at index `j`, do `hashes` hash characters
/// follow (closing a raw string)?
fn closes_raw(chars: &[char], j: usize, hashes: usize) -> bool {
    (0..hashes).all(|k| chars.get(j + k) == Some(&'#'))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<String> {
        tokenize(src).into_iter().map(|t| t.text).collect()
    }

    #[test]
    fn idents_and_multichar_puncts() {
        assert_eq!(
            texts("self.bits[word].load(Ordering::Relaxed)"),
            vec![
                "self", ".", "bits", "[", "word", "]", ".", "load", "(", "Ordering", "::",
                "Relaxed", ")"
            ]
        );
        assert_eq!(texts("a += b * c;"), vec!["a", "+=", "b", "*", "c", ";"]);
        assert_eq!(texts("x..=y .. z"), vec!["x", "..=", "y", "..", "z"]);
    }

    #[test]
    fn lines_are_tracked() {
        let toks = tokenize("fn f() {\n    a.lock();\n}\n");
        let lock = toks.iter().find(|t| t.text == "lock").expect("lock token");
        assert_eq!(lock.line, 1);
        let close = toks.iter().rfind(|t| t.text == "}").expect("close brace");
        assert_eq!(close.line, 2);
    }

    #[test]
    fn blanked_strings_are_single_tokens() {
        let toks = tokenize("let s = \"      \"; let r = r#\"    \"#;");
        let strs: Vec<&Token> = toks.iter().filter(|t| t.kind == TokenKind::Str).collect();
        assert_eq!(strs.len(), 2);
        assert!(strs[1].text.starts_with("r#\""));
        assert!(strs[1].text.ends_with("\"#"));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = tokenize("fn f<'a>(x: &'a str) { let c = ' '; }");
        assert!(toks
            .iter()
            .any(|t| t.kind == TokenKind::Lifetime && t.text == "'a"));
        assert!(toks.iter().any(|t| t.kind == TokenKind::Char));
    }

    #[test]
    fn numbers_including_floats() {
        assert_eq!(texts("1.5 + 2"), vec!["1.5", "+", "2"]);
        assert_eq!(texts("0..10"), vec!["0", "..", "10"]);
    }
}
