//! Counter-overflow analysis: merge/fold paths must not use unchecked
//! arithmetic on counter and byte-size values.
//!
//! Single-request arithmetic on u64 counters is effectively safe, but
//! merge/fold paths multiply exposure: a cluster-wide stats fold adds
//! every shard's byte totals, and the registry's saturation algebra
//! exists precisely because `+` on two near-max u64s wraps in release
//! builds. The rule: inside any non-test function whose name contains
//! `merge`/`fold`/`accumulate`/`combine`/`absorb`, a raw `+`/`+=`/`*`
//! whose operands look like counters (`bytes`, `count`, `samples`, …)
//! is a finding — use `saturating_*` or `checked_*`. Float-flavoured
//! operands (`pct`, `ratio`, …) are exempt: saturation is an integer
//! concept.

use super::{emit, FileModel};
use crate::rules::Finding;
use crate::tokens::TokenKind;

/// Function-name fragments that mark a merge/fold path.
const MERGE_NAMES: &[&str] = &["merge", "fold", "accumulate", "combine", "absorb"];

/// Identifier fragments that mark a counter or byte-size value.
const COUNTER_WORDS: &[&str] = &[
    "bytes",
    "size",
    "len",
    "count",
    "total",
    "sum",
    "samples",
    "requests",
    "hits",
    "misses",
    "merges",
    "inserts",
    "deletes",
    "splits",
    "written",
    "clamped",
    "capacity",
    "seq",
    "evictions",
    "restores",
];

/// Identifier fragments that mark a float-flavoured value (exempt).
const FLOAT_WORDS: &[&str] = &[
    "pct",
    "ratio",
    "milli",
    "secs",
    "f64",
    "f32",
    "frac",
    "avg",
    "mean",
    "rate",
    "alpha",
    "jaccard",
    "efficiency",
    "distance",
    "density",
];

fn word_match(ident: &str, words: &[&str]) -> bool {
    let low = ident.to_lowercase();
    words.iter().any(|w| low.contains(w))
}

/// Run the analysis over the modelled workspace.
pub fn run(files: &[FileModel]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for file in files {
        if !file.analyzed() {
            continue;
        }
        let toks = &file.structure.tokens;
        for f in &file.structure.fns {
            if f.in_test || !word_match(&f.name, MERGE_NAMES) {
                continue;
            }
            for i in f.body.0..=f.body.1.min(toks.len() - 1) {
                let t = &toks[i];
                let op = match t.text.as_str() {
                    "+" | "+=" | "*" if t.kind == TokenKind::Punct => t.text.clone(),
                    _ => continue,
                };
                // Binary uses only: `*x` deref / `&*` reborrow have no
                // value-like token on the left.
                let prev = i.checked_sub(1).map(|p| &toks[p]);
                let binary = prev.is_some_and(|p| {
                    matches!(p.kind, TokenKind::Ident | TokenKind::Number)
                        || p.is_punct(")")
                        || p.is_punct("]")
                });
                if !binary {
                    continue;
                }
                // Gather nearby operand identifiers (a small window on
                // each side, stopped at statement boundaries).
                let idents = operand_idents(toks, i, f.body);
                if idents.iter().any(|id| word_match(id, FLOAT_WORDS)) {
                    continue;
                }
                let counter = idents.iter().find(|id| word_match(id, COUNTER_WORDS));
                let Some(name) = counter else { continue };
                emit(
                    &mut findings,
                    file,
                    t.line,
                    "counter-overflow",
                    format!(
                        "unchecked `{op}` on counter-like value `{name}` in merge/fold path \
                         `{}`: use saturating_* or checked_* arithmetic",
                        f.qualified
                    ),
                );
            }
        }
    }
    findings
}

/// Identifier tokens around the operator at `op`, scanning up to 8
/// tokens in each direction and stopping at statement boundaries.
fn operand_idents(toks: &[crate::tokens::Token], op: usize, body: (usize, usize)) -> Vec<String> {
    let stop = |t: &crate::tokens::Token| {
        t.is_punct(";") || t.is_punct("{") || t.is_punct("}") || t.is_punct(",")
    };
    let mut out = Vec::new();
    let mut i = op;
    for _ in 0..8 {
        let Some(p) = i.checked_sub(1) else { break };
        if p < body.0 {
            break;
        }
        let t = &toks[p];
        if stop(t) || t.is_punct("=") {
            break;
        }
        if t.kind == TokenKind::Ident {
            out.push(t.text.clone());
        }
        i = p;
    }
    for i in op..op + 8 {
        let Some(t) = toks.get(i + 1) else { break };
        if i + 1 > body.1 || stop(t) {
            break;
        }
        if t.kind == TokenKind::Ident {
            out.push(t.text.clone());
        }
    }
    out
}
