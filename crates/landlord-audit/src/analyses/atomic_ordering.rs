//! Atomic-ordering analysis: every `Ordering::Relaxed` in non-test
//! library code must say *why* relaxed is sound.
//!
//! Relaxed is the right ordering for most of this workspace's atomics
//! (monotonic counters folded at quiescence, bloom-summary bits that
//! tolerate stale reads) — but only when someone has actually made that
//! argument. The convention: the site (or a comment within the two
//! lines above it) carries `// sync: <why relaxed is sound>`. Sites
//! without the annotation are findings; the fix is either writing the
//! justification or upgrading to `Acquire`/`Release`/`SeqCst`.

use super::{emit, FileModel};
use crate::rules::Finding;

/// How many lines above the site a `// sync:` note still covers it.
const NOTE_REACH: usize = 2;

/// Run the analysis over the modelled workspace.
pub fn run(files: &[FileModel]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for file in files {
        if !file.analyzed() {
            continue;
        }
        let toks = &file.structure.tokens;
        for i in 0..toks.len() {
            if !(toks[i].is_ident("Ordering")
                && toks.get(i + 1).is_some_and(|t| t.is_punct("::"))
                && toks.get(i + 2).is_some_and(|t| t.is_ident("Relaxed")))
            {
                continue;
            }
            let line = toks[i].line;
            let info = match file.lines.lines.get(line) {
                Some(info) => info,
                None => continue,
            };
            if info.in_test {
                continue;
            }
            let annotated = (line.saturating_sub(NOTE_REACH)..=line)
                .any(|l| file.lines.lines.get(l).is_some_and(|li| li.sync_note));
            if annotated {
                continue;
            }
            emit(
                &mut findings,
                file,
                line,
                "atomic-ordering",
                "`Ordering::Relaxed` without a `// sync: <why relaxed is sound>` note: \
                 justify the relaxed ordering or upgrade it"
                    .to_string(),
            );
        }
    }
    findings
}
