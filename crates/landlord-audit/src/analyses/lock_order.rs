//! Lock-order analysis: build the workspace lock-acquisition graph and
//! report (a) any cycle — two code paths that take the same locks in
//! opposite orders can deadlock — and (b) any guard held across store
//! I/O, which turns a disk stall into a cluster-wide convoy.
//!
//! How a lock is named: an acquisition is a zero-argument method call
//! named `lock`/`try_lock`/`read`/`try_read`/`write`/`try_write`/
//! `upgradable_read` (zero-arg distinguishes `RwLock::read()` from
//! `io::Read::read(&mut buf)`). A `self`-rooted receiver inside an
//! `impl T` names the lock `T.field.path` — one node per *field*, so
//! `self.shards[i]` and `self.shards[j]` share a node and nesting them
//! is reported (parking_lot locks are not reentrant). A receiver rooted
//! in a local or parameter names a function-scoped instance
//! (`T::fn::var.path`): a distinct object, so merging `other`'s maps
//! into `self`'s never fabricates a self-cycle.
//!
//! How long a guard is held: a `let`-bound guard lives to the end of
//! its enclosing block (or an earlier `drop(g)`); a guard acquired in a
//! `for`/`if let`/`while` header lives to the end of that block
//! (matching Rust temporary-lifetime rules); a bare temporary lives to
//! the end of its statement.
//!
//! Condvar waits get their own treatment: `.wait(guard)` (and the
//! timeout/predicate variants) atomically releases exactly the guard
//! it is passed while parked, so it is neither an acquisition nor an
//! ordinary call. Waiting on your own guard is the legitimate
//! single-flight shape; parking while any *other* guard is held pins
//! that lock for an unbounded sleep and is reported, as is any call
//! that transitively reaches a wait while a guard is held.
//!
//! Propagation: calls that resolve to exactly one workspace function
//! (by name, preferring the caller's own impl for `self.` calls)
//! contribute that callee's transitive lock set, I/O, and condvar-wait
//! behaviour. Ambiguous or foreign calls contribute nothing — the
//! analysis under-approximates rather than invent false cycles.

use std::collections::{BTreeMap, BTreeSet};

use super::{emit, FileModel};
use crate::rules::Finding;
use crate::structure::{CallSite, FnInfo};
use crate::tokens::{Token, TokenKind};

/// Methods whose zero-argument call acquires a parking_lot guard.
const ACQUIRE_METHODS: &[&str] = &[
    "lock",
    "try_lock",
    "read",
    "try_read",
    "write",
    "try_write",
    "upgradable_read",
];

/// Condvar-style blocking methods: the call atomically releases (and
/// on wake re-acquires) exactly the guard passed as its first argument.
const WAIT_METHODS: &[&str] = &[
    "wait",
    "wait_for",
    "wait_until",
    "wait_while",
    "wait_timeout",
];

/// Method names that perform store/file I/O when called on anything.
const IO_METHODS: &[&str] = &[
    "write_all",
    "write_fmt",
    "flush",
    "sync_all",
    "sync_data",
    "set_len",
    "read_exact",
    "read_to_end",
    "read_to_string",
    "persist",
];

/// Is this call site store/file I/O? Methods by name; path calls when
/// the path goes through `fs` or `File`.
fn is_io_call(site: &CallSite) -> bool {
    if site.is_method {
        return IO_METHODS.contains(&site.callee.as_str());
    }
    if IO_METHODS.contains(&site.callee.as_str()) {
        return true;
    }
    site.path
        .iter()
        .any(|seg| seg == "fs" || seg == "File" || seg == "OpenOptions")
}

/// Method names too generic to resolve by global uniqueness alone —
/// calling `.len()` on a Vec must not resolve to some workspace type's
/// `len` just because only one type defines it.
const COMMON_METHODS: &[&str] = &[
    "len", "is_empty", "clone", "iter", "insert", "get", "push", "pop", "remove", "contains",
    "next", "new", "default", "drain", "extend", "entry", "keys", "values", "sort", "fmt", "eq",
    "cmp", "hash", "drop", "write", "read", "lock", "get_mut", "iter_mut", "clear", "take",
];

/// One guard acquisition inside a function.
struct Acquisition {
    /// Lock node name.
    id: String,
    /// Token index of the acquiring method ident.
    token: usize,
    /// Last token index at which the guard is still held.
    end: usize,
    /// 0-based line of the acquisition.
    line: usize,
    /// Name the guard is `let`-bound to, when it is. A condvar wait on
    /// this exact name releases the guard while parked; a wait on any
    /// other name sleeps with this guard still locked.
    bound: Option<String>,
}

/// Index of one function in the modelled file set.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct FnRef {
    file: usize,
    func: usize,
}

/// Run the analysis over the modelled workspace.
pub fn run(files: &[FileModel]) -> Vec<Finding> {
    let mut findings = Vec::new();

    // Name index over every analyzable, non-test function.
    let mut by_name: BTreeMap<&str, Vec<FnRef>> = BTreeMap::new();
    let mut fns: Vec<FnRef> = Vec::new();
    for (fi, file) in files.iter().enumerate() {
        if !file.analyzed() {
            continue;
        }
        for (gi, f) in file.structure.fns.iter().enumerate() {
            if f.in_test {
                continue;
            }
            let r = FnRef { file: fi, func: gi };
            by_name.entry(f.name.as_str()).or_default().push(r);
            fns.push(r);
        }
    }
    let info = |r: FnRef| -> &FnInfo { &files[r.file].structure.fns[r.func] };

    // Per-function direct facts: acquisitions, condvar waits, resolved
    // callees, and direct I/O call sites. Wait sites are claimed before
    // name resolution — `self.done.wait(state)` is a blocking primitive
    // on a condvar field, not a call into some workspace `wait` method
    // that happens to share the name.
    let mut acqs: BTreeMap<FnRef, Vec<Acquisition>> = BTreeMap::new();
    let mut waits: BTreeMap<FnRef, Vec<(String, String, usize, usize)>> = BTreeMap::new();
    let mut callees: BTreeMap<FnRef, Vec<(FnRef, usize, usize)>> = BTreeMap::new();
    let mut direct_io: BTreeMap<FnRef, Vec<(String, usize, usize)>> = BTreeMap::new();
    for &r in &fns {
        let file = &files[r.file];
        let f = info(r);
        let toks = &file.structure.tokens;
        let mut my_acqs = Vec::new();
        let mut my_waits = Vec::new();
        let mut my_callees = Vec::new();
        let mut my_io = Vec::new();
        for site in &f.calls {
            if is_acquisition(site, toks) {
                let id = lock_id(f, site);
                let (end, bound) = hold_span(toks, f, site.token);
                my_acqs.push(Acquisition {
                    id,
                    token: site.token,
                    end,
                    line: site.line,
                    bound,
                });
                continue;
            }
            if let Some(arg) = condvar_wait_arg(site, toks) {
                my_waits.push((arg, wait_label(site), site.token, site.line));
                continue;
            }
            if is_io_call(site) {
                my_io.push((call_label(site), site.token, site.line));
                continue;
            }
            if let Some(target) = resolve(site, f, &by_name, &|r| info(r)) {
                my_callees.push((target, site.token, site.line));
            }
        }
        acqs.insert(r, my_acqs);
        waits.insert(r, my_waits);
        callees.insert(r, my_callees);
        direct_io.insert(r, my_io);
    }

    // Fixpoint: transitive lock set, transitive I/O, and transitive
    // condvar-wait behaviour per function.
    let mut lockset: BTreeMap<FnRef, BTreeSet<String>> = BTreeMap::new();
    let mut does_io: BTreeMap<FnRef, Option<String>> = BTreeMap::new();
    let mut does_wait: BTreeMap<FnRef, Option<String>> = BTreeMap::new();
    for &r in &fns {
        let locks: BTreeSet<String> = acqs[&r].iter().map(|a| a.id.clone()).collect();
        lockset.insert(r, locks);
        let io = direct_io[&r].first().map(|(label, _, _)| label.clone());
        does_io.insert(r, io);
        let wait = waits[&r].first().map(|(_, label, _, _)| label.clone());
        does_wait.insert(r, wait);
    }
    loop {
        let mut changed = false;
        for &r in &fns {
            for &(callee, _, _) in &callees[&r] {
                let add: Vec<String> = lockset[&callee]
                    .iter()
                    .filter(|l| !lockset[&r].contains(*l))
                    .cloned()
                    .collect();
                if !add.is_empty() {
                    lockset.get_mut(&r).expect("seeded").extend(add);
                    changed = true;
                }
            }
            if does_io[&r].is_none() {
                let via = callees[&r].iter().find_map(|&(c, _, _)| {
                    does_io[&c]
                        .as_ref()
                        .map(|io| format!("{} (via {})", io, info(c).qualified))
                });
                if via.is_some() {
                    does_io.insert(r, via);
                    changed = true;
                }
            }
            if does_wait[&r].is_none() {
                let via = callees[&r].iter().find_map(|&(c, _, _)| {
                    does_wait[&c]
                        .as_ref()
                        .map(|w| format!("{} (via {})", w, info(c).qualified))
                });
                if via.is_some() {
                    does_wait.insert(r, via);
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }

    // Walk every guard's hold range: ordered lock pairs become graph
    // edges; I/O inside the range becomes a finding immediately.
    let mut edges: BTreeMap<(String, String), (String, usize, usize)> = BTreeMap::new();
    for &r in &fns {
        let file = &files[r.file];
        let f = info(r);
        for a in &acqs[&r] {
            // Later direct acquisitions while `a` is held.
            for b in &acqs[&r] {
                if b.token > a.token && b.token <= a.end && b.id != a.id {
                    edges.entry((a.id.clone(), b.id.clone())).or_insert((
                        file.path.clone(),
                        b.line,
                        r.file,
                    ));
                }
                if b.token > a.token && b.token <= a.end && b.id == a.id {
                    emit(
                        &mut findings,
                        file,
                        b.line,
                        "lock-order",
                        format!(
                            "`{}` re-acquired in `{}` while a guard on it may still be held: \
                             parking_lot locks are not reentrant",
                            a.id, f.qualified
                        ),
                    );
                }
            }
            // Calls made while `a` is held: propagate callee locks/I/O.
            for &(callee, tok, line) in &callees[&r] {
                if tok <= a.token || tok > a.end {
                    continue;
                }
                for l in &lockset[&callee] {
                    if *l != a.id {
                        edges.entry((a.id.clone(), l.clone())).or_insert((
                            file.path.clone(),
                            line,
                            r.file,
                        ));
                    } else {
                        emit(
                            &mut findings,
                            file,
                            line,
                            "lock-order",
                            format!(
                                "call to `{}` may re-acquire `{}` already held in `{}`",
                                info(callee).qualified,
                                a.id,
                                f.qualified
                            ),
                        );
                    }
                }
                if let Some(io) = &does_io[&callee] {
                    emit(
                        &mut findings,
                        file,
                        line,
                        "lock-order",
                        format!(
                            "guard on `{}` held across store I/O: `{}` reaches {}",
                            a.id,
                            info(callee).qualified,
                            io
                        ),
                    );
                }
                if let Some(w) = &does_wait[&callee] {
                    emit(
                        &mut findings,
                        file,
                        line,
                        "lock-order",
                        format!(
                            "guard on `{}` held across a condvar wait in `{}`: `{}` reaches {}",
                            a.id,
                            f.qualified,
                            info(callee).qualified,
                            w
                        ),
                    );
                }
            }
            // Condvar waits while `a` is held. The wait atomically
            // releases exactly the guard it is passed; parking with any
            // other guard locked pins that lock for the whole sleep.
            for (arg, label, tok, line) in &waits[&r] {
                if *tok > a.token && *tok <= a.end && a.bound.as_deref() != Some(arg.as_str()) {
                    emit(
                        &mut findings,
                        file,
                        *line,
                        "lock-order",
                        format!(
                            "condvar wait `{}({})` in `{}` parks while a guard on `{}` is \
                             still held: a wait releases only its own guard",
                            label, arg, f.qualified, a.id
                        ),
                    );
                }
            }
            // Direct I/O while `a` is held.
            for (label, tok, line) in &direct_io[&r] {
                if *tok > a.token && *tok <= a.end {
                    emit(
                        &mut findings,
                        file,
                        *line,
                        "lock-order",
                        format!(
                            "guard on `{}` held across store I/O (`{}`) in `{}`: \
                             finish the I/O outside the critical section",
                            a.id, label, f.qualified
                        ),
                    );
                }
            }
        }
    }

    // Cycle detection over the lock graph.
    for cycle in find_cycles(&edges) {
        let mut desc = Vec::new();
        for w in cycle.windows(2) {
            let (file, line, _) = &edges[&(w[0].clone(), w[1].clone())];
            desc.push(format!("`{}` -> `{}` ({}:{})", w[0], w[1], file, line + 1));
        }
        let (file_path, line, file_idx) = edges[&(cycle[0].clone(), cycle[1].clone())].clone();
        let file = &files[file_idx];
        debug_assert_eq!(file.path, file_path);
        emit(
            &mut findings,
            file,
            line,
            "lock-order",
            format!("lock-order cycle: {}", desc.join(", ")),
        );
    }

    findings
}

/// Zero-argument acquisition method call on a real receiver.
fn is_acquisition(site: &CallSite, toks: &[Token]) -> bool {
    site.is_method
        && !site.receiver.is_empty()
        && ACQUIRE_METHODS.contains(&site.callee.as_str())
        && toks.get(site.token + 2).is_some_and(|t| t.is_punct(")"))
}

/// Stable node name for an acquired lock (see module docs).
fn lock_id(f: &FnInfo, site: &CallSite) -> String {
    let chain = &site.receiver;
    if chain.first().is_some_and(|r| r == "self") {
        if let Some(ty) = &f.self_type {
            let mut parts = vec![ty.clone()];
            parts.extend(chain[1..].iter().cloned());
            return parts.join(".");
        }
    }
    format!("{}::{}", f.qualified, chain.join("."))
}

/// Is this a condvar wait? Returns the name of the guard the wait
/// releases while parked — its first argument, through an optional
/// `&`/`&mut` borrow (parking_lot's `Condvar::wait` takes the guard by
/// `&mut`; the std-style shim consumes it by value).
fn condvar_wait_arg(site: &CallSite, toks: &[Token]) -> Option<String> {
    if !site.is_method
        || site.receiver.is_empty()
        || !WAIT_METHODS.contains(&site.callee.as_str())
        || !toks.get(site.token + 1).is_some_and(|t| t.is_punct("("))
    {
        return None;
    }
    let mut j = site.token + 2;
    if toks.get(j).is_some_and(|t| t.is_punct("&")) {
        j += 1;
    }
    if toks.get(j).is_some_and(|t| t.is_ident("mut")) {
        j += 1;
    }
    let name = toks.get(j).filter(|t| t.kind == TokenKind::Ident)?;
    let next = toks.get(j + 1)?;
    if next.is_punct(")") || next.is_punct(",") {
        Some(name.text.clone())
    } else {
        None
    }
}

/// Human label for a condvar wait site (`self.done.wait`).
fn wait_label(site: &CallSite) -> String {
    format!("{}.{}", site.receiver.join("."), site.callee)
}

/// Human label for a call site.
fn call_label(site: &CallSite) -> String {
    if site.path.is_empty() {
        site.callee.clone()
    } else {
        format!("{}::{}", site.path.join("::"), site.callee)
    }
}

/// Resolve a call site to exactly one workspace function, or None.
fn resolve<'a>(
    site: &CallSite,
    caller: &FnInfo,
    by_name: &BTreeMap<&str, Vec<FnRef>>,
    info: &dyn Fn(FnRef) -> &'a FnInfo,
) -> Option<FnRef> {
    let candidates = by_name.get(site.callee.as_str())?;
    if site.is_method {
        let methods: Vec<FnRef> = candidates
            .iter()
            .copied()
            .filter(|&r| info(r).self_type.is_some())
            .collect();
        // A direct `self.foo()` (receiver exactly `self`, not a chain
        // through fields, whose tail is some other type) resolves
        // within the caller's own impl type.
        if site.receiver.len() == 1 && site.receiver[0] == "self" {
            if let Some(ty) = &caller.self_type {
                let own: Vec<FnRef> = methods
                    .iter()
                    .copied()
                    .filter(|&r| info(r).self_type.as_ref() == Some(ty))
                    .collect();
                if let [one] = own[..] {
                    return Some(one);
                }
            }
        }
        // Otherwise only a workspace-unique, non-generic name resolves.
        if COMMON_METHODS.contains(&site.callee.as_str()) {
            return None;
        }
        if let [one] = methods[..] {
            return Some(one);
        }
        return None;
    }
    if let Some(ty) = site.path.last() {
        // `Type::func(..)`: match the self type.
        let typed: Vec<FnRef> = candidates
            .iter()
            .copied()
            .filter(|&r| info(r).self_type.as_deref() == Some(ty.as_str()))
            .collect();
        if let [one] = typed[..] {
            return Some(one);
        }
        return None;
    }
    // Plain call: free functions only.
    let free: Vec<FnRef> = candidates
        .iter()
        .copied()
        .filter(|&r| info(r).self_type.is_none())
        .collect();
    if let [one] = free[..] {
        return Some(one);
    }
    None
}

/// Last token index at which the guard acquired at `acq` (the method
/// ident of `.lock()` etc.) is still held, plus the name the guard is
/// `let`-bound to when it is. See module docs for the scoping rules.
fn hold_span(toks: &[Token], f: &FnInfo, acq: usize) -> (usize, Option<String>) {
    let (body_open, body_close) = f.body;
    // The acquisition is a zero-arg call (`.lock ( )` at acq..acq+2).
    // A `.` right after means the guard is consumed as a temporary
    // (`self.m.lock().len()`), so a surrounding `let` binds the
    // *derived value*, not the guard.
    let consumed = toks.get(acq + 3).is_some_and(|t| t.is_punct("."));

    // Statement start: walk back to the nearest `;`, `{`, or `}`.
    let mut start = acq;
    while start > body_open {
        let t = &toks[start - 1];
        if t.is_punct(";") || t.is_punct("{") || t.is_punct("}") {
            break;
        }
        start -= 1;
    }
    // `let g = ...` binding? (`if let` / `while let` are scrutinee
    // headers, not bindings — their temporaries live for the block,
    // which the header-block case below covers.)
    let mut bound: Option<&str> = None;
    let mut j = start;
    while !consumed && j < acq {
        if toks[j].is_ident("let") {
            let header =
                j > body_open && (toks[j - 1].is_ident("if") || toks[j - 1].is_ident("while"));
            if !header {
                let mut k = j + 1;
                if toks.get(k).is_some_and(|t| t.is_ident("mut")) {
                    k += 1;
                }
                if let Some(name) = toks.get(k).filter(|t| t.kind == TokenKind::Ident) {
                    bound = Some(name.text.as_str());
                }
            }
            break;
        }
        j += 1;
    }

    // Statement end: first `;`, `{`, or `}` at group depth 0 after the
    // acquisition's argument list.
    let mut depth = 0i32;
    let mut stmt_end = body_close;
    let mut header_block = None;
    let mut k = acq + 1;
    while k <= body_close {
        let t = &toks[k];
        if t.is_punct("(") || t.is_punct("[") {
            depth += 1;
        } else if t.is_punct(")") || t.is_punct("]") {
            depth -= 1;
        } else if depth == 0 {
            if t.is_punct(";") || t.is_punct("}") {
                stmt_end = k;
                break;
            }
            if t.is_punct("{") {
                if bound.is_some() {
                    // `let g = match m.lock() { .. };`: the brace is an
                    // expression block inside the binding statement,
                    // not a header — skip it and keep looking for the
                    // terminating `;`.
                    k = matching_close(toks, k, body_close) + 1;
                    continue;
                }
                // `for x in m.lock().iter() {` / `if let Some(v) =
                // m.lock().get(k) {`-style header: the temporary lives
                // for the whole block — and for the `else` chain too
                // (scrutinee temporaries outlive the first arm).
                let mut close = matching_close(toks, k, body_close);
                while toks.get(close + 1).is_some_and(|t| t.is_ident("else")) {
                    let mut m = close + 2;
                    while m <= body_close && !toks[m].is_punct("{") {
                        m += 1;
                    }
                    if m > body_close {
                        break;
                    }
                    close = matching_close(toks, m, body_close);
                }
                header_block = Some(close);
                break;
            }
        }
        k += 1;
    }

    let bound_name = bound.map(str::to_string);
    if let Some(name) = bound {
        // Held to the end of the enclosing block, or an earlier drop.
        let block_end = enclosing_block_end(toks, body_open, body_close, acq);
        let mut k = stmt_end;
        while k < block_end {
            if toks[k].is_ident("drop")
                && toks.get(k + 1).is_some_and(|t| t.is_punct("("))
                && toks.get(k + 2).is_some_and(|t| t.is_ident(name))
                && toks.get(k + 3).is_some_and(|t| t.is_punct(")"))
            {
                return (k, bound_name);
            }
            k += 1;
        }
        (block_end, bound_name)
    } else if let Some(close) = header_block {
        (close, None)
    } else {
        (stmt_end, None)
    }
}

/// Matching `}` for the `{` at `open`, bounded by `limit`.
fn matching_close(toks: &[Token], open: usize, limit: usize) -> usize {
    let mut depth = 0i32;
    for (i, t) in toks.iter().enumerate().take(limit + 1).skip(open) {
        if t.is_punct("{") {
            depth += 1;
        } else if t.is_punct("}") {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
    }
    limit
}

/// Close index of the innermost block containing token `at`.
fn enclosing_block_end(toks: &[Token], body_open: usize, body_close: usize, at: usize) -> usize {
    let mut stack: Vec<usize> = Vec::new();
    let stop = at.min(body_close);
    for (i, t) in toks.iter().enumerate().take(stop + 1).skip(body_open) {
        if t.is_punct("{") {
            stack.push(i);
        } else if t.is_punct("}") {
            stack.pop();
        }
    }
    match stack.last() {
        Some(&open) => matching_close(toks, open, body_close),
        None => body_close,
    }
}

/// Enumerate elementary cycles in the lock graph, smallest-first and
/// deduplicated by node set. Each returned path is closed
/// (`[a, b, a]`). The graph is tiny (tens of nodes), so a DFS from
/// each node is plenty.
fn find_cycles(edges: &BTreeMap<(String, String), (String, usize, usize)>) -> Vec<Vec<String>> {
    let mut adj: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for (from, to) in edges.keys() {
        adj.entry(from.as_str()).or_default().push(to.as_str());
    }
    let mut out: Vec<Vec<String>> = Vec::new();
    let mut seen_sets: BTreeSet<Vec<String>> = BTreeSet::new();
    let nodes: Vec<&str> = adj.keys().copied().collect();
    for &root in &nodes {
        // DFS looking for a path back to root; only the lexically
        // smallest node in a cycle reports it, deduplicating rotations.
        let mut stack: Vec<(Vec<&str>, &str)> = vec![(vec![root], root)];
        while let Some((path, at)) = stack.pop() {
            for &next in adj.get(at).into_iter().flatten() {
                if next == root {
                    if path.iter().any(|n| *n < root) {
                        continue;
                    }
                    let mut set: Vec<String> = path.iter().map(|s| s.to_string()).collect();
                    set.sort();
                    if seen_sets.insert(set) {
                        let mut cyc: Vec<String> = path.iter().map(|s| s.to_string()).collect();
                        cyc.push(root.to_string());
                        out.push(cyc);
                    }
                } else if !path.contains(&next) && path.len() < 8 {
                    let mut p = path.clone();
                    p.push(next);
                    stack.push((p, next));
                }
            }
        }
    }
    out.sort();
    out
}
