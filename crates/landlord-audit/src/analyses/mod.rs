//! Cross-file structural analyses.
//!
//! The line [`crate::rules`] catch per-line smells; the analyses here
//! reason over the [`crate::structure::StructureModel`] of *every*
//! workspace file at once:
//!
//! - [`lock_order`]: the workspace lock-acquisition graph must be
//!   acyclic, and no parking_lot guard may be held across store I/O or
//!   across a condvar park (other than the guard the wait releases);
//! - [`atomic_ordering`]: every `Ordering::Relaxed` in non-test code
//!   must carry a `// sync: <why relaxed is sound>` annotation;
//! - [`counter_overflow`]: merge/fold paths must not use unchecked
//!   `+`/`+=`/`*` on counter- or byte-size-like values.
//!
//! Each analysis respects the standard allow escape hatch
//! (`// audit: allow(<analysis>) -- reason`); the analysis names are
//! registered in [`crate::rules::ANALYSIS_RULES`] so allow hygiene
//! accepts them.

pub mod atomic_ordering;
pub mod counter_overflow;
pub mod lock_order;

use crate::rules::{FileKind, Finding};
use crate::scan::{self, SourceModel};
use crate::structure::StructureModel;

/// The analyses the audit binary can run, with one-line descriptions.
pub const ANALYSES: &[(&str, &str)] = &[
    (
        "lock-order",
        "workspace lock-acquisition graph must be cycle-free and no guard may be held across store I/O or a condvar park",
    ),
    (
        "atomic-ordering",
        "every Ordering::Relaxed in non-test code needs a `// sync: <why>` annotation (or an upgrade)",
    ),
    (
        "counter-overflow",
        "merge/fold paths must use saturating_*/checked_* on counter and byte-size values",
    ),
];

/// True when `name` is one of the structural analyses.
pub fn is_known_analysis(name: &str) -> bool {
    ANALYSES.iter().any(|(n, _)| *n == name)
}

/// One fully-modelled source file, shared by all analyses.
#[derive(Debug)]
pub struct FileModel {
    /// Repo-relative path (or fixture label).
    pub path: String,
    /// Where in the workspace the file lives.
    pub kind: FileKind,
    /// Per-line classification (test regions, allows, sync notes).
    pub lines: SourceModel,
    /// Token-level structure (functions, calls, brace nesting).
    pub structure: StructureModel,
}

impl FileModel {
    /// Build the full model for one source text.
    pub fn build(path: &str, kind: FileKind, source: &str) -> FileModel {
        let lines = scan::scan(source);
        let (blanked, _comments) = scan::blank_source(source);
        let structure = StructureModel::build(&blanked, &lines);
        FileModel {
            path: path.to_string(),
            kind,
            lines,
            structure,
        }
    }

    /// Analyses only look at library code: examples, benches, and
    /// integration tests exercise the APIs under test harness rules.
    pub fn analyzed(&self) -> bool {
        matches!(self.kind, FileKind::StrictLib | FileKind::Lib)
    }
}

/// Run the named analyses over a modelled file set. Unknown names are
/// the caller's error and are skipped here (the CLI validates them).
pub fn run_analyses(files: &[FileModel], names: &[&str]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for name in names {
        match *name {
            "lock-order" => findings.extend(lock_order::run(files)),
            "atomic-ordering" => findings.extend(atomic_ordering::run(files)),
            "counter-overflow" => findings.extend(counter_overflow::run(files)),
            _ => {}
        }
    }
    findings.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    findings
}

/// Emit helper shared by the analyses: drops the finding when the line
/// (or the line above) carries a matching allow directive.
pub(crate) fn emit(
    out: &mut Vec<Finding>,
    file: &FileModel,
    line: usize,
    rule: &'static str,
    message: String,
) {
    if file.lines.is_allowed(line, rule) {
        return;
    }
    out.push(Finding {
        file: file.path.clone(),
        line: line + 1,
        rule,
        message,
    });
}
