//! The ten project-specific lints, plus allow-directive hygiene.
//!
//! Each rule pattern-matches on the blanked `code` text produced by
//! [`crate::scan`], so string literals and comments never trigger
//! findings. Rules are heuristic by design — this is a project lint,
//! not a compiler — and every rule can be suppressed per line with
//! `// audit: allow(<rule>) -- reason`.

use crate::scan::SourceModel;

/// Stable identifiers for every rule the audit enforces.
pub const RULES: &[(&str, &str)] = &[
    (
        "no-panic-path",
        "library code in landlord-core/-sim/-repo must not unwrap()/expect()/panic!: return Result or a domain error",
    ),
    (
        "lossy-cast",
        "byte/size/count values must not be narrowed with `as` (u64 -> u32/usize/...): use try_from or compare in u64",
    ),
    (
        "float-eq",
        "Jaccard/efficiency-style floats must not be compared with == or !=: compare with a tolerance or in integer milli-units",
    ),
    (
        "unseeded-rng",
        "non-test code must not construct entropy-seeded RNGs (thread_rng/from_entropy/...): take an explicit u64 seed",
    ),
    (
        "guard-across-closure",
        "a parking_lot guard must not be passed into a closure outside SharedImageCache::with_cache",
    ),
    (
        "test-invariants",
        "a #[test] that mutates an ImageCache must call check_invariants() before returning",
    ),
    (
        "no-silent-io-drop",
        "io::Result/serde_json::Result values must not be discarded with `let _ =` or a bare `.ok();` in non-test code: propagate or handle the error; durability-layer functions (landlord-wal, persistent.rs) additionally must fsync every durable write before returning",
    ),
    (
        "plan-purity",
        "the plan/apply seam: cache/plan.rs must stay pure (no `&mut self`); cache/apply.rs must not re-derive plan decisions (find_satisfying/pick_merge_candidate/plan calls)",
    ),
    (
        "no-raw-clock",
        "landlord-core/-sim/-store/-obs non-test code must not read std::time directly (Instant/SystemTime): go through the landlord-obs Clock abstraction so runs stay deterministic",
    ),
    (
        "no-unsafe",
        "`unsafe` is banned in workspace code: encapsulate the need behind a safe API or justify it with an allow",
    ),
    (
        "bad-allow",
        "audit allow-directives must name known rules, carry a `-- reason`, and actually suppress something",
    ),
];

/// The structural analyses (see [`crate::analyses`]) also accept allow
/// directives. They run in a separate pass, so the stale-allow check
/// here must leave their directives alone.
pub const ANALYSIS_RULES: &[&str] = &["lock-order", "atomic-ordering", "counter-overflow"];

/// True when `rule` is one of the audit's known rule or analysis names.
pub fn is_known_rule(rule: &str) -> bool {
    RULES.iter().any(|(name, _)| *name == rule) || ANALYSIS_RULES.contains(&rule)
}

/// One lint violation.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Repo-relative path of the offending file.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// The violated rule's stable name.
    pub rule: &'static str,
    /// Human-oriented explanation.
    pub message: String,
}

/// What part of the workspace a file belongs to, which decides the
/// rules that apply to it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FileKind {
    /// `crates/<name>/src/**` of a crate where panics are banned.
    StrictLib,
    /// `crates/<name>/src/**` of the remaining crates.
    Lib,
    /// Example, bench, or bin-only sources.
    Support,
    /// Integration tests (`tests/**`).
    IntegrationTest,
}

/// Crates whose library code falls under the `no-panic-path` rule.
pub const STRICT_CRATES: &[&str] = &[
    "landlord-core",
    "landlord-sim",
    "landlord-repo",
    "landlord-wal",
];

/// Run every applicable rule over one scanned file.
pub fn check_file(file: &str, kind: FileKind, model: &SourceModel) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut used_allows: Vec<(usize, String)> = Vec::new();

    let mut emit =
        |line: usize, rule: &'static str, message: String, findings: &mut Vec<Finding>| {
            if model.is_allowed(line, rule) {
                used_allows.push((line, rule.to_string()));
                return;
            }
            findings.push(Finding {
                file: file.to_string(),
                line: line + 1,
                rule,
                message,
            });
        };

    let lints_code = matches!(
        kind,
        FileKind::StrictLib | FileKind::Lib | FileKind::Support
    );

    // The plan/apply seam of the cache engine (R8). Paths are
    // repo-relative; fixture tests pass matching labels.
    let plan_side = file.ends_with("cache/plan.rs");
    let apply_side = file.ends_with("cache/apply.rs");

    // R9: no-raw-clock — the deterministic crates must route all time
    // through landlord-obs's Clock. clock.rs is the one sanctioned
    // Instant wrapper (MonotonicClock), and the CLI's bench-report
    // times wall-clock on purpose; neither path is scoped here.
    let clock_scoped = [
        "landlord-core",
        "landlord-sim",
        "landlord-store",
        "landlord-obs",
    ]
    .iter()
    .any(|c| file.contains(&format!("{c}/src")))
        && !file.ends_with("landlord-obs/src/clock.rs");

    for (idx, info) in model.lines.iter().enumerate() {
        let code = info.code.as_str();

        // R8: plan-purity — planning is pure, applying never re-plans.
        if plan_side && !info.in_test && code.contains("&mut self") {
            emit(
                idx,
                "plan-purity",
                "`&mut self` receiver in cache/plan.rs: planning must be pure (`&self` only) \
                 so plan(spec) can never disturb the state it decides over"
                    .to_string(),
                &mut findings,
            );
        }
        if apply_side && !info.in_test {
            for needle in ["find_satisfying", "pick_merge_candidate", "plan_over"] {
                if contains_token(code, needle) {
                    emit(
                        idx,
                        "plan-purity",
                        format!(
                            "`{needle}` called from cache/apply.rs: apply must execute the \
                             decision carried by the Plan, never re-derive it"
                        ),
                        &mut findings,
                    );
                }
            }
            if code.contains(".plan(") {
                emit(
                    idx,
                    "plan-purity",
                    "`.plan(..)` called from cache/apply.rs: apply consumes a Plan computed \
                     by the caller on settled state, it never plans itself"
                        .to_string(),
                    &mut findings,
                );
            }
        }

        // R9: no-raw-clock — simulation results must be a pure
        // function of the request stream, and a raw Instant::now() or
        // SystemTime::now() silently breaks that.
        if clock_scoped && !info.in_test {
            for needle in ["Instant", "SystemTime"] {
                if contains_token(code, needle) {
                    emit(
                        idx,
                        "no-raw-clock",
                        format!(
                            "`{needle}` in deterministic simulation code: take a \
                             `landlord_obs::Clock` (LogicalClock / MonotonicClock) instead"
                        ),
                        &mut findings,
                    );
                }
            }
        }

        // R1: no-panic-path — strict crates' non-test library code.
        if kind == FileKind::StrictLib && !info.in_test {
            for (needle, what) in [
                (".unwrap()", "`.unwrap()`"),
                (".expect(", "`.expect(..)`"),
                ("panic!(", "`panic!`"),
                ("unreachable!(", "`unreachable!`"),
                ("todo!(", "`todo!`"),
                ("unimplemented!(", "`unimplemented!`"),
            ] {
                if code.contains(needle) {
                    emit(
                        idx,
                        "no-panic-path",
                        format!(
                            "{what} in library code: thread the failure through Result instead"
                        ),
                        &mut findings,
                    );
                }
            }
        }

        // R2: lossy-cast — non-test code of all workspace crates.
        if lints_code && !info.in_test {
            for target in ["u8", "u16", "u32", "usize", "i32"] {
                for (pos, source_expr) in lossy_cast_sources(code, target) {
                    let _ = pos;
                    if counter_tokens(&source_expr) && !widening_to_usize(target, &source_expr) {
                        emit(
                            idx,
                            "lossy-cast",
                            format!(
                                "byte/size counter narrowed with `as {target}` (source: `{}`): use `{target}::try_from` or widen the comparison",
                                source_expr.trim()
                            ),
                            &mut findings,
                        );
                    }
                }
            }
        }

        // R3: float-eq — non-test code of all workspace crates.
        if lints_code && !info.in_test {
            for op in ["==", "!="] {
                for (l, r) in comparison_operands(code, op) {
                    if is_floatish(&l) || is_floatish(&r) {
                        emit(
                            idx,
                            "float-eq",
                            format!(
                                "float compared with `{op}` (`{} {op} {}`): use an epsilon or integer milli-units",
                                l.trim(),
                                r.trim()
                            ),
                            &mut findings,
                        );
                    }
                }
            }
        }

        // R4: unseeded-rng — all non-test code (benches included: runs
        // must be reproducible).
        if !info.in_test {
            for needle in ["thread_rng", "from_entropy", "rand::random", "OsRng"] {
                if contains_token(code, needle) {
                    emit(
                        idx,
                        "unseeded-rng",
                        format!("`{needle}` constructs an unseeded RNG: accept an explicit u64 seed instead"),
                        &mut findings,
                    );
                }
            }
        }

        // R5: guard-across-closure — non-test code, any crate.
        if lints_code && !info.in_test && (code.contains(".lock(") || code.contains(".try_lock(")) {
            let sanctioned = info.fn_name.as_deref() == Some("with_cache");
            if !sanctioned {
                // Inspect the whole statement (up to 8 continuation
                // lines) for a closure literal.
                let mut stmt = String::new();
                for look in model.lines.iter().skip(idx).take(8) {
                    stmt.push_str(&look.code);
                    stmt.push('\n');
                    if look.code.trim_end().ends_with(';') || look.code.trim_end().ends_with('{') {
                        break;
                    }
                }
                if contains_closure(&stmt) {
                    emit(
                        idx,
                        "guard-across-closure",
                        "lock guard and closure share a statement outside `with_cache`: route through SharedImageCache::with_cache".to_string(),
                        &mut findings,
                    );
                }
            }
        }

        // R7: no-silent-io-drop — non-test code of all workspace
        // crates. Discarding an io::Result hides exactly the failures
        // the crash-recovery machinery exists to surface.
        if lints_code && !info.in_test {
            if code.contains("let _ =") || code.contains("let _ :") || code.contains("let _:") {
                // Statement window: this line plus up to 3 continuations.
                let mut stmt = String::new();
                for look in model.lines.iter().skip(idx).take(4) {
                    stmt.push_str(&look.code);
                    stmt.push('\n');
                    if look.code.trim_end().ends_with(';') {
                        break;
                    }
                }
                if io_result_tokens(&stmt) {
                    emit(
                        idx,
                        "no-silent-io-drop",
                        "`let _ =` discards an io::Result: propagate with `?` or handle the error"
                            .to_string(),
                        &mut findings,
                    );
                }
            } else if code.contains(".ok();") {
                // Gather the whole statement, looking back over up to
                // 3 continuation lines.
                let mut start = idx;
                for back in (idx.saturating_sub(3)..idx).rev() {
                    let prev = model.lines[back].code.trim_end();
                    if prev.ends_with(';') || prev.ends_with('{') || prev.ends_with('}') {
                        break;
                    }
                    start = back;
                }
                let stmt: String = model.lines[start..=idx]
                    .iter()
                    .map(|l| l.code.as_str())
                    .collect::<Vec<_>>()
                    .join("\n");
                // `let x = …ok();` / `y = …ok();` bind the value: used.
                let value_used =
                    stmt.contains("let ") || stmt.contains("return ") || stmt.contains("= ");
                if !value_used && io_result_tokens(&stmt) {
                    emit(
                        idx,
                        "no-silent-io-drop",
                        "bare `.ok();` swallows an io::Result: propagate with `?` or handle the error"
                            .to_string(),
                        &mut findings,
                    );
                }
            }
        }

        // R10: no-unsafe — everywhere, tests included. The workspace
        // is pure-safe Rust by policy; a genuinely unavoidable unsafe
        // block must carry an allow with its safety argument.
        if contains_token(code, "unsafe") {
            emit(
                idx,
                "no-unsafe",
                "`unsafe` in workspace code: rework behind a safe API, or justify with \
                 `// audit: allow(no-unsafe) -- <safety argument>`"
                    .to_string(),
                &mut findings,
            );
        }

        // Allow hygiene: unknown rule names and missing reasons.
        if info.malformed_allow {
            findings.push(Finding {
                file: file.to_string(),
                line: idx + 1,
                rule: "bad-allow",
                message: "malformed allow: use `// audit: allow(<rule>) -- reason`".to_string(),
            });
        }
        for rule in &info.allows {
            if !is_known_rule(rule) {
                findings.push(Finding {
                    file: file.to_string(),
                    line: idx + 1,
                    rule: "bad-allow",
                    message: format!("allow names unknown rule `{rule}`"),
                });
            }
        }
    }

    // R7 (durability half): fsync-before-ack. In the write-ahead-log
    // layer and the persistent cache, returning Ok from a function
    // that wrote or renamed durable bytes is an acknowledgement — and
    // an acknowledgement without an fsync is a promise the next power
    // cut can revoke. Every such function must sync (sync_all /
    // sync_data / fsync_dir) somewhere in its body.
    let durability_path = file.contains("landlord-wal/src") || file.ends_with("persistent.rs");
    if durability_path {
        for span in &model.fns {
            if span.is_unit_test || span.in_test_region {
                continue;
            }
            let body: String = model.lines[span.start_line..=span.end_line]
                .iter()
                .map(|l| l.code.as_str())
                .collect::<Vec<_>>()
                .join("\n");
            let writes_durably = ["write_all(", "rename(", ".set_len("]
                .iter()
                .any(|t| body.contains(t));
            let syncs = ["sync_all", "sync_data", "fsync_dir", "fsync("]
                .iter()
                .any(|t| body.contains(t));
            if writes_durably && !syncs {
                emit(
                    span.start_line,
                    "no-silent-io-drop",
                    format!(
                        "`{}` writes durable bytes (write_all/rename/set_len) but never fsyncs \
                         (sync_all/sync_data/fsync_dir): an unsynced write must not be acknowledged",
                        span.name
                    ),
                    &mut findings,
                );
            }
        }
    }

    // R6: test-invariants — every #[test] body, anywhere.
    for span in &model.fns {
        if !span.is_unit_test {
            continue;
        }
        let body: String = model.lines[span.start_line..=span.end_line]
            .iter()
            .map(|l| l.code.as_str())
            .collect::<Vec<_>>()
            .join("\n");
        let touches_cache = ["ImageCache", "SharedImageCache", "cache(", "cache."]
            .iter()
            .any(|n| body.contains(n));
        let mutates = [
            ".request(",
            ".restore(",
            ".evict",
            ".merge_into(",
            ".split_image(",
        ]
        .iter()
        .any(|n| body.contains(n));
        if touches_cache && mutates && !body.contains("check_invariants") {
            emit(
                span.start_line,
                "test-invariants",
                format!(
                    "#[test] `{}` mutates an ImageCache but never calls check_invariants()",
                    span.name
                ),
                &mut findings,
            );
        }
    }

    // Allow hygiene: an allow that suppressed nothing is stale.
    // Analysis allows are exercised by the analysis passes, which this
    // per-file pass cannot see — they are exempt from staleness.
    for (idx, info) in model.lines.iter().enumerate() {
        for rule in &info.allows {
            if !is_known_rule(rule) || ANALYSIS_RULES.contains(&rule.as_str()) {
                continue;
            }
            let used = used_allows
                .iter()
                .any(|(l, r)| r == rule && (*l == idx || *l == idx + 1));
            if !used {
                findings.push(Finding {
                    file: file.to_string(),
                    line: idx + 1,
                    rule: "bad-allow",
                    message: format!("allow(`{rule}`) suppresses nothing here: remove it"),
                });
            }
        }
    }

    findings
}

/// Find `<expr> as <target>` casts on a blanked code line and return
/// the textual source expression for each.
fn lossy_cast_sources(code: &str, target: &str) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    let needle = format!(" as {target}");
    let bytes = code.as_bytes();
    let mut from = 0;
    while let Some(rel) = code[from..].find(&needle) {
        let pos = from + rel;
        from = pos + needle.len();
        // The target type must end at a word boundary (` as u32` must
        // not match inside ` as u32x4`-style text).
        let after = pos + needle.len();
        if after < bytes.len() {
            let c = bytes[after] as char;
            if c.is_alphanumeric() || c == '_' {
                continue;
            }
        }
        out.push((pos, preceding_expr(code, pos)));
    }
    out
}

/// Extract the expression text immediately before byte offset `end`
/// (scanning back over identifiers, field access, calls, and indexes).
fn preceding_expr(code: &str, end: usize) -> String {
    let chars: Vec<char> = code[..end].chars().collect();
    let mut i = chars.len();
    let mut depth = 0i32;
    while i > 0 {
        let c = chars[i - 1];
        match c {
            ')' | ']' => depth += 1,
            '(' | '[' => {
                if depth == 0 {
                    break;
                }
                depth -= 1;
            }
            c if c.is_alphanumeric() || c == '_' || c == '.' || c == ':' => {}
            ' ' if depth > 0 => {}
            '*' | '+' | '-' | '/' if depth > 0 => {}
            _ => {
                if depth == 0 {
                    break;
                }
            }
        }
        i -= 1;
    }
    chars[i..].iter().collect()
}

/// A cast to `usize` whose source expression explicitly names a
/// narrower unsigned type (`u32::from_le_bytes(..) as usize`) widens
/// on every supported target and is safe.
fn widening_to_usize(target: &str, expr: &str) -> bool {
    target == "usize" && ident_tokens(expr).any(|t| matches!(t.as_str(), "u8" | "u16" | "u32"))
}

/// Does the cast source look like a byte/size/count value?
fn counter_tokens(expr: &str) -> bool {
    // Widening helper results are never lossy regardless of name.
    for safe in [
        "count_ones()",
        "count_zeros()",
        "leading_zeros()",
        "trailing_zeros()",
    ] {
        if expr.trim_end().ends_with(safe) {
            return false;
        }
    }
    ident_tokens(expr).any(|tok| {
        matches!(
            tok.as_str(),
            "bytes" | "size" | "len" | "count" | "capacity"
        )
    })
}

/// Split an expression into identifier sub-tokens (`spec_bytes` yields
/// `spec` and `bytes`).
fn ident_tokens(expr: &str) -> impl Iterator<Item = String> + '_ {
    expr.split(|c: char| !(c.is_alphanumeric() || c == '_'))
        .flat_map(|word| word.split('_'))
        .filter(|t| !t.is_empty())
        .map(str::to_lowercase)
}

/// Find `lhs <op> rhs` comparisons and return both operand texts.
fn comparison_operands(code: &str, op: &str) -> Vec<(String, String)> {
    let mut out = Vec::new();
    let bytes = code.as_bytes();
    let mut from = 0;
    while let Some(rel) = code[from..].find(op) {
        let pos = from + rel;
        from = pos + op.len();
        // Reject `<=`, `>=`, `=>`, `===`-ish neighbours.
        let before = pos.checked_sub(1).map(|p| bytes[p] as char);
        let after = bytes.get(pos + op.len()).map(|&b| b as char);
        if matches!(before, Some('=') | Some('<') | Some('>') | Some('!')) {
            continue;
        }
        if matches!(after, Some('=') | Some('>')) {
            continue;
        }
        let lhs = preceding_operand(code, pos);
        let rhs = following_operand(code, pos + op.len());
        out.push((lhs, rhs));
    }
    out
}

fn preceding_operand(code: &str, end: usize) -> String {
    let chars: Vec<char> = code[..end].chars().collect();
    let mut i = chars.len();
    let mut depth = 0i32;
    while i > 0 {
        let c = chars[i - 1];
        match c {
            ')' | ']' => depth += 1,
            '(' | '[' | '{' => {
                if depth == 0 {
                    break;
                }
                depth -= 1;
            }
            ',' | ';' | '&' | '|' if depth == 0 => break,
            _ => {}
        }
        i -= 1;
    }
    chars[i..].iter().collect::<String>().trim().to_string()
}

fn following_operand(code: &str, start: usize) -> String {
    let chars: Vec<char> = code[start..].chars().collect();
    let mut i = 0;
    let mut depth = 0i32;
    while i < chars.len() {
        let c = chars[i];
        match c {
            '(' | '[' => depth += 1,
            ')' | ']' | '}' => {
                if depth == 0 {
                    break;
                }
                depth -= 1;
            }
            ',' | ';' | '&' | '|' if depth == 0 => break,
            _ => {}
        }
        i += 1;
    }
    chars[..i].iter().collect::<String>().trim().to_string()
}

/// Identifier fragments that mark a value as float-like in this
/// codebase (Jaccard distances, efficiencies, ratios...).
const FLOAT_NAMES: &[&str] = &[
    "jaccard",
    "distance",
    "efficiency",
    "alpha",
    "ratio",
    "pct",
    "density",
    "overhead",
    "factor",
];

/// Integer-scaled renditions of the above (safe to compare exactly).
const INT_SCALED_SUFFIXES: &[&str] = &["milli", "bp", "permille"];

fn is_floatish(operand: &str) -> bool {
    // `1.5`, `0.`, `2f64` style literals.
    let bytes = operand.as_bytes();
    for (i, w) in bytes.windows(2).enumerate() {
        if w[0] == b'.' && w[1].is_ascii_digit() && i > 0 && bytes[i - 1].is_ascii_digit() {
            return true;
        }
    }
    if operand.contains("f64") || operand.contains("f32") {
        return true;
    }
    let toks: Vec<String> = ident_tokens(operand).collect();
    if toks
        .iter()
        .any(|t| INT_SCALED_SUFFIXES.contains(&t.as_str()))
    {
        return false;
    }
    toks.iter().any(|t| FLOAT_NAMES.contains(&t.as_str()))
}

/// Tokens that mark a statement as producing an `io::Result` (or
/// `serde_json::Result`) in this codebase. Deliberately excludes the
/// `write!`/`writeln!` macros: on Strings those return `fmt::Result`,
/// whose discard is idiomatic.
fn io_result_tokens(stmt: &str) -> bool {
    [
        "fs::",
        "File::",
        "remove_file",
        "remove_dir",
        "create_dir",
        "rename(",
        "hard_link",
        "sync_all",
        "sync_data",
        "set_len",
        "write_all",
        "flush(",
        "to_writer",
        "save_state",
    ]
    .iter()
    .any(|t| stmt.contains(t))
}

fn contains_token(code: &str, needle: &str) -> bool {
    let mut from = 0;
    while let Some(rel) = code[from..].find(needle) {
        let pos = from + rel;
        from = pos + needle.len();
        let before_ok = pos == 0 || {
            let c = code.as_bytes()[pos - 1] as char;
            !(c.is_alphanumeric() || c == '_')
        };
        let end = pos + needle.len();
        let after_ok = end >= code.len() || {
            let c = code.as_bytes()[end] as char;
            !(c.is_alphanumeric() || c == '_')
        };
        if before_ok && after_ok {
            return true;
        }
    }
    false
}

/// Does the statement text contain a closure literal (`|args| ...`)?
fn contains_closure(stmt: &str) -> bool {
    let chars: Vec<char> = stmt.chars().collect();
    for (i, &c) in chars.iter().enumerate() {
        if c != '|' {
            continue;
        }
        // `||` as an operator (logical or) has operands on both sides;
        // a closure `|` follows `(`, `,`, `=`, or start-of-statement.
        let mut j = i;
        while j > 0 && chars[j - 1].is_whitespace() {
            j -= 1;
        }
        let prev = if j == 0 { None } else { Some(chars[j - 1]) };
        let opens_closure = matches!(prev, None | Some('(') | Some(',') | Some('=') | Some('{'));
        if !opens_closure {
            continue;
        }
        // Must look like a parameter list: next non-space is ident-ish,
        // `_`, `&`, `(`, or an immediate `|` (zero-arg closure).
        let mut k = i + 1;
        while k < chars.len() && chars[k] == ' ' {
            k += 1;
        }
        let next = chars.get(k);
        if matches!(next, Some(c) if c.is_alphabetic() || matches!(c, '_' | '&' | '(' | '|')) {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(kind: FileKind, src: &str) -> Vec<Finding> {
        check_file("fixture.rs", kind, &crate::scan::scan(src))
    }

    #[test]
    fn closure_detection() {
        assert!(contains_closure("m.lock().apply(|x| x + 1);"));
        assert!(contains_closure("let g = map(|_| 0);"));
        assert!(!contains_closure("if a || b { }"));
        assert!(!contains_closure("self.inner.lock().request(spec);"));
    }

    #[test]
    fn preceding_expr_extraction() {
        let line = "self.emit(CacheEvent::Split { image: id, pieces: pieces.len() as u32 });";
        let pos = line.find(" as u32").expect("cast present");
        assert_eq!(preceding_expr(line, pos), "pieces.len()");
    }

    #[test]
    fn counter_token_matching() {
        assert!(counter_tokens("pieces.len()"));
        assert!(counter_tokens("self.stats.image_count"));
        assert!(counter_tokens("total_bytes"));
        assert!(!counter_tokens("w.count_ones()"));
        assert!(!counter_tokens("rng.gen_range(0..self.universe)"));
    }

    #[test]
    fn floatish_operands() {
        assert!(is_floatish("0.5"));
        assert!(is_floatish("jaccard_distance(a, b)"));
        assert!(is_floatish("self.cache_efficiency_pct()"));
        assert!(!is_floatish("distance_milli"));
        assert!(!is_floatish("rev.0"));
        assert!(!is_floatish("a.0"));
    }

    #[test]
    fn strict_lib_flags_unwrap_but_lib_does_not() {
        let src = "fn f() {\n    let x = m.get(&k).unwrap();\n}\n";
        assert_eq!(check(FileKind::StrictLib, src).len(), 1);
        assert_eq!(check(FileKind::Lib, src).len(), 0);
    }

    #[test]
    fn unwrap_or_else_is_not_flagged() {
        let src = "fn f() {\n    let x = m.get(&k).unwrap_or_else(Default::default);\n}\n";
        assert!(check(FileKind::StrictLib, src).is_empty());
    }

    fn check_at(file: &str, src: &str) -> Vec<Finding> {
        check_file(file, FileKind::StrictLib, &crate::scan::scan(src))
    }

    #[test]
    fn plan_purity_flags_mut_self_in_plan_module() {
        let src = "impl ImageCache {\n    pub fn plan(&mut self, spec: &Spec) -> Plan {\n        todo(self)\n    }\n}\n";
        let f = check_at("crates/landlord-core/src/cache/plan.rs", src);
        assert_eq!(f.iter().filter(|f| f.rule == "plan-purity").count(), 1);
        // The same text anywhere else is fine.
        assert!(check_at("crates/landlord-core/src/cache/mod.rs", src)
            .iter()
            .all(|f| f.rule != "plan-purity"));
    }

    #[test]
    fn plan_purity_flags_replanning_in_apply_module() {
        let src = "impl ImageCache {\n    fn apply_inner(&mut self, spec: &Spec) {\n        let p = self.plan(spec);\n        let s = self.find_satisfying(spec);\n    }\n}\n";
        let f = check_at("crates/landlord-core/src/cache/apply.rs", src);
        assert_eq!(
            f.iter().filter(|f| f.rule == "plan-purity").count(),
            2,
            "both the .plan( call and find_satisfying must be flagged: {f:?}"
        );
    }

    #[test]
    fn plan_purity_ignores_tests_and_clean_apply_code() {
        // Executing a carried decision is exactly what apply is for.
        let src = "impl ImageCache {\n    fn apply_inner(&mut self, spec: &Spec, plan: &Plan) {\n        match plan.op { _ => {} }\n    }\n}\n";
        assert!(check_at("crates/landlord-core/src/cache/apply.rs", src).is_empty());
        // Test code inside the module may re-plan freely.
        let test_src = "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {\n        let p = cache.plan(&spec);\n        let _ = p;\n    }\n}\n";
        assert!(
            check_at("crates/landlord-core/src/cache/apply.rs", test_src)
                .iter()
                .all(|f| f.rule != "plan-purity")
        );
    }

    #[test]
    fn plan_purity_is_a_known_rule() {
        assert!(is_known_rule("plan-purity"));
    }

    #[test]
    fn no_raw_clock_flags_instant_and_systemtime_in_scoped_crates() {
        let src = "fn f() {\n    let t = std::time::Instant::now();\n}\n";
        let f = check_at("crates/landlord-core/src/cache/mod.rs", src);
        assert_eq!(f.iter().filter(|f| f.rule == "no-raw-clock").count(), 1);
        let src = "fn f() {\n    let t = SystemTime::now();\n}\n";
        let f = check_at("crates/landlord-sim/src/simulator.rs", src);
        assert_eq!(f.iter().filter(|f| f.rule == "no-raw-clock").count(), 1);
    }

    #[test]
    fn no_raw_clock_ignores_unscoped_crates_tests_and_clock_types() {
        let src = "fn f() {\n    let t = std::time::Instant::now();\n}\n";
        // landlord-obs implements MonotonicClock over Instant; the CLI
        // times wall-clock deliberately. Neither is scoped.
        assert!(check_at("crates/landlord-obs/src/clock.rs", src)
            .iter()
            .all(|f| f.rule != "no-raw-clock"));
        assert!(check_at("crates/landlord-cli/src/commands.rs", src)
            .iter()
            .all(|f| f.rule != "no-raw-clock"));
        // Test code inside a scoped crate may time itself freely.
        let test_src = "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {\n        let t = std::time::Instant::now();\n        let _ = t;\n    }\n}\n";
        assert!(check_at("crates/landlord-sim/src/simulator.rs", test_src)
            .iter()
            .all(|f| f.rule != "no-raw-clock"));
        // Word-boundary matching: the Clock wrappers never trip it.
        let ok_src = "fn f(c: &MonotonicClock) {\n    let t = c.now_ticks();\n}\n";
        assert!(check_at("crates/landlord-sim/src/simulator.rs", ok_src)
            .iter()
            .all(|f| f.rule != "no-raw-clock"));
        assert!(is_known_rule("no-raw-clock"));
    }
}
