//! Lightweight Rust source scanner for the audit lints.
//!
//! This is deliberately not a full parser. It performs one job well:
//! classify every line of a source file so the rules in [`crate::rules`]
//! can pattern-match on *code* without tripping over comments, string
//! literals, or test-only regions.
//!
//! Per line it records:
//! - `code`: the line with comment text and literal *contents* blanked
//!   out (quotes are kept so "a string was here" remains visible);
//! - `in_test`: whether any part of the line is inside a `#[cfg(test)]`
//!   item or a `#[test]` function;
//! - `fn_name`: the innermost enclosing function, when known;
//! - `allows`: lint names allowed via `// audit: allow(rule) -- reason`.
//!
//! It also collects the span of every function body so function-scoped
//! rules (like `test-invariants`) can inspect whole bodies.

/// One classified source line.
#[derive(Debug, Clone)]
pub struct LineInfo {
    /// Source text with comments and literal contents blanked.
    pub code: String,
    /// True if any part of the line is inside test-only code.
    pub in_test: bool,
    /// Innermost enclosing function name, if inside a function body.
    pub fn_name: Option<String>,
    /// Rules allowed by an `audit: allow(...)` comment on this line.
    pub allows: Vec<String>,
    /// True if an allow comment on this line is missing its `-- reason`.
    pub malformed_allow: bool,
    /// True if the line carries a `// sync: <why>` annotation
    /// justifying a relaxed atomic ordering (see the atomic-ordering
    /// analysis in [`crate::analyses`]).
    pub sync_note: bool,
}

/// The span of one function body (inclusive, 0-based line indices).
#[derive(Debug, Clone)]
pub struct FnSpan {
    /// The function's name.
    pub name: String,
    /// True when the function carries a `#[test]` attribute.
    pub is_unit_test: bool,
    /// True when the function lives inside any test-only region.
    pub in_test_region: bool,
    /// Line index of the opening brace.
    pub start_line: usize,
    /// Line index of the closing brace.
    pub end_line: usize,
}

/// A scanned source file ready for rule evaluation.
#[derive(Debug)]
pub struct SourceModel {
    /// Per-line classification, in file order.
    pub lines: Vec<LineInfo>,
    /// Every function body found in the file.
    pub fns: Vec<FnSpan>,
}

impl SourceModel {
    /// True when the rule is allowed on `line` (same line or the one
    /// directly above carries the allow).
    pub fn is_allowed(&self, line: usize, rule: &str) -> bool {
        let hit = |l: &LineInfo| l.allows.iter().any(|a| a == rule);
        if hit(&self.lines[line]) {
            return true;
        }
        line > 0 && hit(&self.lines[line - 1])
    }
}

#[derive(Debug)]
struct Scope {
    is_test: bool,
    fn_name: Option<String>,
    fn_index: Option<usize>,
}

/// Scan `source` into a [`SourceModel`].
pub fn scan(source: &str) -> SourceModel {
    let (blanked, comments) = blank_source(source);
    classify(&blanked, &comments)
}

/// Pass 1: blank comment text and literal contents; collect per-line
/// comment text (for allow-directive parsing). Public so the
/// structural analyses can tokenize the same neutralised text.
pub fn blank_source(source: &str) -> (String, Vec<String>) {
    let chars: Vec<char> = source.chars().collect();
    let mut out = String::with_capacity(source.len());
    let mut comments: Vec<String> = vec![String::new()];
    let mut i = 0;

    macro_rules! push {
        ($c:expr) => {{
            let c = $c;
            out.push(c);
            if c == '\n' {
                comments.push(String::new());
            }
        }};
    }
    macro_rules! blank {
        ($c:expr) => {
            push!(if $c == '\n' { '\n' } else { ' ' })
        };
    }

    while i < chars.len() {
        let c = chars[i];
        let next = chars.get(i + 1).copied();
        match c {
            '/' if next == Some('/') => {
                while i < chars.len() && chars[i] != '\n' {
                    let idx = comments.len() - 1;
                    comments[idx].push(chars[i]);
                    blank!(chars[i]);
                    i += 1;
                }
            }
            '/' if next == Some('*') => {
                let mut depth = 0usize;
                while i < chars.len() {
                    if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                        depth += 1;
                        let idx = comments.len() - 1;
                        comments[idx].push_str("/*");
                        blank!('/');
                        blank!('*');
                        i += 2;
                    } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                        depth -= 1;
                        blank!('*');
                        blank!('/');
                        i += 2;
                        if depth == 0 {
                            break;
                        }
                    } else {
                        let idx = comments.len() - 1;
                        comments[idx].push(chars[i]);
                        blank!(chars[i]);
                        i += 1;
                    }
                }
            }
            _ if string_literal_start(&chars, i).is_some() => {
                // Any string literal: `"..."`, `b"..."`, `c"..."`,
                // `r"..."`, `r#"..."#`, `br#"..."#`, `cr"..."`, with
                // any number of hashes. The prefix and quotes are kept
                // as code; contents are blanked. Raw strings have no
                // escapes and close only on `"` followed by exactly
                // their hash count, so a raw string containing
                // `.unwrap()`, `*/`, or bare quotes cannot corrupt the
                // blanking.
                let (prefix_len, raw, hashes) =
                    string_literal_start(&chars, i).expect("guard checked");
                for _ in 0..prefix_len {
                    push!(chars[i]);
                    i += 1;
                }
                if raw {
                    'raw: while i < chars.len() {
                        if chars[i] == '"' {
                            let closes = (0..hashes).all(|k| chars.get(i + 1 + k) == Some(&'#'));
                            if closes {
                                push!('"');
                                i += 1;
                                for _ in 0..hashes {
                                    push!('#');
                                    i += 1;
                                }
                                break 'raw;
                            }
                        }
                        blank!(chars[i]);
                        i += 1;
                    }
                } else {
                    while i < chars.len() {
                        if chars[i] == '\\' && i + 1 < chars.len() {
                            blank!(chars[i]);
                            blank!(chars[i + 1]);
                            i += 2;
                        } else if chars[i] == '"' {
                            push!('"');
                            i += 1;
                            break;
                        } else {
                            blank!(chars[i]);
                            i += 1;
                        }
                    }
                }
            }
            '\'' => {
                // Char literal or lifetime. A char literal closes with
                // a `'` within a few characters; a lifetime does not.
                if next == Some('\\') {
                    // Escaped char literal: '\n', '\u{...}', '\''. The
                    // character right after the backslash is part of
                    // the escape and never closes the literal (so
                    // '\'' blanks correctly).
                    push!('\'');
                    blank!(' ');
                    i += 2;
                    if i < chars.len() {
                        blank!(chars[i]);
                        i += 1;
                    }
                    while i < chars.len() && chars[i] != '\'' {
                        blank!(chars[i]);
                        i += 1;
                    }
                    if i < chars.len() {
                        push!('\'');
                        i += 1;
                    }
                } else if chars.get(i + 2) == Some(&'\'') && next.is_some() {
                    push!('\'');
                    blank!(' ');
                    push!('\'');
                    i += 3;
                } else {
                    // Lifetime: keep as code.
                    push!('\'');
                    i += 1;
                }
            }
            _ => {
                push!(c);
                i += 1;
            }
        }
    }
    (out, comments)
}

/// Does a string literal start at `i`? Returns `(prefix_len, raw,
/// hashes)` where `prefix_len` counts every character up to and
/// including the opening quote. Recognises all of Rust's string
/// prefixes: `b`, `c`, `r`, `br`, `cr`, with any number of hashes on
/// the raw forms. Raw identifiers (`r#match`) and longer identifiers
/// ending in a prefix letter do not match.
fn string_literal_start(chars: &[char], i: usize) -> Option<(usize, bool, usize)> {
    // The prefix must not be the tail of a longer identifier.
    if i > 0 {
        let prev = chars[i - 1];
        if prev.is_alphanumeric() || prev == '_' {
            return None;
        }
    }
    let mut j = i;
    if matches!(chars.get(j), Some('b') | Some('c')) {
        j += 1;
    }
    let raw = chars.get(j) == Some(&'r');
    if raw {
        j += 1;
    }
    let mut hashes = 0usize;
    if raw {
        while chars.get(j) == Some(&'#') {
            hashes += 1;
            j += 1;
        }
    }
    if chars.get(j) == Some(&'"') {
        Some((j - i + 1, raw, hashes))
    } else {
        None
    }
}

/// Pass 2: walk the blanked source, tracking brace scopes, attributes,
/// and function names.
fn classify(blanked: &str, comments: &[String]) -> SourceModel {
    let mut lines: Vec<LineInfo> = Vec::new();
    let mut fns: Vec<FnSpan> = Vec::new();
    let mut stack: Vec<Scope> = vec![Scope {
        is_test: false,
        fn_name: None,
        fn_index: None,
    }];

    let mut pending_cfg_test = false;
    let mut pending_test_attr = false;
    let mut pending_fn: Option<String> = None;

    for (line_no, raw_line) in blanked.lines().enumerate() {
        let comment = comments.get(line_no).map(String::as_str).unwrap_or("");
        let (allows, malformed_allow) = parse_allow(comment);
        let sync_note = comment.contains("sync:");
        let mut in_test = stack.iter().any(|s| s.is_test) || pending_cfg_test || pending_test_attr;
        let mut fn_name = innermost_fn(&stack).map(str::to_string);

        let tokens = tokenize(raw_line);
        let mut t = 0;
        while t < tokens.len() {
            match tokens[t].as_str() {
                // Attribute: capture bracketed content.
                "#" if tokens.get(t + 1).map(String::as_str) == Some("[") => {
                    let mut depth = 0usize;
                    let mut body: Vec<&str> = Vec::new();
                    let mut u = t + 1;
                    while u < tokens.len() {
                        match tokens[u].as_str() {
                            "[" => depth += 1,
                            "]" => {
                                depth -= 1;
                                if depth == 0 {
                                    break;
                                }
                            }
                            tok => body.push(tok),
                        }
                        u += 1;
                    }
                    let is_cfg = body.first().copied() == Some("cfg");
                    let mentions_test = body.contains(&"test");
                    if is_cfg && mentions_test {
                        pending_cfg_test = true;
                        in_test = true;
                    } else if !is_cfg && mentions_test {
                        pending_test_attr = true;
                        in_test = true;
                    }
                    t = u;
                }
                "fn" => {
                    if let Some(name) = tokens.get(t + 1) {
                        if name
                            .chars()
                            .next()
                            .is_some_and(|c| c.is_alphabetic() || c == '_')
                        {
                            pending_fn = Some(name.clone());
                        }
                    }
                }
                ";" => {
                    // An item ended without a body; attribute pendings
                    // no longer apply (e.g. `#[cfg(test)] use foo;`).
                    if stack.len() == 1 || pending_fn.is_none() {
                        pending_cfg_test = false;
                        pending_test_attr = false;
                    }
                    pending_fn = None;
                }
                "{" => {
                    let parent_test = stack.iter().any(|s| s.is_test);
                    let is_test = parent_test || pending_cfg_test || pending_test_attr;
                    let (scope_fn, fn_index) = if let Some(name) = pending_fn.take() {
                        fns.push(FnSpan {
                            name: name.clone(),
                            is_unit_test: pending_test_attr,
                            in_test_region: is_test,
                            start_line: line_no,
                            end_line: line_no,
                        });
                        (Some(name), Some(fns.len() - 1))
                    } else {
                        (innermost_fn(&stack).map(str::to_string), None)
                    };
                    if scope_fn.is_some() {
                        fn_name = scope_fn.clone();
                    }
                    stack.push(Scope {
                        is_test,
                        fn_name: scope_fn,
                        fn_index,
                    });
                    pending_cfg_test = false;
                    pending_test_attr = false;
                    if is_test {
                        in_test = true;
                    }
                }
                "}" if stack.len() > 1 => {
                    let popped = stack.pop().expect("scope stack underflow");
                    if let Some(idx) = popped.fn_index {
                        fns[idx].end_line = line_no;
                    }
                }
                _ => {}
            }
            t += 1;
        }

        if stack.iter().any(|s| s.is_test) {
            in_test = true;
        }
        if fn_name.is_none() {
            fn_name = innermost_fn(&stack).map(str::to_string);
        }
        lines.push(LineInfo {
            code: raw_line.to_string(),
            in_test,
            fn_name,
            allows,
            malformed_allow,
            sync_note,
        });
    }

    SourceModel { lines, fns }
}

fn innermost_fn(stack: &[Scope]) -> Option<&str> {
    stack.iter().rev().find_map(|s| s.fn_name.as_deref())
}

/// Split a blanked line into coarse tokens: identifier/number runs and
/// single punctuation characters. Whitespace is dropped.
fn tokenize(line: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    let mut cur = String::new();
    for c in line.chars() {
        if c.is_alphanumeric() || c == '_' {
            cur.push(c);
        } else {
            if !cur.is_empty() {
                tokens.push(std::mem::take(&mut cur));
            }
            if !c.is_whitespace() {
                tokens.push(c.to_string());
            }
        }
    }
    if !cur.is_empty() {
        tokens.push(cur);
    }
    tokens
}

/// Parse `audit: allow(rule1, rule2) -- reason` out of a comment.
/// Returns the allowed rules and whether the directive was malformed
/// (present but missing a `-- reason` tail or unparseable).
fn parse_allow(comment: &str) -> (Vec<String>, bool) {
    // Directives live in plain `//` comments only; doc comments merely
    // *talk about* the syntax.
    let trimmed = comment.trim_start();
    for doc in ["///", "//!", "/**", "/*!"] {
        if trimmed.starts_with(doc) {
            return (Vec::new(), false);
        }
    }
    let Some(pos) = comment.find("audit:") else {
        return (Vec::new(), false);
    };
    let rest = &comment[pos + "audit:".len()..];
    let rest = rest.trim_start();
    let Some(rest) = rest.strip_prefix("allow") else {
        return (Vec::new(), true);
    };
    let rest = rest.trim_start();
    let Some(rest) = rest.strip_prefix('(') else {
        return (Vec::new(), true);
    };
    let Some(close) = rest.find(')') else {
        return (Vec::new(), true);
    };
    let rules: Vec<String> = rest[..close]
        .split(',')
        .map(|r| r.trim().to_string())
        .filter(|r| !r.is_empty())
        .collect();
    let tail = rest[close + 1..].trim_start();
    let has_reason = tail
        .strip_prefix("--")
        .map(|r| !r.trim().is_empty())
        .unwrap_or(false);
    if rules.is_empty() || !has_reason {
        return (rules, true);
    }
    (rules, false)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_are_blanked() {
        let m = scan("let x = \"panic!(boom)\"; // .unwrap() here\n");
        assert!(!m.lines[0].code.contains("panic"));
        assert!(!m.lines[0].code.contains("unwrap"));
        assert!(m.lines[0].code.contains("let x ="));
    }

    #[test]
    fn raw_strings_and_char_literals() {
        let m = scan(
            "let s = r#\"has .unwrap() inside\"#; let c = '\"'; let l: &'static str = \"x\";\n",
        );
        assert!(!m.lines[0].code.contains("unwrap"));
        // The double-quote inside the char literal must not open a string.
        assert!(m.lines[0].code.contains("static"));
    }

    #[test]
    fn cfg_test_region_is_tracked() {
        let src = "fn lib_code() {\n    body();\n}\n#[cfg(test)]\nmod tests {\n    fn helper() {}\n    #[test]\n    fn t() { body(); }\n}\nfn more_lib() {}\n";
        let m = scan(src);
        assert!(!m.lines[1].in_test, "lib body");
        assert!(m.lines[5].in_test, "helper inside cfg(test)");
        assert!(m.lines[7].in_test, "#[test] fn");
        assert!(!m.lines[9].in_test, "lib code after the test mod");
    }

    #[test]
    fn fn_spans_and_names() {
        let src = "fn alpha() {\n    one();\n}\n\nfn beta() {\n    two();\n}\n";
        let m = scan(src);
        assert_eq!(m.fns.len(), 2);
        assert_eq!(m.fns[0].name, "alpha");
        assert_eq!((m.fns[0].start_line, m.fns[0].end_line), (0, 2));
        assert_eq!(m.fns[1].name, "beta");
        assert_eq!(m.lines[5].fn_name.as_deref(), Some("beta"));
    }

    #[test]
    fn test_attr_marks_unit_test_fn() {
        let src = "#[test]\nfn my_case() {\n    assert!(true);\n}\nfn plain() {}\n";
        let m = scan(src);
        assert!(m.fns[0].is_unit_test);
        assert_eq!(m.fns[0].name, "my_case");
        assert!(!m.fns[1].is_unit_test);
    }

    #[test]
    fn cfg_attr_on_use_does_not_leak() {
        let src = "#[cfg(test)]\nuse std::collections::HashMap;\nfn lib() {\n    body();\n}\n";
        let m = scan(src);
        assert!(!m.lines[3].in_test);
    }

    #[test]
    fn allow_directive_parses() {
        let m = scan("x(); // audit: allow(no-panic-path) -- justified here\n");
        assert_eq!(m.lines[0].allows, vec!["no-panic-path"]);
        assert!(!m.lines[0].malformed_allow);
        assert!(m.is_allowed(0, "no-panic-path"));
        assert!(!m.is_allowed(0, "lossy-cast"));
    }

    #[test]
    fn allow_without_reason_is_malformed() {
        let m = scan("x(); // audit: allow(no-panic-path)\n");
        assert!(m.lines[0].malformed_allow);
    }

    #[test]
    fn allow_on_previous_line_covers_next() {
        let src = "// audit: allow(lossy-cast, float-eq) -- fixture\nlet y = x as u32;\n";
        let m = scan(src);
        assert!(m.is_allowed(1, "lossy-cast"));
        assert!(m.is_allowed(1, "float-eq"));
    }

    #[test]
    fn nested_block_comments() {
        let m = scan("/* outer /* inner .unwrap() */ still comment */ fn f() {}\n");
        assert!(!m.lines[0].code.contains("unwrap"));
        assert_eq!(m.fns[0].name, "f");
    }

    #[test]
    fn byte_raw_strings_are_blanked() {
        // `br`/`cr` prefixes used to defeat raw-string detection: the
        // string was lexed as an ordinary one, so an interior `"`
        // re-opened code mid-literal.
        let m = scan("let s = br#\"say \"hi\" then .unwrap() and */\"#; fn g() {}\n");
        assert!(!m.lines[0].code.contains("unwrap"), "{}", m.lines[0].code);
        assert!(!m.lines[0].code.contains("hi"));
        assert!(!m.lines[0].code.contains("*/"));
        assert_eq!(m.fns[0].name, "g");
        let m = scan("let s = b\"panic!(x)\"; let t = cr\"todo!()\";\n");
        assert!(!m.lines[0].code.contains("panic"));
        assert!(!m.lines[0].code.contains("todo"));
    }

    #[test]
    fn raw_string_with_comment_closers_does_not_corrupt() {
        // `*/` and `/*` inside a raw string are literal text; the code
        // after the string must stay code.
        let src = "let s = r#\"*/ /* .unwrap() //\"#;\nfn h() { body(); }\n";
        let m = scan(src);
        assert!(!m.lines[0].code.contains("unwrap"));
        assert_eq!(m.fns[0].name, "h");
        assert!(m.lines[1].code.contains("body"));
    }

    #[test]
    fn escaped_quote_char_literal_closes_correctly() {
        // '\'' used to close at the escaped quote, leaving a stray `'`
        // in the code stream.
        let m = scan("let q = '\\''; let s = \".unwrap()\"; fn k() {}\n");
        assert!(!m.lines[0].code.contains("unwrap"), "{}", m.lines[0].code);
        assert_eq!(m.fns[0].name, "k");
    }

    #[test]
    fn raw_identifiers_are_not_strings() {
        let m = scan("fn r#match() { let r#fn = 1; body(); }\n");
        assert!(m.lines[0].code.contains("body"));
        assert_eq!(m.fns.len(), 1, "raw-ident fn still found");
    }

    #[test]
    fn multiline_raw_string_spans_lines() {
        let src = "let s = r#\"line one .unwrap()\nline two */\n\"#;\nfn tail() {}\n";
        let m = scan(src);
        assert!(!m.lines[0].code.contains("unwrap"));
        assert!(!m.lines[1].code.contains("*/"));
        assert_eq!(m.fns[0].name, "tail");
    }

    #[test]
    fn sync_notes_are_tracked() {
        let m = scan("x.load(Relaxed); // sync: folded on read, never a publish\ny();\n");
        assert!(m.lines[0].sync_note);
        assert!(!m.lines[1].sync_note);
    }
}
