//! CLI entry point: `cargo run -p landlord-audit [-- --root <dir>]`.

use landlord_audit::rules::RULES;
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("landlord-audit: --root needs a directory");
                    return ExitCode::from(2);
                }
            },
            "--list-rules" => {
                for (name, what) in RULES {
                    println!("{name}: {what}");
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                println!(
                    "landlord-audit: project-specific lint pass\n\n\
                     usage: landlord-audit [--root <workspace-dir>] [--list-rules]\n\n\
                     Exits 0 when clean, 1 when findings exist, 2 on errors.\n\
                     Suppress a finding with `// audit: allow(<rule>) -- reason`\n\
                     on the offending line or the line above it."
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("landlord-audit: unknown argument `{other}` (try --help)");
                return ExitCode::from(2);
            }
        }
    }

    let root = match root {
        Some(r) => r,
        None => {
            let cwd = match std::env::current_dir() {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("landlord-audit: cannot determine working directory: {e}");
                    return ExitCode::from(2);
                }
            };
            match landlord_audit::find_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!(
                        "landlord-audit: no workspace root (Cargo.toml + crates/) above {}",
                        cwd.display()
                    );
                    return ExitCode::from(2);
                }
            }
        }
    };

    let report = match landlord_audit::audit_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("landlord-audit: scan failed: {e}");
            return ExitCode::from(2);
        }
    };

    for f in &report.findings {
        println!("{}:{}: [{}] {}", f.file, f.line, f.rule, f.message);
    }
    let files = report.files_scanned;
    if report.findings.is_empty() {
        println!("landlord-audit: clean ({files} files scanned)");
        ExitCode::SUCCESS
    } else {
        println!(
            "landlord-audit: {} finding(s) across {files} scanned files",
            report.findings.len()
        );
        ExitCode::FAILURE
    }
}
