//! CLI entry point: `cargo run -p landlord-audit [-- --root <dir>]`.
//!
//! By default only the per-line rules run (the fast lint pass CI uses
//! on every push). `--analysis <name>` selects structural analyses —
//! `lock-order`, `atomic-ordering`, `counter-overflow`, `rules`, or
//! `all` — and may be repeated. `--json` switches output to a
//! machine-readable report.

use landlord_audit::analyses::ANALYSES;
use landlord_audit::rules::RULES;
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut selected: Vec<String> = Vec::new();
    let mut json = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("landlord-audit: --root needs a directory");
                    return ExitCode::from(2);
                }
            },
            "--analysis" => match args.next() {
                Some(name) => {
                    let known = name == "rules"
                        || name == "all"
                        || landlord_audit::analyses::is_known_analysis(&name);
                    if !known {
                        eprintln!(
                            "landlord-audit: unknown analysis `{name}` (try --list-analyses)"
                        );
                        return ExitCode::from(2);
                    }
                    selected.push(name);
                }
                None => {
                    eprintln!("landlord-audit: --analysis needs a name (try --list-analyses)");
                    return ExitCode::from(2);
                }
            },
            "--json" => json = true,
            "--list-rules" => {
                for (name, what) in RULES {
                    println!("{name}: {what}");
                }
                return ExitCode::SUCCESS;
            }
            "--list-analyses" => {
                println!("rules: the per-line lint rules (default; see --list-rules)");
                for (name, what) in ANALYSES {
                    println!("{name}: {what}");
                }
                println!("all: rules plus every analysis above");
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                println!(
                    "landlord-audit: project-specific lint and analysis pass\n\n\
                     usage: landlord-audit [--root <workspace-dir>] [--analysis <name>]...\n\
                     \x20                     [--json] [--list-rules] [--list-analyses]\n\n\
                     With no --analysis the per-line rules run. Analyses:\n\
                     lock-order, atomic-ordering, counter-overflow, rules, all.\n\
                     Exits 0 when clean, 1 when findings exist, 2 on errors.\n\
                     Suppress a finding with `// audit: allow(<rule>) -- reason`\n\
                     on the offending line or the line above it."
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("landlord-audit: unknown argument `{other}` (try --help)");
                return ExitCode::from(2);
            }
        }
    }

    let root = match root {
        Some(r) => r,
        None => {
            let cwd = match std::env::current_dir() {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("landlord-audit: cannot determine working directory: {e}");
                    return ExitCode::from(2);
                }
            };
            match landlord_audit::find_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!(
                        "landlord-audit: no workspace root (Cargo.toml + crates/) above {}",
                        cwd.display()
                    );
                    return ExitCode::from(2);
                }
            }
        }
    };

    // Resolve the pass list: default is rules-only; `all` expands to
    // rules plus every analysis.
    if selected.is_empty() {
        selected.push("rules".to_string());
    }
    if selected.iter().any(|s| s == "all") {
        selected = std::iter::once("rules".to_string())
            .chain(ANALYSES.iter().map(|(n, _)| n.to_string()))
            .collect();
    }
    selected.dedup();

    let run_rules = selected.iter().any(|s| s == "rules");
    let analysis_names: Vec<&str> = selected
        .iter()
        .filter(|s| *s != "rules")
        .map(String::as_str)
        .collect();

    let mut findings = Vec::new();
    let mut files_scanned = 0usize;
    if run_rules {
        match landlord_audit::audit_workspace(&root) {
            Ok(r) => {
                files_scanned = r.files_scanned;
                findings.extend(r.findings);
            }
            Err(e) => {
                eprintln!("landlord-audit: scan failed: {e}");
                return ExitCode::from(2);
            }
        }
    }
    if !analysis_names.is_empty() {
        match landlord_audit::analyze_workspace(&root, &analysis_names) {
            Ok(r) => {
                files_scanned = r.files_scanned;
                findings.extend(r.findings);
            }
            Err(e) => {
                eprintln!("landlord-audit: analysis failed: {e}");
                return ExitCode::from(2);
            }
        }
    }
    findings.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));

    let passes: Vec<&str> = selected.iter().map(String::as_str).collect();
    if json {
        print!(
            "{}",
            landlord_audit::json_report(&passes, files_scanned, &findings)
        );
        return if findings.is_empty() {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }

    for f in &findings {
        println!("{}:{}: [{}] {}", f.file, f.line, f.rule, f.message);
    }
    if findings.is_empty() {
        println!(
            "landlord-audit: clean ({files_scanned} files scanned; passes: {})",
            passes.join(", ")
        );
        ExitCode::SUCCESS
    } else {
        println!(
            "landlord-audit: {} finding(s) across {files_scanned} scanned files (passes: {})",
            findings.len(),
            passes.join(", ")
        );
        ExitCode::FAILURE
    }
}
