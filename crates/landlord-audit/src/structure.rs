//! Structural model of one source file: functions, impl blocks, call
//! targets, and brace nesting, built over the [`crate::tokens`] stream.
//!
//! This layers *under* the per-line [`crate::scan::SourceModel`]: both
//! are derived from the same blanked text, so line numbers agree and
//! the structural analyses can consult line-level facts (test regions,
//! allow directives, `// sync:` notes) for any token.
//!
//! The model is deliberately type-free: it records *names* (function
//! names, impl self-type names, callee names, receiver ident chains)
//! and lets each analysis decide how much ambiguity it tolerates.

use crate::scan::SourceModel;
use crate::tokens::{tokenize, Token, TokenKind};

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// The called function's name (last path segment).
    pub callee: String,
    /// Path segments before the callee for `A::b::c(..)` calls
    /// (empty for plain calls and method calls).
    pub path: Vec<String>,
    /// For method calls, the receiver's ident chain with indexing and
    /// call parentheses elided: `self.inner.shards[i].cache.lock()`
    /// yields `["self", "inner", "shards", "cache"]`.
    pub receiver: Vec<String>,
    /// True for `recv.callee(..)` method calls.
    pub is_method: bool,
    /// Token index of the callee ident.
    pub token: usize,
    /// 0-based line of the callee ident.
    pub line: usize,
}

/// One function found in the file.
#[derive(Debug, Clone)]
pub struct FnInfo {
    /// The function's own name.
    pub name: String,
    /// The `impl` self type the function lives in, when any
    /// (`impl Foo` and `impl Trait for Foo` both yield `Foo`).
    pub self_type: Option<String>,
    /// `Type::name` when inside an impl, else just `name`.
    pub qualified: String,
    /// True when the function is inside any test-only region (a
    /// `#[test]` attribute or `#[cfg(test)]` scope), per the line
    /// classification of [`SourceModel`].
    pub in_test: bool,
    /// Token indices of the body's `{` and matching `}`.
    pub body: (usize, usize),
    /// 0-based line of the body's opening brace.
    pub start_line: usize,
    /// 0-based line of the body's closing brace.
    pub end_line: usize,
    /// Every call site in the body, in token order.
    pub calls: Vec<CallSite>,
}

/// Token stream plus the functions shaping it.
#[derive(Debug)]
pub struct StructureModel {
    /// The file's full token stream (blanked text).
    pub tokens: Vec<Token>,
    /// Every function body, in source order.
    pub fns: Vec<FnInfo>,
}

impl StructureModel {
    /// Build the structural model from blanked source text and its
    /// line classification (both produced by [`crate::scan`]).
    pub fn build(blanked: &str, lines: &SourceModel) -> StructureModel {
        let tokens = tokenize(blanked);
        let fns = find_fns(&tokens, lines);
        StructureModel { tokens, fns }
    }

    /// The function whose body contains token `idx`, if any. Inner
    /// (nested) functions win over enclosing ones.
    pub fn fn_at(&self, idx: usize) -> Option<&FnInfo> {
        self.fns
            .iter()
            .filter(|f| f.body.0 <= idx && idx <= f.body.1)
            .max_by_key(|f| f.body.0)
    }
}

/// Scope kinds the brace tracker distinguishes.
#[derive(Debug)]
enum ScopeKind {
    /// An `impl` block for the named self type.
    Impl(String),
    /// A function body.
    Fn,
    /// Any other brace scope.
    Other,
}

fn find_fns(tokens: &[Token], lines: &SourceModel) -> Vec<FnInfo> {
    let mut fns: Vec<FnInfo> = Vec::new();
    let mut stack: Vec<ScopeKind> = Vec::new();
    let mut pending_fn: Option<String> = None;
    let mut pending_impl: Option<String> = None;
    let mut i = 0usize;

    while i < tokens.len() {
        let t = &tokens[i];
        match (t.kind, t.text.as_str()) {
            // `#[...]` attributes: skip wholesale so `test` inside an
            // attribute path is never mistaken for an ident of
            // interest (test regions come from `lines`).
            (TokenKind::Punct, "#") if tokens.get(i + 1).is_some_and(|n| n.is_punct("[")) => {
                let mut depth = 0usize;
                i += 1;
                while i < tokens.len() {
                    if tokens[i].is_punct("[") {
                        depth += 1;
                    } else if tokens[i].is_punct("]") {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    i += 1;
                }
            }
            (TokenKind::Ident, "impl") if pending_fn.is_none() => {
                // Only a top-of-item `impl` opens an impl block;
                // `-> impl Trait` in a pending fn signature does not.
                pending_impl = Some(parse_impl_type(tokens, i + 1));
            }
            (TokenKind::Ident, "fn") => {
                if let Some(name) = tokens.get(i + 1) {
                    if name.kind == TokenKind::Ident {
                        pending_fn = Some(name.text.clone());
                    }
                }
            }
            (TokenKind::Punct, ";") => {
                // Trait method declarations and items without bodies.
                pending_fn = None;
            }
            (TokenKind::Punct, "{") => {
                if let Some(name) = pending_fn.take() {
                    let close = matching_brace(tokens, i);
                    let self_type = stack.iter().rev().find_map(|s| match s {
                        ScopeKind::Impl(ty) => Some(ty.clone()),
                        _ => None,
                    });
                    let qualified = match &self_type {
                        Some(ty) => format!("{ty}::{name}"),
                        None => name.clone(),
                    };
                    let start_line = tokens[i].line;
                    let end_line = tokens.get(close).map_or(start_line, |t| t.line);
                    let in_test = lines
                        .lines
                        .get(start_line)
                        .map(|l| l.in_test)
                        .unwrap_or(false);
                    fns.push(FnInfo {
                        name,
                        self_type,
                        qualified,
                        in_test,
                        body: (i, close),
                        start_line,
                        end_line,
                        calls: Vec::new(),
                    });
                    stack.push(ScopeKind::Fn);
                } else if let Some(ty) = pending_impl.take() {
                    stack.push(ScopeKind::Impl(ty));
                } else {
                    stack.push(ScopeKind::Other);
                }
            }
            (TokenKind::Punct, "}") => {
                stack.pop();
            }
            _ => {}
        }
        i += 1;
    }

    // Second pass: collect call sites per function.
    let mut sites = find_calls(tokens);
    sites.sort_by_key(|s| s.token);
    for site in sites {
        // Attribute each call to the innermost containing fn.
        let owner = fns
            .iter_mut()
            .filter(|f| f.body.0 < site.token && site.token < f.body.1)
            .max_by_key(|f| f.body.0);
        if let Some(f) = owner {
            f.calls.push(site);
        }
    }
    fns
}

/// Index of the `}` matching the `{` at `open` (or the last token).
fn matching_brace(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0usize;
    for (i, t) in tokens.iter().enumerate().skip(open) {
        if t.is_punct("{") {
            depth += 1;
        } else if t.is_punct("}") {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
    }
    tokens.len().saturating_sub(1)
}

/// Extract the self-type name of an `impl` item starting after the
/// `impl` keyword: the last path ident outside angle brackets, taken
/// after `for` when present (`impl<K> Index for Lsh<K>` → `Lsh`).
fn parse_impl_type(tokens: &[Token], mut i: usize) -> String {
    let mut angle: i32 = 0;
    let mut last_ident = String::new();
    while i < tokens.len() {
        let t = &tokens[i];
        match (t.kind, t.text.as_str()) {
            (TokenKind::Punct, "<") => angle += 1,
            (TokenKind::Punct, ">") => angle = (angle - 1).max(0),
            (TokenKind::Punct, "->") => {}
            (TokenKind::Punct, "{") | (TokenKind::Ident, "where") => break,
            (TokenKind::Ident, "for") if angle == 0 => last_ident.clear(),
            (TokenKind::Ident, "dyn") | (TokenKind::Ident, "mut") => {}
            (TokenKind::Ident, _) if angle == 0 => last_ident = t.text.clone(),
            _ => {}
        }
        i += 1;
    }
    last_ident
}

/// Keywords that look like `ident (` but are not calls.
const CALL_KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "return", "loop", "in", "as", "let", "else", "move", "fn",
    "unsafe", "pub",
];

fn find_calls(tokens: &[Token]) -> Vec<CallSite> {
    let mut out = Vec::new();
    for i in 0..tokens.len() {
        let t = &tokens[i];
        if t.kind != TokenKind::Ident || CALL_KEYWORDS.contains(&t.text.as_str()) {
            continue;
        }
        if !tokens.get(i + 1).is_some_and(|n| n.is_punct("(")) {
            continue;
        }
        // `name!(...)` macros and `fn name(` definitions are not calls.
        let prev = i.checked_sub(1).map(|p| &tokens[p]);
        if prev.is_some_and(|p| p.is_ident("fn") || p.is_punct("!")) {
            continue;
        }
        // Macro invocation: `name !` handled above; also skip when the
        // NEXT token after the ident is `!` (never reaches here since
        // `(` is required).
        let mut site = CallSite {
            callee: t.text.clone(),
            path: Vec::new(),
            receiver: Vec::new(),
            is_method: false,
            token: i,
            line: t.line,
        };
        match prev {
            Some(p) if p.is_punct(".") => {
                site.is_method = true;
                site.receiver = receiver_chain(tokens, i - 1);
            }
            Some(p) if p.is_punct("::") => {
                site.path = path_chain(tokens, i - 1);
            }
            _ => {}
        }
        out.push(site);
    }
    out
}

/// Walk a method-call receiver backwards from the `.` at `dot`:
/// collects the ident chain, skipping balanced `[..]`/`(..)` groups
/// (`self.inner.shards[i].cache` → `[self, inner, shards, cache]`).
pub fn receiver_chain(tokens: &[Token], dot: usize) -> Vec<String> {
    let mut rev: Vec<String> = Vec::new();
    let mut i = dot; // index of the `.` before the callee
                     // Before the dot there must be an ident, `)`, `]`, or a number
                     // (tuple field like `.0`).
    while let Some(prev) = i.checked_sub(1) {
        let t = &tokens[prev];
        if t.is_punct("]") || t.is_punct(")") {
            // Skip the balanced group, then expect an ident before it.
            let open = if t.is_punct("]") { "[" } else { "(" };
            let close = &t.text;
            let mut depth = 0i32;
            let mut j = prev;
            loop {
                if tokens[j].text == *close && tokens[j].kind == TokenKind::Punct {
                    depth += 1;
                } else if tokens[j].is_punct(open) {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                let Some(nj) = j.checked_sub(1) else { break };
                j = nj;
            }
            i = j;
            // A call group `name(...)` keeps its name in the chain.
            continue;
        }
        if t.kind == TokenKind::Ident || t.kind == TokenKind::Number {
            rev.push(t.text.clone());
            // Continue the chain over `.` or `::`.
            match i.checked_sub(2).map(|p| &tokens[p]) {
                Some(link) if link.is_punct(".") || link.is_punct("::") => {
                    i = prev.saturating_sub(1);
                    continue;
                }
                _ => break,
            }
        }
        break;
    }
    rev.reverse();
    rev
}

/// Walk a `::` path backwards from the `::` at `sep`:
/// `std::fs::write` → `[std, fs]` (the callee itself excluded).
fn path_chain(tokens: &[Token], sep: usize) -> Vec<String> {
    let mut rev: Vec<String> = Vec::new();
    let mut i = sep;
    while let Some(prev) = i.checked_sub(1) {
        let t = &tokens[prev];
        // Skip turbofish / generic args between path segments.
        if t.is_punct(">") {
            let mut depth = 0i32;
            let mut j = prev;
            loop {
                if tokens[j].is_punct(">") {
                    depth += 1;
                } else if tokens[j].is_punct("<") {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                let Some(nj) = j.checked_sub(1) else { break };
                j = nj;
            }
            i = j;
            continue;
        }
        if t.kind == TokenKind::Ident {
            rev.push(t.text.clone());
            match prev.checked_sub(1).map(|p| &tokens[p]) {
                Some(link) if link.is_punct("::") => {
                    i = prev - 1;
                    continue;
                }
                _ => break,
            }
        }
        break;
    }
    rev.reverse();
    rev
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan;

    fn model(src: &str) -> StructureModel {
        let (blanked, _comments) = scan::blank_source(src);
        let lines = scan::scan(src);
        StructureModel::build(&blanked, &lines)
    }

    #[test]
    fn fns_and_impl_types() {
        let src = "impl ShardedImageCache {\n    pub fn request(&self, spec: &Spec) -> Outcome {\n        self.serve(spec)\n    }\n}\nfn free() {}\n";
        let m = model(src);
        assert_eq!(m.fns.len(), 2);
        assert_eq!(m.fns[0].qualified, "ShardedImageCache::request");
        assert_eq!(m.fns[0].self_type.as_deref(), Some("ShardedImageCache"));
        assert_eq!(m.fns[1].qualified, "free");
    }

    #[test]
    fn trait_impls_use_the_self_type() {
        let src =
            "impl<K: Key> CandidateIndex for LshIndex<K> {\n    fn probe(&self) { x(); }\n}\n";
        let m = model(src);
        assert_eq!(m.fns[0].qualified, "LshIndex::probe");
    }

    #[test]
    fn return_position_impl_is_not_an_impl_block() {
        let src = "fn make() -> impl Iterator<Item = u64> {\n    build()\n}\n";
        let m = model(src);
        assert_eq!(m.fns.len(), 1);
        assert_eq!(m.fns[0].qualified, "make");
        assert!(m.fns[0].self_type.is_none());
    }

    #[test]
    fn calls_record_receiver_chains() {
        let src = "fn f(&self) {\n    let g = self.inner.shards[i].cache.lock();\n    helper(g);\n    std::fs::write(p, b);\n}\n";
        let m = model(src);
        let calls = &m.fns[0].calls;
        let lock = calls.iter().find(|c| c.callee == "lock").expect("lock");
        assert!(lock.is_method);
        assert_eq!(lock.receiver, vec!["self", "inner", "shards", "cache"]);
        let helper = calls.iter().find(|c| c.callee == "helper").expect("helper");
        assert!(!helper.is_method);
        assert!(helper.receiver.is_empty());
        let write = calls.iter().find(|c| c.callee == "write").expect("write");
        assert_eq!(write.path, vec!["std", "fs"]);
    }

    #[test]
    fn chained_call_receivers_keep_the_chain() {
        let src = "fn f() {\n    self.counters.read().get(name);\n}\n";
        let m = model(src);
        let get = m.fns[0]
            .calls
            .iter()
            .find(|c| c.callee == "get")
            .expect("get call");
        // The chain walks through the `read()` call group.
        assert_eq!(get.receiver, vec!["self", "counters", "read"]);
    }

    #[test]
    fn test_fns_are_marked() {
        let src =
            "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { x(); }\n}\nfn lib() { y(); }\n";
        let m = model(src);
        let t = m.fns.iter().find(|f| f.name == "t").expect("test fn");
        assert!(t.in_test);
        let lib = m.fns.iter().find(|f| f.name == "lib").expect("lib fn");
        assert!(!lib.in_test);
    }

    #[test]
    fn macros_are_not_calls() {
        let src = "fn f() {\n    assert_eq!(a, b);\n    println!(\"x\");\n    real(a);\n}\n";
        let m = model(src);
        let names: Vec<&str> = m.fns[0].calls.iter().map(|c| c.callee.as_str()).collect();
        assert!(names.contains(&"real"));
        assert!(!names.contains(&"assert_eq"));
        assert!(!names.contains(&"println"));
    }

    #[test]
    fn fn_at_finds_innermost() {
        let src = "fn outer() {\n    fn inner() { x(); }\n    y();\n}\n";
        let m = model(src);
        let inner = m.fns.iter().find(|f| f.name == "inner").expect("inner");
        let x_call = &inner.calls[0];
        assert_eq!(m.fn_at(x_call.token).expect("owner").name, "inner");
    }
}
