//! landlord-audit: project-specific static analysis for the landlord
//! workspace.
//!
//! Run as `cargo run -p landlord-audit` from anywhere inside the
//! workspace. Exit status is 0 when the tree is clean, 1 when findings
//! exist, 2 on usage or I/O errors.
//!
//! See [`rules::RULES`] for the enforced rule set and DESIGN.md
//! ("Correctness tooling") for the rationale.

pub mod analyses;
pub mod rules;
pub mod scan;
pub mod structure;
pub mod tokens;

use analyses::FileModel;
use rules::{check_file, FileKind, Finding, STRICT_CRATES};
use std::path::{Path, PathBuf};

/// Result of auditing a workspace tree.
#[derive(Debug)]
pub struct Report {
    /// Every violation, ordered by file then line.
    pub findings: Vec<Finding>,
    /// Number of files scanned.
    pub files_scanned: usize,
}

/// Audit a single in-memory source, as the fixture tests do.
pub fn audit_source(label: &str, kind: FileKind, source: &str) -> Vec<Finding> {
    check_file(label, kind, &scan::scan(source))
}

/// Run the named structural analyses over a set of in-memory sources,
/// as the analysis fixture tests do.
pub fn analyze_sources(sources: &[(&str, FileKind, &str)], names: &[&str]) -> Vec<Finding> {
    let files: Vec<FileModel> = sources
        .iter()
        .map(|(path, kind, src)| FileModel::build(path, *kind, src))
        .collect();
    analyses::run_analyses(&files, names)
}

/// Enumerate every auditable source file under `root` with its kind.
fn collect_workspace_files(root: &Path) -> std::io::Result<Vec<(PathBuf, FileKind)>> {
    let mut files: Vec<(PathBuf, FileKind)> = Vec::new();

    let crates_dir = root.join("crates");
    for entry in std::fs::read_dir(&crates_dir)? {
        let entry = entry?;
        if !entry.file_type()?.is_dir() {
            continue;
        }
        let crate_dir = entry.path();
        let crate_name = entry.file_name().to_string_lossy().into_owned();
        let src_kind = if STRICT_CRATES.contains(&crate_name.as_str()) {
            FileKind::StrictLib
        } else {
            FileKind::Lib
        };
        collect_rs(&crate_dir.join("src"), src_kind, &mut files)?;
        for support in ["examples", "benches"] {
            collect_rs(&crate_dir.join(support), FileKind::Support, &mut files)?;
        }
    }
    collect_rs(&root.join("tests"), FileKind::IntegrationTest, &mut files)?;

    files.sort();
    Ok(files)
}

/// Audit the workspace rooted at `root` (the directory containing the
/// top-level `Cargo.toml` and `crates/`) with the per-line rules.
pub fn audit_workspace(root: &Path) -> std::io::Result<Report> {
    let files = collect_workspace_files(root)?;
    let mut findings = Vec::new();
    for (path, kind) in &files {
        let source = std::fs::read_to_string(path)?;
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .display()
            .to_string();
        findings.extend(check_file(&rel, *kind, &scan::scan(&source)));
    }
    findings.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Ok(Report {
        findings,
        files_scanned: files.len(),
    })
}

/// Run the named structural analyses over the whole workspace.
pub fn analyze_workspace(root: &Path, names: &[&str]) -> std::io::Result<Report> {
    let files = collect_workspace_files(root)?;
    let mut models = Vec::with_capacity(files.len());
    for (path, kind) in &files {
        let source = std::fs::read_to_string(path)?;
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .display()
            .to_string();
        models.push(FileModel::build(&rel, *kind, &source));
    }
    Ok(Report {
        findings: analyses::run_analyses(&models, names),
        files_scanned: models.len(),
    })
}

/// Render findings as a machine-readable JSON report (hand-rolled so
/// the audit crate keeps zero dependencies).
pub fn json_report(passes: &[&str], files_scanned: usize, findings: &[Finding]) -> String {
    let mut out = String::from("{\n  \"passes\": [");
    for (i, p) in passes.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&json_string(p));
    }
    out.push_str("],\n");
    out.push_str(&format!("  \"files_scanned\": {files_scanned},\n"));
    out.push_str(&format!("  \"finding_count\": {},\n", findings.len()));
    out.push_str("  \"findings\": [");
    for (i, f) in findings.iter().enumerate() {
        out.push_str(if i > 0 { ",\n    " } else { "\n    " });
        out.push_str(&format!(
            "{{\"file\": {}, \"line\": {}, \"rule\": {}, \"message\": {}}}",
            json_string(&f.file),
            f.line,
            json_string(f.rule),
            json_string(&f.message)
        ));
    }
    if !findings.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Walk upward from `start` to the workspace root (identified by a
/// `Cargo.toml` next to a `crates/` directory).
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start);
    while let Some(d) = dir {
        if d.join("Cargo.toml").is_file() && d.join("crates").is_dir() {
            return Some(d.to_path_buf());
        }
        dir = d.parent();
    }
    None
}

fn collect_rs(
    dir: &Path,
    kind: FileKind,
    out: &mut Vec<(PathBuf, FileKind)>,
) -> std::io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        if entry.file_type()?.is_dir() {
            collect_rs(&path, kind, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push((path, kind));
        }
    }
    Ok(())
}
