//! Property coverage for metric folding: `merge()` on histograms and
//! whole registries must be an exact associative, commutative fold
//! with the empty registry as identity. These are the algebraic facts
//! the sharded cache's shared-vs-partitioned registry equality (see
//! `landlord-core`'s `sharded_stress`) leans on; here they are pinned
//! directly, including the saturating bucket edges (0, 1, `u64::MAX`).

use landlord_obs::{
    bucket_index, bucket_upper_bound, Histogram, HistogramSnapshot, LogicalClock, MetricsRegistry,
};
use proptest::prelude::*;
use std::sync::Arc;

fn registry() -> MetricsRegistry {
    MetricsRegistry::new(Arc::new(LogicalClock::new()))
}

/// Values biased toward the edges the log2 bucketing must saturate at.
fn arb_value() -> impl Strategy<Value = u64> {
    prop_oneof![
        Just(0u64),
        Just(1u64),
        Just(2u64),
        Just(u64::MAX - 1),
        Just(u64::MAX),
        any::<u64>(),
        0u64..1024,
    ]
}

fn hist_of(values: &[u64]) -> Histogram {
    let h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    h
}

/// One registry's worth of recordings: counter adds, gauge raises,
/// histogram samples — all against fixed names so folds line up.
#[derive(Debug, Clone)]
struct Recording {
    counter_adds: Vec<u64>,
    gauge_raises: Vec<u64>,
    hist_values: Vec<u64>,
}

fn arb_recording() -> impl Strategy<Value = Recording> {
    (
        proptest::collection::vec(0u64..1 << 40, 0..8),
        proptest::collection::vec(arb_value(), 0..8),
        proptest::collection::vec(arb_value(), 0..16),
    )
        .prop_map(|(counter_adds, gauge_raises, hist_values)| Recording {
            counter_adds,
            gauge_raises,
            hist_values,
        })
}

fn registry_of(rec: &Recording) -> MetricsRegistry {
    let r = registry();
    let c = r.counter("prop.counter");
    for &n in &rec.counter_adds {
        c.add(n);
    }
    let g = r.gauge("prop.gauge");
    for &v in &rec.gauge_raises {
        g.raise(v);
    }
    let h = r.histogram("prop.hist");
    for &v in &rec.hist_values {
        h.record(v);
    }
    r
}

fn snapshot_bytes(r: &MetricsRegistry) -> String {
    r.snapshot().to_json_pretty()
}

proptest! {
    /// Bucketing saturates instead of panicking, and every value lands
    /// in a bucket whose upper bound covers it.
    #[test]
    fn bucketing_covers_every_value(v in arb_value()) {
        let idx = bucket_index(v);
        prop_assert!(idx < 65);
        prop_assert!(bucket_upper_bound(idx) >= v);
        if idx > 0 {
            prop_assert!(bucket_upper_bound(idx - 1) < v);
        }
    }

    /// Histogram merge is commutative: fold(a, b) == fold(b, a).
    #[test]
    fn histogram_merge_commutes(
        a in proptest::collection::vec(arb_value(), 0..20),
        b in proptest::collection::vec(arb_value(), 0..20),
    ) {
        let ab = hist_of(&a);
        ab.merge(&hist_of(&b));
        let ba = hist_of(&b);
        ba.merge(&hist_of(&a));
        prop_assert_eq!(ab.snapshot(), ba.snapshot());
    }

    /// Histogram merge is associative: (a+b)+c == a+(b+c), and both
    /// equal recording everything into one histogram.
    #[test]
    fn histogram_merge_associates(
        a in proptest::collection::vec(arb_value(), 0..20),
        b in proptest::collection::vec(arb_value(), 0..20),
        c in proptest::collection::vec(arb_value(), 0..20),
    ) {
        let left = hist_of(&a);
        left.merge(&hist_of(&b));
        left.merge(&hist_of(&c));

        let bc = hist_of(&b);
        bc.merge(&hist_of(&c));
        let right = hist_of(&a);
        right.merge(&bc);

        let mut all: Vec<u64> = Vec::new();
        all.extend_from_slice(&a);
        all.extend_from_slice(&b);
        all.extend_from_slice(&c);
        let flat = hist_of(&all);

        prop_assert_eq!(left.snapshot(), right.snapshot());
        prop_assert_eq!(left.snapshot(), flat.snapshot());
    }

    /// Snapshot-level merge agrees with histogram-level merge.
    #[test]
    fn snapshot_merge_matches_histogram_merge(
        a in proptest::collection::vec(arb_value(), 0..20),
        b in proptest::collection::vec(arb_value(), 0..20),
    ) {
        let h = hist_of(&a);
        h.merge(&hist_of(&b));
        let mut snap = hist_of(&a).snapshot();
        snap.merge(&hist_of(&b).snapshot());
        prop_assert_eq!(h.snapshot(), snap);

        let mut id = HistogramSnapshot::empty();
        id.merge(&h.snapshot());
        prop_assert_eq!(h.snapshot(), id);
    }

    /// Registry merge is commutative across all metric kinds
    /// (counters sum, gauges max-fold, histograms bucket-sum), down to
    /// exported snapshot bytes.
    #[test]
    fn registry_merge_commutes(a in arb_recording(), b in arb_recording()) {
        let ab = registry_of(&a);
        ab.merge(&registry_of(&b));
        let ba = registry_of(&b);
        ba.merge(&registry_of(&a));
        prop_assert_eq!(snapshot_bytes(&ab), snapshot_bytes(&ba));
    }

    /// Registry merge is associative, and the empty registry is the
    /// identity on both sides.
    #[test]
    fn registry_merge_associates_with_empty_identity(
        a in arb_recording(),
        b in arb_recording(),
        c in arb_recording(),
    ) {
        let left = registry_of(&a);
        left.merge(&registry_of(&b));
        left.merge(&registry_of(&c));

        let bc = registry_of(&b);
        bc.merge(&registry_of(&c));
        let right = registry_of(&a);
        right.merge(&bc);
        prop_assert_eq!(snapshot_bytes(&left), snapshot_bytes(&right));

        let id_left = registry();
        id_left.merge(&registry_of(&a));
        let id_right = registry_of(&a);
        id_right.merge(&registry());
        prop_assert_eq!(snapshot_bytes(&id_left), snapshot_bytes(&registry_of(&a)));
        prop_assert_eq!(snapshot_bytes(&id_right), snapshot_bytes(&registry_of(&a)));
    }

    /// Partition-fold equality, the property the sharded cache relies
    /// on: recording a stream split across N registries then merging
    /// gives byte-identical snapshots to recording it all into one.
    #[test]
    fn partitioned_registries_fold_to_the_unpartitioned_snapshot(
        values in proptest::collection::vec(arb_value(), 0..64),
        parts in 1usize..5,
    ) {
        let whole = registry();
        let wh = whole.histogram("prop.hist");
        let wc = whole.counter("prop.counter");
        let wg = whole.gauge("prop.gauge");
        for &v in &values {
            wh.record(v);
            wc.add(v % 17);
            wg.raise(v);
        }

        let folded = registry();
        for part in 0..parts {
            let own = registry();
            let h = own.histogram("prop.hist");
            let c = own.counter("prop.counter");
            let g = own.gauge("prop.gauge");
            for (i, &v) in values.iter().enumerate() {
                if i % parts == part {
                    h.record(v);
                    c.add(v % 17);
                    g.raise(v);
                }
            }
            folded.merge(&own);
        }
        prop_assert_eq!(snapshot_bytes(&whole), snapshot_bytes(&folded));
    }
}

/// Saturation edges, pinned exactly (not via sampling): 0 and 1 get
/// their own buckets, `u64::MAX` lands in the last bucket, and sums
/// wrap rather than panic.
#[test]
fn bucket_edges_are_exact() {
    assert_eq!(bucket_index(0), 0);
    assert_eq!(bucket_index(1), 1);
    assert_eq!(bucket_index(2), 2);
    assert_eq!(bucket_index(u64::MAX), 64);
    assert_eq!(bucket_upper_bound(0), 0);
    assert_eq!(bucket_upper_bound(1), 1);
    assert_eq!(bucket_upper_bound(64), u64::MAX);

    let h = Histogram::new();
    h.record(u64::MAX);
    h.record(u64::MAX);
    h.record(0);
    let snap = h.snapshot();
    assert_eq!(snap.count, 3);
    // Sums fold with wrapping adds; 2×u64::MAX wraps to MAX−1.
    assert_eq!(snap.sum, u64::MAX.wrapping_add(u64::MAX));
    assert_eq!(snap.buckets[64], 2);
    assert_eq!(snap.buckets[0], 1);
}
