//! The lock-free metrics registry.
//!
//! Three metric kinds, all plain `u64` atomics underneath:
//!
//! * [`Counter`] — monotone event count; folds by exact addition.
//! * [`Gauge`] — last-set level (e.g. resident images); folds by `max`
//!   so a fold of per-shard gauges reports the high-water shard.
//! * [`Histogram`] — log2-bucketed value distribution; folds by exact
//!   per-bucket addition.
//!
//! Registration (name → handle) takes a short `RwLock` write; the hot
//! path — recording through a cached [`Arc`] handle — is a handful of
//! relaxed atomic ops and never locks. Names are `&'static str` so
//! recording allocates nothing.
//!
//! Every fold is an exact integer operation, associative and
//! commutative, mirroring `CacheStats::merge` from the sharded
//! frontend: folding N per-worker registries in any order yields a
//! byte-identical [`MetricsSnapshot`]. (Histogram `sum` uses wrapping
//! addition — exact arithmetic modulo 2^64 — so even adversarial
//! inputs near `u64::MAX` stay associative; realistic tick sums never
//! wrap.)

use crate::clock::Clock;
use crate::snapshot::{HistogramSnapshot, MetricsSnapshot, METRICS_SCHEMA};
use crate::span::SpanGuard;
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Number of log2 buckets: bucket 0 holds the value 0, bucket `i`
/// (1 ≤ i ≤ 64) holds values in `[2^(i-1), 2^i)` — so bucket 64's
/// range is `[2^63, u64::MAX]` and every u64 has a bucket.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// Bucket index for a value (see [`HISTOGRAM_BUCKETS`]).
#[inline]
pub fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        64 - value.leading_zeros() as usize
    }
}

/// Inclusive upper bound of bucket `index`; quantile estimates report
/// this bound, which makes them deterministic functions of the bucket
/// counts alone.
pub fn bucket_upper_bound(index: usize) -> u64 {
    match index {
        0 => 0,
        64.. => u64::MAX,
        i => (1u64 << i) - 1,
    }
}

/// Upper bound of the bucket containing the `numer/denom` quantile
/// (rank = ceil(count · numer / denom)), or 0 for an empty
/// distribution. Shared by live histograms and snapshots so both
/// agree; public so downstream consumers (the serve bench's latency
/// export) can derive the same deterministic quantiles from raw
/// buckets.
pub fn quantile_upper_bound(buckets: &[u64], count: u64, numer: u64, denom: u64) -> u64 {
    if count == 0 {
        return 0;
    }
    let rank = (u128::from(count) * u128::from(numer)).div_ceil(u128::from(denom));
    let mut seen: u128 = 0;
    for (i, &n) in buckets.iter().enumerate() {
        seen += u128::from(n);
        if seen >= rank {
            return bucket_upper_bound(i);
        }
    }
    bucket_upper_bound(HISTOGRAM_BUCKETS - 1)
}

/// Monotone counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed); // sync: monotone counter; folds read exact values at quiescence
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed) // sync: single-cell read; no payload ordered behind it
    }
}

/// Last-set level. Folds by `max` (high-water across sources).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicU64,
}

impl Gauge {
    /// Overwrite the level.
    #[inline]
    pub fn set(&self, v: u64) {
        self.value.store(v, Ordering::Relaxed); // sync: last-writer-wins level; no payload rides on it
    }

    /// Raise the level to at least `v`.
    #[inline]
    pub fn raise(&self, v: u64) {
        self.value.fetch_max(v, Ordering::Relaxed); // sync: max lattice join; commutative, needs no ordering
    }

    /// Current level.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed) // sync: a stale level read is indistinguishable from an earlier get()
    }
}

/// Log2-bucketed u64 histogram with exact, associative merge.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    /// Wrapping sum of recorded values (exact modulo 2^64).
    sum: AtomicU64,
    /// `u64::MAX` until the first record.
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            buckets: [const { AtomicU64::new(0) }; HISTOGRAM_BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// A fresh, empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one observation.
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed); // sync: independent monotone cells; snapshots tolerate torn cross-cell reads
        self.count.fetch_add(1, Ordering::Relaxed); // sync: see above; count is one more independent cell
                                                    // Wrapping by construction: fetch_add on AtomicU64 wraps.
        self.sum.fetch_add(value, Ordering::Relaxed); // sync: independent cell; wrap is the documented sum semantics
        self.min.fetch_min(value, Ordering::Relaxed); // sync: min lattice join; commutative, needs no ordering
        self.max.fetch_max(value, Ordering::Relaxed); // sync: max lattice join; commutative, needs no ordering
    }

    /// Observations recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed) // sync: single-cell read; no cross-cell invariant claimed
    }

    /// Fold `other` into `self`, exactly: per-bucket and count/sum
    /// addition, min/max lattice joins. Associative and commutative.
    pub fn merge(&self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter().zip(other.buckets.iter()) {
            mine.fetch_add(theirs.load(Ordering::Relaxed), Ordering::Relaxed); // sync: cell-wise fold; exact once both sides are quiescent
        }
        self.count
            .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed); // sync: cell-wise fold; exact once both sides are quiescent
        self.sum
            .fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed); // sync: cell-wise fold; exact once both sides are quiescent
        self.min
            .fetch_min(other.min.load(Ordering::Relaxed), Ordering::Relaxed); // sync: min lattice join over independent cells
        self.max
            .fetch_max(other.max.load(Ordering::Relaxed), Ordering::Relaxed); // sync: max lattice join over independent cells
    }

    /// Freeze into an exportable snapshot. Quantiles are bucket upper
    /// bounds — deterministic in the bucket counts.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count.load(Ordering::Relaxed); // sync: snapshot reads are per-cell; cross-cell tearing is documented
        let mut buckets: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed)) // sync: snapshot reads are per-cell; cross-cell tearing is documented
            .collect();
        while buckets.last() == Some(&0) {
            buckets.pop();
        }
        let p50 = quantile_upper_bound(&buckets, count, 50, 100);
        let p99 = quantile_upper_bound(&buckets, count, 99, 100);
        let min = self.min.load(Ordering::Relaxed); // sync: snapshot reads are per-cell; cross-cell tearing is documented
        HistogramSnapshot {
            count,
            sum: self.sum.load(Ordering::Relaxed), // sync: snapshot reads are per-cell; cross-cell tearing is documented
            min: if count == 0 { 0 } else { min },
            max: self.max.load(Ordering::Relaxed), // sync: snapshot reads are per-cell; cross-cell tearing is documented
            p50,
            p99,
            buckets,
        }
    }
}

/// The registry: named counters, gauges, and histograms plus the clock
/// spans time themselves against. Cheap to share (`Arc`), safe to hit
/// from many threads.
pub struct MetricsRegistry {
    clock: Arc<dyn Clock>,
    counters: RwLock<BTreeMap<&'static str, Arc<Counter>>>,
    gauges: RwLock<BTreeMap<&'static str, Arc<Gauge>>>,
    histograms: RwLock<BTreeMap<&'static str, Arc<Histogram>>>,
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsRegistry")
            .field("counters", &self.counters.read().len())
            .field("gauges", &self.gauges.read().len())
            .field("histograms", &self.histograms.read().len())
            .finish()
    }
}

impl MetricsRegistry {
    /// A registry timing spans against `clock`.
    pub fn new(clock: Arc<dyn Clock>) -> Self {
        Self {
            clock,
            counters: RwLock::new(BTreeMap::new()),
            gauges: RwLock::new(BTreeMap::new()),
            histograms: RwLock::new(BTreeMap::new()),
        }
    }

    /// The clock spans read from.
    pub fn clock(&self) -> &Arc<dyn Clock> {
        &self.clock
    }

    /// Handle to the counter `name`, registering it on first use.
    /// Cache the handle; the lookup takes a lock, the handle does not.
    pub fn counter(&self, name: &'static str) -> Arc<Counter> {
        if let Some(c) = self.counters.read().get(name) {
            return Arc::clone(c);
        }
        Arc::clone(self.counters.write().entry(name).or_default())
    }

    /// Handle to the gauge `name`, registering it on first use.
    pub fn gauge(&self, name: &'static str) -> Arc<Gauge> {
        if let Some(g) = self.gauges.read().get(name) {
            return Arc::clone(g);
        }
        Arc::clone(self.gauges.write().entry(name).or_default())
    }

    /// Handle to the histogram `name`, registering it on first use.
    pub fn histogram(&self, name: &'static str) -> Arc<Histogram> {
        if let Some(h) = self.histograms.read().get(name) {
            return Arc::clone(h);
        }
        Arc::clone(self.histograms.write().entry(name).or_default())
    }

    /// Start a span: elapsed ticks land in the histogram `name` when
    /// the guard drops. See also the [`span!`](crate::span!) macro.
    pub fn span(&self, name: &'static str) -> SpanGuard {
        SpanGuard::start(self.histogram(name), Arc::clone(&self.clock))
    }

    /// Fold `other` into `self`: counters add, gauges join by max,
    /// histograms merge exactly. Associative and commutative up to
    /// snapshot equality; the identity is an empty registry.
    pub fn merge(&self, other: &MetricsRegistry) {
        for (name, theirs) in other.counters.read().iter() {
            self.counter(name).add(theirs.get());
        }
        for (name, theirs) in other.gauges.read().iter() {
            self.gauge(name).raise(theirs.get());
        }
        for (name, theirs) in other.histograms.read().iter() {
            self.histogram(name).merge(theirs);
        }
    }

    /// Freeze every metric into a schema-versioned, deterministically
    /// ordered snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            schema: METRICS_SCHEMA.to_string(),
            counters: self
                .counters
                .read()
                .iter()
                .map(|(k, v)| (k.to_string(), v.get()))
                .collect(),
            gauges: self
                .gauges
                .read()
                .iter()
                .map(|(k, v)| (k.to_string(), v.get()))
                .collect(),
            histograms: self
                .histograms
                .read()
                .iter()
                .map(|(k, v)| (k.to_string(), v.snapshot()))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::LogicalClock;

    fn registry() -> MetricsRegistry {
        MetricsRegistry::new(Arc::new(LogicalClock::new()))
    }

    #[test]
    fn bucket_index_edges() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_index(1 << 63), 64);
        assert_eq!(bucket_index((1 << 63) - 1), 63);
    }

    #[test]
    fn bucket_upper_bounds_cover_the_domain() {
        assert_eq!(bucket_upper_bound(0), 0);
        assert_eq!(bucket_upper_bound(1), 1);
        assert_eq!(bucket_upper_bound(2), 3);
        assert_eq!(bucket_upper_bound(64), u64::MAX);
        for v in [0u64, 1, 2, 3, 7, 8, 1000, u64::MAX] {
            assert!(v <= bucket_upper_bound(bucket_index(v)));
        }
    }

    #[test]
    fn histogram_basics() {
        let h = Histogram::new();
        for v in [0u64, 1, 5, 5, 1000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 1011);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 1000);
        // ranks: p50 -> 3rd of 5 sorted [0,1,5,5,1000] -> bucket of 5.
        assert_eq!(s.p50, bucket_upper_bound(bucket_index(5)));
        assert_eq!(s.p99, bucket_upper_bound(bucket_index(1000)));
    }

    #[test]
    fn empty_histogram_snapshot_is_all_zero() {
        let s = Histogram::new().snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 0);
        assert_eq!(s.p50, 0);
        assert_eq!(s.p99, 0);
        assert!(s.buckets.is_empty());
    }

    #[test]
    fn merge_is_exact() {
        let a = Histogram::new();
        let b = Histogram::new();
        let whole = Histogram::new();
        for v in [3u64, 9, 200] {
            a.record(v);
            whole.record(v);
        }
        for v in [0u64, u64::MAX, 17] {
            b.record(v);
            whole.record(v);
        }
        a.merge(&b);
        assert_eq!(a.snapshot(), whole.snapshot());
    }

    #[test]
    fn registry_merge_folds_all_kinds() {
        let a = registry();
        let b = registry();
        a.counter("requests").add(3);
        b.counter("requests").add(4);
        b.counter("only_b").inc();
        a.gauge("resident").set(10);
        b.gauge("resident").set(7);
        a.histogram("lat").record(8);
        b.histogram("lat").record(1024);
        a.merge(&b);
        let s = a.snapshot();
        assert_eq!(s.counters["requests"], 7);
        assert_eq!(s.counters["only_b"], 1);
        assert_eq!(s.gauges["resident"], 10);
        assert_eq!(s.histograms["lat"].count, 2);
    }

    #[test]
    fn span_records_elapsed_logical_ticks() {
        let clock = Arc::new(LogicalClock::new());
        let reg = MetricsRegistry::new(Arc::clone(&clock) as Arc<dyn Clock>);
        {
            let _guard = reg.span("phase");
            clock.advance(5);
        }
        let s = reg.snapshot();
        assert_eq!(s.histograms["phase"].count, 1);
        assert_eq!(s.histograms["phase"].sum, 5);
    }

    #[test]
    fn handles_are_shared() {
        let reg = registry();
        let c1 = reg.counter("x");
        let c2 = reg.counter("x");
        c1.inc();
        c2.inc();
        assert_eq!(reg.snapshot().counters["x"], 2);
    }
}
