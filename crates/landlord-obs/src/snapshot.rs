//! Frozen, exportable metric state.
//!
//! A [`MetricsSnapshot`] is the serialization boundary: integer-only,
//! `BTreeMap`-keyed (so JSON key order is deterministic), and stamped
//! with [`METRICS_SCHEMA`] so downstream tooling can detect layout
//! changes. At a fixed seed under a logical clock, the snapshot JSON is
//! byte-identical across runs — the CLI's `--metrics-json` contract.
//!
//! Snapshots also merge ([`MetricsSnapshot::merge`]) with the same
//! exact integer folds as the live registry, which is what the
//! fold-exactness proptests pin down: snapshot-then-merge equals
//! merge-then-snapshot.

use crate::registry::quantile_upper_bound;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Schema tag written into every snapshot. Bump when the layout
/// changes shape (not when new metric names appear — names are data).
pub const METRICS_SCHEMA: &str = "landlord-obs-metrics/v1";

/// Frozen histogram state. `buckets[i]` is the occupancy of log2
/// bucket `i` (see [`crate::registry::bucket_index`]), with trailing
/// empty buckets trimmed. `p50`/`p99` are bucket upper bounds —
/// deterministic functions of the buckets, never interpolated.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Observations recorded.
    pub count: u64,
    /// Wrapping sum of observations (exact modulo 2^64).
    pub sum: u64,
    /// Smallest observation (0 when empty).
    pub min: u64,
    /// Largest observation (0 when empty).
    pub max: u64,
    /// Upper bound of the median's bucket.
    pub p50: u64,
    /// Upper bound of the 99th percentile's bucket.
    pub p99: u64,
    /// Per-bucket occupancy, trailing zeros trimmed.
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// An empty histogram snapshot (the merge identity).
    pub fn empty() -> Self {
        Self {
            count: 0,
            sum: 0,
            min: 0,
            max: 0,
            p50: 0,
            p99: 0,
            buckets: Vec::new(),
        }
    }

    /// Exact fold of `other` into `self`; quantiles are recomputed
    /// from the merged buckets. Associative and commutative.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        if self.buckets.len() < other.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine = mine.saturating_add(*theirs);
        }
        // min: ignore the empty side (whose min is a placeholder 0).
        self.min = match (self.count, other.count) {
            (0, _) => other.min,
            (_, 0) => self.min,
            _ => self.min.min(other.min),
        };
        self.max = self.max.max(other.max);
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.wrapping_add(other.sum);
        self.p50 = quantile_upper_bound(&self.buckets, self.count, 50, 100);
        self.p99 = quantile_upper_bound(&self.buckets, self.count, 99, 100);
    }

    /// Upper bound of the bucket holding the `numer/denom` quantile of
    /// this snapshot (0 when empty) — the same deterministic estimator
    /// behind the stored `p50`/`p99`, for consumers that need other
    /// points of the distribution (e.g. a serve bench exporting p90).
    pub fn quantile(&self, numer: u64, denom: u64) -> u64 {
        quantile_upper_bound(&self.buckets, self.count, numer, denom)
    }
}

/// A schema-versioned, deterministically ordered freeze of a
/// [`MetricsRegistry`](crate::registry::MetricsRegistry).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Layout tag; always [`METRICS_SCHEMA`] for snapshots produced by
    /// this crate version.
    pub schema: String,
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, u64>,
    /// Histogram state by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// An empty snapshot (the merge identity).
    pub fn empty() -> Self {
        Self {
            schema: METRICS_SCHEMA.to_string(),
            counters: BTreeMap::new(),
            gauges: BTreeMap::new(),
            histograms: BTreeMap::new(),
        }
    }

    /// Fold `other` into `self` with the registry's semantics:
    /// counters add, gauges join by max, histograms merge exactly.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (name, v) in &other.counters {
            *self.counters.entry(name.clone()).or_insert(0) += v;
        }
        for (name, v) in &other.gauges {
            let slot = self.gauges.entry(name.clone()).or_insert(0);
            *slot = (*slot).max(*v);
        }
        for (name, h) in &other.histograms {
            self.histograms
                .entry(name.clone())
                .or_insert_with(HistogramSnapshot::empty)
                .merge(h);
        }
    }

    /// Pretty JSON plus trailing newline — the exact bytes the CLI
    /// writes for `--metrics-json`, byte-stable at a fixed seed.
    pub fn to_json_pretty(&self) -> String {
        let mut s = serde_json::to_string_pretty(self)
            .expect("metrics snapshots are integer-only and always serialize");
        s.push('\n');
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::LogicalClock;
    use crate::registry::MetricsRegistry;
    use std::sync::Arc;

    fn registry() -> MetricsRegistry {
        MetricsRegistry::new(Arc::new(LogicalClock::new()))
    }

    #[test]
    fn snapshot_json_round_trips() {
        let reg = registry();
        reg.counter("a").add(3);
        reg.gauge("g").set(9);
        reg.histogram("h").record(42);
        reg.histogram("h").record(u64::MAX);
        let snap = reg.snapshot();
        let json = snap.to_json_pretty();
        let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
        assert_eq!(back.schema, METRICS_SCHEMA);
        assert_eq!(back.histograms["h"].max, u64::MAX);
    }

    #[test]
    fn snapshot_merge_matches_registry_merge() {
        let a = registry();
        let b = registry();
        a.counter("c").add(1);
        b.counter("c").add(2);
        a.histogram("h").record(10);
        b.histogram("h").record(0);
        b.gauge("g").set(4);

        let mut folded = a.snapshot();
        folded.merge(&b.snapshot());

        a.merge(&b);
        assert_eq!(folded, a.snapshot());
    }

    #[test]
    fn empty_is_merge_identity() {
        let reg = registry();
        reg.counter("c").add(7);
        reg.histogram("h").record(3);
        let snap = reg.snapshot();
        let mut left = MetricsSnapshot::empty();
        left.merge(&snap);
        assert_eq!(left, snap);
        let mut right = snap.clone();
        right.merge(&MetricsSnapshot::empty());
        assert_eq!(right, snap);
    }

    #[test]
    fn quantile_accessor_agrees_with_stored_points() {
        let reg = registry();
        for v in [1u64, 2, 4, 100, 10_000, 1_000_000] {
            reg.histogram("h").record(v);
        }
        let snap = reg.snapshot();
        let h = &snap.histograms["h"];
        assert_eq!(h.quantile(50, 100), h.p50);
        assert_eq!(h.quantile(99, 100), h.p99);
        assert_eq!(h.quantile(100, 100), h.max.next_power_of_two() - 1);
        assert_eq!(HistogramSnapshot::empty().quantile(50, 100), 0);
    }

    #[test]
    fn snapshot_is_deterministic_bytes() {
        let make = || {
            let reg = registry();
            reg.counter("z").add(2);
            reg.counter("a").add(1);
            reg.histogram("lat").record(100);
            reg.snapshot().to_json_pretty()
        };
        assert_eq!(make(), make());
    }
}
