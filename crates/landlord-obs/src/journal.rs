//! Bounded, sequence-stamped event journal.
//!
//! A ring buffer of the most recent `capacity` events, each stamped
//! with a globally monotone sequence number, the clock tick at record
//! time, and a phase label (`"plan"`, `"apply"`, `"evict"`, ...).
//! Sequence numbers keep counting past evicted entries, so a reader
//! can always tell how much history the ring dropped.
//!
//! The payload type is generic; landlord-core journals its
//! `CacheEvent`s through this, but fault events or store I/O records
//! work just as well. With a `Serialize` payload the journal exports
//! as JSONL (one entry per line, in sequence order).

use crate::clock::Clock;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::io::{self, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// One journaled event.
#[derive(Debug, Clone, PartialEq)]
pub struct JournalEntry<E> {
    /// Monotone sequence number, starting at 0, never reused.
    pub seq: u64,
    /// Clock tick when the event was recorded.
    pub tick: u64,
    /// Phase the event is attributed to.
    pub phase: String,
    /// The event payload.
    pub event: E,
}

// The serde_derive shim does not handle generic types; spell the
// (flat, field-per-key) impls out by hand.
impl<E: Serialize> Serialize for JournalEntry<E> {
    fn to_value(&self) -> serde::Value {
        serde::Value::Map(vec![
            ("seq".to_string(), self.seq.to_value()),
            ("tick".to_string(), self.tick.to_value()),
            ("phase".to_string(), self.phase.to_value()),
            ("event".to_string(), self.event.to_value()),
        ])
    }
}

impl<E: Deserialize> Deserialize for JournalEntry<E> {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        let field = |name: &str| {
            v.get(name)
                .ok_or_else(|| serde::DeError::custom(format!("JournalEntry missing `{name}`")))
        };
        Ok(JournalEntry {
            seq: u64::from_value(field("seq")?)?,
            tick: u64::from_value(field("tick")?)?,
            phase: String::from_value(field("phase")?)?,
            event: E::from_value(field("event")?)?,
        })
    }
}

/// Bounded ring buffer of [`JournalEntry`]s.
pub struct Journal<E> {
    capacity: usize,
    next_seq: AtomicU64,
    clock: Arc<dyn Clock>,
    entries: Mutex<VecDeque<JournalEntry<E>>>,
}

impl<E> std::fmt::Debug for Journal<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Journal")
            .field("capacity", &self.capacity)
            .field("next_seq", &self.next_seq.load(Ordering::Relaxed)) // sync: diagnostic read; single-cell atomicity suffices
            .finish()
    }
}

impl<E> Journal<E> {
    /// A journal keeping at most `capacity` (≥ 1) recent entries.
    pub fn new(capacity: usize, clock: Arc<dyn Clock>) -> Self {
        Self {
            capacity: capacity.max(1),
            next_seq: AtomicU64::new(0),
            clock,
            entries: Mutex::new(VecDeque::new()),
        }
    }

    /// Record an event under `phase`; returns its sequence number. The
    /// oldest entry is dropped once the ring is full.
    pub fn record(&self, phase: &str, event: E) -> u64 {
        let seq = self.next_seq.fetch_add(1, Ordering::Relaxed); // sync: seq only needs uniqueness; the entry publishes under the entries lock
        let entry = JournalEntry {
            seq,
            tick: self.clock.now_ticks(),
            phase: phase.to_string(),
            event,
        };
        let mut entries = self.entries.lock();
        if entries.len() == self.capacity {
            entries.pop_front();
        }
        entries.push_back(entry);
        seq
    }

    /// Total events ever recorded (including ones the ring dropped).
    pub fn recorded(&self) -> u64 {
        self.next_seq.load(Ordering::Relaxed) // sync: monotone counter read; no payload ordered behind it
    }

    /// Entries currently retained, oldest first.
    pub fn retained(&self) -> Vec<JournalEntry<E>>
    where
        E: Clone,
    {
        self.entries.lock().iter().cloned().collect()
    }
}

impl<E: Serialize> Journal<E> {
    /// Write the retained entries as JSONL, oldest first.
    ///
    /// Serializes under the ring lock but writes after releasing it:
    /// holding the guard across file I/O would stall every recorder
    /// behind a slow disk (and trips the lock-order analysis).
    pub fn export_jsonl<W: Write>(&self, mut out: W) -> io::Result<()> {
        let lines: io::Result<Vec<String>> = {
            let entries = self.entries.lock();
            entries
                .iter()
                .map(|entry| {
                    serde_json::to_string(entry)
                        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
                })
                .collect()
        };
        for line in lines? {
            out.write_all(line.as_bytes())?;
            out.write_all(b"\n")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::LogicalClock;

    fn journal(capacity: usize) -> (Journal<u32>, Arc<LogicalClock>) {
        let clock = Arc::new(LogicalClock::new());
        (Journal::new(capacity, Arc::clone(&clock) as _), clock)
    }

    #[test]
    fn sequence_numbers_are_monotone_and_dense() {
        let (j, clock) = journal(8);
        for i in 0..5u32 {
            clock.tick();
            assert_eq!(j.record("phase", i), u64::from(i));
        }
        let retained = j.retained();
        assert_eq!(retained.len(), 5);
        assert_eq!(retained[4].seq, 4);
        assert_eq!(retained[4].tick, 5);
    }

    #[test]
    fn ring_drops_oldest_but_keeps_counting() {
        let (j, _clock) = journal(3);
        for i in 0..10u32 {
            j.record("p", i);
        }
        assert_eq!(j.recorded(), 10);
        let retained = j.retained();
        assert_eq!(retained.len(), 3);
        assert_eq!(retained[0].seq, 7);
        assert_eq!(retained[2].event, 9);
    }

    #[test]
    fn jsonl_export_round_trips() {
        let (j, clock) = journal(4);
        clock.advance(2);
        j.record("plan", 7u32);
        j.record("apply", 8u32);
        let mut buf = Vec::new();
        j.export_jsonl(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        let first: JournalEntry<u32> = serde_json::from_str(lines[0]).unwrap();
        assert_eq!(first.seq, 0);
        assert_eq!(first.tick, 2);
        assert_eq!(first.phase, "plan");
        assert_eq!(first.event, 7);
    }
}
