//! Pluggable time sources.
//!
//! Everything in the workspace that needs "now" for metrics takes a
//! `&dyn Clock` / `Arc<dyn Clock>` instead of touching
//! `std::time` directly. That keeps two worlds cleanly apart:
//!
//! * [`LogicalClock`] — a simulated tick counter advanced by the
//!   driver. Spans measured against it are exactly reproducible, so
//!   metrics snapshots taken from a seeded simulation are byte-stable.
//! * [`MonotonicClock`] — real elapsed nanoseconds, for `bench-report`
//!   style wall timing. This type is the *only* sanctioned home of
//!   `std::time::Instant` in metrics code; the `no-raw-clock` audit
//!   rule bans raw `Instant`/`SystemTime` across landlord-core, -sim,
//!   -store and -obs, with this file as the one sanctioned exception.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A monotone tick source. Ticks are opaque u64s; only differences are
/// meaningful, and their unit is whatever the concrete clock says
/// (logical steps or nanoseconds).
pub trait Clock: Send + Sync {
    /// Current tick. Must be monotone non-decreasing.
    fn now_ticks(&self) -> u64;
}

/// Deterministic clock: a shared atomic counter the simulation driver
/// advances explicitly (typically once per request). Starts at 0.
#[derive(Debug, Default)]
pub struct LogicalClock {
    ticks: AtomicU64,
}

impl LogicalClock {
    /// A fresh clock at tick 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Advance by one tick and return the new value.
    pub fn tick(&self) -> u64 {
        self.ticks.fetch_add(1, Ordering::Relaxed) + 1 // sync: tick counting, not a publication fence; callers order via their own locks
    }

    /// Advance by `n` ticks.
    pub fn advance(&self, n: u64) {
        self.ticks.fetch_add(n, Ordering::Relaxed); // sync: monotone counter bump; no payload rides on it
    }
}

impl Clock for LogicalClock {
    fn now_ticks(&self) -> u64 {
        self.ticks.load(Ordering::Relaxed) // sync: a stale tick read is indistinguishable from an earlier now_ticks()
    }
}

/// Wall-clock time as nanoseconds since the clock was created.
///
/// Not deterministic; use only for benchmark artifacts
/// (`BENCH_core.json`), never for golden snapshots.
#[derive(Debug)]
pub struct MonotonicClock {
    origin: Instant,
}

impl MonotonicClock {
    /// A clock whose tick 0 is "now".
    pub fn new() -> Self {
        Self {
            origin: Instant::now(),
        }
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for MonotonicClock {
    fn now_ticks(&self) -> u64 {
        // Saturating: a u64 of nanoseconds covers ~584 years.
        u64::try_from(self.origin.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn logical_clock_counts_ticks() {
        let clock = LogicalClock::new();
        assert_eq!(clock.now_ticks(), 0);
        assert_eq!(clock.tick(), 1);
        clock.advance(9);
        assert_eq!(clock.now_ticks(), 10);
    }

    #[test]
    fn monotonic_clock_is_monotone() {
        let clock = MonotonicClock::new();
        let a = clock.now_ticks();
        let b = clock.now_ticks();
        assert!(b >= a);
    }
}
