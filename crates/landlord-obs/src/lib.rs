//! Deterministic observability for the landlord workspace.
//!
//! Three pieces, all designed around the same exact-folding discipline
//! as the sharded cache counters (PR 5):
//!
//! * [`MetricsRegistry`] — lock-free counters, gauges, and log2-bucketed
//!   u64 histograms. Every aggregate is an integer and every
//!   [`MetricsRegistry::merge`] / [`Histogram::merge`] is an exact,
//!   associative, commutative integer fold, so per-shard registries
//!   fold to byte-identical snapshots regardless of fold order or
//!   thread count.
//! * Spans — RAII guards ([`SpanGuard`], [`span!`]) that time a phase
//!   against a pluggable [`Clock`] and record the elapsed ticks into a
//!   histogram. With a [`LogicalClock`] (simulated ticks) the recorded
//!   values are deterministic; a [`MonotonicClock`] gives real
//!   wall-clock nanoseconds for benchmarking. Wall time never leaks
//!   into sim-visible metrics: landlord-core and landlord-sim only ever
//!   see the `Clock` trait (the `no-raw-clock` audit rule enforces
//!   this).
//! * [`Journal`] — a bounded ring buffer of sequence-stamped,
//!   tick-stamped, phase-attributed events, exportable as JSONL.
//!
//! The registry is deliberately string-keyed and schema-versioned
//! ([`snapshot::METRICS_SCHEMA`]) rather than typed per metric: the
//! instrumented crates stay decoupled from the export surface, and the
//! snapshot JSON is byte-stable across runs at a fixed seed.

pub mod clock;
pub mod journal;
pub mod registry;
pub mod snapshot;
pub mod span;

pub use clock::{Clock, LogicalClock, MonotonicClock};
pub use journal::{Journal, JournalEntry};
pub use registry::{
    bucket_index, bucket_upper_bound, quantile_upper_bound, Counter, Gauge, Histogram,
    MetricsRegistry,
};
pub use snapshot::{HistogramSnapshot, MetricsSnapshot, METRICS_SCHEMA};
pub use span::SpanGuard;
