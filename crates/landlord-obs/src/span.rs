//! RAII phase timing.
//!
//! A span is "everything between here and the end of scope, attributed
//! to one named histogram". Guards read the registry's [`Clock`] on
//! creation and on drop and record the elapsed ticks, so a
//! [`LogicalClock`](crate::clock::LogicalClock)-driven registry yields
//! deterministic span histograms and a
//! [`MonotonicClock`](crate::clock::MonotonicClock)-driven one yields
//! wall-clock nanoseconds — the instrumented code is identical.

use crate::clock::Clock;
use crate::registry::Histogram;
use std::sync::Arc;

/// Times a region of code into a histogram. Created by
/// [`MetricsRegistry::span`](crate::registry::MetricsRegistry::span) or
/// the [`span!`](crate::span!) macro.
#[must_use = "a span guard records on drop; binding it to _ ends the span immediately"]
pub struct SpanGuard {
    histogram: Arc<Histogram>,
    clock: Arc<dyn Clock>,
    start: u64,
}

impl SpanGuard {
    /// Start a span against pre-resolved handles. Hot paths cache the
    /// `Arc<Histogram>` once at attach time and call this per request,
    /// skipping the registry's name lookup entirely.
    pub fn start(histogram: Arc<Histogram>, clock: Arc<dyn Clock>) -> Self {
        let start = clock.now_ticks();
        Self {
            histogram,
            clock,
            start,
        }
    }

    /// End the span now (otherwise it ends when dropped).
    pub fn finish(self) {}
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let elapsed = self.clock.now_ticks().saturating_sub(self.start);
        self.histogram.record(elapsed);
    }
}

/// `span!(registry, "plan")` — time the rest of the enclosing scope
/// into the `"plan"` histogram of `registry`. Expands to a named guard
/// binding so the span stays open until end of scope.
///
/// `registry` may be any expression yielding `&MetricsRegistry`, or an
/// `Option<&MetricsRegistry>`-like via [`crate::span_opt!`] for
/// optional instrumentation.
#[macro_export]
macro_rules! span {
    ($registry:expr, $name:literal) => {
        let _span_guard = $registry.span($name);
    };
}

/// Like [`span!`] but for `Option<&MetricsRegistry>` (or anything with
/// `.as_ref().map(...)`): a no-op when metrics are not attached.
#[macro_export]
macro_rules! span_opt {
    ($registry:expr, $name:literal) => {
        let _span_guard = $registry.as_ref().map(|r| r.span($name));
    };
}

#[cfg(test)]
mod tests {
    use crate::clock::LogicalClock;
    use crate::registry::MetricsRegistry;
    use std::sync::Arc;

    #[test]
    fn span_macro_times_the_scope() {
        let clock = Arc::new(LogicalClock::new());
        let reg = MetricsRegistry::new(Arc::clone(&clock) as _);
        {
            crate::span!(reg, "work");
            clock.advance(3);
        }
        assert_eq!(reg.snapshot().histograms["work"].sum, 3);
    }

    #[test]
    fn span_opt_is_noop_when_absent() {
        let reg: Option<Arc<MetricsRegistry>> = None;
        {
            crate::span_opt!(reg, "work");
        }
        // Nothing to assert beyond "it compiled and did not panic".
    }

    #[test]
    fn finish_ends_early() {
        let clock = Arc::new(LogicalClock::new());
        let reg = MetricsRegistry::new(Arc::clone(&clock) as _);
        let guard = reg.span("early");
        clock.advance(2);
        guard.finish();
        clock.advance(40);
        assert_eq!(reg.snapshot().histograms["early"].sum, 2);
    }
}
