//! Saving and restoring cache state.
//!
//! A [`Snapshot`] captures everything an [`ImageCache`] needs to resume
//! exactly where it left off: configuration, images (with constituents
//! and usage clocks), counters, and the logical clock. Derived state —
//! package refcounts, unique-byte accounting, MinHash signatures and
//! the LSH index — is rebuilt on restore, which keeps the serialized
//! form small and guarantees the derived structures can never be
//! restored inconsistent with the images.
//!
//! Use cases: checkpointing long simulations, warm-starting a site's
//! cache model after a scheduler restart, and golden-state tests.

use crate::cache::{CacheConfig, CacheStats, ImageCache};
use crate::conflict::ConflictPolicy;
use crate::image::Image;
use crate::metrics::ContainerEfficiency;
use crate::sizes::SizeModel;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// A serializable cache checkpoint.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Snapshot {
    /// Schema version.
    pub version: u32,
    /// The cache configuration.
    pub config: CacheConfig,
    /// All cached images.
    pub images: Vec<Image>,
    /// Logical clock at capture time.
    pub clock: u64,
    /// Next image id to allocate.
    pub next_id: u64,
    /// Counter state.
    pub stats: CacheStats,
    /// Running container-efficiency accumulator.
    pub container_eff: ContainerEfficiency,
    /// Image awaiting a bloat split (when auto-splitting is enabled).
    #[serde(default)]
    pub pending_split: Option<u64>,
}

impl Snapshot {
    /// Current schema version.
    pub const VERSION: u32 = 1;
}

/// Errors from snapshot restore.
#[derive(Debug)]
pub enum SnapshotError {
    /// Unknown schema version.
    Version(u32),
    /// The snapshot contradicts itself (duplicate ids, stale counters).
    Inconsistent(&'static str),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Version(v) => write!(f, "unsupported snapshot version {v}"),
            SnapshotError::Inconsistent(what) => write!(f, "inconsistent snapshot: {what}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl ImageCache {
    /// Capture the current state.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            version: Snapshot::VERSION,
            config: *self.config(),
            images: self.images().cloned().collect(),
            clock: self.clock_value(),
            next_id: self.next_id_value(),
            stats: self.stats(),
            container_eff: self.container_eff_state(),
            pending_split: self.pending_split_value().map(|id| id.0),
        }
    }

    /// Rebuild a cache from a snapshot, recomputing all derived state.
    ///
    /// The size model and conflict policy are supplied by the caller
    /// (they are not serializable); they must match the ones the
    /// snapshot was taken under or the restored accounting will
    /// disagree with the recorded image sizes — which this function
    /// detects and rejects.
    pub fn restore(
        snapshot: Snapshot,
        sizes: Arc<dyn SizeModel>,
        conflicts: Arc<dyn ConflictPolicy>,
    ) -> Result<ImageCache, SnapshotError> {
        if snapshot.version != Snapshot::VERSION {
            return Err(SnapshotError::Version(snapshot.version));
        }
        let mut seen = crate::util::FxHashSet::default();
        for img in &snapshot.images {
            if !seen.insert(img.id.0) {
                return Err(SnapshotError::Inconsistent("duplicate image id"));
            }
            if img.id.0 >= snapshot.next_id {
                return Err(SnapshotError::Inconsistent("image id beyond next_id"));
            }
            if sizes.spec_bytes(&img.spec) != img.bytes {
                return Err(SnapshotError::Inconsistent(
                    "size model disagrees with recorded image bytes",
                ));
            }
        }
        let mut cache = ImageCache::from_parts(
            snapshot.config,
            sizes,
            conflicts,
            snapshot.images,
            snapshot.clock,
            snapshot.next_id,
            snapshot.stats,
            snapshot.container_eff,
        );
        cache.set_pending_split(snapshot.pending_split.map(crate::image::ImageId));
        Ok(cache)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::Outcome;
    use crate::conflict::NoConflicts;
    use crate::sizes::UniformSizes;
    use crate::spec::{PackageId, Spec};

    fn spec(ids: &[u32]) -> Spec {
        Spec::from_ids(ids.iter().map(|&i| PackageId(i)))
    }

    fn populated_cache() -> ImageCache {
        let cfg = CacheConfig {
            alpha: 0.8,
            limit_bytes: 100,
            ..CacheConfig::default()
        };
        let mut cache = ImageCache::new(cfg, Arc::new(UniformSizes::new(1)));
        cache.request(&spec(&[1, 2, 3]));
        cache.request(&spec(&[1, 2, 4])); // merge
        cache.request(&spec(&[50, 51])); // insert
        cache.request(&spec(&[1, 2, 3])); // hit
        cache
    }

    #[test]
    fn snapshot_round_trip_preserves_behavior() {
        let original = populated_cache();
        let snap = original.snapshot();
        let json = serde_json::to_string(&snap).unwrap();
        let back: Snapshot = serde_json::from_str(&json).unwrap();
        let mut restored =
            ImageCache::restore(back, Arc::new(UniformSizes::new(1)), Arc::new(NoConflicts))
                .unwrap();

        assert_eq!(restored.stats(), original.stats());
        assert_eq!(restored.len(), original.len());
        assert!(
            (restored.container_efficiency_pct() - original.container_efficiency_pct()).abs()
                < 1e-12
        );
        restored.check_invariants();

        // The restored cache behaves identically going forward.
        assert!(matches!(
            restored.request(&spec(&[1, 2, 3])),
            Outcome::Hit { .. }
        ));
        assert!(matches!(
            restored.request(&spec(&[1, 2, 5])),
            Outcome::Merged { .. }
        ));
        restored.check_invariants();
    }

    #[test]
    fn restored_ids_do_not_collide() {
        let original = populated_cache();
        let max_id = original.images().map(|i| i.id.0).max().unwrap();
        let mut restored = ImageCache::restore(
            original.snapshot(),
            Arc::new(UniformSizes::new(1)),
            Arc::new(NoConflicts),
        )
        .unwrap();
        let out = restored.request(&spec(&[900, 901]));
        assert!(
            out.image().0 > max_id,
            "fresh ids continue past the snapshot"
        );
        restored.check_invariants();
    }

    #[test]
    fn wrong_size_model_rejected() {
        let original = populated_cache();
        let err = ImageCache::restore(
            original.snapshot(),
            Arc::new(UniformSizes::new(7)), // wrong scale
            Arc::new(NoConflicts),
        )
        .unwrap_err();
        assert!(matches!(err, SnapshotError::Inconsistent(_)));
        assert!(err.to_string().contains("size model"));
    }

    #[test]
    fn bad_version_rejected() {
        let mut snap = populated_cache().snapshot();
        snap.version = 99;
        let err = ImageCache::restore(snap, Arc::new(UniformSizes::new(1)), Arc::new(NoConflicts))
            .unwrap_err();
        assert!(matches!(err, SnapshotError::Version(99)));
    }

    #[test]
    fn duplicate_ids_rejected() {
        let mut snap = populated_cache().snapshot();
        let dup = snap.images[0].clone();
        snap.images.push(dup);
        let err = ImageCache::restore(snap, Arc::new(UniformSizes::new(1)), Arc::new(NoConflicts))
            .unwrap_err();
        assert!(matches!(
            err,
            SnapshotError::Inconsistent("duplicate image id")
        ));
    }

    #[test]
    fn minhash_index_rebuilt_on_restore() {
        use crate::policy::CandidateStrategy;
        let cfg = CacheConfig {
            alpha: 0.9,
            limit_bytes: u64::MAX,
            candidates: CandidateStrategy::MinHashLsh { bands: 16, rows: 4 },
            ..CacheConfig::default()
        };
        let mut cache = ImageCache::new(cfg, Arc::new(UniformSizes::new(1)));
        let big: Vec<u32> = (0..100).collect();
        cache.request(&spec(&big));

        let mut restored = ImageCache::restore(
            cache.snapshot(),
            Arc::new(UniformSizes::new(1)),
            Arc::new(NoConflicts),
        )
        .unwrap();
        // A near-duplicate must still be found via the rebuilt index.
        let mut close = big.clone();
        close[0] = 1000;
        assert!(matches!(
            restored.request(&spec(&close)),
            Outcome::Merged { .. }
        ));
        restored.check_invariants();
    }

    #[test]
    fn truncated_corrupt_and_empty_json_error_without_panic() {
        // A crash mid-write leaves a checkpoint file truncated, torn,
        // or empty; deserialization must report an error in every case
        // and never panic.
        let json = serde_json::to_string(&populated_cache().snapshot()).unwrap();

        for cut in [0, 1, json.len() / 2, json.len() - 1] {
            let truncated = &json[..cut];
            assert!(
                serde_json::from_str::<Snapshot>(truncated).is_err(),
                "truncation at byte {cut} must be an error"
            );
        }

        let mut corrupt = json.clone().into_bytes();
        let mid = corrupt.len() / 2;
        corrupt[mid] = b'\0';
        assert!(serde_json::from_slice::<Snapshot>(&corrupt).is_err());

        assert!(serde_json::from_str::<Snapshot>("").is_err());
        assert!(serde_json::from_str::<Snapshot>("{}").is_err());
        assert!(serde_json::from_str::<Snapshot>("not json at all").is_err());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::conflict::NoConflicts;
    use crate::sizes::TableSizes;
    use crate::spec::{PackageId, Spec};
    use proptest::prelude::*;

    const UNIVERSE: u32 = 50;

    fn arb_stream() -> impl Strategy<Value = Vec<Spec>> {
        proptest::collection::vec(
            proptest::collection::vec(0..UNIVERSE, 1..10)
                .prop_map(|v| Spec::from_ids(v.into_iter().map(PackageId))),
            2..40,
        )
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Checkpoint/restore at any point of any stream is invisible:
        /// the restored cache finishes with exactly the same state as
        /// an uninterrupted run.
        #[test]
        fn snapshot_mid_stream_is_transparent(
            stream in arb_stream(),
            cut in any::<proptest::sample::Index>(),
            alpha in 0.0f64..=1.0,
            split in prop_oneof![Just(None), Just(Some(2u64)), Just(Some(5u64))],
        ) {
            let sizes = || Arc::new(TableSizes::new((0..UNIVERSE as u64).map(|i| 1 + i % 5).collect()));
            let cfg = CacheConfig {
                alpha,
                limit_bytes: 60,
                split_threshold: split,
                ..CacheConfig::default()
            };

            // Uninterrupted run.
            let mut straight = ImageCache::new(cfg, sizes());
            for s in &stream {
                straight.request(s);
            }

            // Interrupted run: snapshot + restore at `cut`.
            let cut = cut.index(stream.len());
            let mut first = ImageCache::new(cfg, sizes());
            for s in &stream[..cut] {
                first.request(s);
            }
            let snap = first.snapshot();
            let mut second =
                ImageCache::restore(snap, sizes(), Arc::new(NoConflicts)).unwrap();
            for s in &stream[cut..] {
                second.request(s);
            }

            prop_assert_eq!(straight.stats(), second.stats());
            prop_assert_eq!(straight.len(), second.len());
            prop_assert!(
                (straight.container_efficiency_pct() - second.container_efficiency_pct()).abs()
                    < 1e-9
            );
            second.check_invariants();
        }
    }
}
