//! Tunable cache policies — the knobs behind the paper's ablations —
//! and the workspace-wide [`CachePolicy`] trait every image-management
//! strategy (LANDLORD plus all baselines) implements.
//!
//! The paper evaluates one concrete configuration (LRU eviction, merge
//! candidates "sorted by dj()", exact Jaccard) but explicitly points at
//! the alternatives: MinHash pre-filtering for very large specs (§V) and
//! site-specific tuning (§VI, "Tuning LANDLORD"). These enums make each
//! choice explicit and benchmarkable, and the trait lets one generic
//! driver (simulator, cluster model, CLI, benches) run any strategy.

use crate::cache::CacheStats;
use crate::metrics::ContainerEfficiency;
use crate::spec::Spec;
use landlord_obs::MetricsRegistry;
use serde::{Deserialize, Serialize};

/// Which image to evict when the cache exceeds its byte limit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum EvictionPolicy {
    /// Least-recently-used (the paper's choice): "Without regular use,
    /// the bloated image will eventually be evicted from the cache."
    #[default]
    Lru,
    /// Least-frequently-used; ties broken by recency.
    Lfu,
    /// Largest image first — frees space fastest but punishes merged
    /// images that serve many requests.
    LargestFirst,
    /// Smallest `use_count / bytes` density first: evict images that
    /// deliver the fewest requests per byte retained.
    CostDensity,
    /// Greedy-Dual-Size-Frequency: evict the smallest priority
    /// `L + use_count / bytes`, where the inflation term `L` is raised
    /// to each victim's priority on eviction. Size-aware like
    /// [`EvictionPolicy::CostDensity`], but the inflation term ages
    /// images out the way LRU does, so a once-hot giant image cannot
    /// squat in the cache forever.
    Gdsf,
    /// S3-FIFO (SOSP'23): three static FIFO queues — a small probationary
    /// queue (~10% of the byte budget), a main queue, and a ghost queue
    /// of recently evicted identities. One-hit wonders die cheaply out
    /// of the small queue; images re-requested after eviction (ghost
    /// hits) are admitted straight to main. Touches are O(1) counter
    /// bumps — no ordered index is maintained.
    S3Fifo,
    /// Sampled LHD (hit density): learns age-class hit/eviction
    /// histograms online and evicts the image with the lowest predicted
    /// hits-per-byte-per-tick among K randomly sampled images (seeded
    /// from [`crate::cache::CacheConfig::eviction_seed`]). Touches are
    /// O(1) histogram bumps — no ordered index is maintained.
    LhdSample,
}

impl EvictionPolicy {
    /// Every variant, for exhaustive tests and CLI help strings.
    pub const ALL: [EvictionPolicy; 7] = [
        EvictionPolicy::Lru,
        EvictionPolicy::Lfu,
        EvictionPolicy::LargestFirst,
        EvictionPolicy::CostDensity,
        EvictionPolicy::Gdsf,
        EvictionPolicy::S3Fifo,
        EvictionPolicy::LhdSample,
    ];

    /// The valid CLI tokens, for error messages.
    pub const TOKENS: &'static str =
        "lru, lfu, largest-first, cost-density, gdsf, s3-fifo, lhd-sample";

    /// Stable lowercase token for CLI parsing and report labels.
    pub fn token(self) -> &'static str {
        match self {
            EvictionPolicy::Lru => "lru",
            EvictionPolicy::Lfu => "lfu",
            EvictionPolicy::LargestFirst => "largest-first",
            EvictionPolicy::CostDensity => "cost-density",
            EvictionPolicy::Gdsf => "gdsf",
            EvictionPolicy::S3Fifo => "s3-fifo",
            EvictionPolicy::LhdSample => "lhd-sample",
        }
    }

    /// Parse a CLI token.
    pub fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "lru" => EvictionPolicy::Lru,
            "lfu" => EvictionPolicy::Lfu,
            "largest-first" => EvictionPolicy::LargestFirst,
            "cost-density" => EvictionPolicy::CostDensity,
            "gdsf" => EvictionPolicy::Gdsf,
            "s3-fifo" => EvictionPolicy::S3Fifo,
            "lhd-sample" => EvictionPolicy::LhdSample,
            _ => return None,
        })
    }
}

/// Order in which merge candidates (distance < α, Algorithm 1's second
/// loop) are tried.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum MergeOrder {
    /// Nearest candidate first — the paper's "Selection can be sorted
    /// by dj()".
    #[default]
    NearestFirst,
    /// Whatever order the cache iterates (arrival order); the cheapest
    /// option and the baseline the sorted variant improves on.
    ArrivalOrder,
    /// Largest candidate image first — biases toward growing one big
    /// shared image.
    LargestFirst,
    /// Smallest candidate image first — biases toward many mid-size
    /// images.
    SmallestFirst,
}

impl MergeOrder {
    /// Every variant, for exhaustive tests and CLI help strings.
    pub const ALL: [MergeOrder; 4] = [
        MergeOrder::NearestFirst,
        MergeOrder::ArrivalOrder,
        MergeOrder::LargestFirst,
        MergeOrder::SmallestFirst,
    ];

    /// The valid CLI tokens, for error messages.
    pub const TOKENS: &'static str = "nearest-first, arrival-order, largest-first, smallest-first";

    /// Stable lowercase token for CLI parsing and report labels.
    pub fn token(self) -> &'static str {
        match self {
            MergeOrder::NearestFirst => "nearest-first",
            MergeOrder::ArrivalOrder => "arrival-order",
            MergeOrder::LargestFirst => "largest-first",
            MergeOrder::SmallestFirst => "smallest-first",
        }
    }

    /// Parse a CLI token.
    pub fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "nearest-first" => MergeOrder::NearestFirst,
            "arrival-order" => MergeOrder::ArrivalOrder,
            "largest-first" => MergeOrder::LargestFirst,
            "smallest-first" => MergeOrder::SmallestFirst,
            _ => return None,
        })
    }
}

/// Which quantity the Jaccard distance is computed over.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum DistanceMetric {
    /// Package counts — the paper's metric.
    #[default]
    PackageCount,
    /// On-disk bytes — weighs a shared multi-gigabyte framework more
    /// than a differing shell script (`ablation-metric`).
    Bytes,
}

impl DistanceMetric {
    /// Every variant, for exhaustive tests and CLI help strings.
    pub const ALL: [DistanceMetric; 2] = [DistanceMetric::PackageCount, DistanceMetric::Bytes];

    /// The valid CLI tokens, for error messages.
    pub const TOKENS: &'static str = "package-count, bytes";

    /// Stable lowercase token for CLI parsing and report labels.
    pub fn token(self) -> &'static str {
        match self {
            DistanceMetric::PackageCount => "package-count",
            DistanceMetric::Bytes => "bytes",
        }
    }

    /// Parse a CLI token.
    pub fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "package-count" => DistanceMetric::PackageCount,
            "bytes" => DistanceMetric::Bytes,
            _ => return None,
        })
    }
}

/// How merge candidates are enumerated before the distance check.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum CandidateStrategy {
    /// Compare the request against every cached image with the exact
    /// Jaccard distance (the paper's simulated configuration).
    #[default]
    ExactScan,
    /// MinHash + banded LSH pre-filter, then exact confirmation. Never
    /// merges a pair the exact scan would reject, but may miss pairs
    /// (false negatives) — the trade the paper describes for very large
    /// specification collections.
    MinHashLsh {
        /// Bands in the LSH index.
        bands: usize,
        /// Rows (signature slots) per band.
        rows: usize,
    },
}

impl CandidateStrategy {
    /// The valid CLI token shapes, for error messages.
    pub const TOKENS: &'static str = "exact-scan, minhash-lsh:<bands>x<rows>";

    /// Signature length required by this strategy (0 for exact scan).
    pub fn signature_len(self) -> usize {
        match self {
            CandidateStrategy::ExactScan => 0,
            CandidateStrategy::MinHashLsh { bands, rows } => bands * rows,
        }
    }

    /// Stable lowercase token for CLI parsing and report labels;
    /// parameterized for the LSH variant (e.g. `minhash-lsh:32x4`).
    pub fn token(self) -> String {
        match self {
            CandidateStrategy::ExactScan => "exact-scan".to_string(),
            CandidateStrategy::MinHashLsh { bands, rows } => {
                format!("minhash-lsh:{bands}x{rows}")
            }
        }
    }

    /// Parse a CLI token. `minhash-lsh` without parameters uses the
    /// 32x4 shape the ablations run.
    pub fn parse(s: &str) -> Option<Self> {
        if s == "exact-scan" {
            return Some(CandidateStrategy::ExactScan);
        }
        if s == "minhash-lsh" {
            return Some(CandidateStrategy::MinHashLsh { bands: 32, rows: 4 });
        }
        let shape = s.strip_prefix("minhash-lsh:")?;
        let (bands, rows) = shape.split_once('x')?;
        let bands: usize = bands.parse().ok().filter(|&b| b > 0)?;
        let rows: usize = rows.parse().ok().filter(|&r| r > 0)?;
        Some(CandidateStrategy::MinHashLsh { bands, rows })
    }
}

/// Bounded retry with exponential backoff, in simulated time ticks.
///
/// A failed image build (worker crash, transient store error, build
/// failure) may be re-attempted up to `max_retries` times; retry `k`
/// (1-based) waits `backoff_base_ticks * 2^(k-1)` ticks, capped at
/// `backoff_cap_ticks`. `RetryPolicy::none()` — the paper's implicit
/// configuration, where every failure is terminal — is the default.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Additional attempts allowed after the first failure.
    pub max_retries: u32,
    /// Backoff before the first retry, in simulated ticks.
    pub backoff_base_ticks: u64,
    /// Upper bound on any single backoff wait.
    pub backoff_cap_ticks: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self::none()
    }
}

impl RetryPolicy {
    /// No retries: every failure is terminal.
    pub fn none() -> Self {
        RetryPolicy {
            max_retries: 0,
            backoff_base_ticks: 0,
            backoff_cap_ticks: 0,
        }
    }

    /// Retry up to `max_retries` times with capped exponential backoff.
    pub fn new(max_retries: u32, backoff_base_ticks: u64, backoff_cap_ticks: u64) -> Self {
        RetryPolicy {
            max_retries,
            backoff_base_ticks,
            backoff_cap_ticks,
        }
    }

    /// Backoff before retry number `retry` (1-based), in ticks.
    /// Saturates instead of overflowing and never exceeds the cap.
    pub fn backoff_before(&self, retry: u32) -> u64 {
        if retry == 0 || self.backoff_base_ticks == 0 {
            return 0;
        }
        let doublings = retry - 1;
        let wait = if doublings >= 64 {
            u64::MAX
        } else {
            self.backoff_base_ticks.saturating_mul(1u64 << doublings)
        };
        wait.min(self.backoff_cap_ticks)
    }

    /// Compact label for tables and CLI output, e.g. `r3/b2c16` or
    /// `none`.
    pub fn label(&self) -> String {
        if self.max_retries == 0 {
            "none".to_string()
        } else {
            format!(
                "r{}/b{}c{}",
                self.max_retries, self.backoff_base_ticks, self.backoff_cap_ticks
            )
        }
    }
}

/// How one request was served by a [`CachePolicy`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServedOp {
    /// An existing image satisfied the request; nothing was written.
    Hit,
    /// An existing image was rewritten (merged) to absorb the request.
    Merged,
    /// A fresh image was created for the request.
    Inserted,
}

/// What serving one request through a [`CachePolicy`] yielded — the
/// policy-agnostic slice of [`crate::cache::Outcome`] the generic
/// drivers (simulator, cluster model) need.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Served {
    /// Which operation the policy performed.
    pub op: ServedOp,
    /// Identity of the serving image, stable within the policy. For
    /// strategies with a single image (full-repo, layer chain) this is
    /// always 0.
    pub image: u64,
    /// Bytes of the image the job actually runs from.
    pub image_bytes: u64,
    /// Monotone revision of the serving image; bumps whenever the image
    /// is rewritten in place, invalidating worker-node copies.
    pub revision: u64,
}

/// What serving a spec would require of storage — the policy-agnostic
/// slice of [`crate::cache::Plan`] the failure-injecting drivers need.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BuildPlan {
    /// An existing image satisfies the spec: no build, nothing to fail.
    Hit,
    /// A fresh image of this many bytes would be built.
    Insert {
        /// Bytes the build would write.
        bytes: u64,
    },
    /// An existing image would be rewritten in place at this total
    /// size. Rewrites can gracefully degrade to a fresh insert when
    /// they keep failing; plain inserts cannot.
    Rewrite {
        /// Bytes the rewrite would write.
        bytes: u64,
    },
}

impl BuildPlan {
    /// Bytes one attempt would write (thrown away if the attempt fails).
    pub fn cost(self) -> u64 {
        match self {
            BuildPlan::Hit => 0,
            BuildPlan::Insert { bytes } | BuildPlan::Rewrite { bytes } => bytes,
        }
    }
}

/// One image-management strategy, drivable by the generic simulator.
///
/// Implemented by [`crate::cache::ImageCache`] (LANDLORD) and by every
/// baseline in `landlord-baselines` (per-job LRU, full-repo, layer
/// chain, block-dedup store), so `landlord-sim`, `landlord-cli
/// simulate` and the benches drive any of them through one code path.
pub trait CachePolicy {
    /// Stable policy name for reports and CLI selection.
    fn name(&self) -> &'static str;

    /// Apply any deferred maintenance so that [`Self::plan_build`] is
    /// exact. Policies with no deferred work (everything but LANDLORD's
    /// lazy bloat split) need not override this.
    fn settle(&mut self) {}

    /// Serve one request end to end.
    fn request(&mut self, spec: &Spec) -> Served;

    /// Degraded-path request: serve `spec` with a minimal fresh image
    /// even when a hit or merge candidate exists. Policies without a
    /// degraded path serve normally.
    fn insert_fresh(&mut self, spec: &Spec) -> Served {
        self.request(spec)
    }

    /// What serving `spec` would require of storage, without mutating
    /// anything — the hook the failure-injecting driver uses to decide
    /// which requests can fail and what a failed attempt wastes.
    fn plan_build(&self, spec: &Spec) -> BuildPlan;

    /// Bytes `spec` occupies under this policy's size model.
    fn spec_bytes(&self, spec: &Spec) -> u64;

    /// Counter snapshot in the shared [`CacheStats`] shape.
    fn stats(&self) -> CacheStats;

    /// Mean container efficiency over all requests so far (percent).
    fn container_efficiency_pct(&self) -> f64;

    /// The raw container-efficiency accumulator, so callers can fold
    /// partitions exactly ([`ContainerEfficiency::merge`]) and read the
    /// clamp counter ([`ContainerEfficiency::clamped_samples`]).
    fn container_eff(&self) -> ContainerEfficiency;

    /// Cache efficiency right now (percent).
    fn cache_efficiency_pct(&self) -> f64 {
        self.stats().cache_efficiency_pct()
    }

    /// Number of cached images.
    fn len(&self) -> usize;

    /// True when nothing is cached.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The byte limit this policy evicts down to (`u64::MAX` when
    /// unbounded).
    fn limit_bytes(&self) -> u64;

    /// Re-verify all internal bookkeeping; panics on inconsistency.
    fn check_invariants(&self);

    /// Attach a metrics registry. Instrumented policies resolve their
    /// metric handles from it and record from then on; the default is
    /// a no-op so un-instrumented baselines cost nothing. Safe to call
    /// with a registry shared across policies/shards — every metric
    /// folds exactly.
    fn attach_metrics(&mut self, _registry: &MetricsRegistry) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eviction_tokens_round_trip_exhaustively() {
        for p in EvictionPolicy::ALL {
            assert_eq!(EvictionPolicy::parse(p.token()), Some(p));
            assert!(
                EvictionPolicy::TOKENS.contains(p.token()),
                "{} missing from TOKENS",
                p.token()
            );
        }
        assert_eq!(EvictionPolicy::parse("nope"), None);
    }

    #[test]
    fn merge_order_tokens_round_trip_exhaustively() {
        for m in MergeOrder::ALL {
            assert_eq!(MergeOrder::parse(m.token()), Some(m));
            assert!(MergeOrder::TOKENS.contains(m.token()));
        }
        assert_eq!(MergeOrder::parse(""), None);
    }

    #[test]
    fn defaults_match_paper() {
        assert_eq!(EvictionPolicy::default(), EvictionPolicy::Lru);
        assert_eq!(MergeOrder::default(), MergeOrder::NearestFirst);
        assert_eq!(CandidateStrategy::default(), CandidateStrategy::ExactScan);
        assert_eq!(DistanceMetric::default(), DistanceMetric::PackageCount);
    }

    #[test]
    fn metric_tokens_round_trip_exhaustively() {
        for m in DistanceMetric::ALL {
            assert_eq!(DistanceMetric::parse(m.token()), Some(m));
            assert!(DistanceMetric::TOKENS.contains(m.token()));
        }
        assert_eq!(DistanceMetric::parse("x"), None);
    }

    #[test]
    fn candidate_tokens_round_trip() {
        for c in [
            CandidateStrategy::ExactScan,
            CandidateStrategy::MinHashLsh { bands: 32, rows: 4 },
            CandidateStrategy::MinHashLsh { bands: 8, rows: 16 },
            CandidateStrategy::MinHashLsh { bands: 1, rows: 1 },
        ] {
            assert_eq!(CandidateStrategy::parse(&c.token()), Some(c));
        }
        assert_eq!(
            CandidateStrategy::parse("minhash-lsh"),
            Some(CandidateStrategy::MinHashLsh { bands: 32, rows: 4 }),
            "bare token uses the ablation shape"
        );
        for bad in [
            "",
            "exact",
            "minhash-lsh:",
            "minhash-lsh:0x4",
            "minhash-lsh:4x0",
            "minhash-lsh:4",
            "minhash-lsh:x",
            "minhash-lsh:ax4",
        ] {
            assert_eq!(CandidateStrategy::parse(bad), None, "{bad:?} must reject");
        }
    }

    #[test]
    fn retry_backoff_doubles_and_caps() {
        let p = RetryPolicy::new(5, 2, 16);
        assert_eq!(p.backoff_before(1), 2);
        assert_eq!(p.backoff_before(2), 4);
        assert_eq!(p.backoff_before(3), 8);
        assert_eq!(p.backoff_before(4), 16);
        assert_eq!(p.backoff_before(5), 16, "capped");
        assert_eq!(p.backoff_before(0), 0);
    }

    #[test]
    fn retry_backoff_saturates_on_huge_retry_counts() {
        let p = RetryPolicy::new(u32::MAX, u64::MAX / 2, u64::MAX);
        assert_eq!(p.backoff_before(200), u64::MAX, "saturates, no overflow");
    }

    #[test]
    fn retry_none_is_inert() {
        let p = RetryPolicy::none();
        assert_eq!(p, RetryPolicy::default());
        assert_eq!(p.max_retries, 0);
        assert_eq!(p.backoff_before(1), 0);
        assert_eq!(p.label(), "none");
        assert_eq!(RetryPolicy::new(3, 1, 8).label(), "r3/b1c8");
    }

    #[test]
    fn signature_len() {
        assert_eq!(CandidateStrategy::ExactScan.signature_len(), 0);
        assert_eq!(
            CandidateStrategy::MinHashLsh { bands: 16, rows: 8 }.signature_len(),
            128
        );
    }

    #[test]
    fn build_plan_costs() {
        assert_eq!(BuildPlan::Hit.cost(), 0);
        assert_eq!(BuildPlan::Insert { bytes: 7 }.cost(), 7);
        assert_eq!(BuildPlan::Rewrite { bytes: 9 }.cost(), 9);
    }
}
