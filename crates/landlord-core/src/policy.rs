//! Tunable cache policies — the knobs behind the paper's ablations.
//!
//! The paper evaluates one concrete configuration (LRU eviction, merge
//! candidates "sorted by dj()", exact Jaccard) but explicitly points at
//! the alternatives: MinHash pre-filtering for very large specs (§V) and
//! site-specific tuning (§VI, "Tuning LANDLORD"). These enums make each
//! choice explicit and benchmarkable.

use serde::{Deserialize, Serialize};

/// Which image to evict when the cache exceeds its byte limit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum EvictionPolicy {
    /// Least-recently-used (the paper's choice): "Without regular use,
    /// the bloated image will eventually be evicted from the cache."
    #[default]
    Lru,
    /// Least-frequently-used; ties broken by recency.
    Lfu,
    /// Largest image first — frees space fastest but punishes merged
    /// images that serve many requests.
    LargestFirst,
    /// Smallest `use_count / bytes` density first: evict images that
    /// deliver the fewest requests per byte retained.
    CostDensity,
}

impl EvictionPolicy {
    /// Stable lowercase token for CLI parsing and report labels.
    pub fn token(self) -> &'static str {
        match self {
            EvictionPolicy::Lru => "lru",
            EvictionPolicy::Lfu => "lfu",
            EvictionPolicy::LargestFirst => "largest-first",
            EvictionPolicy::CostDensity => "cost-density",
        }
    }

    /// Parse a CLI token.
    pub fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "lru" => EvictionPolicy::Lru,
            "lfu" => EvictionPolicy::Lfu,
            "largest-first" => EvictionPolicy::LargestFirst,
            "cost-density" => EvictionPolicy::CostDensity,
            _ => return None,
        })
    }
}

/// Order in which merge candidates (distance < α, Algorithm 1's second
/// loop) are tried.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum MergeOrder {
    /// Nearest candidate first — the paper's "Selection can be sorted
    /// by dj()".
    #[default]
    NearestFirst,
    /// Whatever order the cache iterates (arrival order); the cheapest
    /// option and the baseline the sorted variant improves on.
    ArrivalOrder,
    /// Largest candidate image first — biases toward growing one big
    /// shared image.
    LargestFirst,
    /// Smallest candidate image first — biases toward many mid-size
    /// images.
    SmallestFirst,
}

impl MergeOrder {
    /// Stable lowercase token for CLI parsing and report labels.
    pub fn token(self) -> &'static str {
        match self {
            MergeOrder::NearestFirst => "nearest-first",
            MergeOrder::ArrivalOrder => "arrival-order",
            MergeOrder::LargestFirst => "largest-first",
            MergeOrder::SmallestFirst => "smallest-first",
        }
    }

    /// Parse a CLI token.
    pub fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "nearest-first" => MergeOrder::NearestFirst,
            "arrival-order" => MergeOrder::ArrivalOrder,
            "largest-first" => MergeOrder::LargestFirst,
            "smallest-first" => MergeOrder::SmallestFirst,
            _ => return None,
        })
    }
}

/// Which quantity the Jaccard distance is computed over.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum DistanceMetric {
    /// Package counts — the paper's metric.
    #[default]
    PackageCount,
    /// On-disk bytes — weighs a shared multi-gigabyte framework more
    /// than a differing shell script (`ablation-metric`).
    Bytes,
}

impl DistanceMetric {
    /// Stable lowercase token for CLI parsing and report labels.
    pub fn token(self) -> &'static str {
        match self {
            DistanceMetric::PackageCount => "package-count",
            DistanceMetric::Bytes => "bytes",
        }
    }

    /// Parse a CLI token.
    pub fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "package-count" => DistanceMetric::PackageCount,
            "bytes" => DistanceMetric::Bytes,
            _ => return None,
        })
    }
}

/// How merge candidates are enumerated before the distance check.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum CandidateStrategy {
    /// Compare the request against every cached image with the exact
    /// Jaccard distance (the paper's simulated configuration).
    #[default]
    ExactScan,
    /// MinHash + banded LSH pre-filter, then exact confirmation. Never
    /// merges a pair the exact scan would reject, but may miss pairs
    /// (false negatives) — the trade the paper describes for very large
    /// specification collections.
    MinHashLsh {
        /// Bands in the LSH index.
        bands: usize,
        /// Rows (signature slots) per band.
        rows: usize,
    },
}

impl CandidateStrategy {
    /// Signature length required by this strategy (0 for exact scan).
    pub fn signature_len(self) -> usize {
        match self {
            CandidateStrategy::ExactScan => 0,
            CandidateStrategy::MinHashLsh { bands, rows } => bands * rows,
        }
    }
}

/// Bounded retry with exponential backoff, in simulated time ticks.
///
/// A failed image build (worker crash, transient store error, build
/// failure) may be re-attempted up to `max_retries` times; retry `k`
/// (1-based) waits `backoff_base_ticks * 2^(k-1)` ticks, capped at
/// `backoff_cap_ticks`. `RetryPolicy::none()` — the paper's implicit
/// configuration, where every failure is terminal — is the default.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Additional attempts allowed after the first failure.
    pub max_retries: u32,
    /// Backoff before the first retry, in simulated ticks.
    pub backoff_base_ticks: u64,
    /// Upper bound on any single backoff wait.
    pub backoff_cap_ticks: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self::none()
    }
}

impl RetryPolicy {
    /// No retries: every failure is terminal.
    pub fn none() -> Self {
        RetryPolicy {
            max_retries: 0,
            backoff_base_ticks: 0,
            backoff_cap_ticks: 0,
        }
    }

    /// Retry up to `max_retries` times with capped exponential backoff.
    pub fn new(max_retries: u32, backoff_base_ticks: u64, backoff_cap_ticks: u64) -> Self {
        RetryPolicy {
            max_retries,
            backoff_base_ticks,
            backoff_cap_ticks,
        }
    }

    /// Backoff before retry number `retry` (1-based), in ticks.
    /// Saturates instead of overflowing and never exceeds the cap.
    pub fn backoff_before(&self, retry: u32) -> u64 {
        if retry == 0 || self.backoff_base_ticks == 0 {
            return 0;
        }
        let doublings = retry - 1;
        let wait = if doublings >= 64 {
            u64::MAX
        } else {
            self.backoff_base_ticks.saturating_mul(1u64 << doublings)
        };
        wait.min(self.backoff_cap_ticks)
    }

    /// Compact label for tables and CLI output, e.g. `r3/b2c16` or
    /// `none`.
    pub fn label(&self) -> String {
        if self.max_retries == 0 {
            "none".to_string()
        } else {
            format!(
                "r{}/b{}c{}",
                self.max_retries, self.backoff_base_ticks, self.backoff_cap_ticks
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eviction_tokens_round_trip() {
        for p in [
            EvictionPolicy::Lru,
            EvictionPolicy::Lfu,
            EvictionPolicy::LargestFirst,
            EvictionPolicy::CostDensity,
        ] {
            assert_eq!(EvictionPolicy::parse(p.token()), Some(p));
        }
        assert_eq!(EvictionPolicy::parse("nope"), None);
    }

    #[test]
    fn merge_order_tokens_round_trip() {
        for m in [
            MergeOrder::NearestFirst,
            MergeOrder::ArrivalOrder,
            MergeOrder::LargestFirst,
            MergeOrder::SmallestFirst,
        ] {
            assert_eq!(MergeOrder::parse(m.token()), Some(m));
        }
        assert_eq!(MergeOrder::parse(""), None);
    }

    #[test]
    fn defaults_match_paper() {
        assert_eq!(EvictionPolicy::default(), EvictionPolicy::Lru);
        assert_eq!(MergeOrder::default(), MergeOrder::NearestFirst);
        assert_eq!(CandidateStrategy::default(), CandidateStrategy::ExactScan);
        assert_eq!(DistanceMetric::default(), DistanceMetric::PackageCount);
    }

    #[test]
    fn metric_tokens_round_trip() {
        for m in [DistanceMetric::PackageCount, DistanceMetric::Bytes] {
            assert_eq!(DistanceMetric::parse(m.token()), Some(m));
        }
        assert_eq!(DistanceMetric::parse("x"), None);
    }

    #[test]
    fn retry_backoff_doubles_and_caps() {
        let p = RetryPolicy::new(5, 2, 16);
        assert_eq!(p.backoff_before(1), 2);
        assert_eq!(p.backoff_before(2), 4);
        assert_eq!(p.backoff_before(3), 8);
        assert_eq!(p.backoff_before(4), 16);
        assert_eq!(p.backoff_before(5), 16, "capped");
        assert_eq!(p.backoff_before(0), 0);
    }

    #[test]
    fn retry_backoff_saturates_on_huge_retry_counts() {
        let p = RetryPolicy::new(u32::MAX, u64::MAX / 2, u64::MAX);
        assert_eq!(p.backoff_before(200), u64::MAX, "saturates, no overflow");
    }

    #[test]
    fn retry_none_is_inert() {
        let p = RetryPolicy::none();
        assert_eq!(p, RetryPolicy::default());
        assert_eq!(p.max_retries, 0);
        assert_eq!(p.backoff_before(1), 0);
        assert_eq!(p.label(), "none");
        assert_eq!(RetryPolicy::new(3, 1, 8).label(), "r3/b1c8");
    }

    #[test]
    fn signature_len() {
        assert_eq!(CandidateStrategy::ExactScan.signature_len(), 0);
        assert_eq!(
            CandidateStrategy::MinHashLsh { bands: 16, rows: 8 }.signature_len(),
            128
        );
    }
}
