//! Thread-safe shared cache for site-wide deployment.
//!
//! §V: "administrators may wish to employ LANDLORD for site-wide
//! container management. The same core functionality … could easily be
//! adapted into a plugin for a site's batch system." A batch-system
//! plugin serves many submitters concurrently; [`SharedImageCache`]
//! wraps the single-threaded [`ImageCache`] behind a `parking_lot`
//! mutex and exposes the same request API plus lock-free-feeling
//! conveniences for the read paths.
//!
//! Algorithm 1 is a read-modify-write over the whole image collection
//! (a request may merge into *any* image), so a coarse lock is the
//! honest concurrency model — the paper's own prototype serializes
//! through the filesystem. The interesting guarantee is that counters
//! and invariants stay exact under contention, which the stress test
//! below pins down.

use crate::cache::{CacheConfig, CacheStats, ImageCache, Outcome};
use crate::conflict::ConflictPolicy;
use crate::sizes::SizeModel;
use crate::spec::Spec;
use parking_lot::Mutex;
use std::sync::Arc;

/// A clonable, thread-safe handle to one LANDLORD cache.
#[derive(Clone)]
pub struct SharedImageCache {
    inner: Arc<Mutex<ImageCache>>,
}

impl SharedImageCache {
    /// Create a shared cache (CVMFS no-conflict semantics).
    pub fn new(config: CacheConfig, sizes: Arc<dyn SizeModel>) -> Self {
        SharedImageCache {
            inner: Arc::new(Mutex::new(ImageCache::new(config, sizes))),
        }
    }

    /// Create with an explicit conflict policy.
    pub fn with_conflicts(
        config: CacheConfig,
        sizes: Arc<dyn SizeModel>,
        conflicts: Arc<dyn ConflictPolicy>,
    ) -> Self {
        SharedImageCache {
            inner: Arc::new(Mutex::new(ImageCache::with_conflicts(
                config, sizes, conflicts,
            ))),
        }
    }

    /// Wrap an existing cache (e.g. one restored from a snapshot).
    pub fn from_cache(cache: ImageCache) -> Self {
        SharedImageCache {
            inner: Arc::new(Mutex::new(cache)),
        }
    }

    /// Process one job request (Algorithm 1), atomically.
    pub fn request(&self, spec: &Spec) -> Outcome {
        self.inner.lock().request(spec)
    }

    /// Process a batch of requests while holding the lock once, in
    /// submission order. Identical outcomes to per-spec
    /// [`SharedImageCache::request`] calls, minus the per-request lock
    /// traffic — the coarse-mutex counterpart of
    /// [`crate::cache::ShardedImageCache::request_many`].
    pub fn request_many(&self, specs: &[Spec]) -> Vec<Outcome> {
        let mut cache = self.inner.lock();
        let mut outcomes = Vec::with_capacity(specs.len());
        for spec in specs {
            outcomes.push(cache.request(spec));
        }
        outcomes
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        self.inner.lock().stats()
    }

    /// Cache efficiency right now, percent.
    pub fn cache_efficiency_pct(&self) -> f64 {
        self.inner.lock().cache_efficiency_pct()
    }

    /// Mean container efficiency so far, percent.
    pub fn container_efficiency_pct(&self) -> f64 {
        self.inner.lock().container_efficiency_pct()
    }

    /// Number of cached images.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// True when no images are cached.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().is_empty()
    }

    /// Run a closure with exclusive access to the underlying cache
    /// (snapshots, invariant checks, administrative deletes).
    pub fn with_cache<R>(&self, f: impl FnOnce(&mut ImageCache) -> R) -> R {
        f(&mut self.inner.lock())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sizes::UniformSizes;
    use crate::spec::PackageId;

    fn spec(ids: &[u32]) -> Spec {
        Spec::from_ids(ids.iter().map(|&i| PackageId(i)))
    }

    fn shared(alpha: f64, limit: u64) -> SharedImageCache {
        let cfg = CacheConfig {
            alpha,
            limit_bytes: limit,
            ..CacheConfig::default()
        };
        SharedImageCache::new(cfg, Arc::new(UniformSizes::new(1)))
    }

    #[test]
    fn basic_request_flow() {
        let cache = shared(0.8, 100);
        assert!(cache.is_empty());
        assert!(matches!(
            cache.request(&spec(&[1, 2, 3])),
            Outcome::Inserted { .. }
        ));
        assert!(matches!(
            cache.request(&spec(&[1, 2, 3])),
            Outcome::Hit { .. }
        ));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.stats().requests, 2);
        cache.with_cache(|c| c.check_invariants());
    }

    #[test]
    fn clones_share_state() {
        let a = shared(0.8, 100);
        let b = a.clone();
        a.request(&spec(&[1, 2]));
        assert!(matches!(b.request(&spec(&[1, 2])), Outcome::Hit { .. }));
        assert_eq!(b.stats().requests, 2);
    }

    #[test]
    fn concurrent_submitters_keep_exact_accounting() {
        const THREADS: u32 = 8;
        const PER_THREAD: u32 = 200;

        let cache = shared(0.7, 500);
        let mut handles = Vec::new();
        for t in 0..THREADS {
            let cache = cache.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..PER_THREAD {
                    // Overlapping job families across threads so merges,
                    // hits and evictions all happen under contention.
                    let base = (i % 20) * 8;
                    let ids = [base, base + 1, base + 2, (t * 7 + i) % 160];
                    cache.request(&Spec::from_ids(ids.map(PackageId)));
                }
            }));
        }
        for h in handles {
            h.join().expect("submitter panicked");
        }

        let s = cache.stats();
        assert_eq!(s.requests, (THREADS * PER_THREAD) as u64);
        assert_eq!(s.requests, s.hits + s.merges + s.inserts);
        cache.with_cache(|c| c.check_invariants());
    }

    #[test]
    fn request_many_matches_one_by_one() {
        let batched = shared(0.7, 300);
        let sequential = shared(0.7, 300);
        let jobs: Vec<Spec> = (0..120u32)
            .map(|i| {
                let base = (i % 15) * 5;
                spec(&[base, base + 1, (i * 11) % 90])
            })
            .collect();
        let mut expected = Vec::new();
        for s in &jobs {
            expected.push(sequential.request(s));
        }
        let got = batched.request_many(&jobs);
        assert_eq!(got, expected);
        assert_eq!(batched.stats(), sequential.stats());
        batched.with_cache(|c| c.check_invariants());
    }

    #[test]
    fn with_cache_allows_snapshots() {
        let cache = shared(0.8, 100);
        cache.request(&spec(&[1, 2]));
        let snap = cache.with_cache(|c| c.snapshot());
        assert_eq!(snap.images.len(), 1);
        cache.with_cache(|c| c.check_invariants());
    }
}
