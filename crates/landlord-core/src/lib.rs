//! # landlord-core
//!
//! Specification-level container image cache management, reproducing the
//! LANDLORD system from *"Solving the Container Explosion Problem for
//! Distributed High Throughput Computing"* (Shaffer, Hazekamp, Blomer,
//! Thain — IEEE IPDPS 2020).
//!
//! The central idea of the paper is that **container specifications offer
//! more opportunities for management and optimization than containers
//! themselves**: a specification is an *unordered set* of package
//! requirements, so specifications can be compared (Jaccard distance),
//! checked for satisfaction (subset), and combined (union) — none of which
//! is possible with opaque image files or ordered build recipes.
//!
//! This crate provides:
//!
//! * [`Spec`] — an immutable, sorted set of [`PackageId`]s with fast set
//!   algebra (subset, union, intersection size).
//! * [`jaccard`] — the exact Jaccard distance used to decide whether two
//!   specifications are "close enough" to merge.
//! * [`minhash`] — a constant-time MinHash approximation of the Jaccard
//!   distance plus an LSH index for candidate pre-selection, as the paper
//!   recommends for very large specifications.
//! * [`conflict`] — pluggable compatibility checking between
//!   specifications (the paper's append-only CVMFS case never conflicts;
//!   general package managers may).
//! * [`sizes`] — the [`sizes::SizeModel`] abstraction mapping
//!   packages to on-disk bytes, so the cache can account storage without
//!   knowing anything about a concrete repository.
//! * [`cache`] — [`cache::ImageCache`], a byte-bounded image
//!   store implementing the paper's Algorithm 1 (hit / merge / insert)
//!   with LRU eviction and full operation accounting.
//! * [`policy`] — the tunable knobs (eviction policy, merge candidate
//!   ordering, candidate strategy) used for the ablation studies.
//! * [`metrics`] — the paper's two utilization metrics, *cache
//!   efficiency* (unique ÷ total cached bytes) and *container efficiency*
//!   (requested ÷ used image bytes).
//! * [`events`] — a structured log of cache operations for tracing and
//!   debugging.
//! * [`snapshot`] — serializable cache checkpoints for warm restarts
//!   and golden-state tests.
//! * [`shared`] — a thread-safe handle for site-wide (batch-system
//!   plugin) deployments with concurrent submitters.
//!
//! ## Quick example
//!
//! ```
//! use landlord_core::cache::{CacheConfig, ImageCache, Outcome};
//! use landlord_core::sizes::UniformSizes;
//! use landlord_core::spec::{PackageId, Spec};
//! use std::sync::Arc;
//!
//! // Every package is 1 GiB; cache holds 10 GiB; merge when Jaccard
//! // distance < 0.8.
//! let sizes = Arc::new(UniformSizes::new(1 << 30));
//! let config = CacheConfig { alpha: 0.8, limit_bytes: 10 << 30, ..CacheConfig::default() };
//! let mut cache = ImageCache::new(config, sizes);
//!
//! let a = Spec::from_ids([1, 2, 3].map(PackageId));
//! let b = Spec::from_ids([1, 2, 4].map(PackageId));
//!
//! // First request inserts a fresh image.
//! assert!(matches!(cache.request(&a), Outcome::Inserted { .. }));
//! // Close request merges into the existing image (distance 0.5 < 0.8).
//! assert!(matches!(cache.request(&b), Outcome::Merged { .. }));
//! // The merged image now satisfies both specifications outright.
//! assert!(matches!(cache.request(&a), Outcome::Hit { .. }));
//! ```

pub mod bitset;
pub mod cache;
pub mod conflict;
pub mod events;
pub mod filter;
pub mod image;
pub mod jaccard;
pub mod metrics;
pub mod minhash;
pub mod policy;
pub mod shared;
pub mod sizes;
pub mod snapshot;
pub mod spec;
pub mod util;

pub use cache::{CacheConfig, CacheStats, ImageCache, Outcome, ShardedImageCache};
pub use filter::XorFilter;
pub use image::{Image, ImageId};
pub use spec::{PackageId, Spec};
