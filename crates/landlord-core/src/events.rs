//! Structured log of cache operations.
//!
//! Every request produces exactly one of `Hit`/`Merge`/`Insert`, plus
//! zero or more `Evict`s. The simulator mostly polls
//! [`CacheStats`](crate::cache::CacheStats) snapshots instead, but the
//! event stream is what the CLI's verbose mode and the failure-injection
//! tests consume.

use crate::image::ImageId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One cache operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CacheEvent {
    /// An existing image satisfied the request outright (`s ⊆ i`).
    Hit {
        /// The satisfying image.
        image: ImageId,
        /// Bytes the request asked for.
        requested_bytes: u64,
        /// Bytes of the image actually used.
        image_bytes: u64,
    },
    /// The request was merged into a close-enough image.
    Merge {
        /// The image that absorbed the request (id retained).
        image: ImageId,
        /// Jaccard distance between request and the pre-merge image.
        distance_milli: u16,
        /// Image bytes before the merge.
        old_bytes: u64,
        /// Image bytes after the merge (all rewritten).
        new_bytes: u64,
    },
    /// No reuse or merge possible; a fresh image was created.
    Insert {
        /// The new image.
        image: ImageId,
        /// Its size.
        bytes: u64,
    },
    /// An image was evicted to respect the byte limit.
    Evict {
        /// The evicted image.
        image: ImageId,
        /// Bytes freed.
        bytes: u64,
    },
    /// A bloated image was split into its constituent request specs.
    Split {
        /// The image that was split (no longer cached).
        image: ImageId,
        /// Number of constituent images created.
        pieces: u32,
    },
}

impl CacheEvent {
    /// Short tag for the operation kind ("hit", "merge", …).
    pub fn kind(&self) -> &'static str {
        match self {
            CacheEvent::Hit { .. } => "hit",
            CacheEvent::Merge { .. } => "merge",
            CacheEvent::Insert { .. } => "insert",
            CacheEvent::Evict { .. } => "evict",
            CacheEvent::Split { .. } => "split",
        }
    }

    /// Request-lifecycle phase the event belongs to, for journal
    /// attribution: the per-request outcome events are `"apply"`, while
    /// evictions and splits are maintenance that may trail a request.
    pub fn phase(&self) -> &'static str {
        match self {
            CacheEvent::Hit { .. } | CacheEvent::Merge { .. } | CacheEvent::Insert { .. } => {
                "apply"
            }
            CacheEvent::Evict { .. } => "evict",
            CacheEvent::Split { .. } => "split",
        }
    }
}

impl fmt::Display for CacheEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CacheEvent::Hit {
                image,
                requested_bytes,
                image_bytes,
            } => write!(
                f,
                "hit    {image} requested={requested_bytes} used={image_bytes}"
            ),
            CacheEvent::Merge {
                image,
                distance_milli,
                old_bytes,
                new_bytes,
            } => write!(
                f,
                "merge  {image} d={:.3} {old_bytes}B -> {new_bytes}B",
                *distance_milli as f64 / 1000.0
            ),
            CacheEvent::Insert { image, bytes } => write!(f, "insert {image} {bytes}B"),
            CacheEvent::Evict { image, bytes } => write!(f, "evict  {image} {bytes}B"),
            CacheEvent::Split { image, pieces } => write!(f, "split  {image} -> {pieces} pieces"),
        }
    }
}

/// A [`CacheEvent`] stamped with a monotone per-cache sequence number.
///
/// Sequence numbers start at 0 and increase by exactly 1 per event, so
/// downstream consumers (JSONL logs, crash-recovery diffing) can detect
/// dropped or reordered events. This is the wire form the CLI writes
/// for `--events-jsonl`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SequencedEvent {
    /// Position in the event stream: 0 for the first event, dense.
    pub seq: u64,
    /// The underlying cache operation.
    pub event: CacheEvent,
}

/// Receives cache events as they happen.
pub trait EventSink {
    /// Called once per event, in order.
    fn on_event(&mut self, event: &CacheEvent);
}

/// Discards all events (the default sink).
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl EventSink for NullSink {
    fn on_event(&mut self, _event: &CacheEvent) {}
}

/// Buffers every event in memory, for tests and traces.
#[derive(Debug, Default, Clone)]
pub struct VecSink {
    /// The recorded events, oldest first.
    pub events: Vec<CacheEvent>,
}

impl VecSink {
    /// Empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Count events of a given kind tag.
    pub fn count_kind(&self, kind: &str) -> usize {
        self.events.iter().filter(|e| e.kind() == kind).count()
    }
}

impl EventSink for VecSink {
    fn on_event(&mut self, event: &CacheEvent) {
        self.events.push(*event);
    }
}

/// Stamps every event with a dense, monotone sequence number and hands
/// the resulting [`SequencedEvent`] to a delivery function.
///
/// The counter lives in the sink, so sequence numbers reflect exactly
/// the events this sink saw — attach it for a cache's whole lifetime to
/// get a gap-free stream.
#[derive(Debug)]
pub struct SequencingSink<F: FnMut(SequencedEvent)> {
    next_seq: u64,
    deliver: F,
}

impl<F: FnMut(SequencedEvent)> SequencingSink<F> {
    /// A sink starting at sequence number 0.
    pub fn new(deliver: F) -> Self {
        Self {
            next_seq: 0,
            deliver,
        }
    }

    /// The sequence number the next event will receive (equals the
    /// count of events seen so far).
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }
}

impl<F: FnMut(SequencedEvent)> EventSink for SequencingSink<F> {
    fn on_event(&mut self, event: &CacheEvent) {
        let seq = self.next_seq;
        self.next_seq += 1;
        (self.deliver)(SequencedEvent { seq, event: *event });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_are_stable() {
        assert_eq!(
            CacheEvent::Hit {
                image: ImageId(1),
                requested_bytes: 1,
                image_bytes: 2
            }
            .kind(),
            "hit"
        );
        assert_eq!(
            CacheEvent::Insert {
                image: ImageId(1),
                bytes: 1
            }
            .kind(),
            "insert"
        );
        assert_eq!(
            CacheEvent::Evict {
                image: ImageId(1),
                bytes: 1
            }
            .kind(),
            "evict"
        );
        assert_eq!(
            CacheEvent::Split {
                image: ImageId(1),
                pieces: 2
            }
            .kind(),
            "split"
        );
        assert_eq!(
            CacheEvent::Merge {
                image: ImageId(1),
                distance_milli: 500,
                old_bytes: 1,
                new_bytes: 2
            }
            .kind(),
            "merge"
        );
    }

    #[test]
    fn vec_sink_records_in_order() {
        let mut sink = VecSink::new();
        sink.on_event(&CacheEvent::Insert {
            image: ImageId(1),
            bytes: 10,
        });
        sink.on_event(&CacheEvent::Evict {
            image: ImageId(1),
            bytes: 10,
        });
        assert_eq!(sink.events.len(), 2);
        assert_eq!(sink.count_kind("insert"), 1);
        assert_eq!(sink.count_kind("evict"), 1);
        assert_eq!(sink.count_kind("hit"), 0);
    }

    #[test]
    fn sequencing_sink_stamps_dense_monotone_seqs() {
        let mut seen: Vec<SequencedEvent> = Vec::new();
        {
            let mut sink = SequencingSink::new(|se| seen.push(se));
            assert_eq!(sink.next_seq(), 0);
            for i in 0..5u64 {
                sink.on_event(&CacheEvent::Insert {
                    image: ImageId(i),
                    bytes: i,
                });
            }
            assert_eq!(sink.next_seq(), 5);
        }
        assert_eq!(seen.len(), 5);
        for (i, se) in seen.iter().enumerate() {
            assert_eq!(se.seq, i as u64);
        }
    }

    #[test]
    fn sequenced_events_round_trip_through_serde() {
        let events = [
            CacheEvent::Hit {
                image: ImageId(1),
                requested_bytes: 100,
                image_bytes: u64::MAX,
            },
            CacheEvent::Merge {
                image: ImageId(2),
                distance_milli: 999,
                old_bytes: 0,
                new_bytes: u64::MAX,
            },
            CacheEvent::Insert {
                image: ImageId(3),
                bytes: 42,
            },
            CacheEvent::Evict {
                image: ImageId(4),
                bytes: 7,
            },
            CacheEvent::Split {
                image: ImageId(5),
                pieces: u32::MAX,
            },
        ];
        for (seq, event) in events.iter().enumerate() {
            let original = SequencedEvent {
                seq: seq as u64,
                event: *event,
            };
            let json = serde_json::to_string(&original).unwrap();
            let back: SequencedEvent = serde_json::from_str(&json).unwrap();
            assert_eq!(back, original, "round-trip mismatch for {json}");
        }
    }

    #[test]
    fn phases_are_stable() {
        assert_eq!(
            CacheEvent::Hit {
                image: ImageId(1),
                requested_bytes: 1,
                image_bytes: 1
            }
            .phase(),
            "apply"
        );
        assert_eq!(
            CacheEvent::Evict {
                image: ImageId(1),
                bytes: 1
            }
            .phase(),
            "evict"
        );
        assert_eq!(
            CacheEvent::Split {
                image: ImageId(1),
                pieces: 2
            }
            .phase(),
            "split"
        );
    }

    #[test]
    fn display_formats() {
        let e = CacheEvent::Merge {
            image: ImageId(3),
            distance_milli: 750,
            old_bytes: 100,
            new_bytes: 150,
        };
        let s = format!("{e}");
        assert!(s.contains("img#3"));
        assert!(s.contains("0.750"));
    }
}
