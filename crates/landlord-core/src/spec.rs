//! Container image specifications as immutable sorted package sets.
//!
//! The paper's key insight (§IV) is that a specification — "a declarative
//! statement of dependencies" — is an *unordered set*, unlike a build
//! recipe which is an ordered sequence of steps. Sets can be compared,
//! merged (union) and split without starting over, which is exactly the
//! flexibility LANDLORD exploits.
//!
//! [`Spec`] stores the member packages as a sorted, deduplicated boxed
//! slice. All set algebra therefore runs as linear merges over sorted
//! slices: `is_subset`, `union`, and `intersection_len` are `O(|A| + |B|)`
//! with no hashing or allocation beyond the output.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A package identity: a dense index into some package universe.
///
/// The paper identifies packages by repository-unique name/version
/// strings; `landlord-repo` interns those strings and hands out dense
/// `PackageId`s so that set operations work on `u32`s instead of strings.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
#[serde(transparent)]
pub struct PackageId(pub u32);

impl PackageId {
    /// The raw index value.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for PackageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pkg#{}", self.0)
    }
}

/// An immutable container specification: a sorted set of [`PackageId`]s.
///
/// A `Spec` represents either a job's requirements (the requested
/// packages *plus* their transitive dependency closure — closure
/// expansion happens in `landlord-repo`) or the capability set of a
/// built container image.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
#[serde(transparent)]
pub struct Spec {
    // Invariant: sorted ascending, no duplicates.
    members: Box<[PackageId]>,
}

impl Spec {
    /// The empty specification.
    pub fn empty() -> Self {
        Spec {
            members: Box::new([]),
        }
    }

    /// Build a spec from any iterator of ids; sorts and deduplicates.
    pub fn from_ids<I: IntoIterator<Item = PackageId>>(ids: I) -> Self {
        let mut v: Vec<PackageId> = ids.into_iter().collect();
        v.sort_unstable();
        v.dedup();
        Spec {
            members: v.into_boxed_slice(),
        }
    }

    /// Build a spec from a vector that is already sorted and deduplicated.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the invariant does not hold.
    pub fn from_sorted_vec(v: Vec<PackageId>) -> Self {
        debug_assert!(
            v.windows(2).all(|w| w[0] < w[1]),
            "spec must be sorted+unique"
        );
        Spec {
            members: v.into_boxed_slice(),
        }
    }

    /// Number of member packages.
    #[inline]
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True when the spec has no members.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// The members as a sorted slice.
    #[inline]
    pub fn ids(&self) -> &[PackageId] {
        &self.members
    }

    /// Iterate over members in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = PackageId> + '_ {
        self.members.iter().copied()
    }

    /// Membership test (binary search).
    #[inline]
    pub fn contains(&self, id: PackageId) -> bool {
        self.members.binary_search(&id).is_ok()
    }

    /// True when `self ⊆ other`: an image built from `other` satisfies a
    /// job requesting `self` (the "existing image satisfies s" branch of
    /// Algorithm 1).
    pub fn is_subset(&self, other: &Spec) -> bool {
        if self.len() > other.len() {
            return false;
        }
        let mut o = other.members.iter();
        'outer: for a in self.members.iter() {
            for b in o.by_ref() {
                match b.cmp(a) {
                    std::cmp::Ordering::Less => continue,
                    std::cmp::Ordering::Equal => continue 'outer,
                    std::cmp::Ordering::Greater => return false,
                }
            }
            return false;
        }
        true
    }

    /// `|self ∩ other|` via a linear merge of the sorted member slices.
    pub fn intersection_len(&self, other: &Spec) -> usize {
        intersection_len_sorted(&self.members, &other.members)
    }

    /// `|self ∪ other|` without materializing the union.
    pub fn union_len(&self, other: &Spec) -> usize {
        self.len() + other.len() - self.intersection_len(other)
    }

    /// The composite specification `self ∪ other` — the paper's merge
    /// operation: "a composite specification can be formed as the union
    /// of requirements from two or more specifications".
    pub fn union(&self, other: &Spec) -> Spec {
        let mut out = Vec::with_capacity(self.len() + other.len());
        let (mut i, mut j) = (0, 0);
        let (a, b) = (&self.members, &other.members);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => {
                    out.push(a[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    out.push(b[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    out.push(a[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        out.extend_from_slice(&a[i..]);
        out.extend_from_slice(&b[j..]);
        Spec {
            members: out.into_boxed_slice(),
        }
    }

    /// The intersection `self ∩ other` as a new spec.
    pub fn intersection(&self, other: &Spec) -> Spec {
        let mut out = Vec::with_capacity(self.len().min(other.len()));
        let (mut i, mut j) = (0, 0);
        let (a, b) = (&self.members, &other.members);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    out.push(a[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        Spec {
            members: out.into_boxed_slice(),
        }
    }

    /// Set difference `self \ other` as a new spec.
    pub fn difference(&self, other: &Spec) -> Spec {
        let mut out = Vec::with_capacity(self.len());
        let (mut i, mut j) = (0, 0);
        let (a, b) = (&self.members, &other.members);
        while i < a.len() {
            if j >= b.len() || a[i] < b[j] {
                out.push(a[i]);
                i += 1;
            } else if a[i] > b[j] {
                j += 1;
            } else {
                i += 1;
                j += 1;
            }
        }
        Spec {
            members: out.into_boxed_slice(),
        }
    }
}

impl FromIterator<PackageId> for Spec {
    fn from_iter<T: IntoIterator<Item = PackageId>>(iter: T) -> Self {
        Spec::from_ids(iter)
    }
}

impl<'a> IntoIterator for &'a Spec {
    type Item = PackageId;
    type IntoIter = std::iter::Copied<std::slice::Iter<'a, PackageId>>;
    fn into_iter(self) -> Self::IntoIter {
        self.members.iter().copied()
    }
}

impl fmt::Display for Spec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (k, id) in self.members.iter().enumerate() {
            if k > 0 {
                write!(f, ",")?;
            }
            write!(f, "{}", id.0)?;
            if k >= 7 && self.members.len() > 9 {
                return write!(f, ",… {} pkgs}}", self.members.len());
            }
        }
        write!(f, "}}")
    }
}

/// `|a ∩ b|` for two sorted, deduplicated slices.
pub(crate) fn intersection_len_sorted(a: &[PackageId], b: &[PackageId]) -> usize {
    // Galloping would win for very lopsided sizes; the cache compares
    // specs of similar magnitude, so the linear merge is the right tool.
    let mut n = 0;
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                n += 1;
                i += 1;
                j += 1;
            }
        }
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(ids: &[u32]) -> Spec {
        Spec::from_ids(ids.iter().map(|&i| PackageId(i)))
    }

    #[test]
    fn from_ids_sorts_and_dedups() {
        let s = spec(&[5, 1, 3, 1, 5]);
        assert_eq!(s.ids(), &[PackageId(1), PackageId(3), PackageId(5)]);
    }

    #[test]
    fn empty_spec_properties() {
        let e = Spec::empty();
        assert!(e.is_empty());
        assert_eq!(e.len(), 0);
        assert!(e.is_subset(&spec(&[1, 2])));
        assert!(e.is_subset(&e));
    }

    #[test]
    fn contains_finds_members_only() {
        let s = spec(&[2, 4, 6]);
        assert!(s.contains(PackageId(4)));
        assert!(!s.contains(PackageId(3)));
        assert!(!s.contains(PackageId(7)));
    }

    #[test]
    fn subset_detection() {
        let small = spec(&[2, 4]);
        let big = spec(&[1, 2, 3, 4, 5]);
        assert!(small.is_subset(&big));
        assert!(!big.is_subset(&small));
        assert!(big.is_subset(&big));
    }

    #[test]
    fn subset_fails_on_missing_last_element() {
        let a = spec(&[1, 9]);
        let b = spec(&[1, 2, 3]);
        assert!(!a.is_subset(&b));
    }

    #[test]
    fn union_merges_without_duplicates() {
        let a = spec(&[1, 3, 5]);
        let b = spec(&[2, 3, 6]);
        let u = a.union(&b);
        assert_eq!(
            u.ids().iter().map(|p| p.0).collect::<Vec<_>>(),
            vec![1, 2, 3, 5, 6]
        );
        assert_eq!(u.len(), a.union_len(&b));
    }

    #[test]
    fn union_with_empty_is_identity() {
        let a = spec(&[1, 2]);
        assert_eq!(a.union(&Spec::empty()), a);
        assert_eq!(Spec::empty().union(&a), a);
    }

    #[test]
    fn intersection_and_difference() {
        let a = spec(&[1, 2, 3, 4]);
        let b = spec(&[3, 4, 5]);
        assert_eq!(a.intersection(&b), spec(&[3, 4]));
        assert_eq!(a.difference(&b), spec(&[1, 2]));
        assert_eq!(b.difference(&a), spec(&[5]));
        assert_eq!(a.intersection_len(&b), 2);
    }

    #[test]
    fn display_truncates_long_specs() {
        let long: Vec<u32> = (0..50).collect();
        let s = spec(&long);
        let txt = format!("{s}");
        assert!(txt.contains("… 50 pkgs"));
        let short = format!("{}", spec(&[1, 2]));
        assert_eq!(short, "{1,2}");
    }

    #[test]
    fn serde_round_trip() {
        let s = spec(&[10, 20, 30]);
        let json = serde_json::to_string(&s).unwrap();
        let back: Spec = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn from_sorted_vec_accepts_valid_input() {
        let s = Spec::from_sorted_vec(vec![PackageId(1), PackageId(2)]);
        assert_eq!(s.len(), 2);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "sorted+unique")]
    fn from_sorted_vec_rejects_unsorted_in_debug() {
        let _ = Spec::from_sorted_vec(vec![PackageId(2), PackageId(1)]);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_spec(max_id: u32, max_len: usize) -> impl Strategy<Value = Spec> {
        proptest::collection::vec(0..max_id, 0..max_len)
            .prop_map(|v| Spec::from_ids(v.into_iter().map(PackageId)))
    }

    proptest! {
        #[test]
        fn union_is_commutative(a in arb_spec(200, 64), b in arb_spec(200, 64)) {
            prop_assert_eq!(a.union(&b), b.union(&a));
        }

        #[test]
        fn union_is_associative(
            a in arb_spec(100, 32),
            b in arb_spec(100, 32),
            c in arb_spec(100, 32),
        ) {
            prop_assert_eq!(a.union(&b).union(&c), a.union(&b.union(&c)));
        }

        #[test]
        fn union_is_superset_of_operands(a in arb_spec(200, 64), b in arb_spec(200, 64)) {
            let u = a.union(&b);
            prop_assert!(a.is_subset(&u));
            prop_assert!(b.is_subset(&u));
        }

        #[test]
        fn inclusion_exclusion(a in arb_spec(200, 64), b in arb_spec(200, 64)) {
            prop_assert_eq!(
                a.union_len(&b) + a.intersection_len(&b),
                a.len() + b.len()
            );
        }

        #[test]
        fn intersection_is_subset_of_both(a in arb_spec(200, 64), b in arb_spec(200, 64)) {
            let i = a.intersection(&b);
            prop_assert!(i.is_subset(&a));
            prop_assert!(i.is_subset(&b));
        }

        #[test]
        fn difference_partitions(a in arb_spec(200, 64), b in arb_spec(200, 64)) {
            let d = a.difference(&b);
            let i = a.intersection(&b);
            // d and i partition a.
            prop_assert_eq!(d.len() + i.len(), a.len());
            prop_assert_eq!(d.union(&i), a.clone());
            prop_assert_eq!(d.intersection_len(&b), 0);
        }

        #[test]
        fn subset_agrees_with_bruteforce(a in arb_spec(64, 32), b in arb_spec(64, 32)) {
            let brute = a.iter().all(|x| b.contains(x));
            prop_assert_eq!(a.is_subset(&b), brute);
        }

        #[test]
        fn members_always_sorted_unique(a in arb_spec(500, 128)) {
            prop_assert!(a.ids().windows(2).all(|w| w[0] < w[1]));
        }
    }
}
