//! A fixed-capacity bit set.
//!
//! Two hot paths want test-and-set membership over a small dense index
//! space with no hashing and no allocation after construction: the
//! repo generator's dependency closures (over dense package ids) and
//! the S3-FIFO evictor's ghost-membership set (over hashed spec
//! fingerprint slots). A word-packed bit set makes both a couple of
//! instructions per probe. Implemented here rather than pulled in as a
//! dependency because the workspace's offline crate budget is
//! deliberately small.

/// A bit set over `0..len`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
    len: usize,
}

impl BitSet {
    /// All-zeros set with capacity for `len` bits.
    pub fn new(len: usize) -> Self {
        BitSet {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Capacity in bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the capacity is zero.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Test bit `i`.
    ///
    /// # Panics
    ///
    /// Panics when `i >= len`.
    #[inline]
    pub fn contains(&self, i: usize) -> bool {
        assert!(i < self.len, "bit {i} out of range {}", self.len);
        self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Set bit `i`; returns true when the bit was previously clear
    /// (i.e. this call changed the set).
    #[inline]
    pub fn insert(&mut self, i: usize) -> bool {
        assert!(i < self.len, "bit {i} out of range {}", self.len);
        let word = &mut self.words[i / 64];
        let mask = 1u64 << (i % 64);
        let fresh = *word & mask == 0;
        *word |= mask;
        fresh
    }

    /// Clear bit `i`.
    #[inline]
    pub fn remove(&mut self, i: usize) {
        assert!(i < self.len, "bit {i} out of range {}", self.len);
        self.words[i / 64] &= !(1u64 << (i % 64));
    }

    /// Clear every bit, keeping capacity.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Iterate set bits in ascending order.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let b = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(wi * 64 + b)
                }
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_contains() {
        let mut b = BitSet::new(130);
        assert!(!b.contains(0));
        assert!(b.insert(0));
        assert!(!b.insert(0), "second insert reports already-set");
        assert!(b.contains(0));
        assert!(b.insert(64));
        assert!(b.insert(129));
        assert_eq!(b.count_ones(), 3);
    }

    #[test]
    fn remove_and_clear() {
        let mut b = BitSet::new(70);
        b.insert(3);
        b.insert(69);
        b.remove(3);
        assert!(!b.contains(3));
        assert!(b.contains(69));
        b.clear();
        assert_eq!(b.count_ones(), 0);
        assert_eq!(b.len(), 70);
    }

    #[test]
    fn iter_ones_ascending() {
        let mut b = BitSet::new(200);
        for i in [5usize, 63, 64, 65, 128, 199] {
            b.insert(i);
        }
        let got: Vec<usize> = b.iter_ones().collect();
        assert_eq!(got, vec![5, 63, 64, 65, 128, 199]);
    }

    #[test]
    fn empty_bitset() {
        let b = BitSet::new(0);
        assert!(b.is_empty());
        assert_eq!(b.iter_ones().count(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        let b = BitSet::new(10);
        let _ = b.contains(10);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::BTreeSet;

    proptest! {
        #[test]
        fn behaves_like_btreeset(ops in proptest::collection::vec((0usize..500, any::<bool>()), 0..200)) {
            let mut bits = BitSet::new(500);
            let mut model: BTreeSet<usize> = BTreeSet::new();
            for (i, add) in ops {
                if add {
                    prop_assert_eq!(bits.insert(i), model.insert(i));
                } else {
                    bits.remove(i);
                    model.remove(&i);
                }
            }
            prop_assert_eq!(bits.count_ones(), model.len());
            let got: Vec<usize> = bits.iter_ones().collect();
            let want: Vec<usize> = model.into_iter().collect();
            prop_assert_eq!(got, want);
        }
    }
}
