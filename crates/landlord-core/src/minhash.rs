//! MinHash signatures and LSH candidate indexing.
//!
//! The paper notes (§V) that "a constant-time approximation of the
//! Jaccard metric (MinHash) is available for making an efficient first
//! pass at selecting similar images when the number of packages or
//! components is large", and that robust support for very large
//! specifications matters in practice (full-repository CVMFS metadata
//! listings run to gigabytes).
//!
//! This module provides:
//!
//! * [`MinHasher`] — generates fixed-length [`Signature`]s using `k`
//!   independent hash functions derived from one seed via SplitMix64
//!   mixing. The fraction of matching signature slots estimates the
//!   Jaccard *similarity*; the estimated distance is its complement.
//! * [`LshIndex`] — a banded locality-sensitive index over signatures.
//!   Signatures are split into `bands` groups of `rows` slots; images
//!   sharing any band hash become candidates. With similarity `s`, the
//!   probability of becoming a candidate is `1 − (1 − s^rows)^bands` —
//!   the classic S-curve — so near images are found with high
//!   probability while far images are mostly filtered out.
//!
//! The cache uses the index as a *pre-filter only*: every candidate is
//! confirmed with the exact Jaccard distance before merging, so LSH can
//! cause missed merge opportunities (false negatives) but never an
//! incorrect merge.

use crate::spec::Spec;
use crate::util::{mix2, mix64, FxHashMap};
use serde::{Deserialize, Serialize};

/// A MinHash signature: one minimum hash value per hash function.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Signature(Box<[u64]>);

impl Signature {
    /// Number of hash functions (slots) in this signature.
    #[inline]
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when the signature has no slots.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Raw slot values.
    #[inline]
    pub fn slots(&self) -> &[u64] {
        &self.0
    }

    /// Estimated Jaccard *similarity* between the underlying sets: the
    /// fraction of slots where the two signatures agree.
    pub fn estimate_similarity(&self, other: &Signature) -> f64 {
        assert_eq!(self.len(), other.len(), "signatures from different hashers");
        if self.is_empty() {
            return 1.0;
        }
        let matching = self
            .0
            .iter()
            .zip(other.0.iter())
            .filter(|(a, b)| a == b)
            .count();
        matching as f64 / self.len() as f64
    }

    /// Estimated Jaccard distance (`1 − similarity`).
    pub fn estimate_distance(&self, other: &Signature) -> f64 {
        1.0 - self.estimate_similarity(other)
    }

    /// The signature of the union of the two underlying sets: slot-wise
    /// minimum. This lets the cache maintain signatures across merges
    /// without rehashing the merged member list.
    pub fn union(&self, other: &Signature) -> Signature {
        assert_eq!(self.len(), other.len(), "signatures from different hashers");
        Signature(
            self.0
                .iter()
                .zip(other.0.iter())
                .map(|(&a, &b)| a.min(b))
                .collect(),
        )
    }
}

/// Generates MinHash signatures with `k` hash functions.
#[derive(Debug, Clone)]
pub struct MinHasher {
    seeds: Box<[u64]>,
}

impl MinHasher {
    /// Create a hasher with `k` hash functions derived from `seed`.
    ///
    /// Typical `k`: 64–256. Estimation standard error is roughly
    /// `1/sqrt(k)`, so `k = 128` gives ±0.09 at one sigma.
    pub fn new(k: usize, seed: u64) -> Self {
        assert!(k > 0, "need at least one hash function");
        let seeds = (0..k as u64).map(|i| mix64(seed ^ mix64(i + 1))).collect();
        MinHasher { seeds }
    }

    /// Number of hash functions.
    #[inline]
    pub fn k(&self) -> usize {
        self.seeds.len()
    }

    /// Compute the signature of a specification.
    ///
    /// An empty spec yields the all-`u64::MAX` signature, which estimates
    /// similarity 1 against other empty specs and (almost surely) 0
    /// against non-empty ones.
    pub fn signature(&self, spec: &Spec) -> Signature {
        let mut sig = vec![u64::MAX; self.seeds.len()];
        for id in spec.iter() {
            let base = mix64(id.0 as u64 + 0x9e37_79b9);
            for (slot, &seed) in sig.iter_mut().zip(self.seeds.iter()) {
                let h = mix2(base, seed);
                if h < *slot {
                    *slot = h;
                }
            }
        }
        Signature(sig.into_boxed_slice())
    }
}

/// Shape of an [`LshIndex`]: `bands × rows` must equal the signature
/// length.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LshShape {
    /// Number of bands; more bands raise recall (and candidate noise).
    pub bands: usize,
    /// Slots per band; more rows sharpen the similarity threshold.
    pub rows: usize,
}

impl LshShape {
    /// The similarity at which the candidate probability crosses ~50%:
    /// the classic approximation `(1/bands)^(1/rows)`.
    pub fn threshold(&self) -> f64 {
        (1.0 / self.bands as f64).powf(1.0 / self.rows as f64)
    }
}

/// A banded LSH index from signature bands to image keys.
///
/// Keys are opaque `u64`s (the cache uses image ids).
#[derive(Debug, Clone)]
pub struct LshIndex {
    shape: LshShape,
    buckets: Vec<FxHashMap<u64, Vec<u64>>>,
    /// Per-key band hashes so entries can be removed without the signature.
    key_bands: FxHashMap<u64, Box<[u64]>>,
}

impl LshIndex {
    /// Create an index with the given shape.
    pub fn new(shape: LshShape) -> Self {
        assert!(shape.bands > 0 && shape.rows > 0);
        LshIndex {
            shape,
            buckets: (0..shape.bands).map(|_| FxHashMap::default()).collect(),
            key_bands: FxHashMap::default(),
        }
    }

    /// The configured shape.
    pub fn shape(&self) -> LshShape {
        self.shape
    }

    /// Number of indexed keys.
    pub fn len(&self) -> usize {
        self.key_bands.len()
    }

    /// True when no keys are indexed.
    pub fn is_empty(&self) -> bool {
        self.key_bands.is_empty()
    }

    fn band_hashes(&self, sig: &Signature) -> Box<[u64]> {
        assert_eq!(
            sig.len(),
            self.shape.bands * self.shape.rows,
            "signature length {} does not match LSH shape {}x{}",
            sig.len(),
            self.shape.bands,
            self.shape.rows
        );
        sig.slots()
            .chunks_exact(self.shape.rows)
            .map(|chunk| {
                let mut h = 0xcbf2_9ce4_8422_2325u64;
                for &v in chunk {
                    h = mix2(h, v);
                }
                h
            })
            .collect()
    }

    /// True when `key` is currently indexed.
    pub fn contains(&self, key: u64) -> bool {
        self.key_bands.contains_key(&key)
    }

    /// Insert (or re-insert) a key with its signature.
    pub fn insert(&mut self, key: u64, sig: &Signature) {
        self.remove(key);
        let bands = self.band_hashes(sig);
        for (band_idx, &bh) in bands.iter().enumerate() {
            self.buckets[band_idx].entry(bh).or_default().push(key);
        }
        self.key_bands.insert(key, bands);
    }

    /// Remove a key; returns true if it was present.
    pub fn remove(&mut self, key: u64) -> bool {
        let Some(bands) = self.key_bands.remove(&key) else {
            return false;
        };
        for (band_idx, &bh) in bands.iter().enumerate() {
            if let Some(bucket) = self.buckets[band_idx].get_mut(&bh) {
                bucket.retain(|&k| k != key);
                if bucket.is_empty() {
                    self.buckets[band_idx].remove(&bh);
                }
            }
        }
        true
    }

    /// Collect candidate keys sharing at least one band with `sig`,
    /// deduplicated, in unspecified order.
    pub fn candidates(&self, sig: &Signature) -> Vec<u64> {
        let bands = self.band_hashes(sig);
        let mut seen = crate::util::FxHashSet::default();
        let mut out = Vec::new();
        for (band_idx, &bh) in bands.iter().enumerate() {
            if let Some(bucket) = self.buckets[band_idx].get(&bh) {
                for &k in bucket {
                    if seen.insert(k) {
                        out.push(k);
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jaccard::jaccard_distance;
    use crate::spec::{PackageId, Spec};

    fn spec(range: std::ops::Range<u32>) -> Spec {
        Spec::from_ids(range.map(PackageId))
    }

    #[test]
    fn identical_specs_identical_signatures() {
        let mh = MinHasher::new(64, 42);
        let a = spec(0..100);
        assert_eq!(mh.signature(&a), mh.signature(&a));
        assert_eq!(mh.signature(&a).estimate_distance(&mh.signature(&a)), 0.0);
    }

    #[test]
    fn disjoint_specs_estimate_near_one() {
        let mh = MinHasher::new(128, 7);
        let a = spec(0..200);
        let b = spec(1000..1200);
        let d = mh.signature(&a).estimate_distance(&mh.signature(&b));
        assert!(d > 0.9, "disjoint sets estimated at distance {d}");
    }

    #[test]
    fn estimate_tracks_exact_distance() {
        // Overlapping ranges with known Jaccard distances.
        let mh = MinHasher::new(256, 99);
        for overlap in [50u32, 100, 150] {
            let a = spec(0..200);
            let b = spec((200 - overlap)..(400 - overlap));
            let exact = jaccard_distance(&a, &b);
            let est = mh.signature(&a).estimate_distance(&mh.signature(&b));
            // k=256 → σ ≈ 0.0625; allow 4σ.
            assert!(
                (exact - est).abs() < 0.25,
                "overlap {overlap}: exact {exact} vs est {est}"
            );
        }
    }

    #[test]
    fn union_signature_matches_rehash() {
        let mh = MinHasher::new(64, 5);
        let a = spec(0..50);
        let b = spec(25..80);
        let u = a.union(&b);
        assert_eq!(mh.signature(&a).union(&mh.signature(&b)), mh.signature(&u));
    }

    #[test]
    fn empty_spec_signature() {
        let mh = MinHasher::new(16, 0);
        let e = mh.signature(&Spec::empty());
        assert!(e.slots().iter().all(|&s| s == u64::MAX));
        assert_eq!(e.estimate_similarity(&mh.signature(&Spec::empty())), 1.0);
    }

    #[test]
    #[should_panic(expected = "different hashers")]
    fn mismatched_signature_lengths_panic() {
        let a = MinHasher::new(8, 1).signature(&spec(0..4));
        let b = MinHasher::new(16, 1).signature(&spec(0..4));
        let _ = a.estimate_similarity(&b);
    }

    #[test]
    fn lsh_shape_threshold_sanity() {
        let shape = LshShape { bands: 16, rows: 8 };
        let t = shape.threshold();
        assert!(t > 0.5 && t < 0.9, "threshold {t}");
    }

    #[test]
    fn lsh_finds_near_duplicates() {
        let mh = MinHasher::new(128, 3);
        let shape = LshShape { bands: 32, rows: 4 };
        let mut idx = LshIndex::new(shape);
        let base = spec(0..100);
        idx.insert(1, &mh.signature(&base));

        // 95% similar probe: should almost surely be a candidate.
        let probe = spec(5..105);
        let cands = idx.candidates(&mh.signature(&probe));
        assert!(cands.contains(&1), "near-duplicate missed by LSH");
    }

    #[test]
    fn lsh_filters_far_items() {
        let mh = MinHasher::new(128, 3);
        let shape = LshShape { bands: 16, rows: 8 };
        let mut idx = LshIndex::new(shape);
        for key in 0..50u64 {
            let far = spec((10_000 + 200 * key as u32)..(10_100 + 200 * key as u32));
            idx.insert(key, &mh.signature(&far));
        }
        let probe = spec(0..100);
        let cands = idx.candidates(&mh.signature(&probe));
        // Disjoint sets share bands only by hash accident.
        assert!(cands.len() <= 2, "too many far candidates: {}", cands.len());
    }

    #[test]
    fn lsh_remove_works() {
        let mh = MinHasher::new(64, 11);
        let mut idx = LshIndex::new(LshShape { bands: 16, rows: 4 });
        let s = mh.signature(&spec(0..10));
        idx.insert(7, &s);
        assert_eq!(idx.len(), 1);
        assert!(idx.remove(7));
        assert!(!idx.remove(7));
        assert!(idx.is_empty());
        assert!(idx.candidates(&s).is_empty());
    }

    #[test]
    fn lsh_reinsert_replaces() {
        let mh = MinHasher::new(64, 11);
        let mut idx = LshIndex::new(LshShape { bands: 16, rows: 4 });
        let s1 = mh.signature(&spec(0..10));
        let s2 = mh.signature(&spec(500..510));
        idx.insert(7, &s1);
        idx.insert(7, &s2);
        assert_eq!(idx.len(), 1);
        // Old signature should no longer find key 7 (probabilistically;
        // these two sets are disjoint so bands differ).
        assert!(!idx.candidates(&s1).contains(&7) || idx.candidates(&s2).contains(&7));
        assert!(idx.candidates(&s2).contains(&7));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::jaccard::jaccard_distance;
    use crate::spec::{PackageId, Spec};
    use proptest::prelude::*;

    fn arb_spec() -> impl Strategy<Value = Spec> {
        proptest::collection::vec(0u32..400, 1..128)
            .prop_map(|v| Spec::from_ids(v.into_iter().map(PackageId)))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn estimate_within_tolerance(a in arb_spec(), b in arb_spec()) {
            let mh = MinHasher::new(256, 1234);
            let exact = jaccard_distance(&a, &b);
            let est = mh.signature(&a).estimate_distance(&mh.signature(&b));
            // 256 slots → σ ≲ 0.0625 in the worst case; allow ~5σ.
            prop_assert!((exact - est).abs() < 0.32, "exact {} est {}", exact, est);
        }

        #[test]
        fn union_signature_equals_rehash(a in arb_spec(), b in arb_spec()) {
            let mh = MinHasher::new(96, 8);
            let direct = mh.signature(&a.union(&b));
            let merged = mh.signature(&a).union(&mh.signature(&b));
            prop_assert_eq!(direct, merged);
        }

        #[test]
        fn signature_deterministic_across_hashers_with_same_seed(a in arb_spec()) {
            let h1 = MinHasher::new(64, 77);
            let h2 = MinHasher::new(64, 77);
            prop_assert_eq!(h1.signature(&a), h2.signature(&a));
        }
    }
}
