//! Mapping packages to on-disk bytes.
//!
//! The cache accounts storage in bytes but knows nothing about any
//! concrete software repository; a [`SizeModel`] supplies the byte size
//! of each package. `landlord-repo`'s `Repository` implements this trait
//! from its generated package metadata; tests and micro-benchmarks use
//! the simple models here.

use crate::spec::{PackageId, Spec};

/// Supplies the on-disk size of each package.
///
/// Implementations must be cheap (called once per spec member on every
/// insert/merge) and consistent: the same id always maps to the same
/// size within one cache lifetime.
pub trait SizeModel: Send + Sync {
    /// Bytes occupied by one copy of the package.
    fn package_size(&self, id: PackageId) -> u64;

    /// Total bytes of a specification (sum over its unique members).
    ///
    /// The default sums `package_size` over members; implementations may
    /// override with something faster.
    fn spec_bytes(&self, spec: &Spec) -> u64 {
        spec.iter().map(|id| self.package_size(id)).sum()
    }
}

/// Every package has the same size. Handy for tests where only set
/// structure matters.
#[derive(Debug, Clone, Copy)]
pub struct UniformSizes {
    bytes: u64,
}

impl UniformSizes {
    /// All packages weigh `bytes`.
    pub fn new(bytes: u64) -> Self {
        UniformSizes { bytes }
    }
}

impl SizeModel for UniformSizes {
    fn package_size(&self, _id: PackageId) -> u64 {
        self.bytes
    }

    fn spec_bytes(&self, spec: &Spec) -> u64 {
        self.bytes * spec.len() as u64
    }
}

/// Sizes stored in a dense table indexed by package id.
///
/// Out-of-range ids map to zero bytes (and a debug assertion), so a
/// truncated table fails loudly in tests rather than corrupting
/// accounting silently in release sweeps.
#[derive(Debug, Clone)]
pub struct TableSizes {
    table: Box<[u64]>,
}

impl TableSizes {
    /// Build from a per-package size table.
    pub fn new(table: Vec<u64>) -> Self {
        TableSizes {
            table: table.into_boxed_slice(),
        }
    }

    /// Number of packages covered by the table.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// True when the table is empty.
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }

    /// Sum of all package sizes — the "full repository" size.
    pub fn total_bytes(&self) -> u64 {
        self.table.iter().sum()
    }
}

impl SizeModel for TableSizes {
    #[inline]
    fn package_size(&self, id: PackageId) -> u64 {
        debug_assert!(
            id.index() < self.table.len(),
            "package {id} outside size table of len {}",
            self.table.len()
        );
        self.table.get(id.index()).copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(ids: &[u32]) -> Spec {
        Spec::from_ids(ids.iter().map(|&i| PackageId(i)))
    }

    #[test]
    fn uniform_sizes() {
        let m = UniformSizes::new(10);
        assert_eq!(m.package_size(PackageId(0)), 10);
        assert_eq!(m.spec_bytes(&spec(&[1, 2, 3])), 30);
        assert_eq!(m.spec_bytes(&Spec::empty()), 0);
    }

    #[test]
    fn table_sizes_lookup_and_total() {
        let m = TableSizes::new(vec![5, 7, 11]);
        assert_eq!(m.package_size(PackageId(1)), 7);
        assert_eq!(m.total_bytes(), 23);
        assert_eq!(m.spec_bytes(&spec(&[0, 2])), 16);
        assert_eq!(m.len(), 3);
        assert!(!m.is_empty());
    }

    #[test]
    fn spec_bytes_counts_each_member_once() {
        // from_ids dedups, so duplicates in the input never double-count.
        let m = TableSizes::new(vec![100, 200]);
        let s = Spec::from_ids([0, 0, 1, 1].map(PackageId));
        assert_eq!(m.spec_bytes(&s), 300);
    }

    #[test]
    #[cfg(not(debug_assertions))]
    fn table_out_of_range_is_zero_in_release() {
        let m = TableSizes::new(vec![1]);
        assert_eq!(m.package_size(PackageId(9)), 0);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "outside size table")]
    fn table_out_of_range_panics_in_debug() {
        let m = TableSizes::new(vec![1]);
        let _ = m.package_size(PackageId(9));
    }
}
