//! Small utilities shared across the crate: a fast non-cryptographic
//! hasher for integer-keyed maps and deterministic 64-bit mixing.
//!
//! The cache's hot paths hash millions of small integer keys (package ids,
//! image ids, MinHash band signatures). The default SipHash-1-3 hasher in
//! `std` is collision-resistant but slow for this workload, so we ship an
//! FxHash-style multiply-xor hasher (the same construction used inside
//! rustc). It is *not* HashDoS-resistant; all keys here are internally
//! generated, never attacker-controlled.

use std::hash::{BuildHasherDefault, Hasher};

/// Hash maps keyed by internally generated integers.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// Hash sets keyed by internally generated integers.
pub type FxHashSet<K> = std::collections::HashSet<K, BuildHasherDefault<FxHasher>>;

const ROTATE: u32 = 5;
const SEED64: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// An FxHash-style hasher: fast multiply-rotate mixing of 8-byte words.
#[derive(Default, Clone, Copy)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED64);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let mut word = [0u8; 8];
            word.copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(word));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            // 0x80 sentinel terminates the remainder so trailing zero
            // bytes don't collide with shorter inputs.
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            buf[rem.len()] = 0x80;
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// SplitMix64 finalization: a strong, cheap 64-bit bijective mixer.
///
/// Used to derive independent hash families for MinHash from a single
/// seed, and to turn sequential ids into well-distributed pseudo-random
/// values.
#[inline]
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Combine two 64-bit values into one (order-sensitive).
#[inline]
pub fn mix2(a: u64, b: u64) -> u64 {
    mix64(a ^ b.rotate_left(32))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, BuildHasherDefault};

    fn hash_of(bytes: &[u8]) -> u64 {
        let bh: BuildHasherDefault<FxHasher> = BuildHasherDefault::default();
        let mut h = bh.build_hasher();
        h.write(bytes);
        h.finish()
    }

    #[test]
    fn fxhash_is_deterministic() {
        assert_eq!(hash_of(b"landlord"), hash_of(b"landlord"));
    }

    #[test]
    fn fxhash_distinguishes_inputs() {
        assert_ne!(hash_of(b"alpha"), hash_of(b"beta"));
        assert_ne!(hash_of(b""), hash_of(b"\0"));
    }

    #[test]
    fn fxhash_handles_non_multiple_of_eight() {
        // Lengths 1..=17 cover remainder paths.
        let mut seen = std::collections::HashSet::new();
        for len in 1..=17usize {
            let data: Vec<u8> = (0..len as u8).collect();
            assert!(seen.insert(hash_of(&data)), "collision at len {len}");
        }
    }

    #[test]
    fn mix64_is_bijective_sample() {
        // A bijection never collides; check a sample.
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000u64 {
            assert!(seen.insert(mix64(i)));
        }
    }

    #[test]
    fn mix64_changes_all_bit_regions() {
        let a = mix64(1);
        let b = mix64(2);
        // Expect differences in both halves of the word.
        assert_ne!(a as u32, b as u32);
        assert_ne!(a >> 32, b >> 32);
    }

    #[test]
    fn mix2_is_order_sensitive() {
        assert_ne!(mix2(1, 2), mix2(2, 1));
    }

    #[test]
    fn fxhashmap_basic_use() {
        let mut m: FxHashMap<u32, u32> = FxHashMap::default();
        for i in 0..100 {
            m.insert(i, i * 2);
        }
        assert_eq!(m.get(&21), Some(&42));
        assert_eq!(m.len(), 100);
    }
}
