//! Cache configuration and the counter snapshot shared by every
//! [`crate::policy::CachePolicy`] implementation.

use crate::policy::{CandidateStrategy, DistanceMetric, EvictionPolicy, MergeOrder};
use serde::{Deserialize, Serialize};

/// Configuration of an [`super::ImageCache`].
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct CacheConfig {
    /// The merge threshold α ∈ [0, 1]: images at Jaccard distance
    /// strictly below α are merge candidates. 0 disables merging; 1
    /// merges anything sharing at least one package.
    pub alpha: f64,
    /// Cache capacity in bytes. The cache evicts down to this after
    /// every mutation; a single image larger than the limit is kept
    /// alone (there is no way to satisfy the job otherwise).
    pub limit_bytes: u64,
    /// Which image to evict when over the limit.
    pub eviction: EvictionPolicy,
    /// Order in which merge candidates are tried.
    pub merge_order: MergeOrder,
    /// How merge candidates are enumerated.
    pub candidates: CandidateStrategy,
    /// Seed for the MinHash hash family (only used with
    /// [`CandidateStrategy::MinHashLsh`]).
    pub minhash_seed: u64,
    /// Which quantity distances are computed over: package counts (the
    /// paper) or on-disk bytes.
    #[serde(default)]
    pub metric: DistanceMetric,
    /// Seed for randomized victim selection (only used by
    /// [`EvictionPolicy::LhdSample`]'s K-sample draws). Threaded from
    /// here — never ambient randomness — so eviction decisions are a
    /// deterministic function of the request stream and the config.
    /// Seed 0 (the default) is a perfectly good SplitMix64 seed.
    #[serde(default)]
    pub eviction_seed: u64,
    /// Automatic bloat control: when set, an image that has absorbed
    /// this many merges is split back into its constituent request
    /// specs before the next request is served. `None` (the paper's
    /// configuration) relies on the Jaccard distance + LRU eviction to
    /// age bloated images out instead.
    #[serde(default)]
    pub split_threshold: Option<u64>,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            alpha: 0.8,
            limit_bytes: u64::MAX,
            eviction: EvictionPolicy::Lru,
            merge_order: MergeOrder::NearestFirst,
            candidates: CandidateStrategy::ExactScan,
            minhash_seed: 0x1a4d_10bd_2020_0048,
            eviction_seed: 0,
            metric: DistanceMetric::default(),
            split_threshold: None,
        }
    }
}

/// Monotonic counters and current totals, cheap to snapshot.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize, PartialEq, Eq)]
pub struct CacheStats {
    /// Requests processed.
    pub requests: u64,
    /// Requests satisfied by an existing image (`s ⊆ i`).
    pub hits: u64,
    /// Requests satisfied by merging into a close image.
    pub merges: u64,
    /// Requests that created a fresh image.
    pub inserts: u64,
    /// Images evicted to respect the byte limit.
    pub deletes: u64,
    /// Bloated images split back into their constituents.
    #[serde(default)]
    pub splits: u64,
    /// Cumulative bytes physically written (inserted images in full,
    /// merged images rewritten in full) — the paper's "Actual Writes".
    pub bytes_written: u64,
    /// Cumulative bytes the jobs asked for — the paper's "Requested
    /// Writes"; independent of α.
    pub bytes_requested: u64,
    /// Current total cached bytes (sum of image sizes).
    pub total_bytes: u64,
    /// Current unique cached bytes (each distinct package once).
    pub unique_bytes: u64,
    /// Current number of cached images.
    pub image_count: u64,
}

impl CacheStats {
    /// Cache efficiency percentage at this snapshot.
    pub fn cache_efficiency_pct(&self) -> f64 {
        crate::metrics::cache_efficiency_pct(self.unique_bytes, self.total_bytes)
    }

    /// Fold another snapshot into this one, field by field.
    ///
    /// Counters add; the "current" totals (`total_bytes`,
    /// `unique_bytes`, `image_count`) also add, which is exact when the
    /// snapshots describe disjoint populations — e.g. the shards of a
    /// [`super::ShardedImageCache`], whose images and packages never
    /// overlap across shards.
    /// Sums saturate rather than wrap: a fold over many shards must
    /// degrade to a pinned ceiling, never to a small wrapped lie.
    pub fn merge(&mut self, other: &CacheStats) {
        self.requests = self.requests.saturating_add(other.requests);
        self.hits = self.hits.saturating_add(other.hits);
        self.merges = self.merges.saturating_add(other.merges);
        self.inserts = self.inserts.saturating_add(other.inserts);
        self.deletes = self.deletes.saturating_add(other.deletes);
        self.splits = self.splits.saturating_add(other.splits);
        self.bytes_written = self.bytes_written.saturating_add(other.bytes_written);
        self.bytes_requested = self.bytes_requested.saturating_add(other.bytes_requested);
        self.total_bytes = self.total_bytes.saturating_add(other.total_bytes);
        self.unique_bytes = self.unique_bytes.saturating_add(other.unique_bytes);
        self.image_count = self.image_count.saturating_add(other.image_count);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_merge_sums_every_field() {
        // Build two snapshots with every field distinct so a missed
        // field in merge() cannot cancel out.
        let mut a = CacheStats::default();
        let mut b = CacheStats::default();
        let fields: &[fn(&mut CacheStats) -> &mut u64] = &[
            |s| &mut s.requests,
            |s| &mut s.hits,
            |s| &mut s.merges,
            |s| &mut s.inserts,
            |s| &mut s.deletes,
            |s| &mut s.splits,
            |s| &mut s.bytes_written,
            |s| &mut s.bytes_requested,
            |s| &mut s.total_bytes,
            |s| &mut s.unique_bytes,
            |s| &mut s.image_count,
        ];
        for (i, field) in fields.iter().enumerate() {
            let i = i as u64;
            *field(&mut a) = 1 + i;
            *field(&mut b) = 100 + i;
        }
        let mut folded = a;
        folded.merge(&b);
        for (i, field) in fields.iter().enumerate() {
            let i = i as u64;
            assert_eq!(*field(&mut folded), 101 + 2 * i);
        }
    }

    /// The serve mode's per-thread folds routinely cross shards that
    /// served no traffic: zero-request snapshots must act as the merge
    /// identity and their efficiency must stay the defined 100%, never
    /// a 0/0 NaN.
    #[test]
    fn empty_snapshots_fold_as_identity_with_defined_efficiency() {
        let empty = CacheStats::default();
        assert_eq!(empty.cache_efficiency_pct(), 100.0);
        assert!(empty.cache_efficiency_pct().is_finite());

        let mut folded = CacheStats::default();
        for _ in 0..8 {
            folded.merge(&CacheStats::default());
        }
        assert_eq!(folded, CacheStats::default());
        assert_eq!(folded.cache_efficiency_pct(), 100.0);

        let mut busy = CacheStats {
            requests: 3,
            hits: 1,
            inserts: 2,
            total_bytes: 40,
            unique_bytes: 30,
            image_count: 2,
            ..CacheStats::default()
        };
        let before = busy;
        for _ in 0..8 {
            busy.merge(&CacheStats::default());
        }
        assert_eq!(busy, before, "idle shards must not perturb the fold");
        assert_eq!(busy.cache_efficiency_pct(), 75.0);
    }
}
