use super::*;
use crate::conflict::SingleVersionPerName;
use crate::policy::{CandidateStrategy, EvictionPolicy};
use crate::sizes::{TableSizes, UniformSizes};

fn spec(ids: &[u32]) -> Spec {
    Spec::from_ids(ids.iter().map(|&i| PackageId(i)))
}

fn cache(alpha: f64, limit: u64) -> ImageCache {
    let cfg = CacheConfig {
        alpha,
        limit_bytes: limit,
        ..CacheConfig::default()
    };
    ImageCache::new(cfg, Arc::new(UniformSizes::new(1)))
}

#[test]
fn first_request_inserts() {
    let mut c = cache(0.8, 100);
    let out = c.request(&spec(&[1, 2, 3]));
    assert!(matches!(out, Outcome::Inserted { image_bytes: 3, .. }));
    let s = c.stats();
    assert_eq!((s.inserts, s.hits, s.merges), (1, 0, 0));
    assert_eq!(s.total_bytes, 3);
    assert_eq!(s.unique_bytes, 3);
    c.check_invariants();
}

#[test]
fn identical_request_hits() {
    let mut c = cache(0.8, 100);
    c.request(&spec(&[1, 2, 3]));
    let out = c.request(&spec(&[1, 2, 3]));
    assert!(matches!(out, Outcome::Hit { .. }));
    assert_eq!(c.stats().hits, 1);
    // Hits write nothing.
    assert_eq!(c.stats().bytes_written, 3);
    c.check_invariants();
}

#[test]
fn subset_request_hits_superset_image() {
    let mut c = cache(0.8, 100);
    c.request(&spec(&[1, 2, 3, 4]));
    let out = c.request(&spec(&[2, 3]));
    assert!(matches!(out, Outcome::Hit { image_bytes: 4, .. }));
    c.check_invariants();
}

#[test]
fn hit_prefers_smallest_satisfying_image() {
    let mut c = cache(0.0, 100); // no merging: build two distinct images
    c.request(&spec(&[1, 2, 3, 4, 5, 6, 7, 8]));
    c.request(&spec(&[1, 2, 9])); // not a subset of the first image
    assert_eq!(c.len(), 2);
    let out = c.request(&spec(&[1, 2]));
    // Both images satisfy {1,2}; the 3-package one is smaller.
    assert_eq!(out.image_bytes(), 3);
    c.check_invariants();
}

#[test]
fn close_request_merges() {
    let mut c = cache(0.8, 100);
    let a = c.request(&spec(&[1, 2, 3]));
    let out = c.request(&spec(&[1, 2, 4])); // d = 2/4 = 0.5 < 0.8
    match out {
        Outcome::Merged {
            image,
            distance,
            image_bytes,
        } => {
            assert_eq!(image, a.image(), "merge keeps the candidate's id");
            assert!((distance - 0.5).abs() < 1e-12);
            assert_eq!(image_bytes, 4); // {1,2,3,4}
        }
        other => panic!("expected merge, got {other:?}"),
    }
    assert_eq!(c.len(), 1);
    // Insert wrote 3, merge rewrote all 4.
    assert_eq!(c.stats().bytes_written, 7);
    c.check_invariants();
}

#[test]
fn merged_image_satisfies_both_constituents() {
    let mut c = cache(0.8, 100);
    c.request(&spec(&[1, 2, 3]));
    c.request(&spec(&[1, 2, 4]));
    assert!(matches!(c.request(&spec(&[1, 2, 3])), Outcome::Hit { .. }));
    assert!(matches!(c.request(&spec(&[1, 2, 4])), Outcome::Hit { .. }));
    assert!(matches!(c.request(&spec(&[3, 4])), Outcome::Hit { .. }));
    c.check_invariants();
}

#[test]
fn alpha_zero_never_merges() {
    let mut c = cache(0.0, 1000);
    c.request(&spec(&[1, 2, 3]));
    let out = c.request(&spec(&[1, 2, 4]));
    assert!(matches!(out, Outcome::Inserted { .. }));
    assert_eq!(c.len(), 2);
    assert_eq!(c.stats().merges, 0);
    c.check_invariants();
}

#[test]
fn far_request_inserts_despite_high_alpha() {
    let mut c = cache(0.6, 1000);
    c.request(&spec(&[1, 2, 3]));
    // d({1,2,3},{4,5,6}) = 1.0 ≥ 0.6 → no merge.
    let out = c.request(&spec(&[4, 5, 6]));
    assert!(matches!(out, Outcome::Inserted { .. }));
    assert_eq!(c.len(), 2);
    c.check_invariants();
}

#[test]
fn alpha_one_merges_any_overlap() {
    let mut c = cache(1.0, 1000);
    c.request(&spec(&[1, 2, 3, 4, 5, 6, 7, 8, 9]));
    // Distance 9/10 = 0.9 < 1.0 → merged.
    let out = c.request(&spec(&[9, 100]));
    assert!(matches!(out, Outcome::Merged { .. }));
    // Fully disjoint still inserts (d = 1.0 is not < 1.0).
    let out = c.request(&spec(&[500]));
    assert!(matches!(out, Outcome::Inserted { .. }));
    c.check_invariants();
}

#[test]
fn nearest_first_picks_closest_candidate() {
    let mut c = cache(0.99, 10_000);
    c.request(&spec(&[1, 2, 3, 4])); // img A
    c.request(&spec(&[100, 101, 102, 103])); // img B, disjoint from A
    assert_eq!(c.len(), 2);
    // Request close to A (d = 2/5 = 0.4) and sharing one package
    // with B (d = 6/7 ≈ 0.857): both are candidates under α = 0.99,
    // nearest-first must pick A.
    let out = c.request(&spec(&[1, 2, 3, 100]));
    match out {
        Outcome::Merged { distance, .. } => assert!((distance - 0.4).abs() < 1e-9),
        other => panic!("expected merge, got {other:?}"),
    }
    // A absorbed it: contains 100 now, but not B's 101.
    let a = c.images().find(|i| i.spec.contains(PackageId(1))).unwrap();
    assert!(a.spec.contains(PackageId(100)));
    assert!(!a.spec.contains(PackageId(101)));
    c.check_invariants();
}

#[test]
fn lru_eviction_under_pressure() {
    let mut c = cache(0.0, 6);
    c.request(&spec(&[1, 2, 3])); // img A, 3 bytes
    c.request(&spec(&[4, 5, 6])); // img B, 3 bytes — total 6, at limit
    c.request(&spec(&[7, 8, 9])); // img C → must evict A (LRU)
    assert_eq!(c.len(), 2);
    assert_eq!(c.stats().deletes, 1);
    // A is gone: requesting it reinserts (and evicts B).
    let out = c.request(&spec(&[1, 2, 3]));
    assert!(matches!(out, Outcome::Inserted { .. }));
    c.check_invariants();
}

#[test]
fn touching_image_protects_it_from_lru() {
    let mut c = cache(0.0, 6);
    c.request(&spec(&[1, 2, 3])); // A
    c.request(&spec(&[4, 5, 6])); // B
    c.request(&spec(&[1, 2, 3])); // hit A → A newer than B
    c.request(&spec(&[7, 8, 9])); // evicts B, not A
    assert!(matches!(c.request(&spec(&[1, 2, 3])), Outcome::Hit { .. }));
    c.check_invariants();
}

#[test]
fn gdsf_eviction_is_selectable_end_to_end() {
    let cfg = CacheConfig {
        alpha: 0.0,
        limit_bytes: 6,
        eviction: EvictionPolicy::Gdsf,
        ..CacheConfig::default()
    };
    let mut c = ImageCache::new(cfg, Arc::new(UniformSizes::new(1)));
    c.request(&spec(&[1, 2, 3])); // A: H = 1/3, older
    c.request(&spec(&[4, 5, 6])); // B: H = 1/3
    c.request(&spec(&[7, 8, 9])); // over limit → A evicted (tie → older)
    assert_eq!(c.stats().deletes, 1);
    assert!(matches!(c.request(&spec(&[4, 5, 6])), Outcome::Hit { .. }));
    c.check_invariants();
}

#[test]
fn gdsf_prefers_evicting_large_low_frequency_images() {
    let cfg = CacheConfig {
        alpha: 0.0,
        limit_bytes: 12,
        eviction: EvictionPolicy::Gdsf,
        ..CacheConfig::default()
    };
    let mut c = ImageCache::new(cfg, Arc::new(UniformSizes::new(1)));
    c.request(&spec(&(100..110).collect::<Vec<u32>>())); // big: H = 1/10
    c.request(&spec(&[1, 2])); // small, then hit twice → H = 3/2
    c.request(&spec(&[1, 2]));
    c.request(&spec(&[1, 2]));
    c.request(&spec(&[3, 4])); // 14 bytes total → evict the big one
    assert_eq!(c.stats().deletes, 1);
    assert!(
        matches!(c.request(&spec(&[1, 2])), Outcome::Hit { .. }),
        "dense small image must survive"
    );
    c.check_invariants();
}

#[test]
fn oversized_single_image_is_kept() {
    let mut c = cache(0.0, 2);
    let out = c.request(&spec(&[1, 2, 3, 4, 5]));
    assert!(matches!(out, Outcome::Inserted { .. }));
    assert_eq!(c.len(), 1, "the only image serving the job must survive");
    assert!(c.stats().total_bytes > c.config().limit_bytes);
    c.check_invariants();
}

#[test]
fn unique_vs_total_bytes_tracks_duplication() {
    let mut c = cache(0.0, 1000);
    c.request(&spec(&[1, 2, 3]));
    c.request(&spec(&[2, 3, 4]));
    let s = c.stats();
    assert_eq!(s.total_bytes, 6, "two 3-package images");
    assert_eq!(s.unique_bytes, 4, "packages 1..=4 once each");
    assert!((s.cache_efficiency_pct() - 66.6667).abs() < 0.01);
    c.check_invariants();
}

#[test]
fn container_efficiency_degrades_with_merging() {
    let mut c = cache(1.0, 1000);
    c.request(&spec(&[1, 2, 3, 4, 5, 6, 7, 8, 9, 10]));
    // This tiny request is served by the big merged image.
    c.request(&spec(&[1, 11]));
    let eff = c.container_efficiency_pct();
    assert!(
        eff < 100.0,
        "merging must cost container efficiency, got {eff}"
    );
    c.check_invariants();
}

#[test]
fn requested_bytes_independent_of_alpha() {
    let reqs: Vec<Spec> = vec![spec(&[1, 2, 3]), spec(&[1, 2, 4]), spec(&[5, 6, 7])];
    let mut totals = Vec::new();
    for alpha in [0.0, 0.5, 1.0] {
        let mut c = cache(alpha, 1000);
        for r in &reqs {
            c.request(r);
        }
        c.check_invariants();
        totals.push(c.stats().bytes_requested);
    }
    assert!(totals.windows(2).all(|w| w[0] == w[1]), "{totals:?}");
}

#[test]
fn conflicting_merge_is_skipped() {
    // Packages 0 and 1 are two versions of the same name.
    let names = vec![7, 7, 8, 9, 10];
    let cfg = CacheConfig {
        alpha: 1.0,
        limit_bytes: 1000,
        ..CacheConfig::default()
    };
    let mut c = ImageCache::with_conflicts(
        cfg,
        Arc::new(UniformSizes::new(1)),
        Arc::new(SingleVersionPerName::new(names)),
    );
    c.request(&spec(&[0, 2]));
    // Overlaps via pkg 2, but pkg 1 conflicts with cached pkg 0.
    let out = c.request(&spec(&[1, 2]));
    assert!(
        matches!(out, Outcome::Inserted { .. }),
        "conflict must block merge"
    );
    assert_eq!(c.len(), 2);
    c.check_invariants();
}

#[test]
fn sized_packages_account_correctly() {
    let sizes = TableSizes::new(vec![10, 20, 30, 40]);
    let cfg = CacheConfig {
        alpha: 0.9,
        limit_bytes: 1000,
        ..CacheConfig::default()
    };
    let mut c = ImageCache::new(cfg, Arc::new(sizes));
    c.request(&spec(&[0, 1])); // 30 bytes
    c.request(&spec(&[0, 2])); // d = 2/3 < 0.9 → merge {0,1,2} = 60 bytes
    let s = c.stats();
    assert_eq!(s.total_bytes, 60);
    assert_eq!(s.unique_bytes, 60);
    assert_eq!(s.bytes_written, 30 + 60);
    c.check_invariants();
}

#[test]
fn minhash_lsh_strategy_still_merges_near_pairs() {
    let cfg = CacheConfig {
        alpha: 0.8,
        limit_bytes: u64::MAX,
        candidates: CandidateStrategy::MinHashLsh { bands: 32, rows: 4 },
        ..CacheConfig::default()
    };
    let mut c = ImageCache::new(cfg, Arc::new(UniformSizes::new(1)));
    let base: Vec<u32> = (0..100).collect();
    c.request(&spec(&base));
    let mut close = base.clone();
    close[0] = 1000; // 99/101 similar
    let out = c.request(&spec(&close));
    assert!(
        matches!(out, Outcome::Merged { .. }),
        "LSH must find near-duplicates"
    );
    c.check_invariants();
}

#[test]
fn minhash_lsh_never_merges_what_exact_rejects() {
    let cfg = CacheConfig {
        alpha: 0.3,
        limit_bytes: u64::MAX,
        candidates: CandidateStrategy::MinHashLsh { bands: 32, rows: 4 },
        ..CacheConfig::default()
    };
    let mut c = ImageCache::new(cfg, Arc::new(UniformSizes::new(1)));
    c.request(&spec(&[1, 2, 3, 4]));
    // Exact distance 0.6 ≥ 0.3 → must insert even if LSH proposes it.
    let out = c.request(&spec(&[1, 2, 9, 10]));
    assert!(matches!(out, Outcome::Inserted { .. }));
    c.check_invariants();
}

#[test]
fn remove_image_administratively() {
    let mut c = cache(0.0, 1000);
    let out = c.request(&spec(&[1, 2]));
    assert!(c.remove_image(out.image()));
    assert!(!c.remove_image(out.image()));
    assert!(c.is_empty());
    assert_eq!(c.stats().total_bytes, 0);
    assert_eq!(c.stats().unique_bytes, 0);
    c.check_invariants();
}

#[test]
fn manual_split_restores_constituents() {
    let mut c = cache(1.0, 1000);
    let a = spec(&[1, 2, 3]);
    let b = spec(&[1, 2, 4]);
    let merged = c.request(&a).image();
    assert_eq!(c.request(&b).image(), merged);
    let pieces = c.split_image(merged);
    assert_eq!(pieces.len(), 2);
    assert!(c.get(merged).is_none(), "split image is gone");
    assert_eq!(c.len(), 2);
    // Each constituent is exactly servable again.
    assert!(matches!(c.request(&a), Outcome::Hit { image_bytes: 3, .. }));
    assert!(matches!(c.request(&b), Outcome::Hit { image_bytes: 3, .. }));
    assert_eq!(c.stats().splits, 1);
    c.check_invariants();
}

#[test]
fn split_of_single_constituent_is_noop() {
    let mut c = cache(0.0, 1000);
    let id = c.request(&spec(&[1, 2])).image();
    assert!(c.split_image(id).is_empty());
    assert!(c.get(id).is_some());
    assert_eq!(c.stats().splits, 0);
    c.check_invariants();
}

#[test]
fn split_of_unknown_image_is_noop() {
    let mut c = cache(0.0, 1000);
    assert!(c.split_image(ImageId(99)).is_empty());
    c.check_invariants();
}

#[test]
fn auto_split_triggers_after_threshold() {
    let cfg = CacheConfig {
        alpha: 1.0,
        limit_bytes: 10_000,
        split_threshold: Some(2),
        ..CacheConfig::default()
    };
    let mut c = ImageCache::new(cfg, Arc::new(UniformSizes::new(1)));
    c.request(&spec(&[1, 2, 3]));
    c.request(&spec(&[1, 2, 4])); // merge 1
    c.request(&spec(&[1, 2, 5])); // merge 2 → flags pending split
    assert_eq!(c.len(), 1, "split is lazy; not yet applied");
    // The next request triggers the split first.
    c.request(&spec(&[100, 101]));
    assert_eq!(c.stats().splits, 1);
    assert_eq!(c.len(), 4, "3 constituents + the new insert");
    c.check_invariants();
}

#[test]
fn split_accounts_written_bytes() {
    let mut c = cache(1.0, 1000);
    let id = c.request(&spec(&[1, 2, 3])).image();
    c.request(&spec(&[1, 2, 4]));
    let before = c.stats().bytes_written;
    c.split_image(id);
    // Two constituents of 3 packages each rewritten.
    assert_eq!(c.stats().bytes_written, before + 6);
    c.check_invariants();
}

#[test]
fn split_pieces_respect_cache_limit() {
    // Union fits, but pieces duplicate shared packages and overflow.
    let mut c = cache(1.0, 4);
    let id = c.request(&spec(&[1, 2, 3])).image();
    c.request(&spec(&[1, 2, 4])); // merged image = {1,2,3,4} = limit
    let pieces = c.split_image(id);
    assert_eq!(pieces.len(), 2);
    // 2 pieces × 3 bytes = 6 > 4 → one piece evicted.
    assert_eq!(c.len(), 1);
    assert!(c.stats().total_bytes <= 4);
    c.check_invariants();
}

#[test]
fn event_sink_sees_all_operations() {
    use crate::events::{CacheEvent, EventSink};
    use parking_lot::Mutex;

    // A sink that shares its buffer with the test, so no downcast of
    // the boxed `dyn EventSink` is ever needed.
    struct Capture(Arc<Mutex<Vec<CacheEvent>>>);
    impl EventSink for Capture {
        fn on_event(&mut self, event: &CacheEvent) {
            self.0.lock().push(*event);
        }
    }

    let events = Arc::new(Mutex::new(Vec::new()));
    let mut c = cache(0.8, 3);
    c.set_sink(Box::new(Capture(Arc::clone(&events))));
    c.request(&spec(&[1, 2, 3])); // insert
    c.request(&spec(&[1, 2, 3])); // hit
    c.request(&spec(&[10, 11, 12])); // insert + evict (over 3-byte limit)
    c.check_invariants();
    drop(c.take_sink());
    let kinds: Vec<&str> = events.lock().iter().map(|e| e.kind()).collect();
    assert_eq!(kinds, vec!["insert", "hit", "insert", "evict"]);
}

#[test]
#[should_panic(expected = "alpha must be in [0,1]")]
fn invalid_alpha_rejected() {
    let cfg = CacheConfig {
        alpha: 1.5,
        ..CacheConfig::default()
    };
    let _ = ImageCache::new(cfg, Arc::new(UniformSizes::new(1)));
}

#[test]
fn empty_spec_request_is_harmless() {
    let mut c = cache(0.8, 10);
    let out = c.request(&Spec::empty());
    assert!(matches!(out, Outcome::Inserted { image_bytes: 0, .. }));
    // And now everything hits it? No: empty ⊆ anything, so the empty
    // image satisfies only empty requests; others miss.
    let out2 = c.request(&Spec::empty());
    assert!(matches!(out2, Outcome::Hit { .. }));
    c.check_invariants();
}

#[test]
fn plan_predicts_request_decisions() {
    let mut c = cache(0.8, 100);
    assert_eq!(c.plan(&spec(&[1, 2, 3])).op, PlannedOp::Insert);
    let id = c.request(&spec(&[1, 2, 3])).image();

    assert_eq!(c.plan(&spec(&[1, 2])).op, PlannedOp::Hit { image: id });
    match c.plan(&spec(&[1, 2, 4])).op {
        PlannedOp::Merge { image, distance } => {
            assert_eq!(image, id);
            assert!((distance - 0.5).abs() < 1e-12);
        }
        other => panic!("expected merge plan, got {other:?}"),
    }
    assert_eq!(c.plan(&spec(&[7, 8, 9])).op, PlannedOp::Insert);

    // plan() mutated nothing, and reports the request's byte demand.
    assert_eq!(c.stats().requests, 1);
    assert_eq!(c.plan(&spec(&[1, 2, 4])).requested_bytes, 3);
    // And the real request agrees with the plan.
    assert!(matches!(
        c.request(&spec(&[1, 2, 4])),
        Outcome::Merged { .. }
    ));
    c.check_invariants();
}

#[test]
fn apply_executes_the_given_plan_verbatim() {
    let mut c = cache(0.8, 100);
    c.request(&spec(&[1, 2, 3]));
    // Hold the plan, then apply it explicitly: same result as request().
    let plan = c.plan(&spec(&[1, 2, 4]));
    assert!(matches!(plan.op, PlannedOp::Merge { .. }));
    let out = c.apply(&spec(&[1, 2, 4]), &plan);
    assert!(matches!(out, Outcome::Merged { .. }));
    assert_eq!(c.stats().requests, 2);
    c.check_invariants();
}

#[test]
fn peek_victim_matches_eviction_order() {
    let mut c = cache(0.0, 1000);
    c.request(&spec(&[1, 2, 3])); // oldest
    c.request(&spec(&[4, 5, 6]));
    let oldest = c.images().min_by_key(|i| (i.last_used, i.id)).unwrap().id;
    assert_eq!(c.peek_victim(), Some(oldest));
    c.check_invariants();
}

#[test]
fn insert_fresh_bypasses_hit_and_merge() {
    let mut c = cache(0.8, 100);
    let first = c.request(&spec(&[1, 2, 3])).image();

    // A spec that would HIT still gets its own fresh image.
    let out = c.insert_fresh(&spec(&[1, 2, 3]));
    match out {
        Outcome::Inserted { image, image_bytes } => {
            assert_ne!(image, first);
            assert_eq!(image_bytes, 3);
        }
        other => panic!("expected insert, got {other:?}"),
    }
    // A spec that would MERGE also inserts; the shared image's spec
    // is left untouched.
    assert!(matches!(
        c.plan(&spec(&[1, 2, 4])).op,
        PlannedOp::Merge { .. }
    ));
    assert!(matches!(
        c.insert_fresh(&spec(&[1, 2, 4])),
        Outcome::Inserted { .. }
    ));
    assert!(!c.get(first).unwrap().spec.contains(PackageId(4)));

    let s = c.stats();
    assert_eq!((s.requests, s.inserts, s.hits, s.merges), (3, 3, 0, 0));
    assert_eq!(s.bytes_requested, 9);
    c.check_invariants();
}

#[test]
fn insert_fresh_respects_byte_limit() {
    let mut c = cache(0.0, 6);
    c.request(&spec(&[1, 2, 3]));
    c.request(&spec(&[4, 5, 6]));
    c.insert_fresh(&spec(&[1, 2, 3])); // duplicate image → over limit
    assert_eq!(c.stats().deletes, 1, "eviction still applies");
    assert!(c.stats().total_bytes <= 6);
    c.check_invariants();
}

#[test]
fn cache_policy_trait_drives_the_engine() {
    use crate::policy::{BuildPlan, CachePolicy, ServedOp};
    let mut boxed: Box<dyn CachePolicy> = Box::new(cache(0.8, 100));
    assert_eq!(boxed.name(), "landlord");
    assert!(matches!(
        boxed.plan_build(&spec(&[1, 2, 3])),
        BuildPlan::Insert { bytes: 3 }
    ));
    let served = boxed.request(&spec(&[1, 2, 3]));
    assert_eq!(served.op, ServedOp::Inserted);
    assert_eq!((served.image_bytes, served.revision), (3, 0));
    // A merge bumps the serving image's revision.
    assert!(matches!(
        boxed.plan_build(&spec(&[1, 2, 4])),
        BuildPlan::Rewrite { bytes: 4 }
    ));
    let served = boxed.request(&spec(&[1, 2, 4]));
    assert_eq!(served.op, ServedOp::Merged);
    assert_eq!(served.revision, 1);
    // And a hit plans as free.
    assert!(matches!(boxed.plan_build(&spec(&[1, 2])), BuildPlan::Hit));
    let served = boxed.request(&spec(&[1, 2]));
    assert_eq!(served.op, ServedOp::Hit);
    assert_eq!(boxed.stats().requests, 3);
    assert_eq!(boxed.len(), 1);
    assert_eq!(boxed.limit_bytes(), 100);
    boxed.check_invariants();
}
