//! The candidate-enumeration seam: how merge candidates are found
//! before the exact distance check, behind the [`CandidateIndex`]
//! trait.
//!
//! [`ExactScan`] considers every cached image (the paper's simulated
//! configuration). [`MinHashLshIndex`] keeps a MinHash signature per
//! image in a banded LSH table and proposes only probable near
//! neighbours — the scaling trade the paper describes for very large
//! specification collections. Either way the engine confirms every
//! proposal with the exact distance, so the index can only *miss*
//! merges, never create wrong ones.

use crate::image::Image;
use crate::minhash::{LshIndex, LshShape, MinHasher, Signature};
use crate::policy::CandidateStrategy;
use crate::spec::Spec;
use crate::util::FxHashMap;

/// Enumerates merge candidates for a request spec. The engine notifies
/// the index of every image lifecycle event so it can mirror the cache
/// contents.
pub trait CandidateIndex: Send {
    /// The strategy this index implements.
    fn strategy(&self) -> CandidateStrategy;
    /// A new image with this spec entered the cache.
    fn on_insert(&mut self, id: u64, spec: &Spec);
    /// Image `id` absorbed `request` (its spec grew by union).
    fn on_merge(&mut self, id: u64, request: &Spec);
    /// Image `id` left the cache.
    fn on_remove(&mut self, id: u64);
    /// Candidate image ids for `spec`, or `None` meaning "consider
    /// every cached image" (no index maintained).
    fn candidates(&self, spec: &Spec) -> Option<Vec<u64>>;
    /// Verify the index against the authoritative image map; panics on
    /// inconsistency.
    fn check(&self, images: &FxHashMap<u64, Image>);
}

/// No index at all: every cached image is a candidate.
pub(crate) struct ExactScan;

impl CandidateIndex for ExactScan {
    fn strategy(&self) -> CandidateStrategy {
        CandidateStrategy::ExactScan
    }
    fn on_insert(&mut self, _id: u64, _spec: &Spec) {}
    fn on_merge(&mut self, _id: u64, _request: &Spec) {}
    fn on_remove(&mut self, _id: u64) {}
    fn candidates(&self, _spec: &Spec) -> Option<Vec<u64>> {
        None
    }
    fn check(&self, _images: &FxHashMap<u64, Image>) {}
}

/// MinHash signatures in a banded LSH table.
pub(crate) struct MinHashLshIndex {
    strategy: CandidateStrategy,
    minhash: MinHasher,
    lsh: LshIndex,
    signatures: FxHashMap<u64, Signature>,
}

impl MinHashLshIndex {
    pub(crate) fn new(bands: usize, rows: usize, seed: u64) -> Self {
        MinHashLshIndex {
            strategy: CandidateStrategy::MinHashLsh { bands, rows },
            minhash: MinHasher::new(bands * rows, seed),
            lsh: LshIndex::new(LshShape { bands, rows }),
            signatures: FxHashMap::default(),
        }
    }
}

impl CandidateIndex for MinHashLshIndex {
    fn strategy(&self) -> CandidateStrategy {
        self.strategy
    }

    fn on_insert(&mut self, id: u64, spec: &Spec) {
        let sig = self.minhash.signature(spec);
        self.lsh.insert(id, &sig);
        self.signatures.insert(id, sig);
    }

    fn on_merge(&mut self, id: u64, request: &Spec) {
        // Signature union is exact for MinHash: min over the united
        // member set equals the elementwise min of the two signatures,
        // so merged images never need re-hashing.
        let req_sig = self.minhash.signature(request);
        let merged = match self.signatures.get(&id) {
            Some(old) => old.union(&req_sig),
            None => req_sig,
        };
        self.lsh.insert(id, &merged);
        self.signatures.insert(id, merged);
    }

    fn on_remove(&mut self, id: u64) {
        self.lsh.remove(id);
        self.signatures.remove(&id);
    }

    fn candidates(&self, spec: &Spec) -> Option<Vec<u64>> {
        let sig = self.minhash.signature(spec);
        Some(self.lsh.candidates(&sig))
    }

    fn check(&self, images: &FxHashMap<u64, Image>) {
        assert_eq!(self.lsh.len(), images.len(), "lsh key count out of sync");
        assert_eq!(
            self.signatures.len(),
            images.len(),
            "signature count out of sync"
        );
        for img in images.values() {
            assert!(
                self.lsh.contains(img.id.0),
                "image {} missing from lsh",
                img.id
            );
            let stored = self.signatures.get(&img.id.0);
            let fresh = self.minhash.signature(&img.spec);
            assert_eq!(
                stored,
                Some(&fresh),
                "stale or missing signature for image {}",
                img.id
            );
            assert!(
                self.lsh.candidates(&fresh).contains(&img.id.0),
                "image {} is not its own lsh candidate",
                img.id
            );
        }
    }
}

/// Build the candidate index for a strategy.
pub(crate) fn make_candidate_index(
    strategy: CandidateStrategy,
    minhash_seed: u64,
) -> Box<dyn CandidateIndex> {
    match strategy {
        CandidateStrategy::ExactScan => Box::new(ExactScan),
        CandidateStrategy::MinHashLsh { bands, rows } => {
            Box::new(MinHashLshIndex::new(bands, rows, minhash_seed))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::PackageId;

    fn spec(ids: &[u32]) -> Spec {
        Spec::from_ids(ids.iter().map(|&i| PackageId(i)))
    }

    #[test]
    fn exact_scan_scans_everything() {
        let idx = ExactScan;
        assert_eq!(idx.candidates(&spec(&[1, 2])), None);
    }

    #[test]
    fn lsh_finds_near_duplicates_and_forgets_removed_keys() {
        let mut idx = MinHashLshIndex::new(32, 4, 42);
        let base: Vec<u32> = (0..100).collect();
        idx.on_insert(7, &spec(&base));
        let mut close = base.clone();
        close[0] = 1000;
        let cands = idx.candidates(&spec(&close)).unwrap();
        assert!(cands.contains(&7), "99% similar spec must be proposed");
        idx.on_remove(7);
        assert!(!idx.candidates(&spec(&close)).unwrap().contains(&7));
    }

    #[test]
    fn merge_unions_signatures() {
        let mut idx = MinHashLshIndex::new(32, 4, 42);
        let a: Vec<u32> = (0..60).collect();
        idx.on_insert(1, &spec(&a));
        let b: Vec<u32> = (40..100).collect();
        idx.on_merge(1, &spec(&b));
        // The merged signature equals a fresh hash of the union.
        let union: Vec<u32> = (0..100).collect();
        let fresh = idx.minhash.signature(&spec(&union));
        assert_eq!(idx.signatures.get(&1), Some(&fresh));
    }
}
