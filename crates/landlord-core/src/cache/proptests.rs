use super::*;
use crate::conflict::NoConflicts;
use crate::policy::{CandidateStrategy, DistanceMetric, EvictionPolicy, MergeOrder};
use crate::sizes::TableSizes;
use proptest::prelude::*;

const UNIVERSE: u32 = 60;

fn arb_stream() -> impl Strategy<Value = Vec<Spec>> {
    proptest::collection::vec(
        proptest::collection::vec(0..UNIVERSE, 1..12)
            .prop_map(|v| Spec::from_ids(v.into_iter().map(PackageId))),
        1..60,
    )
}

fn arb_config() -> impl Strategy<Value = CacheConfig> {
    (
        0.0f64..=1.0,
        1u64..200,
        prop_oneof![
            Just(EvictionPolicy::Lru),
            Just(EvictionPolicy::Lfu),
            Just(EvictionPolicy::LargestFirst),
            Just(EvictionPolicy::CostDensity),
            Just(EvictionPolicy::Gdsf),
        ],
        prop_oneof![
            Just(MergeOrder::NearestFirst),
            Just(MergeOrder::ArrivalOrder),
            Just(MergeOrder::LargestFirst),
            Just(MergeOrder::SmallestFirst),
        ],
        prop_oneof![
            Just(CandidateStrategy::ExactScan),
            Just(CandidateStrategy::MinHashLsh { bands: 8, rows: 4 }),
        ],
    )
        .prop_map(
            |(alpha, limit, eviction, merge_order, candidates)| CacheConfig {
                alpha,
                limit_bytes: limit,
                eviction,
                merge_order,
                candidates,
                minhash_seed: 42,
                // Exercise the byte-weighted metric in half the cases
                // and auto-splitting in a third.
                metric: if limit % 2 == 0 {
                    DistanceMetric::Bytes
                } else {
                    DistanceMetric::PackageCount
                },
                split_threshold: if limit % 3 == 0 { Some(3) } else { None },
            },
        )
}

fn size_table() -> Vec<u64> {
    (0..UNIVERSE as u64).map(|i| 1 + i % 7).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn invariants_hold_under_arbitrary_streams(
        cfg in arb_config(),
        stream in arb_stream(),
    ) {
        let mut cache = ImageCache::new(cfg, Arc::new(TableSizes::new(size_table())));
        for s in &stream {
            let out = cache.request(s);
            // Whatever happened, the serving image satisfies the spec.
            let img = cache.get(out.image()).expect("serving image cached");
            prop_assert!(s.is_subset(&img.spec));
        }
        cache.check_invariants();
        let st = cache.stats();
        prop_assert_eq!(st.requests as usize, stream.len());
        prop_assert!(st.bytes_written >= st.total_bytes,
            "everything cached was written at least once");
    }

    /// The refactor-parity property: `request()` is *defined* as
    /// settle → plan → apply, and driving the pipeline by hand must be
    /// indistinguishable from calling `request()` — same outcomes, same
    /// counters, same images — under every config knob.
    #[test]
    fn apply_of_plan_equals_request(
        cfg in arb_config(),
        stream in arb_stream(),
    ) {
        let sizes = Arc::new(TableSizes::new(size_table()));
        let mut via_request = ImageCache::new(cfg, Arc::clone(&sizes) as Arc<dyn crate::sizes::SizeModel>);
        let mut via_pipeline = ImageCache::new(cfg, sizes);
        for s in &stream {
            let a = via_request.request(s);
            via_pipeline.settle();
            let plan = via_pipeline.plan(s);
            let b = via_pipeline.apply(s, &plan);
            prop_assert_eq!(a, b, "outcome diverged");
        }
        prop_assert_eq!(via_request.stats(), via_pipeline.stats());
        prop_assert_eq!(via_request.len(), via_pipeline.len());
        prop_assert!(
            (via_request.container_efficiency_pct()
                - via_pipeline.container_efficiency_pct()).abs() < 1e-12
        );
        via_request.check_invariants();
        via_pipeline.check_invariants();
    }

    /// The slice-based planner used by external stores agrees with the
    /// engine's planner, decision for decision (exact-scan configs).
    #[test]
    fn plan_over_matches_engine_plan(
        cfg in arb_config(),
        stream in arb_stream(),
    ) {
        let cfg = CacheConfig { candidates: CandidateStrategy::ExactScan, ..cfg };
        let sizes = Arc::new(TableSizes::new(size_table()));
        let mut cache = ImageCache::new(cfg, Arc::clone(&sizes) as Arc<dyn crate::sizes::SizeModel>);
        for s in &stream {
            cache.settle();
            {
                let entries: Vec<(u64, &Spec, u64)> = cache
                    .images()
                    .map(|img| (img.id.0, &img.spec, img.bytes))
                    .collect();
                let free = plan_over(
                    &entries,
                    s,
                    cfg.alpha,
                    cfg.merge_order,
                    cfg.metric,
                    sizes.as_ref(),
                    &NoConflicts,
                );
                prop_assert_eq!(cache.plan(s).op, free);
            }
            cache.request(s);
        }
        cache.check_invariants();
    }

    #[test]
    fn alpha_zero_degenerates_to_plain_lru(stream in arb_stream()) {
        let cfg = CacheConfig { alpha: 0.0, limit_bytes: 64, ..CacheConfig::default() };
        let sizes: Vec<u64> = vec![1; UNIVERSE as usize];
        let mut cache = ImageCache::new(cfg, Arc::new(TableSizes::new(sizes)));
        let mut any_subset_hit = false;
        for s in &stream {
            let out = cache.request(s);
            if matches!(out, Outcome::Hit { .. }) && out.image_bytes() != cache.sizes.spec_bytes(s) {
                any_subset_hit = true;
            }
        }
        prop_assert_eq!(cache.stats().merges, 0);
        cache.check_invariants();
        // Without merging, every created image is exactly what some
        // job asked for; container efficiency only dips below 100%
        // when a request hits a strict-superset image.
        if !any_subset_hit {
            prop_assert!((cache.container_efficiency_pct() - 100.0).abs() < 1e-9);
        }
    }

    #[test]
    fn hits_never_write(stream in arb_stream()) {
        let cfg = CacheConfig { alpha: 0.7, limit_bytes: u64::MAX, ..CacheConfig::default() };
        let sizes: Vec<u64> = vec![2; UNIVERSE as usize];
        let mut cache = ImageCache::new(cfg, Arc::new(TableSizes::new(sizes)));
        let mut last_written = 0;
        for s in &stream {
            let out = cache.request(s);
            let written = cache.stats().bytes_written;
            if matches!(out, Outcome::Hit { .. }) {
                prop_assert_eq!(written, last_written, "hit must not write");
            } else {
                prop_assert!(written > last_written || s.is_empty());
            }
            last_written = written;
        }
        cache.check_invariants();
    }
}
