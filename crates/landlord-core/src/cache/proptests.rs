use super::*;
use crate::conflict::NoConflicts;
use crate::policy::{CandidateStrategy, DistanceMetric, EvictionPolicy, MergeOrder};
use crate::sizes::TableSizes;
use proptest::prelude::*;

const UNIVERSE: u32 = 60;

fn arb_stream() -> impl Strategy<Value = Vec<Spec>> {
    proptest::collection::vec(
        proptest::collection::vec(0..UNIVERSE, 1..12)
            .prop_map(|v| Spec::from_ids(v.into_iter().map(PackageId))),
        1..60,
    )
}

fn arb_config() -> impl Strategy<Value = CacheConfig> {
    (
        0.0f64..=1.0,
        1u64..200,
        prop_oneof![
            Just(EvictionPolicy::Lru),
            Just(EvictionPolicy::Lfu),
            Just(EvictionPolicy::LargestFirst),
            Just(EvictionPolicy::CostDensity),
            Just(EvictionPolicy::Gdsf),
            Just(EvictionPolicy::S3Fifo),
            Just(EvictionPolicy::LhdSample),
        ],
        prop_oneof![
            Just(MergeOrder::NearestFirst),
            Just(MergeOrder::ArrivalOrder),
            Just(MergeOrder::LargestFirst),
            Just(MergeOrder::SmallestFirst),
        ],
        prop_oneof![
            Just(CandidateStrategy::ExactScan),
            Just(CandidateStrategy::MinHashLsh { bands: 8, rows: 4 }),
        ],
    )
        .prop_map(
            |(alpha, limit, eviction, merge_order, candidates)| CacheConfig {
                alpha,
                limit_bytes: limit,
                eviction,
                merge_order,
                candidates,
                minhash_seed: 42,
                eviction_seed: limit, // arbitrary but shrinkable

                // Exercise the byte-weighted metric in half the cases
                // and auto-splitting in a third.
                metric: if limit % 2 == 0 {
                    DistanceMetric::Bytes
                } else {
                    DistanceMetric::PackageCount
                },
                split_threshold: if limit % 3 == 0 { Some(3) } else { None },
            },
        )
}

fn size_table() -> Vec<u64> {
    (0..UNIVERSE as u64).map(|i| 1 + i % 7).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn invariants_hold_under_arbitrary_streams(
        cfg in arb_config(),
        stream in arb_stream(),
    ) {
        let mut cache = ImageCache::new(cfg, Arc::new(TableSizes::new(size_table())));
        for s in &stream {
            let out = cache.request(s);
            // Whatever happened, the serving image satisfies the spec.
            let img = cache.get(out.image()).expect("serving image cached");
            prop_assert!(s.is_subset(&img.spec));
        }
        cache.check_invariants();
        let st = cache.stats();
        prop_assert_eq!(st.requests as usize, stream.len());
        prop_assert!(st.bytes_written >= st.total_bytes,
            "everything cached was written at least once");
    }

    /// The refactor-parity property: `request()` is *defined* as
    /// settle → plan → apply, and driving the pipeline by hand must be
    /// indistinguishable from calling `request()` — same outcomes, same
    /// counters, same images — under every config knob.
    #[test]
    fn apply_of_plan_equals_request(
        cfg in arb_config(),
        stream in arb_stream(),
    ) {
        let sizes = Arc::new(TableSizes::new(size_table()));
        let mut via_request = ImageCache::new(cfg, Arc::clone(&sizes) as Arc<dyn crate::sizes::SizeModel>);
        let mut via_pipeline = ImageCache::new(cfg, sizes);
        for s in &stream {
            let a = via_request.request(s);
            via_pipeline.settle();
            let plan = via_pipeline.plan(s);
            let b = via_pipeline.apply(s, &plan);
            prop_assert_eq!(a, b, "outcome diverged");
        }
        prop_assert_eq!(via_request.stats(), via_pipeline.stats());
        prop_assert_eq!(via_request.len(), via_pipeline.len());
        prop_assert!(
            (via_request.container_efficiency_pct()
                - via_pipeline.container_efficiency_pct()).abs() < 1e-12
        );
        via_request.check_invariants();
        via_pipeline.check_invariants();
    }

    /// The slice-based planner used by external stores agrees with the
    /// engine's planner, decision for decision (exact-scan configs).
    #[test]
    fn plan_over_matches_engine_plan(
        cfg in arb_config(),
        stream in arb_stream(),
    ) {
        let cfg = CacheConfig { candidates: CandidateStrategy::ExactScan, ..cfg };
        let sizes = Arc::new(TableSizes::new(size_table()));
        let mut cache = ImageCache::new(cfg, Arc::clone(&sizes) as Arc<dyn crate::sizes::SizeModel>);
        for s in &stream {
            cache.settle();
            {
                let entries: Vec<(u64, &Spec, u64)> = cache
                    .images()
                    .map(|img| (img.id.0, &img.spec, img.bytes))
                    .collect();
                let free = plan_over(
                    &entries,
                    s,
                    cfg.alpha,
                    cfg.merge_order,
                    cfg.metric,
                    sizes.as_ref(),
                    &NoConflicts,
                );
                prop_assert_eq!(cache.plan(s).op, free);
            }
            cache.request(s);
        }
        cache.check_invariants();
    }

    #[test]
    fn alpha_zero_degenerates_to_plain_lru(stream in arb_stream()) {
        let cfg = CacheConfig { alpha: 0.0, limit_bytes: 64, ..CacheConfig::default() };
        let sizes: Vec<u64> = vec![1; UNIVERSE as usize];
        let mut cache = ImageCache::new(cfg, Arc::new(TableSizes::new(sizes)));
        let mut any_subset_hit = false;
        for s in &stream {
            let out = cache.request(s);
            if matches!(out, Outcome::Hit { .. }) && out.image_bytes() != cache.sizes.spec_bytes(s) {
                any_subset_hit = true;
            }
        }
        prop_assert_eq!(cache.stats().merges, 0);
        cache.check_invariants();
        // Without merging, every created image is exactly what some
        // job asked for; container efficiency only dips below 100%
        // when a request hits a strict-superset image.
        if !any_subset_hit {
            prop_assert!((cache.container_efficiency_pct() - 100.0).abs() < 1e-9);
        }
    }

    /// Differential evictor test: drive every evictor (ordered-index,
    /// queue-rotating, sampled) through random insert/touch/remove/
    /// evict sequences. All seven must keep `check()` consistency at
    /// every step; the five legacy policies must additionally agree,
    /// victim for victim, with a naive O(n) `min_by_key` reference
    /// scan over stored keys — the pre-seam selection semantics.
    #[test]
    fn evictors_agree_with_naive_reference_scan(
        ops in proptest::collection::vec((0u8..4, 0u64..50, 1u64..60), 1..120),
    ) {
        for policy in EvictionPolicy::ALL {
            let cfg = CacheConfig {
                eviction: policy,
                limit_bytes: 500,
                eviction_seed: 9,
                ..CacheConfig::default()
            };
            let mut e = evictor::make_evictor(&cfg);
            let mut images: FxHashMap<u64, Image> = FxHashMap::default();
            // Reference model: stored (priority, last_used) per image
            // plus the GDSF inflation value, mirroring the stored-key
            // semantics of the pre-seam O(n) scans.
            let mut stored: FxHashMap<u64, (f64, u64)> = FxHashMap::default();
            let mut inflation = 0.0f64;
            let legacy = !matches!(
                policy,
                EvictionPolicy::S3Fifo | EvictionPolicy::LhdSample
            );
            let mut clock = 0u64;
            let mut next_id = 0u64;

            let key_of = |img: &Image, inflation: f64| -> (f64, u64) {
                match policy {
                    EvictionPolicy::Lru => (0.0, img.last_used),
                    EvictionPolicy::Lfu => (img.use_count as f64, img.last_used),
                    EvictionPolicy::LargestFirst => (-(img.bytes as f64), 0),
                    EvictionPolicy::CostDensity => (
                        img.use_count as f64 / img.bytes.max(1) as f64,
                        img.last_used,
                    ),
                    EvictionPolicy::Gdsf => (
                        inflation + img.use_count as f64 / img.bytes.max(1) as f64,
                        img.last_used,
                    ),
                    _ => (0.0, 0),
                }
            };

            for &(kind, pick, bytes) in &ops {
                clock += 1;
                match kind {
                    0 => {
                        // Insert a fresh image.
                        let id = next_id;
                        next_id += 1;
                        let img = Image::new(
                            ImageId(id),
                            Spec::from_ids([PackageId((id % 60) as u32)]),
                            bytes,
                            clock,
                        );
                        stored.insert(id, key_of(&img, inflation));
                        e.on_insert(&img);
                        images.insert(id, img);
                    }
                    1 if !images.is_empty() => {
                        // Touch a live image (hit semantics).
                        let ids: Vec<u64> = {
                            let mut v: Vec<u64> = images.keys().copied().collect();
                            v.sort_unstable();
                            v
                        };
                        let id = ids[(pick as usize) % ids.len()];
                        let img = images.get_mut(&id).expect("picked live id");
                        img.last_used = clock;
                        img.use_count += 1;
                        if pick % 4 == 0 {
                            img.bytes += 1; // merge grew the image
                        }
                        let snapshot = img.clone();
                        stored.insert(id, key_of(&snapshot, inflation));
                        e.on_touch(&snapshot);
                    }
                    2 if !images.is_empty() => {
                        // Administrative removal (split path): no
                        // note_eviction, straight detach.
                        let ids: Vec<u64> = {
                            let mut v: Vec<u64> = images.keys().copied().collect();
                            v.sort_unstable();
                            v
                        };
                        let id = ids[(pick as usize) % ids.len()];
                        let img = images.remove(&id).expect("picked live id");
                        stored.remove(&id);
                        e.on_remove(&img);
                    }
                    3 if !images.is_empty() => {
                        // Byte-limit eviction through the seam.
                        let peeked = e.peek_victim(None);
                        let victim = e.select_victim(None);
                        prop_assert_eq!(victim, peeked, "{:?}: peek must preview select", policy);
                        let victim = victim.expect("nonempty cache yields a victim");
                        if legacy {
                            let reference = images
                                .values()
                                .map(|img| {
                                    let &(pri, lu) = stored.get(&img.id.0).expect("stored key");
                                    ((evictor::OrdF64(pri), lu, img.id.0), img.id)
                                })
                                .min()
                                .map(|(_, id)| id);
                            prop_assert_eq!(
                                Some(victim), reference,
                                "{:?}: victim disagrees with naive scan", policy
                            );
                        }
                        prop_assert!(
                            images.contains_key(&victim.0),
                            "{:?}: selected victim {} is not live", policy, victim
                        );
                        if policy == EvictionPolicy::Gdsf {
                            let &(pri, _) = stored.get(&victim.0).expect("victim stored");
                            if pri > inflation {
                                inflation = pri;
                            }
                        }
                        let img = images.remove(&victim.0).expect("victim is live");
                        stored.remove(&victim.0);
                        e.note_eviction(&img);
                        e.on_remove(&img);
                    }
                    _ => {}
                }
                e.check(&images);
                prop_assert_eq!(e.len(), images.len());
            }
        }
    }

    #[test]
    fn hits_never_write(stream in arb_stream()) {
        let cfg = CacheConfig { alpha: 0.7, limit_bytes: u64::MAX, ..CacheConfig::default() };
        let sizes: Vec<u64> = vec![2; UNIVERSE as usize];
        let mut cache = ImageCache::new(cfg, Arc::new(TableSizes::new(sizes)));
        let mut last_written = 0;
        for s in &stream {
            let out = cache.request(s);
            let written = cache.stats().bytes_written;
            if matches!(out, Outcome::Hit { .. }) {
                prop_assert_eq!(written, last_written, "hit must not write");
            } else {
                prop_assert!(written > last_written || s.is_empty());
            }
            last_written = written;
        }
        cache.check_invariants();
    }
}
