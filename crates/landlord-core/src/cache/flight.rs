//! Single-flight coalescing for concurrent identical (and
//! superset-satisfiable) requests.
//!
//! When many submitters ask for the same spec at once, planning each
//! request independently wastes work: the first apply would turn every
//! follower into a plain hit anyway, and under merging the followers
//! could even pick *different* merge targets than the leader is about
//! to create. [`SingleFlight`] deduplicates at the frontend: the first
//! requester of a spec becomes the **leader** and actually plans and
//! applies; any request arriving while that flight is open whose spec
//! is a *subset* of the leader's spec (identical specs included —
//! the leader's resulting image satisfies every subset) becomes a
//! **waiter** and blocks until the leader publishes its [`Outcome`].
//!
//! Lock protocol (covered by the `lock-order` audit analysis):
//!
//! * `SingleFlight.inflight` (the map) and `Flight.state` (one flight's
//!   result cell) are never held at the same time. `begin` touches only
//!   the map; publishing first removes the map entry, then locks the
//!   flight to store the result and notify.
//! * Waiters hold only their flight's `state` lock, released atomically
//!   while parked on the condvar — a waiter never blocks the map.
//!
//! Panic safety: [`LeaderGuard`] publishes [`FlightState::Abandoned`]
//! on drop if the leader never completed, so waiters of a panicking
//! leader wake with `None` and can retry as their own leaders instead
//! of parking forever.

use super::Outcome;
use crate::spec::Spec;
use parking_lot::{Condvar, Mutex};
use std::sync::Arc;

/// The lifecycle of one in-flight build.
enum FlightState {
    /// The leader is still planning/applying.
    Pending,
    /// The leader published its outcome; waiters read it and return.
    Done(Outcome),
    /// The leader dropped without completing (panic or early return);
    /// waiters must retry for themselves.
    Abandoned,
}

/// One open flight: the result cell waiters park on.
pub struct Flight {
    state: Mutex<FlightState>,
    done: Condvar,
}

impl Flight {
    fn new() -> Arc<Self> {
        Arc::new(Flight {
            state: Mutex::new(FlightState::Pending),
            done: Condvar::new(),
        })
    }

    /// Block until the leader publishes. `Some(outcome)` on a completed
    /// flight; `None` if the leader abandoned it (the caller should
    /// retry — it will usually become the new leader).
    pub fn wait(&self) -> Option<Outcome> {
        let mut state = self.state.lock();
        loop {
            match *state {
                FlightState::Done(outcome) => return Some(outcome),
                FlightState::Abandoned => return None,
                FlightState::Pending => state = self.done.wait(state),
            }
        }
    }

    /// Store a terminal state and wake every waiter.
    fn publish(&self, terminal: FlightState) {
        *self.state.lock() = terminal;
        self.done.notify_all();
    }
}

struct FlightEntry {
    spec: Spec,
    flight: Arc<Flight>,
}

/// The in-flight map: open flights keyed by the leader's spec. One per
/// shard — routing already partitions specs, so a global map would only
/// add contention.
pub struct SingleFlight {
    inflight: Mutex<Vec<FlightEntry>>,
}

/// What [`SingleFlight::begin`] hands back: lead the build or wait on
/// someone else's.
pub enum Ticket<'a> {
    /// No open flight satisfies the spec: the caller must serve the
    /// request and then [`LeaderGuard::complete`] it.
    Leader(LeaderGuard<'a>),
    /// An open flight's spec is a superset of the caller's: park on it
    /// via [`Flight::wait`] instead of touching the cache.
    Waiter(Arc<Flight>),
}

/// Obligation held by a flight's leader. Completing publishes the
/// outcome; dropping without completing publishes `Abandoned` so
/// waiters are never stranded.
pub struct LeaderGuard<'a> {
    owner: &'a SingleFlight,
    flight: Arc<Flight>,
    completed: bool,
}

impl SingleFlight {
    /// An empty map with no open flights.
    pub fn new() -> Self {
        SingleFlight {
            inflight: Mutex::new(Vec::new()),
        }
    }

    /// Join the first open flight whose spec is a superset of `spec`,
    /// or open a new flight led by the caller. The linear scan is fine:
    /// the map holds at most one entry per concurrently-planning
    /// leader, and subset matching needs the scan anyway.
    pub fn begin(&self, spec: &Spec) -> Ticket<'_> {
        let mut inflight = self.inflight.lock();
        for entry in inflight.iter() {
            if spec.is_subset(&entry.spec) {
                return Ticket::Waiter(Arc::clone(&entry.flight));
            }
        }
        let flight = Flight::new();
        inflight.push(FlightEntry {
            spec: spec.clone(),
            flight: Arc::clone(&flight),
        });
        Ticket::Leader(LeaderGuard {
            owner: self,
            flight,
            completed: false,
        })
    }

    /// Open flights right now (tests and introspection).
    pub fn inflight_len(&self) -> usize {
        self.inflight.lock().len()
    }

    fn remove(&self, flight: &Arc<Flight>) {
        let mut inflight = self.inflight.lock();
        inflight.retain(|e| !Arc::ptr_eq(&e.flight, flight));
    }
}

impl Default for SingleFlight {
    fn default() -> Self {
        SingleFlight::new()
    }
}

impl LeaderGuard<'_> {
    /// Publish `outcome` and wake every waiter. The map entry is
    /// removed *first* so requests arriving after the outcome exists in
    /// the cache plan against the cache, not a closed flight.
    pub fn complete(mut self, outcome: Outcome) {
        self.completed = true;
        self.owner.remove(&self.flight);
        self.flight.publish(FlightState::Done(outcome));
    }
}

impl Drop for LeaderGuard<'_> {
    fn drop(&mut self) {
        if !self.completed {
            self.owner.remove(&self.flight);
            self.flight.publish(FlightState::Abandoned);
        }
    }
}

impl std::fmt::Debug for SingleFlight {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SingleFlight")
            .field("inflight", &self.inflight_len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::ImageId;
    use crate::spec::PackageId;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::time::Duration;

    fn spec(ids: &[u32]) -> Spec {
        Spec::from_ids(ids.iter().map(|&i| PackageId(i)))
    }

    fn outcome(bytes: u64) -> Outcome {
        Outcome::Hit {
            image: ImageId(7),
            image_bytes: bytes,
        }
    }

    #[test]
    fn identical_specs_coalesce_onto_the_leader() {
        let sf = Arc::new(SingleFlight::new());
        let s = spec(&[1, 2, 3]);
        let leader = match sf.begin(&s) {
            Ticket::Leader(g) => g,
            Ticket::Waiter(_) => panic!("first request must lead"),
        };
        let waited = Arc::new(AtomicU64::new(0));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let sf = Arc::clone(&sf);
            let s = s.clone();
            let waited = Arc::clone(&waited);
            handles.push(std::thread::spawn(move || match sf.begin(&s) {
                Ticket::Leader(_) => panic!("duplicate leader for an open flight"),
                Ticket::Waiter(flight) => {
                    waited.fetch_add(1, Ordering::SeqCst);
                    flight.wait()
                }
            }));
        }
        // Give the waiters time to actually park before publishing.
        while waited.load(Ordering::SeqCst) < 4 {
            std::thread::sleep(Duration::from_millis(1));
        }
        leader.complete(outcome(42));
        for h in handles {
            let got = h.join().expect("waiter panicked");
            assert_eq!(got, Some(outcome(42)));
        }
        assert_eq!(sf.inflight_len(), 0, "completed flight must leave the map");
    }

    #[test]
    fn subset_specs_attach_to_a_superset_flight() {
        let sf = SingleFlight::new();
        let big = spec(&[1, 2, 3, 4]);
        let guard = match sf.begin(&big) {
            Ticket::Leader(g) => g,
            Ticket::Waiter(_) => panic!("first request must lead"),
        };
        match sf.begin(&spec(&[2, 4])) {
            Ticket::Waiter(_) => {}
            Ticket::Leader(_) => panic!("subset spec must wait on the superset flight"),
        }
        match sf.begin(&spec(&[2, 5])) {
            Ticket::Leader(g) => drop(g),
            Ticket::Waiter(_) => panic!("non-subset spec must lead its own flight"),
        }
        guard.complete(outcome(1));
    }

    #[test]
    fn abandoned_leader_wakes_waiters_with_none() {
        let sf = Arc::new(SingleFlight::new());
        let s = spec(&[9, 10]);
        let guard = match sf.begin(&s) {
            Ticket::Leader(g) => g,
            Ticket::Waiter(_) => panic!("first request must lead"),
        };
        let waiter = {
            let sf = Arc::clone(&sf);
            let s = s.clone();
            std::thread::spawn(move || match sf.begin(&s) {
                Ticket::Waiter(flight) => flight.wait(),
                Ticket::Leader(_) => panic!("flight should still be open"),
            })
        };
        while sf.inflight_len() != 1 || Arc::strong_count(&guard.flight) < 3 {
            std::thread::sleep(Duration::from_millis(1));
        }
        drop(guard); // leader bails out without completing
        assert_eq!(waiter.join().expect("waiter panicked"), None);
        assert_eq!(sf.inflight_len(), 0, "abandoned flight must leave the map");
        // The next request for the same spec leads a fresh flight.
        assert!(
            matches!(sf.begin(&s), Ticket::Leader(_)),
            "abandoned flight must not capture new requests"
        );
    }
}
