//! The mutating side of the engine: execute a previously computed
//! [`Plan`] transactionally.
//!
//! [`ImageCache::apply`] is the only request-serving mutator. It acts
//! on the decision carried by the plan — it never re-derives the
//! hit / merge / insert choice (the `plan-purity` audit rule enforces
//! this), so every consumer (the plain request path, the
//! fault-degradation path, the persistent store) observes the exact
//! same decision it planned.

use super::plan::{Plan, PlannedOp};
use super::ImageCache;
use crate::events::CacheEvent;
use crate::image::{Image, ImageId};
use crate::spec::Spec;
use std::sync::Arc;

/// The result of one applied request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Outcome {
    /// Served by an existing image.
    Hit {
        /// The satisfying image.
        image: ImageId,
        /// Size of the image actually used.
        image_bytes: u64,
    },
    /// Merged into an existing image (rewritten in full).
    Merged {
        /// The image that absorbed the request.
        image: ImageId,
        /// Jaccard distance before the merge.
        distance: f64,
        /// Size of the merged image.
        image_bytes: u64,
    },
    /// A fresh image was created for exactly this spec.
    Inserted {
        /// The new image.
        image: ImageId,
        /// Its size.
        image_bytes: u64,
    },
}

impl Outcome {
    /// The image that ends up serving the request.
    pub fn image(&self) -> ImageId {
        match *self {
            Outcome::Hit { image, .. }
            | Outcome::Merged { image, .. }
            | Outcome::Inserted { image, .. } => image,
        }
    }

    /// Size of the image serving the request.
    pub fn image_bytes(&self) -> u64 {
        match *self {
            Outcome::Hit { image_bytes, .. }
            | Outcome::Merged { image_bytes, .. }
            | Outcome::Inserted { image_bytes, .. } => image_bytes,
        }
    }
}

impl ImageCache {
    /// Execute `plan` for `spec`: the only mutator that serves
    /// requests. Exactly one of hit/merge/insert happens, possibly
    /// followed by evictions.
    ///
    /// The plan must come from [`ImageCache::plan`] on the same,
    /// settled cache state (that is what [`ImageCache::request`]
    /// guarantees). A stale plan whose target image has since vanished
    /// degrades to a fresh insert rather than corrupting state.
    ///
    /// With the `paranoid` cargo feature enabled (debug builds only),
    /// every apply re-verifies [`ImageCache::check_invariants`] on
    /// exit.
    pub fn apply(&mut self, spec: &Spec, plan: &Plan) -> Outcome {
        let span = self.obs.as_ref().map(|o| o.apply_span());
        let outcome = self.apply_inner(spec, plan);
        drop(span);
        // High-water mark (`raise`, not `set`): a max-fold is
        // order-independent, so shards sharing a registry stay
        // deterministic under any thread interleaving.
        if let Some(obs) = &self.obs {
            obs.resident_images
                .raise(u64::try_from(self.images.len()).unwrap_or(u64::MAX));
            // Flush evictor-internal counters (ghost hits, sample
            // draws) as deltas; counters fold by sum, so shards
            // sharing a registry stay exact.
            let counters = self.evictor.counters();
            let ghost = counters.ghost_hits - self.evictor_reported.ghost_hits;
            let draws = counters.sample_draws - self.evictor_reported.sample_draws;
            if ghost > 0 {
                obs.evict_ghost_hits.add(ghost);
            }
            if draws > 0 {
                obs.evict_sample_draws.add(draws);
            }
            self.evictor_reported = counters;
        }
        #[cfg(all(feature = "paranoid", debug_assertions))]
        self.check_invariants();
        outcome
    }

    fn apply_inner(&mut self, spec: &Spec, plan: &Plan) -> Outcome {
        self.clock += 1;
        let now = self.clock;
        let requested_bytes = plan.requested_bytes;
        self.ledger.begin_request(requested_bytes);

        match plan.op {
            PlannedOp::Hit { image } => {
                let touched = self.images.get_mut(&image.0).map(|img| {
                    img.last_used = now;
                    img.use_count += 1;
                    img.bytes
                });
                if let Some(image_bytes) = touched {
                    self.evictor.on_touch(&self.images[&image.0]);
                    self.ledger.count_hit();
                    self.ledger.serve(requested_bytes, image_bytes);
                    self.emit(CacheEvent::Hit {
                        image,
                        requested_bytes,
                        image_bytes,
                    });
                    return Outcome::Hit { image, image_bytes };
                }
                debug_assert!(false, "stale plan: hit image {image} not cached");
                self.do_insert(spec, requested_bytes, now)
            }
            PlannedOp::Merge { image, distance } => {
                if let Some(outcome) = self.merge_into(image, spec, distance, requested_bytes, now)
                {
                    self.evict_to_limit(image);
                    return outcome;
                }
                self.do_insert(spec, requested_bytes, now)
            }
            PlannedOp::Insert => self.do_insert(spec, requested_bytes, now),
        }
    }

    /// Build a fresh image for exactly `spec` (Algorithm 1's insert
    /// arm). The caller has already advanced the clock and accounted
    /// the request.
    pub(super) fn do_insert(&mut self, spec: &Spec, requested_bytes: u64, now: u64) -> Outcome {
        let id = ImageId(self.next_id);
        self.next_id += 1;
        self.refcounts
            .add_spec(spec, self.sizes.as_ref(), &mut self.ledger);
        let image = Image::new(id, spec.clone(), requested_bytes, now);
        self.ledger.admit(requested_bytes);
        self.ledger.write(requested_bytes);
        self.ledger.count_insert();
        self.ledger.serve(requested_bytes, requested_bytes);
        self.candidate_index.on_insert(id.0, spec);
        self.evictor.on_insert(&image);
        self.images.insert(id.0, image);
        self.emit(CacheEvent::Insert {
            image: id,
            bytes: requested_bytes,
        });
        self.evict_to_limit(id);
        Outcome::Inserted {
            image: id,
            image_bytes: requested_bytes,
        }
    }

    /// Replace image `id` with `merge(s, j)` in place, exactly as the
    /// plan decided. Returns `None` when `id` is not cached (stale
    /// plan; the caller then falls back to insert).
    fn merge_into(
        &mut self,
        id: ImageId,
        spec: &Spec,
        distance: f64,
        requested_bytes: u64,
        now: u64,
    ) -> Option<Outcome> {
        let split_threshold = self.config.split_threshold;
        let sizes = Arc::clone(&self.sizes);
        let img = self.images.get_mut(&id.0)?;

        // Account the packages newly introduced by the request.
        let added = spec.difference(&img.spec);
        let old_bytes = img.bytes;
        let new_spec = img.spec.union(spec);
        let new_bytes = sizes.spec_bytes(&new_spec);
        img.spec = new_spec;
        img.bytes = new_bytes;
        img.last_used = now;
        img.use_count = img.use_count.saturating_add(1);
        img.merge_count = img.merge_count.saturating_add(1);
        img.push_constituent(spec);
        let wants_split = split_threshold
            .is_some_and(|threshold| img.merge_count >= threshold && img.constituents.len() > 1);
        if wants_split {
            self.pending_split = Some(id);
        }
        self.evictor.on_touch(&self.images[&id.0]);
        self.candidate_index.on_merge(id.0, spec);
        self.refcounts
            .add_spec(&added, self.sizes.as_ref(), &mut self.ledger);

        self.ledger.grow_total(new_bytes - old_bytes);
        // The merged image is written out in its entirety (§VI: "Each
        // time a merge occurs, the resulting image must be written out
        // in its entirety").
        self.ledger.write(new_bytes);
        self.ledger.count_merge();
        self.ledger.serve(requested_bytes, new_bytes);

        self.emit(CacheEvent::Merge {
            image: id,
            distance_milli: (distance * 1000.0).round() as u16,
            old_bytes,
            new_bytes,
        });
        Some(Outcome::Merged {
            image: id,
            distance,
            image_bytes: new_bytes,
        })
    }

    /// Evict until within the byte limit. The image serving the current
    /// request (`protect`) is never evicted — a job's image must
    /// survive at least until the job launches.
    ///
    /// Victims come from [`super::Evictor::select_victim`]: selection
    /// commits here, inside the apply transaction, which is what keeps
    /// `plan()` pure even for stateful (queue-rotating, sampling)
    /// policies.
    pub(super) fn evict_to_limit(&mut self, protect: ImageId) {
        let mut chain: u64 = 0;
        while self.ledger.stats().total_bytes > self.config.limit_bytes {
            let Some(victim) = self.evictor.select_victim(Some(protect)) else {
                break;
            };
            self.evict(victim);
            chain += 1;
        }
        if let Some(obs) = &self.obs {
            obs.evict_chain.record(chain);
        }
    }
}
